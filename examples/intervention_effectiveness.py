#!/usr/bin/env python3
"""Intervention effectiveness: the paper's core question, answered on a
simulated world — plus the Section 6 counterfactuals as ablations.

Usage::

    python examples/intervention_effectiveness.py

Prints: label coverage and the root-only policy gap (Section 5.2.2),
seized-store lifetimes and campaign reaction agility (Section 5.3), and an
ablation table comparing order volume under stronger intervention policies.
"""

from repro import StudyRun
from repro.ecosystem import small_preset
from repro.analysis import (
    label_coverage,
    label_lifetimes,
    root_only_undercount,
    rotation_reactions,
    run_intervention_ablations,
    seized_store_lifetimes,
)
from repro.reporting import render_table


def main() -> None:
    print("Running the observed-policy study...")
    results = StudyRun(small_preset(), seed_label_count=80).execute()
    dataset = results.dataset

    print("\n--- Search intervention (Section 5.2.2) ---")
    coverage = label_coverage(dataset)
    gap = root_only_undercount(dataset)
    lifetimes = label_lifetimes(dataset)
    print(f"'hacked' label coverage: {coverage.coverage:.1%} of PSRs "
          f"(paper: 2.5%)")
    print(f"root-only policy gap: +{gap.undercount_fraction:.0%} more results "
          f"were labelable (paper: +49%)")
    if lifetimes.measured_hosts:
        print(f"doorway lifetime before labeling: "
              f"{lifetimes.mean_lower_days:.0f}-{lifetimes.mean_upper_days:.0f} "
              f"days across {lifetimes.measured_hosts} doorways (paper: 13-32)")

    print("\n--- Seizure intervention (Section 5.3) ---")
    for stats in seized_store_lifetimes(dataset):
        print(f"{stats.firm}: seized stores monetized for "
              f"{stats.mean_lower_days:.0f}-{stats.mean_upper_days:.0f} days "
              f"before seizure (n={stats.measured})")
    for stats in rotation_reactions(dataset):
        print(f"{stats.firm}: {stats.redirected_stores}/{stats.seized_stores} "
              f"seized stores re-emerged on new domains in "
              f"{stats.mean_reaction_days:.0f} days "
              f"({stats.reseized_stores} re-seized)")

    print("\n--- Section 6 counterfactuals (ablations) ---")
    print("Re-running the same world under variant intervention policies...")
    outcomes = run_intervention_ablations(lambda: small_preset())
    baseline = outcomes[0]
    print(render_table(
        ["Policy", "Orders", "vs base", "Sales", "vs base", "PSRs", "Seized"],
        [[o.name, o.total_orders, f"{o.orders_vs(baseline):.2f}x",
          o.completed_sales, f"{o.sales_vs(baseline):.2f}x",
          o.psr_count, o.seized_domains] for o in outcomes],
    ))
    unopposed = next(o for o in outcomes if o.name == "no-interventions")
    print(f"\nThe observed policy mix leaves campaigns "
          f"{baseline.orders_vs(unopposed):.0%} of their unopposed revenue — "
          "the paper's 'limited impact' finding. The strengthened policies "
          "below baseline show what coverage and responsiveness would buy.")


if __name__ == "__main__":
    main()
