#!/usr/bin/env python3
"""Campaign classification walkthrough (Section 4.2).

Usage::

    python examples/campaign_classifier.py

Shows the full human-machine loop: seed labels, k-fold cross-validation,
refinement rounds, final attribution, and — thanks to L1 sparsity — the
handful of HTML features that identify each campaign.
"""

import numpy as np

from repro import StudyRun
from repro.ecosystem import small_preset
from repro.classify import cross_validate_accuracy, extract_features
from repro.reporting import render_table


def main() -> None:
    print("Running the study (the classifier trains inside the pipeline)...")
    results = StudyRun(small_preset(), seed_label_count=80).execute()
    classifier = results.classifier
    if classifier is None:
        raise SystemExit("not enough crawled pages to train on")

    labeled = results.labeled_pages
    labels = [p.campaign for p in labeled]
    print(f"\nLabeled set: {len(labeled)} pages across {len(set(labels))} "
          "campaigns (the paper hand-labeled 491 across 52).")

    feature_maps = [extract_features(p.html) for p in labeled]
    accuracy, folds = cross_validate_accuracy(feature_maps, labels,
                                              k=min(10, len(labeled)), seed=7)
    chance = 1.0 / len(set(labels))
    print(f"{len(folds)}-fold CV accuracy: {accuracy:.1%} "
          f"(chance: {chance:.1%}; paper: 86.8% vs 1.9%)")

    print("\nPer-campaign model sparsity and most-predictive features:")
    names = classifier.vocabulary.names()
    rows = []
    for campaign in classifier.classes:
        model = classifier.model._models[campaign]
        weights = model.weights
        nonzero = int(np.count_nonzero(weights))
        top = np.argsort(-weights)[:3]
        top_features = ", ".join(names[i] for i in top if weights[i] > 0)
        rows.append([campaign, nonzero, top_features[:72]])
    print(render_table(["Campaign", "Nonzero weights", "Top positive features"], rows))

    if results.attribution:
        print(f"\nAttribution: {results.attribution.attributed_records:,} of "
              f"{results.attribution.total_records:,} PSRs "
              f"({results.attribution.attribution_rate:.0%}) mapped to known "
              "campaigns; the rest stay 'unknown' (below-threshold scores).")


if __name__ == "__main__":
    main()
