#!/usr/bin/env python3
"""Quickstart: run the full Search+Seizure study pipeline on a small
scenario and print the headline measurements.

Usage::

    python examples/quickstart.py

Runs in a few seconds: simulates ~10 weeks of the counterfeit-luxury SEO
ecosystem, crawls SERPs with the Dagger/VanGogh detectors, creates weekly
test orders, classifies campaigns, and prints what the paper's Section 5
would report for this world.
"""

from repro import StudyRun
from repro.ecosystem import small_preset
from repro.analysis import (
    label_coverage,
    rotation_reactions,
    seizure_table,
    supplier_summary,
    vertical_table,
)
from repro.reporting import render_table


def main() -> None:
    print("Building and running the study (simulate + crawl + orders + classify)...")
    results = StudyRun(small_preset(), seed_label_count=80).execute()

    dataset = results.dataset
    print(f"\nCrawled {len(dataset):,} poisoned search results (PSRs) across "
          f"{len(dataset.doorway_hosts())} doorway domains and "
          f"{len(dataset.store_hosts())} storefronts.")
    if results.attribution:
        print(f"Classifier attributed {results.attribution.attribution_rate:.0%} "
              f"of PSRs to {len(results.attribution.campaigns)} known campaigns.")

    rows = vertical_table(dataset)
    print()
    print(render_table(
        ["Vertical", "# PSRs", "# Doorways", "# Stores", "# Campaigns"],
        [[r.vertical, r.psrs, r.doorways, r.stores, r.campaigns] for r in rows],
        title="Per-vertical census (Table 1 analogue)",
    ))

    coverage = label_coverage(dataset)
    print(f"\nSearch intervention: {coverage.coverage:.1%} of PSRs carried the "
          f"'hacked' label ({coverage.labeled_hosts} doorways labeled).")

    for row in seizure_table(dataset, results.crawler):
        print(f"Seizure intervention: {row.firm} filed {row.cases} cases seizing "
              f"{row.seized_domains} domains; {row.observed_stores} seizures "
              f"observed in our crawl.")
    for stats in rotation_reactions(dataset):
        if stats.redirected_stores:
            print(f"  ...but campaigns redirected {stats.redirected_stores}/"
                  f"{stats.seized_stores} seized stores to backup domains in "
                  f"{stats.mean_reaction_days:.0f} days on average.")

    if results.supplier:
        summary = supplier_summary(results.supplier.scrape_all())
        print(f"\nSupplier scrape: {summary.total_records:,} shipment records, "
              f"{summary.delivery_rate:.0%} delivered, "
              f"{summary.top_regions_fraction:.0%} to US/JP/AU/W-EU.")

    print(f"\nTest ordering: {results.orderer.total_orders_created} purchase-pair "
          f"samples on {len(results.orderer.tracked_with_samples())} stores.")


if __name__ == "__main__":
    main()
