#!/usr/bin/env python3
"""Purchase-pair order-volume estimation (Section 4.3) and the PSR/order
correlation behind Figure 4.

Usage::

    python examples/purchase_pairs.py
"""

from repro import StudyRun
from repro.ecosystem import small_preset
from repro.analysis import DailyAggregates, campaign_figure4
from repro.orders import OrderVolumeSeries
from repro.reporting import render_table, sparkline


def main() -> None:
    print("Running the study (test orders happen inside the pipeline)...")
    results = StudyRun(small_preset(), seed_label_count=80).execute()
    orderer = results.orderer

    tracked = orderer.tracked_with_samples(minimum=3)
    tracked.sort(key=lambda t: -OrderVolumeSeries(t.samples).total_orders_created())
    print(f"\n{orderer.total_orders_created} test orders placed on "
          f"{len(orderer.tracked)} stores; {len(tracked)} yielded usable series.\n")

    rows = []
    for t in tracked[:10]:
        series = OrderVolumeSeries(t.samples)
        rows.append([
            t.key,
            t.campaign_hint or "(unknown)",
            len(series),
            series.total_orders_created(),
            f"{series.peak_daily_rate():.1f}",
            len(t.hosts_seen),
        ])
    print(render_table(
        ["Store", "Campaign", "Samples", "Orders (bound)", "Peak/day", "Domains"],
        rows, title="Top stores by estimated order volume",
    ))

    aggregates = DailyAggregates(results.dataset)
    print("\nFigure 4 panels — PSR visibility vs order rate:")
    for campaign in ("MSVALIDATE", "BIGLOVE", "KEY"):
        panel = campaign_figure4(results.dataset, orderer, campaign,
                                 aggregates=aggregates)
        ordinals = sorted(panel.top100_series)
        if not ordinals:
            continue
        psrs = [panel.top100_series[o] for o in ordinals]
        rates = [r for _, r in panel.rate_bins]
        print(f"\n  {campaign}")
        print(f"    PSRs/day    {sparkline(psrs, 44)} max {max(psrs)}")
        if rates:
            print(f"    orders/day  {sparkline(rates, 44)} max {max(rates):.1f}")
        print(f"    correlation(visibility, order rate) = "
              f"{panel.visibility_order_correlation:.2f}")


if __name__ == "__main__":
    main()
