#!/usr/bin/env python3
"""Ecosystem census: the paper's Tables 1-2 and Figure 3 on the full
16-vertical, 52-campaign scenario (scaled down to run in ~1-2 minutes).

Usage::

    python examples/ecosystem_census.py [scale]

``scale`` defaults to 0.04; raise it (e.g., 0.12) for a bigger world.
"""

import sys

from repro import StudyRun
from repro.crawler import CrawlPolicy
from repro.ecosystem import paper_preset
from repro.analysis import (
    DailyAggregates,
    campaign_table,
    sparkline_extremes,
    vertical_table,
)
from repro.reporting import render_table, sparkline_row


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.04
    print(f"Running the paper-preset scenario at scale={scale} "
          "(16 verticals, 52 campaigns, 245 days)...")
    config = paper_preset(scale=scale, terms_per_vertical=6)
    results = StudyRun(
        config, crawl_policy=CrawlPolicy(stride_days=4), refinement_rounds=1
    ).execute()
    dataset = results.dataset
    aggregates = DailyAggregates(dataset)

    rows = vertical_table(dataset, aggregates)
    print()
    print(render_table(
        ["Vertical", "# PSRs", "# Doorways", "# Stores", "# Campaigns"],
        [[r.vertical, r.psrs, r.doorways, r.stores, r.campaigns] for r in rows],
        title="Table 1 — verticals monitored",
    ))

    brand_names = [b.name for b in results.world.brand_catalog.all()]
    campaign_rows = campaign_table(dataset, results.archive, brand_names,
                                   aggregates=aggregates)
    campaign_rows.sort(key=lambda r: -r.doorways)
    print()
    print(render_table(
        ["Campaign", "# Doorways", "# Stores", "# Brands", "Peak (days)"],
        [[r.campaign, r.doorways, r.stores, r.brands, r.peak_days]
         for r in campaign_rows[:20]],
        title="Table 2 — top campaigns by doorway fleet",
    ))

    print("\nFigure 3 — % of search results poisoned (top-10 | top-100)")
    for vertical in dataset.verticals():
        top10 = sparkline_extremes(dataset, vertical, 10, aggregates)
        top100 = sparkline_extremes(dataset, vertical, 100, aggregates)
        line10 = sparkline_row("", [v for _, v in top10.series], width=22).strip()
        line100 = sparkline_row("", [v for _, v in top100.series], width=22).strip()
        print(f"  {vertical:<15} {line10:<44} | {line100}")


if __name__ == "__main__":
    main()
