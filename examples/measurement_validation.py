#!/usr/bin/env python3
"""Measurement-methodology validation: the checks the paper ran on its own
pipeline, reproduced end to end.

Usage::

    python examples/measurement_validation.py

Covers: keyword harvesting from doorway URLs via ``site:`` queries (the
Section 4.1.1 kit-keyword method), the alternate-terms bias check, and
infrastructure-graph clustering as independent validation of the campaign
classifier (Section 4.2.3).
"""

from repro import StudyRun
from repro.crawler import CrawlPolicy
from repro.ecosystem import Simulator, small_preset
from repro.search import harvest_terms_from_host
from repro.analysis import cluster_infrastructure, run_bias_experiment
from repro.reporting import render_table


def main() -> None:
    config = small_preset()
    config.term_universe_factor = 2.0  # monitor a subset of the term space
    print("Running the study...")
    results = StudyRun(
        config, crawl_policy=CrawlPolicy(stride_days=2), seed_label_count=80
    ).execute()
    world = results.world

    print("\n--- Keyword harvesting (Section 4.1.1, kit-keyword method) ---")
    campaign = world.campaign_by_name("KEY")
    doorway = campaign.doorways[0]
    harvested = harvest_terms_from_host(world.engine, doorway.host, world.window.end)
    print(f"site:{doorway.host} yields {len(harvested)} keyword(s):")
    for term in harvested[:6]:
        print(f"  {term}")

    print("\n--- Alternate-terms bias check (Section 4.1.1) ---")
    for result in run_bias_experiment(world, world.window.end, seed=1):
        print(f"  {result.vertical:<15} overlap {result.overlap_terms}/"
              f"{len(result.original.terms)}  poisoned "
              f"{result.original.psr_fraction:.3f} vs "
              f"{result.alternate.psr_fraction:.3f}  "
              f"campaign-mix distance {result.campaign_distribution_distance():.2f}")
    print("  -> same campaigns, similar rates: the monitored terms are "
          "representative.")

    print("\n--- Infrastructure clustering (Section 4.2.3 validation) ---")
    report = cluster_infrastructure(results.dataset)
    rows = []
    for cluster in report.multi_host_clusters()[:8]:
        rows.append([
            cluster.index, len(cluster.doorway_hosts), len(cluster.store_hosts),
            cluster.dominant_campaign or "(unknown)", f"{cluster.purity:.0%}",
        ])
    print(render_table(
        ["Cluster", "Doorways", "Stores", "Classifier says", "Agreement"],
        rows, title="Connected components of the doorway-store graph",
    ))
    print(f"Weighted mean purity: {report.mean_purity:.1%} — infrastructure "
          "and HTML-template evidence agree on campaign boundaries.")


if __name__ == "__main__":
    main()
