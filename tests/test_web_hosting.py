"""Tests for fetch semantics: redirects, seizure interception, profiles."""

import pytest

from repro.util.simtime import SimDate
from repro.web.domains import DomainRegistry, SeizureRecord
from repro.web.fetch import (
    CRAWLER, PageResult, SEARCH_USER, USER, VisitorProfile,
)
from repro.web.hosting import FetchError, Web
from repro.web.sites import DynamicPage, Site, SiteKind, StaticPage


@pytest.fixture()
def web(day0):
    web = Web()
    domain = web.domains.register("site.com", day0)
    site = Site(domain, SiteKind.LEGITIMATE, authority=0.5, created_on=day0)
    site.add_page(StaticPage("/", html="<html><body>home</body></html>"))
    site.add_page(StaticPage("/about.html", html="<html><body>about</body></html>"))
    web.add_site(site)
    return web


class TestVisitorProfiles:
    def test_crawler_detected_by_user_agent(self):
        assert CRAWLER.looks_like_crawler
        assert not USER.looks_like_crawler

    def test_crawler_detected_by_ip_prefix(self):
        sneaky = VisitorProfile(user_agent="Mozilla/5.0", ip_address="66.249.1.2")
        assert sneaky.looks_like_crawler

    def test_via_search(self):
        assert SEARCH_USER.via_search
        assert not USER.via_search

    def test_with_referrer(self):
        p = USER.with_referrer("http://a.com/x")
        assert p.referrer == "http://a.com/x"
        assert USER.referrer == ""  # frozen original untouched


class TestFetch:
    def test_simple_fetch(self, web, day0):
        response = web.fetch("http://site.com/", USER, day0)
        assert response.ok
        assert "home" in response.html

    def test_missing_page_404(self, web, day0):
        assert web.fetch("http://site.com/nope", USER, day0).status == 404

    def test_unknown_host_404(self, web, day0):
        assert web.fetch("http://ghost.com/", USER, day0).status == 404

    def test_site_not_yet_created_404(self, web, day0):
        domain = web.domains.register("future.com", day0)
        site = Site(domain, SiteKind.STOREFRONT, created_on=day0 + 10)
        site.add_page(StaticPage("/", html="<html></html>"))
        web.add_site(site)
        assert web.fetch("http://future.com/", USER, day0).status == 404
        assert web.fetch("http://future.com/", USER, day0 + 10).ok

    def test_malformed_url_raises(self, web, day0):
        with pytest.raises(FetchError):
            web.fetch("not-a-url", USER, day0)

    def test_redirect_followed(self, web, day0):
        domain = web.domains.register("redir.com", day0)
        site = Site(domain, SiteKind.DEDICATED_DOORWAY, created_on=day0)
        site.add_page(
            DynamicPage("/", lambda p, d: PageResult(redirect_to="http://site.com/"))
        )
        web.add_site(site)
        response = web.fetch("http://redir.com/", SEARCH_USER, day0)
        assert response.ok
        assert response.final_url == "http://site.com/"
        assert response.redirect_chain == ["http://redir.com/", "http://site.com/"]
        assert response.redirected

    def test_redirect_sets_referrer(self, web, day0):
        seen = {}

        def responder(profile, day):
            seen["referrer"] = profile.referrer
            return PageResult(html="<html></html>")

        domain = web.domains.register("hop.com", day0)
        hop = Site(domain, SiteKind.DEDICATED_DOORWAY, created_on=day0)
        hop.add_page(DynamicPage("/land", responder))
        web.add_site(hop)
        domain2 = web.domains.register("start.com", day0)
        start = Site(domain2, SiteKind.DEDICATED_DOORWAY, created_on=day0)
        start.add_page(
            DynamicPage("/", lambda p, d: PageResult(redirect_to="http://hop.com/land"))
        )
        web.add_site(start)
        web.fetch("http://start.com/", SEARCH_USER, day0)
        assert seen["referrer"] == "http://start.com/"

    def test_redirect_loop_stopped(self, web, day0):
        domain = web.domains.register("loop.com", day0)
        site = Site(domain, SiteKind.DEDICATED_DOORWAY, created_on=day0)
        site.add_page(
            DynamicPage("/", lambda p, d: PageResult(redirect_to="http://loop.com/"))
        )
        web.add_site(site)
        response = web.fetch("http://loop.com/", USER, day0)
        assert response.status == 508

    def test_cookies_propagate(self, web, day0):
        domain = web.domains.register("shop.com", day0)
        site = Site(domain, SiteKind.STOREFRONT, created_on=day0)
        site.add_page(StaticPage("/", html="<html></html>", cookies=("zenid",)))
        web.add_site(site)
        response = web.fetch("http://shop.com/", USER, day0)
        assert "zenid" in response.cookies


class TestSeizureInterception:
    def test_seized_domain_serves_notice(self, web, day0):
        domain = web.domains.get("site.com")
        domain.seize(SeizureRecord(day=day0 + 5, case_id="14-cv-9", firm="GBC", brand="Uggs"))
        before = web.fetch("http://site.com/", USER, day0 + 4)
        assert "home" in before.html
        after = web.fetch("http://site.com/", USER, day0 + 5)
        assert "Seized" in after.html

    def test_seizure_covers_all_paths(self, web, day0):
        domain = web.domains.get("site.com")
        domain.seize(SeizureRecord(day=day0, case_id="c", firm="GBC", brand="Uggs"))
        response = web.fetch("http://site.com/about.html", USER, day0 + 1)
        assert "Seized" in response.html

    def test_seizure_without_notice_is_shutdown(self, web, day0):
        domain = web.domains.get("site.com")
        domain.seize(
            SeizureRecord(day=day0, case_id="c", firm="GBC", brand="Uggs", shows_notice=False)
        )
        assert web.fetch("http://site.com/", USER, day0 + 1).status == 502

    def test_custom_notice_builder(self, web, day0):
        web.seizure_notice_builder = lambda host, day: PageResult(
            html=f"<html><body>case for {host}</body></html>"
        )
        domain = web.domains.get("site.com")
        domain.seize(SeizureRecord(day=day0, case_id="c", firm="GBC", brand="Uggs"))
        response = web.fetch("http://site.com/", USER, day0)
        assert "case for site.com" in response.html


class TestSiteRegistry:
    def test_duplicate_host_rejected(self, web, day0):
        domain = web.domains.get("site.com")
        with pytest.raises(ValueError):
            web.add_site(Site(domain, SiteKind.LEGITIMATE))

    def test_sites_by_kind(self, web):
        assert len(web.sites(SiteKind.LEGITIMATE)) == 1
        assert web.sites(SiteKind.STOREFRONT) == []

    def test_duplicate_page_path_rejected(self, web, day0):
        site = web.get_site("site.com")
        with pytest.raises(ValueError):
            site.add_page(StaticPage("/", html="<html></html>"))

    def test_page_path_must_be_absolute(self):
        with pytest.raises(ValueError):
            StaticPage("relative", html="<html></html>")

    def test_static_page_requires_content(self):
        with pytest.raises(ValueError):
            StaticPage("/x")

    def test_static_page_lazy_generator_runs_once(self):
        calls = []

        def generate():
            calls.append(1)
            return "<html><body>gen</body></html>"

        page = StaticPage("/x", generator=generate)
        assert "gen" in page.html
        assert "gen" in page.html
        assert len(calls) == 1
