"""Study-level determinism locks.

Two guarantees the perf work must not erode:

* a fixed scenario seed reproduces the *entire* measurement bit for bit —
  the PSR dataset and the Table 1/2 aggregates built from it; and
* ``n_jobs`` changes wall-clock only: threaded classifier fits yield the
  same per-class weights and the same attribution for every record as the
  sequential path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import DailyAggregates, campaign_table, vertical_table
from repro.crawler.serp_crawler import CrawlPolicy
from repro.ecosystem import small_preset
from repro.study import StudyRun


def _run(n_jobs: int = 1):
    return StudyRun(
        small_preset(),
        crawl_policy=CrawlPolicy(stride_days=2),
        n_jobs=n_jobs,
    ).execute()


@pytest.fixture(scope="module")
def baseline():
    return _run()


def _record_rows(results):
    return [record.to_json() for record in results.dataset.records]


def test_same_seed_reproduces_dataset_and_tables(baseline):
    repeat = _run()

    assert _record_rows(repeat) == _record_rows(baseline)

    base_agg = DailyAggregates(baseline.dataset)
    rep_agg = DailyAggregates(repeat.dataset)
    assert vertical_table(repeat.dataset, rep_agg) == vertical_table(
        baseline.dataset, base_agg
    )
    brands = [b.name for b in baseline.world.brand_catalog.all()]
    assert campaign_table(
        repeat.dataset, repeat.archive, brands, aggregates=rep_agg
    ) == campaign_table(
        baseline.dataset, baseline.archive, brands, aggregates=base_agg
    )


def test_n_jobs_does_not_change_results(baseline):
    threaded = _run(n_jobs=4)

    assert baseline.classifier is not None and threaded.classifier is not None
    base_model = baseline.classifier.model
    threaded_model = threaded.classifier.model
    assert threaded_model.classes_ == base_model.classes_
    for cls in base_model.classes_:
        seq = base_model._models[cls]
        par = threaded_model._models[cls]
        assert np.array_equal(par.weights, seq.weights), cls
        assert par.bias == seq.bias, cls

    assert baseline.attribution is not None and threaded.attribution is not None
    assert (
        threaded.attribution.host_predictions
        == baseline.attribution.host_predictions
    )
    assert [r.campaign for r in threaded.dataset.records] == [
        r.campaign for r in baseline.dataset.records
    ]
