"""Tests for the persistent disk cache tier and delta checkpoints.

Pins the ISSUE-8 contract:

* a study run with ``--disk-cache`` is byte-identical to one without it
  — cold or warm, at any ``--jobs`` level — and the warm run actually
  reads from disk (``disk_hit`` counters increment);
* corrupted / truncated / stale-schema disk entries degrade to misses
  and are quarantined, never served;
* the delta checkpointer writes a fraction of the whole-pickle bytes at
  ``--checkpoint-every 1`` while kill + resume stays byte-identical,
  including resuming at a different ``--jobs`` level with a warm disk
  cache, and compaction bounds the store;
* the ``repro cache`` CLI reports, validates, and clears the store.
"""

import contextlib
import io
import json
import os
import pickle
import tempfile
import unittest
from pathlib import Path

from repro.cli import main as cli_main
from repro.ecosystem import small_preset
from repro.faults import SimulatedCrash
from repro.faults.checkpoint import (
    CHECKPOINT_SCHEMA,
    CheckpointError,
    chunk_spans,
    load_checkpoint,
)
from repro.faults.profiles import PROFILES
from repro.perf.cache import disk_cache, reset_caches, set_disk_cache
from repro.perf.diskcache import DISK_MISS, DiskCache, entry_filename
from repro.study import StudyRun
from repro.util.perf import PERF

DAYS = 14


def _psr_bytes(results) -> bytes:
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "psrs.jsonl")
        results.dataset.dump_jsonl(path)
        return Path(path).read_bytes()


def _serp_fingerprint(results):
    """Final-day SERP re-serves, scores included (see test_shardpool)."""
    world = results.world
    day = world.window.end
    fingerprint = []
    for term in sorted(results.simulator.vertical_of_term_map()):
        serp = world.engine.serp(term, day)
        fingerprint.append((term, tuple(
            (r.rank, r.url, r.label.value, r.score.hex())
            for r in serp.results
        )))
    return fingerprint


def _study(jobs=1, **kwargs):
    return StudyRun(small_preset(days=DAYS), classify=False,
                    jobs=jobs, **kwargs)


class DiskTierBase(unittest.TestCase):
    """Shared isolation: the disk tier is process-global state."""

    def setUp(self):
        self._prev_disk = set_disk_cache(None)
        reset_caches()

    def tearDown(self):
        set_disk_cache(self._prev_disk)
        reset_caches()


class TestDiskCacheUnit(DiskTierBase):
    def _cache(self, tmp, **kwargs):
        kwargs.setdefault("code_digests", {"dom": "digest-a"})
        return DiskCache(os.path.join(tmp, "cache"), **kwargs)

    def test_round_trip(self):
        with tempfile.TemporaryDirectory() as tmp:
            disk = self._cache(tmp)
            key = b"\x01" * 16
            self.assertIs(disk.load("dom", key), DISK_MISS)
            self.assertTrue(disk.store("dom", key, {"value": [1, 2, 3]}))
            self.assertEqual(disk.load("dom", key), {"value": [1, 2, 3]})
            # A fresh instance over the same directory sees the entry.
            again = self._cache(tmp)
            self.assertEqual(again.load("dom", key), {"value": [1, 2, 3]})

    def test_corrupted_entry_degrades_to_miss_and_quarantines(self):
        with tempfile.TemporaryDirectory() as tmp:
            disk = self._cache(tmp)
            key = b"\x02" * 16
            disk.store("dom", key, "payload")
            entry = os.path.join(disk.path, "dom",
                                 entry_filename(key) + ".pkl")
            Path(entry).write_bytes(b"\x80garbage-not-a-record")
            self.assertIs(disk.load("dom", key), DISK_MISS)
            self.assertFalse(os.path.exists(entry))
            self.assertEqual(disk.quarantined, 1)
            # The store still works after quarantining.
            self.assertTrue(disk.store("dom", key, "payload"))
            self.assertEqual(disk.load("dom", key), "payload")

    def test_truncated_entry_degrades_to_miss(self):
        with tempfile.TemporaryDirectory() as tmp:
            disk = self._cache(tmp)
            key = b"\x03" * 16
            disk.store("dom", key, list(range(100)))
            entry = os.path.join(disk.path, "dom",
                                 entry_filename(key) + ".pkl")
            blob = Path(entry).read_bytes()
            Path(entry).write_bytes(blob[: len(blob) // 2])
            self.assertIs(disk.load("dom", key), DISK_MISS)
            self.assertEqual(disk.quarantined, 1)

    def test_schema_bump_quarantines_all_on_load(self):
        with tempfile.TemporaryDirectory() as tmp:
            disk = self._cache(tmp)
            disk.store("dom", b"\x04" * 16, "old")
            disk.flush()
            manifest_path = os.path.join(disk.path, "manifest.json")
            manifest = json.loads(Path(manifest_path).read_text())
            manifest["schema"] = 999
            Path(manifest_path).write_text(json.dumps(manifest))
            reopened = self._cache(tmp)
            self.assertIs(reopened.load("dom", b"\x04" * 16), DISK_MISS)
            self.assertEqual(reopened.stats()["entries"], 0)

    def test_code_digest_change_quarantines_cache(self):
        with tempfile.TemporaryDirectory() as tmp:
            disk = self._cache(tmp, code_digests={"dom": "digest-a"})
            disk.store("dom", b"\x05" * 16, "derived-under-a")
            disk.flush()
            changed = self._cache(tmp, code_digests={"dom": "digest-b"})
            self.assertIs(changed.load("dom", b"\x05" * 16), DISK_MISS)

    def test_eviction_respects_cap(self):
        with tempfile.TemporaryDirectory() as tmp:
            disk = self._cache(tmp, max_bytes=4096)
            for i in range(64):
                disk.store("dom", i.to_bytes(16, "big"), "x" * 200)
            self.assertLessEqual(disk.stats()["total_bytes"], 4096)
            self.assertLess(disk.stats()["entries"], 64)

    def test_validate_and_clear(self):
        with tempfile.TemporaryDirectory() as tmp:
            disk = self._cache(tmp)
            for i in range(5):
                disk.store("dom", i.to_bytes(16, "big"), i)
            entry = os.path.join(disk.path, "dom",
                                 entry_filename(b"\x00" * 15 + b"\x03") + ".pkl")
            Path(entry).write_bytes(b"torn")
            outcome = disk.validate()
            self.assertEqual(outcome["checked"], 5)
            self.assertEqual(outcome["ok"], 4)
            self.assertEqual(outcome["quarantined"], 1)
            removed = disk.clear()
            self.assertEqual(removed, 4)
            self.assertEqual(disk.stats()["entries"], 0)

    def test_entry_filename_stable_across_key_shapes(self):
        self.assertEqual(entry_filename(b"\xab\xcd"), "abcd")
        tuple_key = (b"\x01\x02", "profile-repr")
        self.assertEqual(entry_filename(tuple_key), entry_filename(tuple_key))
        self.assertNotEqual(entry_filename((b"\x01\x02", "a")),
                            entry_filename((b"\x01\x02", "b")))


class TestWarmStartStudy(DiskTierBase):
    """Cold → warm study runs over a shared disk dir are byte-identical."""

    def test_cold_warm_nodisc_identical_and_warm_hits_disk(self):
        baseline = _study().execute()
        expected = _psr_bytes(baseline)
        expected_serps = _serp_fingerprint(baseline)
        with tempfile.TemporaryDirectory() as tmp:
            set_disk_cache(os.path.join(tmp, "dcache"))
            reset_caches()
            cold = _study().execute()
            self.assertEqual(_psr_bytes(cold), expected)

            reset_caches()  # cold-process simulation: memory gone, disk kept
            before = dict(PERF.counters())
            warm = _study().execute()
            self.assertEqual(_psr_bytes(warm), expected)
            self.assertEqual(_serp_fingerprint(warm), expected_serps)
            deltas = {
                name: value - before.get(name, 0)
                for name, value in PERF.counters().items()
                if value != before.get(name, 0)
            }
            disk_hits = sum(v for k, v in deltas.items()
                            if k.endswith(".disk_hit"))
            disk_writes = sum(v for k, v in deltas.items()
                              if k.startswith("cache.") and k.endswith(".write"))
            self.assertGreater(disk_hits, 0)
            self.assertEqual(disk_writes, 0,
                             f"warm run re-stored entries: {deltas}")

    def test_warm_jobs2_identical(self):
        baseline = _study().execute()
        expected = _psr_bytes(baseline)
        with tempfile.TemporaryDirectory() as tmp:
            set_disk_cache(os.path.join(tmp, "dcache"))
            reset_caches()
            _study().execute()  # cold leg populates the store
            reset_caches()
            warm = _study(jobs=2).execute()
            self.assertEqual(_psr_bytes(warm), expected)

    def test_disk_contents_independent_of_jobs(self):
        with tempfile.TemporaryDirectory() as tmp:
            set_disk_cache(os.path.join(tmp, "d1"))
            reset_caches()
            _study().execute()
            set_disk_cache(os.path.join(tmp, "d2"))
            reset_caches()
            _study(jobs=2).execute()
            set_disk_cache(None)
            # Fresh instances rescan the directories — the live parent
            # index does not see shard-worker writes.
            seq = DiskCache(os.path.join(tmp, "d1")).index_snapshot()
            par = DiskCache(os.path.join(tmp, "d2")).index_snapshot()
            self.assertEqual(
                {name: frozenset(stems) for name, stems in seq.items()},
                {name: frozenset(stems) for name, stems in par.items()},
            )


class TestChunkSpans(unittest.TestCase):
    def test_spans_cover_exactly(self):
        data = os.urandom(300_000)
        spans = chunk_spans(data)
        self.assertEqual(spans[0][0], 0)
        self.assertEqual(spans[-1][1], len(data))
        for (_, prev_end), (start, _) in zip(spans, spans[1:]):
            self.assertEqual(prev_end, start)
        reassembled = b"".join(data[s:e] for s, e in spans)
        self.assertEqual(reassembled, data)

    def test_shared_suffix_re_aligns(self):
        import hashlib

        # Distinct ~1 KiB blocks, each ending at the chunk anchor, so the
        # content defines stable chunk boundaries with unique digests.
        blocks = [
            hashlib.blake2b(i.to_bytes(4, "big"), digest_size=64).digest() * 16
            + b"\x94\x00"
            for i in range(60)
        ]
        body = b"".join(blocks)
        original = b"A" * 10_000 + body
        shifted = b"A" * 10_000 + b"INSERTED-BYTES" + body

        def digests(blob):
            return {hashlib.blake2b(blob[s:e], digest_size=16).hexdigest()
                    for s, e in chunk_spans(blob)}

        shared = digests(original) & digests(shifted)
        # An insertion near the front must not re-chunk the whole tail.
        self.assertGreater(len(shared), len(chunk_spans(original)) // 2)


class TestDeltaCheckpoint(DiskTierBase):
    def test_every_day_checkpoint_writes_fraction_of_payload(self):
        with tempfile.TemporaryDirectory() as tmp:
            run = _study(checkpoint_path=os.path.join(tmp, "run.ckpt"),
                         checkpoint_every_days=1)
            run.execute()
            stats = run.checkpoint_stats
            self.assertEqual(stats["saves"], DAYS)
            self.assertGreater(stats["chunks_reused"], 0)
            ratio = stats["bytes_written"] / stats["payload_bytes_total"]
            self.assertLess(
                ratio, 0.40,
                f"delta store wrote {ratio:.1%} of the whole-pickle bytes",
            )
            # Completion cleared the store.
            self.assertFalse(os.path.exists(os.path.join(tmp, "run.ckpt")))

    def test_kill_resume_every_day_under_monsoon(self):
        profile = PROFILES["monsoon"]
        baseline = _study(fault_profile=profile, fault_seed=6).execute()
        expected = _psr_bytes(baseline)
        with tempfile.TemporaryDirectory() as tmp:
            ckpt = os.path.join(tmp, "run.ckpt")
            with self.assertRaises(SimulatedCrash):
                _study(fault_profile=profile, fault_seed=6,
                       checkpoint_path=ckpt, checkpoint_every_days=1,
                       die_after_day=9).execute()
            self.assertTrue(os.path.isdir(ckpt))
            # Compaction ran (save 7 of 10) and pruned old day manifests.
            manifests = [n for n in os.listdir(ckpt)
                         if n.startswith("day-") and n.endswith(".json")]
            self.assertLessEqual(len(manifests), 4)
            self.assertTrue(os.path.exists(os.path.join(ckpt, "HEAD")))
            resumed = _study(checkpoint_path=ckpt, resume=True).execute()
            self.assertEqual(_psr_bytes(resumed), expected)
            self.assertFalse(os.path.exists(ckpt))

    def test_cross_jobs_warm_resume(self):
        """Kill sharded with a disk cache, resume sequential and warm."""
        baseline = _study().execute()
        expected = _psr_bytes(baseline)
        with tempfile.TemporaryDirectory() as tmp:
            set_disk_cache(os.path.join(tmp, "dcache"))
            reset_caches()
            ckpt = os.path.join(tmp, "run.ckpt")
            with self.assertRaises(SimulatedCrash):
                _study(jobs=2, checkpoint_path=ckpt,
                       checkpoint_every_days=1, die_after_day=7).execute()
            reset_caches()  # new-process simulation; disk stays warm
            resumed_run = _study(checkpoint_path=ckpt, resume=True)
            resumed = resumed_run.execute()
            self.assertEqual(resumed_run.resumed_from_day, 8)
            self.assertEqual(_psr_bytes(resumed), expected)

    def test_tampered_chunk_refuses_resume(self):
        with tempfile.TemporaryDirectory() as tmp:
            ckpt = os.path.join(tmp, "run.ckpt")
            with self.assertRaises(SimulatedCrash):
                _study(checkpoint_path=ckpt, die_after_day=3).execute()
            head = json.loads(Path(os.path.join(ckpt, "HEAD")).read_text())
            manifest = json.loads(
                Path(os.path.join(ckpt, head["manifest"])).read_text())
            victim = manifest["chunks"][0] + ".z"
            Path(os.path.join(ckpt, "chunks", victim)).write_bytes(b"corrupt")
            with self.assertRaises(CheckpointError):
                load_checkpoint(ckpt, small_preset(days=DAYS))

    def test_legacy_single_file_checkpoint_rejected(self):
        with tempfile.TemporaryDirectory() as tmp:
            legacy = os.path.join(tmp, "old.ckpt")
            with open(legacy, "wb") as handle:
                pickle.dump({"schema": 1, "config_digest": "x"}, handle)
            with self.assertRaises(CheckpointError) as caught:
                load_checkpoint(legacy, small_preset(days=DAYS))
            self.assertIn("schema", str(caught.exception))
            self.assertNotEqual(CHECKPOINT_SCHEMA, 1)


class TestCacheCli(DiskTierBase):
    def _run_cli(self, *argv):
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            code = cli_main(list(argv))
        return code, out.getvalue()

    def test_stats_validate_clear(self):
        with tempfile.TemporaryDirectory() as tmp:
            # Default code digests: the CLI opens the store with the real
            # derivation digests, so the fixture must use them too.
            path = os.path.join(tmp, "dcache")
            disk = DiskCache(path)
            for i in range(3):
                disk.store("dom", i.to_bytes(16, "big"), i)
            disk.flush()

            code, out = self._run_cli("cache", "--dir", path)
            self.assertEqual(code, 0)
            self.assertIn("dom", out)
            self.assertIn("3 entries", out)

            code, out = self._run_cli("cache", "--dir", path, "--json")
            self.assertEqual(code, 0)
            self.assertEqual(json.loads(out)["entries"], 3)

            entry = os.path.join(path, "dom",
                                 entry_filename(b"\x00" * 16) + ".pkl")
            Path(entry).write_bytes(b"torn")
            code, out = self._run_cli("cache", "--dir", path, "--validate")
            self.assertEqual(code, 1)
            self.assertIn("1 quarantined", out)

            code, out = self._run_cli("cache", "--dir", path, "--clear")
            self.assertEqual(code, 0)
            self.assertIn("cleared 2", out)

    def test_missing_dir_exits_two(self):
        env_had = os.environ.pop("REPRO_DISK_CACHE", None)
        try:
            with contextlib.redirect_stderr(io.StringIO()):
                self.assertEqual(cli_main(["cache"]), 2)
                self.assertEqual(
                    cli_main(["cache", "--dir", "/no/such/dir"]), 2)
        finally:
            if env_had is not None:
                os.environ["REPRO_DISK_CACHE"] = env_had


if __name__ == "__main__":
    unittest.main()
