"""Tests for the observability layer (`repro.obs`).

Covers the four pillars the layer promises:

* span-tree determinism — two traced runs of the same seed produce the
  same structure (names, tags, nesting), timings aside;
* the ``metrics.jsonl`` schema — one row per simulated day, the golden
  column set, write/load round-trip with a manifest header;
* run-manifest round-trip — config digest stability and sensitivity;
* non-interference — a traced study's PSR dump is byte-identical to an
  untraced one (tracing reads simulation state, never writes it).
"""

import json

import pytest

from repro.crawler.records import PsrDataset
from repro.ecosystem import small_preset
from repro.obs.manifest import config_digest, run_manifest
from repro.obs.metrics import (
    METRICS_COLUMNS,
    TELEMETRY_COLUMNS,
    MetricsRecorder,
)
from repro.obs.trace import TRACER, Span, set_tracing_enabled
from repro.study import StudyRun

DAYS = 20


def run_study(traced, seed=7):
    set_tracing_enabled(traced)
    if not traced:
        TRACER.reset()  # drop spans left over from earlier traced tests
    try:
        config = small_preset(days=DAYS, seed=seed)
        results = StudyRun(config).execute()
        structures = tuple(root.structure() for root in TRACER.roots)
        return results, structures
    finally:
        set_tracing_enabled(False)


@pytest.fixture(scope="module")
def traced_run():
    return run_study(traced=True)


class TestSpanTreeDeterminism:
    def test_same_seed_same_structure(self, traced_run):
        _, first = traced_run
        _, second = run_study(traced=True)
        assert first  # the study recorded spans at all
        assert first == second

    def test_structure_covers_pipeline_phases(self, traced_run):
        _, structures = traced_run
        names = set()

        def collect(structure):
            names.add(structure[0])
            for child in structure[2]:
                collect(child)

        for structure in structures:
            collect(structure)
        assert {"study", "simulate", "day", "campaigns", "interventions",
                "serps", "traffic", "crawl", "orders"} <= names

    def test_day_spans_tagged_with_sim_dates(self, traced_run):
        _, structures = traced_run
        study = structures[0]
        simulate = study[2][0]
        days = [child for child in simulate[2] if child[0] == "day"]
        assert len(days) == DAYS
        tags = [dict(day[1]) for day in days]
        assert all("sim_day" in tag for tag in tags)
        assert len({tag["sim_day"] for tag in tags}) == DAYS


class TestTraceExport:
    def test_root_total_approximates_span_sum(self):
        run_study(traced=True)
        root = TRACER.roots[0]
        child_sum = sum(c.dur_s for c in root.children)
        assert child_sum <= root.dur_s
        assert child_sum >= 0.5 * root.dur_s

    def test_chrome_trace_is_valid_trace_event_json(self, traced_run):
        run_study(traced=True)
        payload = json.loads(json.dumps(TRACER.chrome_trace(
            manifest=run_manifest())))
        events = payload["traceEvents"]
        assert events
        for event in events:
            assert event["ph"] == "X"
            assert set(event) >= {"name", "ts", "dur", "pid", "tid", "args"}
        assert payload["otherData"]["manifest"]["package"] == "repro"

    def test_export_adopt_round_trip(self):
        set_tracing_enabled(True)
        try:
            with TRACER.span("outer", kind="test"):
                with TRACER.span("inner"):
                    pass
            exported = TRACER.export()
            TRACER.reset()
            adopted = TRACER.adopt(exported, track=3)
        finally:
            set_tracing_enabled(False)
        assert [s.structure() for s in adopted] == \
            [Span.from_dict(d).structure() for d in exported]
        assert adopted[0].track == 3
        assert adopted[0].children[0].track == 3

    def test_disabled_tracer_returns_shared_null_span(self):
        assert not TRACER.enabled
        assert TRACER.span("anything") is TRACER.span("other")


class TestWorkerSpanForwarding:
    def test_ablation_pool_spans_merge_in_variant_order(self):
        from repro.analysis.ablations import (
            VARIANT_ORDER,
            run_intervention_ablations,
        )

        set_tracing_enabled(True)
        try:
            run_intervention_ablations(lambda: small_preset(days=8), jobs=2)
            roots = list(TRACER.roots)
        finally:
            set_tracing_enabled(False)
        # One root per variant, in submission order, regardless of which
        # (reused) worker ran it — and each carries its full subtree.
        assert tuple(r.tags.get("variant") for r in roots) == VARIANT_ORDER
        assert [r.track for r in roots] == list(range(1, 9))
        for root in roots:
            assert root.name == "ablation"
            assert root.children, "worker span subtree was not forwarded"


class TestMetricsSchema:
    def test_one_row_per_sim_day_with_golden_columns(self, traced_run):
        results, _ = traced_run
        recorder = results.metrics
        rows = recorder.rows()
        assert len(rows) == DAYS
        for row in rows:
            assert tuple(row) == METRICS_COLUMNS
        assert [row["day_index"] for row in rows] == list(range(DAYS))
        # The columns the acceptance bar names must carry signal.
        assert rows[-1]["psrs_total"] > 0
        assert any(row["serps_served"] > 0 for row in rows)
        assert any(row["cache_hit_rate"] > 0 for row in rows)
        # Timing gauges live in the telemetry sidecar, never here.
        assert "serp_serve_us" not in METRICS_COLUMNS

    def test_telemetry_sidecar_rows(self, traced_run):
        results, _ = traced_run
        rows = results.metrics.telemetry_rows()
        assert len(rows) == DAYS
        for row in rows:
            assert tuple(row) == TELEMETRY_COLUMNS
        # The serve-µs gauge carries signal on crawl days.
        assert any(row["serp_serve_us"] > 0 for row in rows)
        # The inline executor still counts its tasks.
        assert any(row["shard_tasks"] > 0 for row in rows)

    def test_write_load_round_trip_with_manifest(self, traced_run, tmp_path):
        results, _ = traced_run
        path = str(tmp_path / "metrics.jsonl")
        manifest = run_manifest(small_preset(days=DAYS))
        results.metrics.write_jsonl(path, manifest=manifest)
        loaded_manifest, rows = MetricsRecorder.load_jsonl(path)
        assert loaded_manifest["config"]["digest"] == \
            manifest["config"]["digest"]
        assert rows == results.metrics.rows()

    def test_telemetry_round_trip(self, traced_run, tmp_path):
        results, _ = traced_run
        path = str(tmp_path / "telemetry.jsonl")
        results.metrics.write_telemetry_jsonl(path)
        _, rows = MetricsRecorder.load_jsonl(path)
        assert rows == results.metrics.telemetry_rows()

    def test_sparkline_rendering(self, traced_run):
        results, _ = traced_run
        text = results.metrics.render_sparklines()
        assert "psrs" in text
        assert "cache_hit_rate" in text
        assert "serp_serve_us" not in text
        telemetry = results.metrics.render_telemetry_sparklines()
        assert "serp_serve_us" in telemetry
        assert "disk_hit_rate" in telemetry


class TestManifest:
    def test_manifest_fields(self):
        manifest = run_manifest(small_preset(), preset="small")
        assert manifest["schema"] == 1
        assert manifest["package"] == "repro"
        assert manifest["preset"] == "small"
        for key in ("version", "git_sha", "python", "platform", "cpus",
                    "cache_enabled", "trace_enabled", "created_at"):
            assert key in manifest
        assert manifest["config"]["days"] == len(small_preset().window)

    def test_config_digest_stable_and_sensitive(self):
        a = config_digest(small_preset(days=DAYS, seed=7))
        b = config_digest(small_preset(days=DAYS, seed=7))
        c = config_digest(small_preset(days=DAYS, seed=8))
        d = config_digest(small_preset(days=DAYS + 1, seed=7))
        assert a == b
        assert len({a, c, d}) == 3

    def test_manifest_json_serializable(self):
        json.dumps(run_manifest(small_preset()))


class TestNonInterference:
    def test_traced_psr_dump_byte_identical_to_untraced(self, tmp_path,
                                                        traced_run):
        traced_results, _ = traced_run
        untraced_results, structures = run_study(traced=False)
        assert structures == ()  # disabled tracer recorded nothing new
        traced_path = tmp_path / "traced.jsonl"
        untraced_path = tmp_path / "untraced.jsonl"
        traced_results.dataset.dump_jsonl(str(traced_path))
        untraced_results.dataset.dump_jsonl(str(untraced_path))
        assert traced_path.read_bytes() == untraced_path.read_bytes()

    def test_manifest_header_skipped_by_psr_loader(self, tmp_path,
                                                   traced_run):
        results, _ = traced_run
        plain = tmp_path / "plain.jsonl"
        headed = tmp_path / "headed.jsonl"
        results.dataset.dump_jsonl(str(plain))
        results.dataset.dump_jsonl(str(headed), manifest=run_manifest())
        assert headed.read_text().splitlines()[0].startswith(
            '{"_type": "manifest"')
        loaded_plain = PsrDataset.load_jsonl(str(plain))
        loaded_headed = PsrDataset.load_jsonl(str(headed))
        assert len(loaded_plain) == len(loaded_headed) == len(results.dataset)
