"""Tests for site: queries and doorway keyword harvesting (Section 4.1.1's
kit-keyword term-selection method)."""

import pytest

from repro.search import harvest_terms_from_host, harvest_terms_from_hosts, term_from_url
from repro.ecosystem import Simulator, small_preset


class TestTermFromUrl:
    def test_slug_path(self):
        assert term_from_url("http://d.com/cheap-uggs-boots-12.html") == "cheap uggs boots"

    def test_slug_without_counter(self):
        assert term_from_url("http://d.com/uggs-outlet.html") == "uggs outlet"

    def test_key_query_form(self):
        assert term_from_url("http://d.com/?key=cheap+beats+by+dre") == "cheap beats by dre"

    def test_non_keyword_url(self):
        assert term_from_url("http://d.com/about.html") == "about"
        assert term_from_url("http://d.com/") == ""


@pytest.fixture(scope="module")
def harvested_world():
    sim = Simulator(small_preset(days=60))
    return sim.run()


class TestSiteQueryHarvest:
    def test_site_query_lists_indexed_urls(self, harvested_world):
        world = harvested_world
        doorway = world.campaigns()[0].doorways[0]
        urls = world.engine.site_query(doorway.host, world.window.end)
        assert urls
        assert all(doorway.host in u for u in urls)

    def test_site_query_respects_indexing_day(self, harvested_world):
        world = harvested_world
        doorway = world.campaigns()[0].doorways[0]
        before = world.engine.site_query(doorway.host, doorway.created_on - 1)
        assert before == []

    def test_harvest_recovers_targeted_terms(self, harvested_world):
        """The paper's keyword extraction: URL slugs encode the exact terms
        the doorway targets."""
        world = harvested_world
        for campaign in world.campaigns():
            for doorway in campaign.doorways[:3]:
                harvested = set(
                    harvest_terms_from_host(world.engine, doorway.host, world.window.end)
                )
                targeted = {p.term for p in doorway.pages if p.path != "/"}
                assert targeted <= harvested | {""}
                # Harvest should not invent unrelated terms beyond the root.
                assert harvested <= targeted | {p.term for p in doorway.pages}

    def test_harvest_across_hosts_unions(self, harvested_world):
        world = harvested_world
        campaign = world.campaigns()[0]
        hosts = [d.host for d in campaign.doorways[:4]]
        pooled = harvest_terms_from_hosts(world.engine, hosts, world.window.end)
        assert pooled == sorted(set(pooled))
        singles = set()
        for host in hosts:
            singles.update(harvest_terms_from_host(world.engine, host, world.window.end))
        assert set(pooled) == singles

    def test_unknown_host_empty(self, harvested_world):
        assert harvest_terms_from_host(
            harvested_world.engine, "ghost.example", harvested_world.window.end
        ) == []
