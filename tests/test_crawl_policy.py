"""Tests for crawl budgeting semantics and assorted edge cases the main
suites don't reach: clean-host skipping/recheck, render caps, AWStats
gating, supplier lookups, notice-parsing robustness."""

import pytest

from repro.util.rng import RandomStreams
from repro.util.simtime import SimDate
from repro.web.domains import DomainRegistry
from repro.web.hosting import Web
from repro.web.sites import Site, SiteKind, StaticPage
from repro.crawler import CrawlPolicy, SearchCrawler
from repro.crawler.awstats import AwstatsNotPublic, scrape_awstats, scrapeable_stores
from repro.interventions.notices import parse_notice_page
from repro.market import Supplier
from repro.ecosystem import Simulator, small_preset


class _FakeSerp:
    def __init__(self, results):
        self.results = results


class _FakeResult:
    def __init__(self, url, host, path, rank=1):
        from repro.search.serp import ResultLabel

        self.url = url
        self.host = host
        self.path = path
        self.rank = rank
        self.label = ResultLabel.NONE


class _FakeContext:
    def __init__(self, day, serps, vertical_of_term):
        self.day = day
        self.serps = serps
        self.vertical_of_term = vertical_of_term


def _legit_web(day0, hosts):
    web = Web()
    for host in hosts:
        domain = web.domains.register(host, day0)
        site = Site(domain, SiteKind.LEGITIMATE, authority=0.5, created_on=day0)
        site.add_page(StaticPage("/", html=f"<html><body>{host} content</body></html>"))
        web.add_site(site)
    return web


class _CountingWeb:
    """Wraps a Web and counts fetches per URL."""

    def __init__(self, web):
        self._web = web
        self.fetches = {}
        self.domains = web.domains

    def fetch(self, url, profile, day):
        self.fetches[url] = self.fetches.get(url, 0) + 1
        return self._web.fetch(url, profile, day)


class TestCleanHostSkipping:
    def _crawl_twice(self, policy, day0):
        web = _legit_web(day0, ["clean.com"])
        counting = _CountingWeb(web)
        crawler = SearchCrawler(counting, policy)
        result = _FakeResult("http://clean.com/", "clean.com", "/")
        context_a = _FakeContext(day0, {"t": _FakeSerp([result])}, {"t": "V"})
        context_b = _FakeContext(
            day0 + policy.stride_days, {"t": _FakeSerp([result])}, {"t": "V"}
        )
        crawler.on_day(None, context_a)
        first = dict(counting.fetches)
        crawler.on_day(None, context_b)
        return first, counting.fetches

    def test_clean_hosts_not_recrawled(self, day0):
        policy = CrawlPolicy(stride_days=1, recheck_clean_after_days=None)
        first, final = self._crawl_twice(policy, day0)
        # Second crawl day adds no fetches for the clean host.
        assert final == first

    def test_recheck_after_expiry(self, day0):
        policy = CrawlPolicy(stride_days=5, recheck_clean_after_days=3)
        first, final = self._crawl_twice(policy, day0)
        assert sum(final.values()) > sum(first.values())

    def test_stride_gates_crawling(self, day0):
        web = _legit_web(day0, ["clean.com"])
        counting = _CountingWeb(web)
        crawler = SearchCrawler(counting, CrawlPolicy(stride_days=3))
        result = _FakeResult("http://clean.com/", "clean.com", "/")
        serps = {"t": _FakeSerp([result])}
        crawler.on_day(None, _FakeContext(day0, serps, {"t": "V"}))
        fetched = sum(counting.fetches.values())
        # Off-stride day: nothing happens.
        crawler.on_day(None, _FakeContext(day0 + 1, serps, {"t": "V"}))
        assert sum(counting.fetches.values()) == fetched
        assert crawler.crawl_day_count == 1


class TestRenderBudget:
    def test_one_clean_url_marks_host_clean(self, day0):
        """The paper's domain-level budgeting: once a host is seen and not
        detected as poisoned, its other URLs are skipped."""
        web = _legit_web(day0, ["big.com"])
        site = web.get_site("big.com")
        for i in range(4):
            site.add_page(StaticPage(f"/p{i}.html", html=f"<html><body>page {i}</body></html>"))
        crawler = SearchCrawler(web, CrawlPolicy(stride_days=1))
        results = [
            _FakeResult(f"http://big.com/p{i}.html", "big.com", f"/p{i}.html", rank=i + 1)
            for i in range(4)
        ]
        crawler.on_day(None, _FakeContext(day0, {"t": _FakeSerp(results)}, {"t": "V"}))
        assert len(crawler._clean_urls) == 1
        assert "big.com" in crawler._clean_hosts

    def test_vangogh_render_cap_per_host(self, day0):
        """Iframe-cloaked pages require rendering; at most N renders per
        doorway host per day, so extra pages stay unclassified that day."""
        from repro.seo import CloakingType, make_kit
        from repro.seo.doorways import build_doorway
        from repro.seo.templates import assign_theme

        streams = RandomStreams(9)
        web = _legit_web(day0, ["uggstore.com"])
        store_site = web.get_site("uggstore.com")
        store_site.add_page(StaticPage("/cart", html="<html><body>cart</body></html>"))
        domain = web.domains.register("framedoor.com", day0)
        site = Site(domain, SiteKind.LEGITIMATE, authority=0.4, created_on=day0)
        site.add_page(StaticPage("/", html="<html><body>blog</body></html>"))
        web.add_site(site)
        doorway = build_doorway(
            "KEY", "Uggs",
            ["cheap uggs", "uggs outlet", "uggs boots", "uggs sale", "uggs uk"],
            site, compromised=True, day=day0,
            theme=assign_theme("KEY", streams),
            kit=make_kit(CloakingType.IFRAME, streams, "KEY"),
            landing_url=lambda: "http://uggstore.com/",
            streams=streams,
        )
        crawler = SearchCrawler(web, CrawlPolicy(stride_days=1,
                                                 max_renders_per_host_per_day=2))
        results = [
            _FakeResult(f"http://framedoor.com{p.path}", "framedoor.com", p.path, rank=i + 1)
            for i, p in enumerate(doorway.pages)
        ]
        crawler.on_day(None, _FakeContext(day0, {"t": _FakeSerp(results)}, {"t": "V"}))
        # Only the budgeted number of pages could be rendered and detected.
        assert len(crawler._cloaked_urls) == 2
        # Next crawl day, the budget resets and more get classified.
        crawler.on_day(None, _FakeContext(day0 + 1, {"t": _FakeSerp(results)}, {"t": "V"}))
        assert len(crawler._cloaked_urls) == 4


class TestAwstatsGate:
    def test_private_stats_raise(self, world):
        private = [s for s in world.stores() if not s.awstats_public]
        if not private:
            pytest.skip("every store public in this run")
        with pytest.raises(AwstatsNotPublic):
            scrape_awstats(private[0], world.window.start, world.window.end)

    def test_scrapeable_filter(self, world):
        subset = scrapeable_stores(world.stores())
        assert all(s.awstats_public for s in subset)


class TestSupplierLookups:
    def test_unknown_ids_return_none_slots(self, day0):
        supplier = Supplier("lux", RandomStreams(4), ["MSVALIDATE"])
        supplier.fulfill_orders("MSVALIDATE", day0, 3)
        known = sorted(r.order_id for r in supplier.scrape_all())
        rows = supplier.lookup([known[0], 999999999])
        assert rows[0] is not None
        assert rows[1] is None

    def test_scrape_empty_supplier(self):
        supplier = Supplier("lux", RandomStreams(4), ["MSVALIDATE"])
        assert supplier.scrape_all() == []

    def test_negative_count_rejected(self, day0):
        supplier = Supplier("lux", RandomStreams(4), ["MSVALIDATE"])
        with pytest.raises(ValueError):
            supplier.fulfill_orders("MSVALIDATE", day0, -1)


class TestNoticeParsingRobustness:
    def test_truncated_notice_returns_none_or_partial(self):
        # Banner without the body paragraph: no case id -> not a notice.
        html = '<html><body><div id="seizure-notice"><h1>x</h1></div></body></html>'
        assert parse_notice_page(html) is None

    def test_notice_with_empty_schedule(self):
        from repro.interventions.notices import NoticeInfo, build_notice_page

        info = NoticeInfo("14-cv-1", "GBC", "Uggs", "a.com", co_seized=[])
        parsed = parse_notice_page(build_notice_page(info))
        assert parsed is not None
        assert parsed.co_seized == []

    def test_non_html_garbage(self):
        assert parse_notice_page("") is None
        assert parse_notice_page("just text, no markup") is None


class TestStudySerialization:
    def test_full_dataset_roundtrip(self, study, tmp_path):
        path = str(tmp_path / "full.jsonl")
        study.dataset.dump_jsonl(path)
        from repro.crawler import PsrDataset

        loaded = PsrDataset.load_jsonl(path)
        assert len(loaded) == len(study.dataset)
        assert loaded.verticals() == study.dataset.verticals()
        # Campaign attribution survives the round trip.
        original = sum(1 for r in study.dataset.records if r.campaign)
        restored = sum(1 for r in loaded.records if r.campaign)
        assert original == restored
