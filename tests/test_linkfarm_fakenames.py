"""Tests for the backlink-farm substrate and fictional-identity generator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.util.rng import RandomStreams
from repro.seo import LinkFarm
from repro.seo.linkfarm import AUTHORITY_CAP, AUTHORITY_FLOOR
from repro.orders import FakeIdentityGenerator
from repro.orders.fakenames import _luhn_check_digit


class TestLinkFarm:
    def _farm(self, size=40, seed=3):
        return LinkFarm("KEY", RandomStreams(seed), farm_size=size)

    def test_farm_size(self):
        assert self._farm(25).farm_size == 25

    def test_size_validated(self):
        with pytest.raises(ValueError):
            self._farm(size=1)

    def test_add_doorway_creates_backlinks(self):
        farm = self._farm()
        links = farm.add_doorway("door1.com")
        assert links >= 2
        assert farm.backlink_count("door1.com") == links
        assert "door1.com" in farm.doorway_hosts()

    def test_duplicate_doorway_rejected(self):
        farm = self._farm()
        farm.add_doorway("door1.com")
        with pytest.raises(ValueError):
            farm.add_doorway("door1.com")

    def test_authority_bounds(self):
        farm = self._farm()
        for i in range(30):
            farm.add_doorway(f"door{i}.com")
        for host in farm.doorway_hosts():
            authority = farm.authority_of(host)
            assert AUTHORITY_FLOOR <= authority <= AUTHORITY_CAP

    def test_more_backlinks_more_equity(self):
        farm = self._farm(size=60)
        farm.add_doorway("weak.com", backlinks=2)
        farm.add_doorway("strong.com", backlinks=30)
        assert farm.link_equity("strong.com") > farm.link_equity("weak.com")
        assert farm.authority_of("strong.com") > farm.authority_of("weak.com")

    def test_unknown_host_zero_equity(self):
        farm = self._farm()
        assert farm.link_equity("ghost.com") == 0.0
        assert farm.backlink_count("ghost.com") == 0

    def test_equity_dilutes_as_farm_serves_more_doorways(self):
        """A farm's juice is finite: doorway #1 loses equity as the farm
        takes on more doorways."""
        lone = self._farm(size=40, seed=9)
        lone.add_doorway("first.com", backlinks=10)
        solo_equity = lone.link_equity("first.com")
        crowded = self._farm(size=40, seed=9)
        crowded.add_doorway("first.com", backlinks=10)
        for i in range(20):
            crowded.add_doorway(f"other{i}.com", backlinks=10)
        assert crowded.link_equity("first.com") < solo_equity

    def test_deterministic(self):
        a = self._farm(seed=5)
        b = self._farm(seed=5)
        a.add_doorway("d.com")
        b.add_doorway("d.com")
        assert a.link_equity("d.com") == b.link_equity("d.com")

    def test_dedicated_doorways_use_farm_authority(self):
        """Integration: a campaign's dedicated doorway sites carry the
        farm-derived authority."""
        from repro.ecosystem import Simulator, small_preset
        from repro.web.sites import SiteKind

        sim = Simulator(small_preset(days=40))
        world = sim.run()
        dedicated = 0
        for campaign in world.campaigns():
            for doorway in campaign.doorways:
                if doorway.compromised:
                    continue
                dedicated += 1
                # Authority was drawn from the farm at creation; the farm's
                # equity dilutes as later doorways join, so we check bounds
                # and farm membership rather than the momentary value.
                assert AUTHORITY_FLOOR <= doorway.site.authority <= AUTHORITY_CAP
                assert doorway.host in campaign.link_farm.doorway_hosts()
                assert campaign.link_farm.backlink_count(doorway.host) >= 2
                assert doorway.site.kind is SiteKind.DEDICATED_DOORWAY
        assert dedicated > 0


class TestFakeIdentities:
    def test_identity_consistency(self):
        generator = FakeIdentityGenerator(RandomStreams(7))
        identity = generator.identity("DE")
        first, last = identity.full_name.split()
        assert first.lower() in identity.email
        assert last.lower() in identity.email
        assert identity.country == "DE"

    def test_unknown_country_falls_back(self):
        generator = FakeIdentityGenerator(RandomStreams(7))
        assert generator.identity("XX").country == "US"

    def test_card_numbers_luhn_valid_and_test_bin(self):
        generator = FakeIdentityGenerator(RandomStreams(7))
        for _ in range(50):
            identity = generator.identity()
            assert identity.luhn_valid()
            assert identity.card_number.startswith("411111")
            assert len(identity.card_number) == 16

    def test_emails_unique(self):
        generator = FakeIdentityGenerator(RandomStreams(7))
        emails = {generator.identity().email for _ in range(200)}
        assert len(emails) == 200

    def test_deterministic(self):
        a = FakeIdentityGenerator(RandomStreams(11)).identity()
        b = FakeIdentityGenerator(RandomStreams(11)).identity()
        assert a == b

    @given(st.text(alphabet="0123456789", min_size=1, max_size=18))
    def test_luhn_check_digit_makes_valid_numbers(self, digits):
        full = digits + _luhn_check_digit(digits)
        # Standard Luhn validation over the completed number.
        total = 0
        for index, char in enumerate(reversed(full)):
            value = int(char)
            if index % 2 == 1:
                value *= 2
                if value > 9:
                    value -= 9
            total += value
        assert total % 10 == 0

    def test_orderer_records_identities(self, study):
        assert len(study.orderer.identities_used) == study.orderer.total_orders_created
        for identity in study.orderer.identities_used[:20]:
            assert identity.luhn_valid()
