"""Tests for the market package: brands, products, payments, stores,
traffic, supplier."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.util.rng import RandomStreams
from repro.util.simtime import SimDate
from repro.web.domains import DomainRegistry, SeizureRecord
from repro.market import (
    Brand,
    BrandCatalog,
    ShipmentStatus,
    Store,
    Supplier,
    default_brand_catalog,
    default_payment_network,
    generate_products,
)
from repro.market.traffic import GeoModel, VisitLog, awstats_for
from repro.analysis.supplier import supplier_summary


class TestBrands:
    def test_catalog_lookup_by_name_or_slug(self):
        catalog = default_brand_catalog()
        assert catalog.get("Louis Vuitton").msrp == 2400.0
        assert catalog.get("louis-vuitton").name == "Louis Vuitton"

    def test_catalog_contains_all_vertical_anchors(self):
        catalog = default_brand_catalog()
        for name in ("Abercrombie", "Uggs", "Beats By Dre", "Tiffany", "Chanel"):
            assert name in catalog

    def test_unknown_brand_raises(self):
        with pytest.raises(KeyError):
            default_brand_catalog().get("NotABrand")

    def test_duplicate_brand_rejected(self):
        catalog = BrandCatalog([Brand("X", "apparel", 10.0)])
        with pytest.raises(ValueError):
            catalog.add(Brand("X", "apparel", 10.0))


class TestProducts:
    def test_counterfeit_economics(self):
        """Counterfeits price at a small fraction of MSRP with high margin
        (the paper's $2400 -> $250 -> $20 example)."""
        brand = default_brand_catalog().get("Louis Vuitton")
        products = generate_products(brand, 30, RandomStreams(1))
        for product in products:
            assert product.price < brand.msrp * 0.2
            assert product.cost < product.price * 0.2
            assert product.margin > 0

    def test_deterministic(self):
        brand = default_brand_catalog().get("Nike")
        a = generate_products(brand, 5, RandomStreams(3))
        b = generate_products(brand, 5, RandomStreams(3))
        assert a == b

    def test_count_validated(self):
        brand = default_brand_catalog().get("Nike")
        with pytest.raises(ValueError):
            generate_products(brand, 0, RandomStreams(1))

    def test_unique_skus(self):
        brand = default_brand_catalog().get("Uggs")
        products = generate_products(brand, 40, RandomStreams(1))
        assert len({p.sku for p in products}) == 40


class TestPayments:
    def test_three_banks(self):
        network = default_payment_network()
        assert len(network.banks) == 3
        assert {b.country for b in network.banks} == {"CN", "KR"}

    def test_assignment_stable(self):
        network = default_payment_network()
        streams = RandomStreams(1)
        first = network.assign("store-1", streams)
        again = network.assign("store-1", streams)
        assert first is again

    def test_bank_concentration(self):
        """Most volume should clear through the two Chinese banks."""
        network = default_payment_network()
        streams = RandomStreams(2)
        for i in range(300):
            network.assign(f"s{i}", streams)
        distribution = network.bank_distribution()
        chinese = sum(v for k, v in distribution.items() if "Seoul" not in k)
        assert chinese / 300 > 0.8

    def test_merchant_id_stable_and_distinct(self):
        network = default_payment_network()
        processor = network.processors[0]
        assert processor.merchant_id("a") == processor.merchant_id("a")
        assert processor.merchant_id("a") != processor.merchant_id("b")

    def test_processor_of_unassigned_raises(self):
        with pytest.raises(KeyError):
            default_payment_network().processor_of("ghost")


def _store(day0, start=1000):
    registry = DomainRegistry()
    domain = registry.register("uggsvipmall.com", day0)
    brand = default_brand_catalog().get("Uggs")
    network = default_payment_network()
    return Store(
        store_id="c-uggs-0",
        campaign="C",
        vertical="Uggs",
        brands=["Uggs"],
        products=generate_products(brand, 6, RandomStreams(1)),
        processor=network.assign("c-uggs-0", RandomStreams(1)),
        first_domain=domain,
        opened_on=day0,
        order_number_start=start,
    ), registry


class TestStore:
    def test_order_numbers_monotonic(self, day0):
        store, _ = _store(day0)
        numbers = [store.allocate_order_number(day0 + i) for i in range(20)]
        assert numbers == sorted(numbers)
        assert numbers[0] == 1001

    def test_bulk_orders_advance_counter(self, day0):
        store, _ = _store(day0)
        store.record_orders(day0, 50)
        assert store.next_order_preview == 1051
        assert store.orders_created_on(day0) == 50

    def test_negative_orders_rejected(self, day0):
        store, _ = _store(day0)
        with pytest.raises(ValueError):
            store.record_orders(day0, -1)

    def test_counter_survives_rotation(self, day0):
        """The purchase-pair technique depends on this: rotations change the
        domain, not the order sequence."""
        store, registry = _store(day0)
        store.record_orders(day0, 10)
        new_domain = registry.register("uggstopshop.com", day0 + 5)
        store.rotate_domain(new_domain, day0 + 5)
        store.record_orders(day0 + 6, 5)
        assert store.next_order_preview == 1016

    def test_host_on_respects_tenures(self, day0):
        store, registry = _store(day0)
        new_domain = registry.register("second.com", day0 + 10)
        store.rotate_domain(new_domain, day0 + 10)
        assert store.host_on(day0 + 9) == "uggsvipmall.com"
        assert store.host_on(day0 + 10) == "second.com"
        assert store.host_on(day0 - 1) is None

    def test_rotation_to_same_domain_rejected(self, day0):
        store, _ = _store(day0)
        with pytest.raises(ValueError):
            store.rotate_domain(store.current_domain, day0 + 1)

    def test_all_hosts(self, day0):
        store, registry = _store(day0)
        store.rotate_domain(registry.register("x2.com", day0 + 1), day0 + 1)
        store.rotate_domain(registry.register("x3.com", day0 + 2), day0 + 2)
        assert store.all_hosts() == ["uggsvipmall.com", "x2.com", "x3.com"]

    def test_is_seized_on(self, day0):
        store, _ = _store(day0)
        store.current_domain.seize(
            SeizureRecord(day=day0 + 3, case_id="c", firm="GBC", brand="Uggs")
        )
        assert not store.is_seized_on(day0 + 2)
        assert store.is_seized_on(day0 + 3)

    def test_build_site_requires_factory(self, day0):
        store, _ = _store(day0)
        with pytest.raises(RuntimeError):
            store.build_site(day0)

    def test_store_requires_brand(self, day0):
        registry = DomainRegistry()
        domain = registry.register("x.com", day0)
        with pytest.raises(ValueError):
            Store(
                store_id="s", campaign="c", vertical="v", brands=[],
                products=[], processor=None, first_domain=domain, opened_on=day0,
            )


class TestVisitLogAndAwstats:
    def test_record_and_aggregate(self, day0):
        log = VisitLog()
        from collections import Counter
        log.record(day0, 100, 560, "s.com", Counter({"d1.com": 60}), Counter({"US": 70}))
        log.record(day0 + 1, 50, 280, "s.com", Counter({"d2.com": 30}))
        report = awstats_for(log, "s.com", day0, day0 + 10)
        assert report.total_visits == 150
        assert report.pages_per_visit == pytest.approx(5.6)
        assert report.visits_with_referrer == 90
        assert report.referrer_fraction == pytest.approx(0.6)
        assert report.referrer_hosts["d1.com"] == 60
        assert report.countries["US"] == 70

    def test_window_excludes_outside_days(self, day0):
        log = VisitLog()
        log.record(day0, 10, 50, "s.com")
        log.record(day0 + 30, 99, 500, "s.com")
        report = awstats_for(log, "s.com", day0, day0 + 10)
        assert report.total_visits == 10

    def test_reversed_window_rejected(self, day0):
        with pytest.raises(ValueError):
            awstats_for(VisitLog(), "s.com", day0 + 1, day0)

    def test_negative_traffic_rejected(self, day0):
        with pytest.raises(ValueError):
            VisitLog().record(day0, -1, 0, "s.com")

    def test_geo_mix_validated(self, streams):
        with pytest.raises(ValueError):
            GeoModel(streams, mix=(("US", 0.5),))

    def test_geo_sampling_counts(self, streams):
        geo = GeoModel(streams)
        counts = geo.sample_countries("s", 1000)
        assert sum(counts.values()) == 1000
        assert counts["US"] > counts.get("KR", 0)


class TestSupplier:
    def _supplier(self, day0, orders=3000):
        supplier = Supplier("lux", RandomStreams(4), ["MSVALIDATE"])
        supplier.fulfill_orders("MSVALIDATE", day0, orders)
        return supplier

    def test_only_partners_accepted(self, day0):
        supplier = Supplier("lux", RandomStreams(4), ["MSVALIDATE"])
        with pytest.raises(ValueError):
            supplier.fulfill_orders("KEY", day0, 1)

    def test_bulk_lookup_capped_at_20(self, day0):
        supplier = self._supplier(day0, 30)
        with pytest.raises(ValueError):
            supplier.lookup(list(range(25)))

    def test_scrape_recovers_every_record(self, day0):
        supplier = self._supplier(day0, 500)
        scraped = supplier.scrape_all()
        assert len(scraped) == supplier.record_count() == 500

    def test_status_mix_matches_paper_shape(self, day0):
        """Section 4.5: ~92% delivered, destination seizures > source
        seizures, returns rare."""
        summary = supplier_summary(self._supplier(day0, 20_000).scrape_all())
        assert summary.delivery_rate > 0.88
        assert summary.seized_at_destination > summary.seized_at_source
        assert summary.returned < summary.total_records * 0.02

    def test_destination_mix(self, day0):
        summary = supplier_summary(self._supplier(day0, 20_000).scrape_all())
        assert summary.top_regions_fraction > 0.75
        assert summary.by_destination["US"] > summary.by_destination["JP"]
        assert summary.by_destination["JP"] > summary.by_destination["AU"]
