"""Tests for the purchase-pair order-volume estimation."""

import pytest

from repro.util.simtime import SimDate
from repro.orders import OrderPolicy, OrderSample, OrderVolumeSeries


def _samples(day0, pairs):
    return [OrderSample(day=day0 + d, order_number=n) for d, n in pairs]


class TestOrderVolumeSeries:
    def test_total_orders_created(self, day0):
        series = OrderVolumeSeries(_samples(day0, [(0, 1000), (7, 1070), (14, 1200)]))
        assert series.total_orders_created() == 200

    def test_daily_rates(self, day0):
        series = OrderVolumeSeries(_samples(day0, [(0, 1000), (10, 1100)]))
        rates = series.daily_rates()
        assert rates[day0.ordinal] == pytest.approx(10.0)
        assert len(rates) == 10

    def test_rate_histogram_weekly(self, day0):
        series = OrderVolumeSeries(_samples(day0, [(0, 0), (7, 70), (14, 210)]))
        bins = series.rate_histogram(bin_days=7)
        assert len(bins) == 2
        assert bins[0][1] == pytest.approx(10.0)
        assert bins[1][1] == pytest.approx(20.0)

    def test_peak_daily_rate(self, day0):
        series = OrderVolumeSeries(_samples(day0, [(0, 0), (7, 7), (14, 147)]))
        assert series.peak_daily_rate() == pytest.approx(20.0)

    def test_sorted_regardless_of_input_order(self, day0):
        series = OrderVolumeSeries(
            [OrderSample(day0 + 7, 50), OrderSample(day0, 10)]
        )
        assert series.samples[0].order_number == 10

    def test_insufficient_samples(self, day0):
        assert OrderVolumeSeries(_samples(day0, [(0, 5)])).total_orders_created() == 0
        assert OrderVolumeSeries([]).daily_rates() == {}

    def test_interpolated_volume(self, day0):
        series = OrderVolumeSeries(_samples(day0, [(0, 0), (10, 100)]))
        values = series.interpolated_volume([day0.ordinal + 5])
        assert values == [50.0]


class TestTestOrdererIntegration:
    """Against the session study's real orderer."""

    def test_orders_created(self, study):
        assert study.orderer.total_orders_created > 0
        assert study.orderer.tracked_with_samples()

    def test_samples_monotonic_per_store(self, study):
        for tracked in study.orderer.tracked.values():
            numbers = [s.order_number for s in tracked.samples]
            assert numbers == sorted(numbers), tracked.key

    def test_sampling_cadence_at_least_weekly(self, study):
        interval = study.orderer.policy.sample_interval_days
        for tracked in study.orderer.tracked_with_samples():
            days = [s.day.ordinal for s in tracked.samples]
            gaps = [b - a for a, b in zip(days, days[1:])]
            assert all(gap >= interval for gap in gaps), tracked.key

    def test_volume_upper_bounds_ground_truth_sales(self, study):
        """Purchase-pair estimates bound orders created, which in turn
        exceed completed sales (Section 4.3.1)."""
        for tracked in study.orderer.tracked_with_samples(minimum=3):
            store = study.world.store_at(tracked.key)
            if store is None:
                continue
            series = OrderVolumeSeries(tracked.samples)
            first = series.samples[0]
            last = series.samples[-1]
            true_created = sum(
                store.orders_created_on(SimDate(d))
                for d in range(first.day.ordinal, last.day.ordinal + 1)
            )
            estimated = series.total_orders_created()
            # The estimate includes the test orders themselves plus real
            # customers; it can never undercount by more than the sampling
            # boundary effects.
            assert estimated >= true_created * 0.5 - 5

    def test_rotation_followed(self, study):
        """At least one tracked store should have been re-resolved onto a
        new domain (BIGLOVE rotates proactively in the small preset)."""
        moved = [t for t in study.orderer.tracked.values() if len(t.hosts_seen) > 1]
        assert moved
        for tracked in moved:
            assert len(set(tracked.hosts_seen)) == len(tracked.hosts_seen)

    def test_daily_cap_respected(self, study):
        """No more than max_orders_per_day_per_campaign samples per group
        per calendar day."""
        per_day = {}
        cap = study.orderer.policy.max_orders_per_day_per_campaign
        for tracked in study.orderer.tracked.values():
            group = study.orderer.campaign_of_host(tracked.key)
            for sample in tracked.samples:
                key = (group, sample.day.ordinal)
                per_day[key] = per_day.get(key, 0) + 1
        assert max(per_day.values(), default=0) <= cap
