"""Tests for the mini JavaScript renderer — the honest mechanism behind
iframe-cloaking detection."""

from repro.html.parser import parse_html
from repro.web.render import execute_script, render_document
from repro.seo.cloaking import IframeObfuscator
from repro.util.rng import RandomStreams


class TestExecuteScript:
    def test_document_write_literal(self):
        effects = execute_script("document.write('<p>hi</p>');")
        assert effects.written_html == ["<p>hi</p>"]

    def test_variable_assignment_and_concat(self):
        code = "var a = '<p>'; var b = a + 'x' + '</p>'; document.write(b);"
        effects = execute_script(code)
        assert effects.written_html == ["<p>x</p>"]

    def test_plus_equals(self):
        code = "var z = '<i'; z += 'frame>'; document.write(z);"
        assert execute_script(code).written_html == ["<iframe>"]

    def test_from_char_code(self):
        code = "var u = String.fromCharCode(104, 105); document.write(u);"
        assert execute_script(code).written_html == ["hi"]

    def test_unescape(self):
        code = "document.write(unescape('%68%69'));"
        assert execute_script(code).written_html == ["hi"]

    def test_array_join(self):
        code = "document.write(['<p>', 'x', '</p>'].join(''));"
        assert execute_script(code).written_html == ["<p>x</p>"]

    def test_create_element_append(self):
        code = (
            "var f = document.createElement('iframe');\n"
            "f.src = 'http://store.com/';\n"
            "f.width = '100%';\nf.height = '100%';\n"
            "document.body.appendChild(f);"
        )
        effects = execute_script(code)
        assert len(effects.appended_elements) == 1
        el = effects.appended_elements[0]
        assert el.tag == "iframe"
        assert el.attrs["src"] == "http://store.com/"
        assert el.attrs["width"] == "100%"

    def test_set_attribute_form(self):
        code = (
            "var f = document.createElement('iframe');"
            "f.setAttribute('src', 'http://s.com/');"
            "document.body.appendChild(f);"
        )
        effects = execute_script(code)
        assert effects.appended_elements[0].attrs["src"] == "http://s.com/"

    def test_unknown_statements_ignored(self):
        code = "window.alert('x'); for (var i=0;i<3;i++){}; document.write('<b>k</b>');"
        effects = execute_script(code)
        assert effects.written_html == ["<b>k</b>"]

    def test_undefined_variable_skipped(self):
        effects = execute_script("document.write(mystery);")
        assert effects.written_html == []

    def test_semicolons_inside_strings(self):
        effects = execute_script("document.write('a;b');")
        assert effects.written_html == ["a;b"]

    def test_never_raises_on_garbage(self):
        for code in ["", ";;;", "var = = =", "document.write(", "'unterminated"]:
            execute_script(code)


class TestRenderDocument:
    def test_write_appends_to_body(self):
        html = "<html><body><script>document.write('<div id=\"late\">x</div>');</script></body></html>"
        rendered = render_document(parse_html(html))
        assert any(el.get("id") == "late" for el in rendered.iter())

    def test_append_child_iframe_visible_after_render(self):
        code = (
            "var f = document.createElement('iframe');"
            "f.src = 'http://store.com/'; f.width = '100%'; f.height = '100%';"
            "document.body.appendChild(f);"
        )
        html = f"<html><body><p>seo text</p><script>{code}</script></body></html>"
        unrendered = parse_html(html)
        assert unrendered.find_all("iframe") == []
        rendered = render_document(unrendered)
        assert len(rendered.find_all("iframe")) == 1

    def test_static_page_unchanged(self):
        html = "<html><body><p>static</p></body></html>"
        rendered = render_document(parse_html(html))
        assert rendered.text_content() == parse_html(html).text_content()


class TestObfuscationStylesRoundTrip:
    """Every obfuscation style a kit can emit must be executable by the
    renderer and reveal the iframe — the detection contract."""

    def test_all_styles_reveal_target(self):
        target = "http://store-example.com/"
        for i in range(40):  # cycle RNG so all styles appear
            streams = RandomStreams(i)
            obfuscator = IframeObfuscator(streams, f"campaign{i}")
            script = obfuscator.script_for(target)
            html = f"<html><body><p>x</p><script>{script}</script></body></html>"
            rendered = render_document(parse_html(html))
            iframes = rendered.find_all("iframe")
            assert iframes, f"style {obfuscator.style} produced no iframe"
            assert iframes[0].get("src") == target, obfuscator.style

    def test_styles_cover_all_variants(self):
        seen = {IframeObfuscator(RandomStreams(i), f"c{i}").style for i in range(60)}
        assert seen == set(IframeObfuscator.STYLES)
