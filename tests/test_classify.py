"""Tests for the campaign classifier: features, L1 logistic regression,
cross-validation, labeling loop, end-to-end attribution."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy import sparse

from repro.util.rng import RandomStreams
from repro.classify import (
    CampaignClassifier,
    GroundTruthOracle,
    L1LogisticRegression,
    OneVsRestL1Logistic,
    Vocabulary,
    build_seed_labels,
    cross_validate_accuracy,
    extract_features,
    kfold_indices,
    vectorize,
)
from repro.classify.linear import soft_threshold
from repro.seo.templates import assign_theme


class TestFeatureExtraction:
    def test_tag_and_attribute_tokens(self):
        features = extract_features('<html><body><div class="zc-main kw">x</div></body></html>')
        assert features["div"] == 1
        assert features["div.class"] == 1
        assert features["div.class~zc-main"] == 1
        assert features["div.class~kw"] == 1

    def test_value_normalization_strips_hosts(self):
        a = extract_features('<html><body><a href="http://a.com/p/x.html">l</a></body></html>')
        b = extract_features('<html><body><a href="http://b.net/p/x.html">l</a></body></html>')
        assert a == b

    def test_digit_runs_collapsed(self):
        a = extract_features('<html><body><img src="/images/sku-1234.jpg"/></body></html>')
        b = extract_features('<html><body><img src="/images/sku-9876.jpg"/></body></html>')
        assert a == b

    def test_comments_are_features(self):
        features = extract_features("<html><body><!--tpl:key:1234--></body></html>")
        assert any(name.startswith("comment=") for name in features)

    def test_campaign_themes_have_distinct_features(self):
        streams = RandomStreams(5)
        a_theme = assign_theme("ALPHA", streams)
        b_theme = assign_theme("BRAVO", streams)
        a = set(extract_features(a_theme.doorway_seo_page("t", "V", "s")))
        b = set(extract_features(b_theme.doorway_seo_page("t", "V", "s")))
        assert a - b and b - a


class TestVocabulary:
    def test_min_df_filters(self):
        maps = [extract_features("<html><body><p>x</p></body></html>"),
                extract_features("<html><body><p>y</p><i>z</i></body></html>")]
        vocab = Vocabulary(min_df=2).fit(maps)
        assert "p" in vocab
        assert "i" not in vocab

    def test_vectorize_shape(self):
        maps = [extract_features("<html><body><p>x</p></body></html>")] * 3
        vocab = Vocabulary().fit(maps)
        X = vectorize(maps, vocab)
        assert X.shape == (3, len(vocab))

    def test_unknown_features_ignored(self):
        train = [extract_features("<html><body><p>x</p></body></html>")]
        vocab = Vocabulary().fit(train)
        test = [extract_features("<html><body><table><tr><td>q</td></tr></table></body></html>")]
        X = vectorize(test, vocab)
        assert X.shape == (1, len(vocab))


class TestSoftThreshold:
    @given(st.floats(-100, 100), st.floats(0, 10))
    def test_shrinks_toward_zero(self, value, threshold):
        out = float(soft_threshold(np.array([value]), threshold)[0])
        assert abs(out) <= abs(value) + 1e-12
        if abs(value) <= threshold:
            assert out == 0.0


def _toy_problem(n=200, d=20, seed=0):
    rng = np.random.RandomState(seed)
    X = rng.randn(n, d)
    true_w = np.zeros(d)
    true_w[:3] = [2.0, -1.5, 1.0]
    y = np.where(X @ true_w + 0.3 > 0, 1.0, -1.0)
    return sparse.csr_matrix(X), y, true_w


class TestL1Logistic:
    def test_learns_separable_problem(self):
        X, y, _ = _toy_problem()
        model = L1LogisticRegression(lam=1e-3).fit(X, y)
        accuracy = np.mean((model.decision_function(X) >= 0) == (y > 0))
        assert accuracy > 0.95

    def test_accepts_01_labels(self):
        X, y, _ = _toy_problem()
        model = L1LogisticRegression(lam=1e-3).fit(X, (y > 0).astype(int))
        assert np.mean((model.decision_function(X) >= 0) == (y > 0)) > 0.95

    def test_rejects_nonbinary_labels(self):
        X, y, _ = _toy_problem()
        with pytest.raises(ValueError):
            L1LogisticRegression().fit(X, np.arange(X.shape[0]))

    def test_l1_produces_sparsity(self):
        """Higher lambda => fewer nonzero weights; irrelevant features die."""
        X, y, true_w = _toy_problem(n=400)
        light = L1LogisticRegression(lam=1e-4).fit(X, y)
        heavy = L1LogisticRegression(lam=5e-2).fit(X, y)
        assert heavy.nonzero_weights() <= light.nonzero_weights()
        assert heavy.nonzero_weights() <= 6  # only ~3 features matter

    def test_objective_decreases(self):
        X, y, _ = _toy_problem()
        model = L1LogisticRegression(lam=1e-3)
        w0 = np.zeros(X.shape[1])
        initial = model._objective(X, y, w0, 0.0)
        model.fit(X, y)
        final = model._objective(X, y, model.weights, model.bias)
        assert final < initial

    def test_predict_proba_in_unit_interval(self):
        X, y, _ = _toy_problem()
        model = L1LogisticRegression().fit(X, y)
        proba = model.predict_proba(X)
        assert np.all(proba >= 0) and np.all(proba <= 1)

    def test_unfitted_raises(self):
        X, _, _ = _toy_problem()
        with pytest.raises(RuntimeError):
            L1LogisticRegression().decision_function(X)

    def test_negative_lambda_rejected(self):
        with pytest.raises(ValueError):
            L1LogisticRegression(lam=-1.0)


def _reference_fit(lam, max_iter, tol, X, y):
    """The seed's ISTA loop, line for line: ``_objective``/``_gradient``
    recompute ``X @ w + b`` from scratch on every call, where the shipped
    ``fit`` carries the margins across iterations.  Both must land on the
    same bits."""
    model = L1LogisticRegression(lam=lam, max_iter=max_iter, tol=tol)
    y = np.asarray(y, dtype=np.float64)
    if set(np.unique(y).tolist()) <= {0.0, 1.0}:
        y = 2.0 * y - 1.0
    w = np.zeros(X.shape[1])
    b = 0.0
    step = 1.0
    objective = model._objective(X, y, w, b)
    for _ in range(max_iter):
        grad_w, grad_b = model._gradient(X, y, w, b)
        improved = False
        for _ in range(40):
            w_new = soft_threshold(w - step * grad_w, step * lam)
            b_new = b - step * grad_b
            new_objective = model._objective(X, y, w_new, b_new)
            delta = w_new - w
            quad = (
                objective
                - lam * float(np.abs(w).sum())
                + float(grad_w @ delta)
                + grad_b * (b_new - b)
                + (float(delta @ delta) + (b_new - b) ** 2) / (2 * step)
                + lam * float(np.abs(w_new).sum())
            )
            if new_objective <= quad + 1e-12:
                improved = True
                break
            step *= 0.5
        if not improved:
            break
        if objective - new_objective < tol * max(1.0, abs(objective)):
            w, b, objective = w_new, b_new, new_objective
            break
        w, b, objective = w_new, b_new, new_objective
        step = min(step * 1.5, 1e4)
    return w, b


class TestBatchedFitBitIdentity:
    """The carried-margins proximal loop is bit-identical to the seed's."""

    @pytest.mark.parametrize("lam", [1e-4, 1e-3, 5e-2])
    def test_weights_bit_identical_to_reference(self, lam):
        X, y, _ = _toy_problem(n=250, d=30, seed=3)
        model = L1LogisticRegression(lam=lam, max_iter=200).fit(X, y)
        ref_w, ref_b = _reference_fit(lam, 200, model.tol, X, y)
        assert np.array_equal(model.weights, ref_w)
        assert model.bias == ref_b

    def test_ovr_bit_identical_across_jobs(self):
        rng = np.random.RandomState(11)
        X = sparse.csr_matrix(rng.randn(180, 25))
        labels = [("a", "b", "c")[i % 3] for i in range(180)]
        seq = OneVsRestL1Logistic(lam=1e-3, n_jobs=1).fit(X, labels)
        par = OneVsRestL1Logistic(lam=1e-3, n_jobs=4).fit(X, labels)
        for cls in seq.classes_:
            assert np.array_equal(seq._models[cls].weights, par._models[cls].weights)
            assert seq._models[cls].bias == par._models[cls].bias


class TestOneVsRest:
    def _multiclass(self, n_per=60, seed=1):
        rng = np.random.RandomState(seed)
        centers = {"a": [3, 0, 0], "b": [0, 3, 0], "c": [0, 0, 3]}
        rows, labels = [], []
        for label, center in centers.items():
            rows.append(rng.randn(n_per, 3) * 0.5 + center)
            labels.extend([label] * n_per)
        X = sparse.csr_matrix(np.vstack(rows))
        return X, labels

    def test_multiclass_accuracy(self):
        X, labels = self._multiclass()
        model = OneVsRestL1Logistic(lam=1e-3).fit(X, labels)
        predictions = model.predict(X)
        accuracy = np.mean([p == t for p, t in zip(predictions, labels)])
        assert accuracy > 0.95

    def test_probabilities_normalized(self):
        X, labels = self._multiclass()
        model = OneVsRestL1Logistic(lam=1e-3).fit(X, labels)
        proba = model.predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_confidence_pairs(self):
        X, labels = self._multiclass()
        model = OneVsRestL1Logistic(lam=1e-3).fit(X, labels)
        for label, confidence in model.predict_with_confidence(X[:10]):
            assert label in model.classes_
            assert 0 <= confidence <= 1

    def test_single_class_rejected(self):
        X, _ = self._multiclass()
        with pytest.raises(ValueError):
            OneVsRestL1Logistic().fit(X, ["same"] * X.shape[0])

    def test_mismatched_lengths_rejected(self):
        X, labels = self._multiclass()
        with pytest.raises(ValueError):
            OneVsRestL1Logistic().fit(X, labels[:-1])


class TestKFold:
    def test_folds_partition(self):
        folds = kfold_indices(103, 10, seed=3)
        flat = sorted(i for fold in folds for i in fold)
        assert flat == list(range(103))

    def test_fold_sizes_balanced(self):
        folds = kfold_indices(100, 10)
        assert all(len(f) == 10 for f in folds)

    def test_k_validation(self):
        with pytest.raises(ValueError):
            kfold_indices(10, 1)
        with pytest.raises(ValueError):
            kfold_indices(5, 10)


class TestClassifierEndToEnd:
    """Against the session study (small preset, real pipeline)."""

    def test_seed_labels_cover_known_campaigns_only(self, study):
        for page in study.labeled_pages:
            assert not page.campaign.startswith("BG.")

    def test_cv_accuracy_far_above_chance(self, study):
        maps = [extract_features(p.html) for p in study.labeled_pages]
        labels = [p.campaign for p in study.labeled_pages]
        k = min(5, len(labels))
        accuracy, _ = cross_validate_accuracy(maps, labels, k=k, seed=1)
        chance = 1.0 / len(set(labels))
        assert accuracy > chance * 3
        assert accuracy > 0.6

    def test_attribution_correctness(self, study):
        """Attributed PSRs should overwhelmingly match ground truth."""
        checked = correct = 0
        for record in study.dataset.records:
            if not record.campaign:
                continue
            truth = study.oracle.campaign_of_host(record.host)
            checked += 1
            if truth == record.campaign:
                correct += 1
        assert checked > 0
        assert correct / checked > 0.8

    def test_background_campaigns_stay_mostly_unknown(self, study):
        """Pages from outside the labeled universe should not be
        confidently claimed by known campaigns."""
        wrong_claims = 0
        bg_records = 0
        for record in study.dataset.records:
            truth = study.oracle.campaign_of_host(record.host)
            if truth is None or not truth.startswith("BG."):
                continue
            bg_records += 1
            if record.campaign:
                wrong_claims += 1
        if bg_records:
            assert wrong_claims / bg_records < 0.5

    def test_model_is_sparse(self, study):
        if study.classifier is None:
            pytest.skip("no classifier trained")
        sparsity = study.classifier.model.sparsity()
        vocab_size = len(study.classifier.vocabulary)
        # The small preset's vocabulary is tiny, so the bound is loose here;
        # the paper-scale benchmark asserts < 25% of a real vocabulary.
        for campaign, nonzero in sparsity.items():
            assert nonzero < vocab_size * 0.6
