"""Tests for the HTML substrate: DOM, parser, builder."""

import pytest
from hypothesis import given, strategies as st

from repro.html import Document, Element, Text, Comment, PageBuilder, parse_html, tokenize


class TestNodes:
    def test_element_to_html(self):
        el = Element("div", {"class": "x"}, [Text("hello")])
        assert el.to_html() == '<div class="x">hello</div>'

    def test_void_element_no_close_tag(self):
        el = Element("img", {"src": "/a.jpg"})
        assert el.to_html() == '<img src="/a.jpg"/>'

    def test_attribute_escaping(self):
        el = Element("div", {"title": 'a"b'})
        assert "&quot;" in el.to_html()

    def test_text_escaping(self):
        assert Text("a < b & c").to_html() == "a &lt; b &amp; c"

    def test_comment(self):
        assert Comment("tpl:x").to_html() == "<!--tpl:x-->"

    def test_find_all_depth_first(self):
        root = Element("div")
        child = root.add("ul")
        child.add("li", text="one")
        child.add("li", text="two")
        assert [li.text_content() for li in root.find_all("li")] == ["one", "two"]

    def test_find_returns_first_or_none(self):
        root = Element("div")
        assert root.find("span") is None
        root.add("span", text="s")
        assert root.find("span").text_content() == "s"

    def test_text_content_recursive(self):
        root = Element("div")
        root.add("p", text="a")
        root.add("p", text="b")
        assert root.text_content() == "ab"

    def test_document_title(self):
        builder = PageBuilder(title="Hello")
        assert builder.build().title() == "Hello"


class TestTokenizer:
    def test_simple_tags(self):
        tokens = list(tokenize("<p>hi</p>"))
        kinds = [t.kind for t in tokens]
        assert kinds == ["start", "text", "end"]

    def test_attributes_quoted(self):
        tokens = list(tokenize('<a href="/x" class=\'y\'>'))
        assert tokens[0].attrs == {"href": "/x", "class": "y"}

    def test_attributes_unquoted(self):
        tokens = list(tokenize("<a href=/x>"))
        assert tokens[0].attrs["href"] == "/x"

    def test_self_closing(self):
        tokens = list(tokenize("<br/>"))
        assert tokens[0].self_closing

    def test_comment_token(self):
        tokens = list(tokenize("<!-- note -->"))
        assert tokens[0].kind == "comment"
        assert tokens[0].data == " note "

    def test_doctype(self):
        tokens = list(tokenize("<!DOCTYPE html><p>x</p>"))
        assert tokens[0].kind == "doctype"

    def test_script_raw_text(self):
        html = "<script>if (a < b) { document.write('<p>x</p>'); }</script>"
        tokens = list(tokenize(html))
        assert tokens[0].kind == "start"
        assert tokens[1].kind == "text"
        assert "a < b" in tokens[1].data
        assert tokens[2].kind == "end"

    def test_entity_unescaping_in_text(self):
        tokens = list(tokenize("<p>a &amp; b</p>"))
        assert tokens[1].data == "a & b"

    def test_stray_lt_survives(self):
        tokens = list(tokenize("1 < 2"))
        text = "".join(t.data for t in tokens if t.kind == "text")
        assert "<" in text and "2" in text


class TestParser:
    def test_roundtrip_builder_output(self):
        builder = PageBuilder(title="T")
        builder.paragraph("hello world")
        builder.div(cls="c", text="d")
        html = builder.html()
        doc = parse_html(html)
        assert doc.title() == "T"
        assert len(doc.find_all("p")) >= 1
        assert doc.to_html() == parse_html(doc.to_html()).to_html()

    def test_unclosed_tags_tolerated(self):
        doc = parse_html("<div><p>one<p>two</div>")
        assert "one" in doc.text_content()
        assert "two" in doc.text_content()

    def test_stray_close_ignored(self):
        doc = parse_html("</div><p>x</p>")
        assert doc.find_all("p")

    def test_nested_structure(self):
        doc = parse_html("<div><ul><li>a</li><li>b</li></ul></div>")
        ul = doc.root.find("ul")
        assert len([c for c in ul.children if isinstance(c, Element)]) == 2

    def test_iframe_attrs(self):
        doc = parse_html('<iframe src="http://x.com/" width="100%" height="100%"></iframe>')
        iframe = doc.find_all("iframe")[0]
        assert iframe.get("width") == "100%"

    def test_script_content_preserved_verbatim(self):
        code = "var a = '<iframe src=\"http://e.com\">';"
        doc = parse_html(f"<body><script>{code}</script></body>")
        script = doc.find_all("script")[0]
        assert script.text_content() == code

    def test_html_attrs_merged_onto_root(self):
        doc = parse_html('<html lang="de"><body>x</body></html>')
        assert doc.root.get("lang") == "de"
        # No nested <html> element.
        assert len(doc.find_all("html")) == 1

    def test_parse_never_raises_on_noise(self):
        for source in ["", "<", "<<<>>>", "<a", "<!----", "</", "a<b>c"]:
            parse_html(source)  # must not raise

    @given(st.text(alphabet="<>ab c/\"'=!-", max_size=120))
    def test_parser_total_on_adversarial_input(self, source):
        parse_html(source)  # must not raise


class TestPageBuilder:
    def test_head_contains_charset(self):
        page = PageBuilder()
        html = page.html()
        assert 'charset="utf-8"' in html

    def test_meta_and_stylesheet(self):
        page = PageBuilder().meta("robots", "noindex").stylesheet("/s.css")
        html = page.html()
        assert 'name="robots"' in html
        assert 'href="/s.css"' in html

    def test_script_inline(self):
        page = PageBuilder().script(code="document.write('x');")
        doc = parse_html(page.html())
        assert "document.write" in doc.find_all("script")[0].text_content()

    def test_heading_levels_validated(self):
        with pytest.raises(ValueError):
            PageBuilder().heading("x", level=7)

    def test_iframe_helper(self):
        page = PageBuilder().iframe("http://s.com/", "100%", "100%", frameborder="0")
        doc = parse_html(page.html())
        assert doc.find_all("iframe")[0].get("frameborder") == "0"
