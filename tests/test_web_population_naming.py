"""Tests for domain-name generation and the legitimate background web."""

import pytest

from repro.util.rng import RandomStreams
from repro.util.simtime import SimDate
from repro.web.hosting import Web
from repro.web.naming import NameForge
from repro.web.population import BackgroundWebBuilder
from repro.web.sites import SiteKind
from repro.web.fetch import CRAWLER, USER


@pytest.fixture()
def forge():
    web = Web()
    return NameForge(RandomStreams(3), web.domains), web


class TestNameForge:
    def test_store_domain_contains_brand_stem(self, forge):
        forge, _ = forge
        name = forge.store_domain("Louis Vuitton")
        assert name.startswith("louisvuitton")
        assert "." in name

    def test_locale_tag_sometimes_included(self, forge):
        forge, _ = forge
        names = [forge.store_domain("Uggs", "uk") for _ in range(20)]
        assert any("uk" in n for n in names)

    def test_names_unique(self, forge):
        forge, _ = forge
        names = {forge.doorway_domain() for _ in range(500)}
        assert len(names) == 500

    def test_avoids_registry_collisions(self, day0):
        web = Web()
        forge = NameForge(RandomStreams(3), web.domains)
        first = forge.legit_domain()
        web.domains.register(first, day0)
        # A new forge over the same registry must not hand out `first`.
        fresh = NameForge(RandomStreams(3), web.domains)
        assert fresh.legit_domain() != first

    def test_cnc_domain_stem(self, forge):
        forge, _ = forge
        assert forge.cnc_domain("MSVALIDATE").startswith("msvalidate")


class TestBackgroundWeb:
    def _builder(self, day0):
        web = Web()
        streams = RandomStreams(4)
        forge = NameForge(streams, web.domains)
        return BackgroundWebBuilder(web, streams, forge, day0 - 365), web

    def test_competitors_indexed_per_term(self, day0):
        builder, web = self._builder(day0)
        terms = ["cheap uggs", "uggs outlet", "uggs boots sale"]
        pages = builder.build_competitors("Uggs", terms, site_count=20,
                                          candidates_per_term=15)
        assert len(web.sites(SiteKind.LEGITIMATE)) == 20
        for term in terms:
            covered = [p for p in pages if term in p.relevances]
            assert len(covered) == 15
            for spec in covered:
                assert 0.0 < spec.relevances[term] <= 1.0

    def test_legit_pages_do_not_cloak(self, day0):
        builder, web = self._builder(day0)
        builder.build_competitors("Uggs", ["cheap uggs"], 5, 5)
        site = web.sites(SiteKind.LEGITIMATE)[0]
        url = site.url("/")
        assert web.fetch(url, USER, day0).html == web.fetch(url, CRAWLER, day0).html

    def test_compromise_pool_sites_have_root_pages(self, day0):
        builder, web = self._builder(day0)
        pool = builder.build_compromise_pool(30)
        assert len(pool) == 30
        for site in pool:
            assert site.get_page("/") is not None
            assert 0.0 < site.authority <= 1.0
