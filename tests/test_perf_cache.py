"""The content-addressed caching layer: mechanics and equivalence.

Two kinds of guarantee live here.  Mechanics: LRU bounds, hit/miss/evict
accounting in the PERF registry, content addressing, StaticPage generator
memoization, and SERP-memo invalidation on every mutation channel.
Equivalence: a cached study run is *byte-identical* to a cache-disabled
one, and multiprocess ablations return the same outcomes in the same
order for any job count — caching and parallelism change wall-clock,
never results.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.ablations import VARIANT_ORDER, run_intervention_ablations
from repro.crawler import CrawlPolicy
from repro.crawler.dagger import text_shingle
from repro.ecosystem import small_preset
from repro.perf.cache import (
    LRUCache,
    caches_disabled,
    caches_enabled,
    content_key,
    parse_html_cached,
    render_document_cached,
    reset_caches,
)
from repro.search import ResultLabel, SearchEngine, SearchIndex
from repro.study import StudyRun
from repro.util.perf import PERF
from repro.util.rng import RandomStreams
from repro.util.simtime import SimDate
from repro.web.domains import DomainRegistry
from repro.web.sites import Site, SiteKind, StaticPage


class TestContentKey:
    def test_identical_html_same_key(self):
        assert content_key("<html><p>x</p></html>") == content_key("<html><p>x</p></html>")

    def test_different_html_different_key(self):
        assert content_key("<p>a</p>") != content_key("<p>b</p>")

    def test_key_is_compact_digest(self):
        assert len(content_key("<p>hi</p>")) == 16


class TestLRUCache:
    def test_hit_miss_evict_accounting(self):
        cache = LRUCache("t-accounting", maxsize=2)
        calls = []

        def build(arg):
            calls.append(arg)
            return arg.upper()

        before = PERF.counters()
        assert cache.get_or_build("a", build, "a") == "A"
        assert cache.get_or_build("a", build, "a") == "A"  # hit
        assert cache.get_or_build("b", build, "b") == "B"
        assert cache.get_or_build("c", build, "c") == "C"  # evicts 'a'
        assert calls == ["a", "b", "c"]
        assert cache.get_or_build("a", build, "a") == "A"  # rebuilt
        assert calls == ["a", "b", "c", "a"]
        after = PERF.counters()

        def delta(name):
            return after[f"cache.t-accounting.{name}"] - before.get(
                f"cache.t-accounting.{name}", 0)

        assert delta("hit") == 1
        assert delta("miss") == 4
        assert delta("evict") == 2

    def test_lru_recency_order(self):
        cache = LRUCache("t-recency", maxsize=2)
        build = lambda arg: arg  # noqa: E731
        cache.get_or_build(1, build, 1)
        cache.get_or_build(2, build, 2)
        cache.get_or_build(1, build, 1)  # 1 now most recent
        cache.get_or_build(3, build, 3)  # evicts 2, not 1
        calls = []
        cache.get_or_build(1, lambda a: calls.append(a), 1)
        assert calls == []  # 1 survived

    def test_counters_registered_at_zero(self):
        LRUCache("t-registered", maxsize=4)
        counters = PERF.counters()
        assert counters.get("cache.t-registered.hit") == 0
        assert counters.get("cache.t-registered.miss") == 0
        assert counters.get("cache.t-registered.evict") == 0

    def test_disabled_bypasses_storage(self):
        cache = LRUCache("t-disabled", maxsize=4)
        with caches_disabled():
            assert not caches_enabled()
            assert cache.memo_html("<p>x</p>", lambda h: len(h)) == 8
            assert len(cache) == 0
        assert caches_enabled()


class TestSharedWrappers:
    def test_parse_html_cached_shares_documents(self):
        reset_caches()
        html = "<html><body><p>shared</p></body></html>"
        assert parse_html_cached(html) is parse_html_cached(html)
        with caches_disabled():
            a = parse_html_cached(html)
            b = parse_html_cached(html)
            assert a is not b
            assert a.to_html() == b.to_html()

    def test_render_cached_keys_on_profile(self):
        reset_caches()
        html = "<html><body><script>document.write('<b>x</b>');</script></body></html>"
        from repro.web.fetch import CRAWLER, RENDERING_CRAWLER

        same = render_document_cached(html, RENDERING_CRAWLER)
        assert render_document_cached(html, RENDERING_CRAWLER) is same
        # A different profile (field-wise: CRAWLER has a bot UA and no JS)
        # keys a separate entry even for identical HTML.
        assert render_document_cached(html, CRAWLER) is not same
        # Cached or not, the rendered view is identical.
        with caches_disabled():
            fresh = render_document_cached(html, RENDERING_CRAWLER)
        assert fresh.to_html() == same.to_html()

    def test_text_shingle_cached_equals_uncached(self):
        reset_caches()
        html = "<html><head><title>Cheap Uggs</title></head><body>Buy cheap uggs now</body></html>"
        cached = text_shingle(html)
        with caches_disabled():
            plain = text_shingle(html)
        assert cached == plain
        assert "uggs" in cached


class TestStaticPageMemo:
    def test_generator_invoked_once(self):
        calls = []

        def gen():
            calls.append(1)
            return "<html><body>store</body></html>"

        page = StaticPage("/", generator=gen)
        assert page.html == page.html == "<html><body>store</body></html>"
        assert len(calls) == 1

    def test_empty_generator_output_memoized(self):
        # Seed regression: an empty render was re-invoked on every access.
        calls = []

        def gen():
            calls.append(1)
            return ""

        page = StaticPage("/", generator=gen)
        assert page.html == ""
        assert page.html == ""
        assert len(calls) == 1

    def test_regenerate_bumps_version_and_reinvokes(self):
        outputs = iter(["<p>v1</p>", "<p>v2</p>"])
        calls = []

        def gen():
            calls.append(1)
            return next(outputs)

        page = StaticPage("/", generator=gen)
        assert page.content_version == 1
        assert page.html == "<p>v1</p>"
        assert page.regenerate() == 2
        assert page.html == "<p>v2</p>"
        assert page.content_version == 2
        assert len(calls) == 2

    def test_literal_page_version_bumps_without_generator(self):
        page = StaticPage("/", html="<p>fixed</p>")
        assert page.regenerate() == 2
        assert page.html == "<p>fixed</p>"


def _tiny_engine():
    streams = RandomStreams(99)
    registry = DomainRegistry()
    index = SearchIndex()
    day0 = SimDate("2013-11-13")
    for i in range(12):
        domain = registry.register(f"host{i}.com", day0)
        site = Site(domain, SiteKind.LEGITIMATE, authority=0.3 + 0.05 * i,
                    created_on=day0)
        index.add_page("term", site, "/", relevance=0.5 + 0.02 * i)
    engine = SearchEngine(index, streams, serp_size=10)
    return engine, registry, day0


class TestSerpMemo:
    def test_repeat_serve_returns_memoized_page(self):
        engine, _, day0 = _tiny_engine()
        first = engine.serp("term", day0)
        before = PERF.counters().get("cache.serp.hit", 0)
        assert engine.serp("term", day0) is first
        assert PERF.counters().get("cache.serp.hit", 0) == before + 1

    def test_demotion_invalidates(self):
        engine, _, day0 = _tiny_engine()
        first = engine.serp("term", day0)
        engine.demote_host("host11.com", day0, amount=2.0)
        second = engine.serp("term", day0)
        assert second is not first
        assert [r.url for r in second.results] != [r.url for r in first.results]

    def test_label_invalidates(self):
        engine, _, day0 = _tiny_engine()
        first = engine.serp("term", day0)
        engine.label_host("host3.com", day0, ResultLabel.HACKED)
        second = engine.serp("term", day0)
        assert second is not first
        assert any(r.label is ResultLabel.HACKED for r in second.results
                   if r.host == "host3.com")

    def test_index_mutation_invalidates(self):
        engine, registry, day0 = _tiny_engine()
        first = engine.serp("term", day0)
        domain = registry.register("late.com", day0)
        site = Site(domain, SiteKind.LEGITIMATE, authority=0.95, created_on=day0)
        engine.index.add_page("term", site, "/", relevance=0.9)
        second = engine.serp("term", day0)
        assert second is not first
        assert any(r.host == "late.com" for r in second.results)

    def test_serve_is_bit_identical_cached_or_not(self):
        engine, _, day0 = _tiny_engine()
        cached = engine.serp("term", day0 + 4)
        fresh_engine, _, _ = _tiny_engine()
        with caches_disabled():
            plain = fresh_engine.serp("term", day0 + 4)
        assert [(r.rank, r.url, r.score.hex(), r.label) for r in cached.results] == \
               [(r.rank, r.url, r.score.hex(), r.label) for r in plain.results]


def _study_bytes(tmp_path, name, days=25):
    results = StudyRun(
        small_preset(days=days), crawl_policy=CrawlPolicy(stride_days=2)
    ).execute()
    path = os.path.join(tmp_path, name)
    results.dataset.dump_jsonl(path)
    with open(path, "rb") as handle:
        return handle.read(), results


class TestCachedStudyEquivalence:
    def test_psr_records_byte_identical(self, tmp_path):
        reset_caches()
        cached_bytes, cached = _study_bytes(str(tmp_path), "cached.jsonl")
        with caches_disabled():
            plain_bytes, plain = _study_bytes(str(tmp_path), "plain.jsonl")
        assert cached_bytes == plain_bytes
        assert len(cached.dataset) == len(plain.dataset) > 0
        # The cached run actually exercised the caches.
        counters = PERF.counters()
        for name in ("cache.dom.hit", "cache.shingle.hit", "cache.notice.hit"):
            assert counters.get(name, 0) > 0, name


@pytest.mark.parametrize("jobs", [1, 4])
@pytest.mark.parametrize("cache_on", [True, False], ids=["cache", "nocache"])
def test_ablation_outcomes_invariant(jobs, cache_on, ablation_reference):
    if cache_on:
        outcomes = run_intervention_ablations(
            _ablation_factory, crawl_stride=4, jobs=jobs)
    else:
        with caches_disabled():
            outcomes = run_intervention_ablations(
                _ablation_factory, crawl_stride=4, jobs=jobs)
    assert [o.name for o in outcomes] == list(VARIANT_ORDER)
    assert outcomes == ablation_reference


def _ablation_factory():
    return small_preset(days=14)


@pytest.fixture(scope="module")
def ablation_reference():
    """Sequential, cache-on outcomes every parametrization must match."""
    reset_caches()
    return run_intervention_ablations(_ablation_factory, crawl_stride=4, jobs=1)
