"""Tests for the crawl shard pool (``repro.perf.shardpool``).

The contract under test is the ISSUE-6 tentpole guarantee: a study run
sharded over ``--jobs N`` worker processes produces artifacts
**byte-identical** to the sequential ``--jobs 1`` run — PSR dumps,
golden SERPs, metrics rows (timing gauges live in the telemetry
sidecar, so the rows compare whole), and merged PERF
counters — including under fault-injection profiles, forced sequential
fallback, and cross-jobs checkpoint resume.  Work-stealing accounting
(steals measured against the LPT home plan) is pinned with a
deterministic round-robin pool stand-in.
"""

import os
import tempfile
import unittest
from pathlib import Path

from repro.crawler.serp_crawler import CrawlPolicy, SearchCrawler
from repro.ecosystem import small_preset
from repro.ecosystem.simulator import Simulator
from repro.faults.checkpoint import SimulatedCrash
from repro.faults.profiles import PROFILES
from repro.faults.retry import RetryPolicy
from repro.obs.trace import TRACER, set_tracing_enabled
from repro.perf import shardpool
from repro.perf.cache import reset_caches
from repro.perf.shardpool import CrawlExecutor, _HostTask
from repro.study import StudyRun
from repro.util.perf import PERF

SEED = 11
CLEAN_DAYS = 14
FAULT_DAYS = 12


def _psr_bytes(results) -> bytes:
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "psrs.jsonl")
        results.dataset.dump_jsonl(path)
        return Path(path).read_bytes()


def _dataset_bytes(dataset) -> bytes:
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "psrs.jsonl")
        dataset.dump_jsonl(path)
        return Path(path).read_bytes()


def _serp_fingerprint(results):
    """Re-serve every term's final-day SERP from the post-run engine.

    Sharding must leave the engine (and the world feeding it) exactly as
    the sequential run does, so the re-serves — scores included — must
    match bit for bit."""
    world = results.world
    day = world.window.end
    fingerprint = []
    for term in sorted(results.simulator.vertical_of_term_map()):
        serp = world.engine.serp(term, day)
        fingerprint.append((term, tuple(
            (r.rank, r.url, r.label.value, r.score.hex())
            for r in serp.results
        )))
    return fingerprint


#: (jobs, profile_name, fault_seed, days, retry_tag) -> (run, results, counters)
_RUNS = {}

#: The forced-fallback retry policy: a retry budget and breaker so tight
#: that the workers' breaker-free fetch mimic must diverge from the
#: parent's canonical truncation under a noisy profile.
_TIGHT_RETRY = RetryPolicy(
    max_attempts=4, per_day_retry_budget=3,
    breaker_threshold=2, breaker_cooldown_days=3,
)


def _study(jobs, profile=None, fault_seed=0, days=CLEAN_DAYS, retry=None,
           retry_tag=""):
    key = (jobs, profile, fault_seed, days, retry_tag)
    if key not in _RUNS:
        reset_caches()
        PERF.reset()
        run = StudyRun(
            small_preset(days=days, seed=SEED), classify=False, jobs=jobs,
            fault_profile=PROFILES[profile] if profile else None,
            fault_seed=fault_seed, retry_policy=retry,
        )
        results = run.execute()
        counters = {
            name: value for name, value in PERF.counters().items()
            if not name.startswith("shardpool.")
        }
        _RUNS[key] = (run, results, counters)
    return _RUNS[key]


class TestByteIdentityClean(unittest.TestCase):
    """jobs=1 vs 2 vs 4 on a clean run: every artifact byte-identical."""

    def test_psr_dump_byte_identical(self):
        _, sequential, _ = _study(jobs=1)
        expected = _psr_bytes(sequential)
        self.assertGreater(len(expected), 0)
        for jobs in (2, 4):
            _, sharded, _ = _study(jobs=jobs)
            self.assertEqual(_psr_bytes(sharded), expected,
                             f"psrs.jsonl diverged at jobs={jobs}")

    def test_metrics_rows_identical(self):
        _, sequential, _ = _study(jobs=1)
        expected = sequential.metrics.rows()
        for jobs in (2, 4):
            _, sharded, _ = _study(jobs=jobs)
            self.assertEqual(sharded.metrics.rows(), expected)

    def test_golden_serps_unperturbed(self):
        _, sequential, _ = _study(jobs=1)
        expected = _serp_fingerprint(sequential)
        for jobs in (2, 4):
            _, sharded, _ = _study(jobs=jobs)
            self.assertEqual(_serp_fingerprint(sharded), expected)

    def test_archive_identical(self):
        _, sequential, _ = _study(jobs=1)
        _, sharded, _ = _study(jobs=4)
        self.assertEqual(
            sorted(sharded.archive.doorways), sorted(sequential.archive.doorways)
        )
        self.assertEqual(
            sorted(sharded.archive.stores), sorted(sequential.archive.stores)
        )

    def test_perf_counter_merge_canonical(self):
        """Worker-accrued counters commit through the canonical replay, so
        the merged registry (shardpool.* bookkeeping aside) matches the
        sequential run exactly — counts and names both."""
        _, _, expected = _study(jobs=1)
        for jobs in (2, 4):
            _, _, merged = _study(jobs=jobs)
            self.assertEqual(merged, expected)

    def test_clean_run_never_falls_back(self):
        for jobs in (1, 2, 4):
            run, _, _ = _study(jobs=jobs)
            self.assertEqual(run.shard_stats["fallback_days"], 0)


class TestByteIdentityUnderFaults(unittest.TestCase):
    """The replay machinery keeps fault-profile runs canonical too."""

    def _pair(self, profile, fault_seed, jobs):
        _, sequential, seq_counters = _study(
            jobs=1, profile=profile, fault_seed=fault_seed, days=FAULT_DAYS)
        _, sharded, shard_counters = _study(
            jobs=jobs, profile=profile, fault_seed=fault_seed, days=FAULT_DAYS)
        return sequential, seq_counters, sharded, shard_counters

    def test_flaky_network_byte_identical(self):
        sequential, seq_counters, sharded, shard_counters = self._pair(
            "flaky-network", 4, jobs=3)
        self.assertEqual(_psr_bytes(sharded), _psr_bytes(sequential))
        self.assertEqual(sharded.metrics.rows(), sequential.metrics.rows())
        self.assertEqual(shard_counters, seq_counters)
        # Faults fired (the run was not trivially clean).
        self.assertTrue(any(n.startswith("faults.") for n in seq_counters))

    def test_monsoon_byte_identical(self):
        sequential, seq_counters, sharded, shard_counters = self._pair(
            "monsoon", 2, jobs=2)
        self.assertEqual(_psr_bytes(sharded), _psr_bytes(sequential))
        self.assertEqual(sharded.metrics.rows(), sequential.metrics.rows())
        self.assertEqual(shard_counters, seq_counters)

    def test_injector_decisions_are_order_free(self):
        """The whole replay scheme rests on injector decisions being pure
        functions of (url, day, attempt) — re-asking in a different order
        must give the same answers."""
        profile = PROFILES["monsoon"]
        from repro.faults.injector import FaultInjector
        from repro.util.simtime import SimDate
        from repro.web.fetch import SEARCH_USER

        first = FaultInjector(profile, seed=9)
        second = FaultInjector(profile, seed=9)
        first.quiet = second.quiet = True
        urls = [f"http://host{i}.example/p{i}.html" for i in range(30)]
        day = SimDate("2013-11-20")
        forward = [first.fetch_fault(u, SEARCH_USER, day, attempt)
                   for u in urls for attempt in (1, 2)]
        backward = [second.fetch_fault(u, SEARCH_USER, day, attempt)
                    for u in reversed(urls) for attempt in (2, 1)]
        backward_in_forward_order = [
            backward[(len(urls) - 1 - i) * 2 + offset]
            for i in range(len(urls)) for offset in (1, 0)
        ]
        self.assertEqual(forward, backward_in_forward_order)


class TestForcedFallback(unittest.TestCase):
    """A starved retry budget + hair-trigger breaker makes the parent's
    canonical truncation disagree with the workers' breaker-free mimic:
    the day must fall back to the sequential path — and the artifacts
    must STILL equal the jobs=1 run, which truncates identically."""

    def test_fallback_fires_and_stays_byte_identical(self):
        run1, sequential, _ = _study(
            jobs=1, profile="monsoon", fault_seed=2, days=FAULT_DAYS,
            retry=_TIGHT_RETRY, retry_tag="tight")
        run2, sharded, _ = _study(
            jobs=2, profile="monsoon", fault_seed=2, days=FAULT_DAYS,
            retry=_TIGHT_RETRY, retry_tag="tight")
        self.assertGreaterEqual(run2.shard_stats["fallback_days"], 1,
                                "tight budget/breaker never forced a fallback")
        # jobs=1 runs the same task/merge machinery, so the (purely
        # canonical) fallback decision must fire on exactly the same days.
        self.assertEqual(run1.shard_stats["fallback_days"],
                         run2.shard_stats["fallback_days"])
        self.assertEqual(_psr_bytes(sharded), _psr_bytes(sequential))
        self.assertEqual(sharded.metrics.rows(), sequential.metrics.rows())


class _ImmediateResult:
    def __init__(self, value):
        self._value = value

    def get(self):
        return self._value

    def wait(self):
        pass


class _RoundRobinPool:
    """Deterministic stand-in for the shared-queue pool: tasks are handed
    to workers strictly round-robin in submission order.  Because
    submission is heavy-first while the LPT home plan packs by load, the
    two assignments disagree exactly when estimates are skewed — which is
    what the steal counter measures."""

    def __init__(self, executor, crawler):
        self._executor = executor
        self._crawler = crawler
        self._next = 0

    def apply_async(self, fn, args):
        if fn is shardpool._advance_task:
            return _ImmediateResult(None)
        (task,) = args
        result = self._executor._run_inline(self._crawler, task)
        result.worker = self._next
        self._next = (self._next + 1) % self._executor.jobs
        return _ImmediateResult(result)

    def terminate(self):
        pass

    def join(self):
        pass


class _SkewedExecutor(CrawlExecutor):
    """Pretends the first host of every crawl day is VanGogh-heavy."""

    _heavy = None

    def _build_tasks(self, crawler, day, work):
        tasks = super()._build_tasks(crawler, day, work)
        if tasks:
            self._heavy = tasks[0].host
        return tasks

    def _estimate(self, host):
        return 1000.0 if host == self._heavy else 1.0


def _manual_run(make_executor, days=10):
    """Drive a crawl-only run with a hand-built executor."""
    simulator = Simulator(small_preset(days=days, seed=SEED))
    world = simulator.build()
    crawler = SearchCrawler(world.web, CrawlPolicy(stride_days=2))
    executor = make_executor(simulator, crawler)
    crawler.attach_executor(executor)
    try:
        simulator.run(observers=[crawler])
    finally:
        crawler.detach_executor()
        executor.shutdown()
    return crawler, executor


class TestWorkStealing(unittest.TestCase):
    def test_lpt_plan_isolates_heavy_shard(self):
        executor = CrawlExecutor(simulator=None, jobs=2)
        executor._cost_ema = {"vangogh-heavy.net": 100.0}
        for i in range(6):
            executor._cost_ema[f"cheap{i}.com"] = 1.0
        tasks = [
            _HostTask(index=i, host=host, day_ordinal=0, encounters=[],
                      cloaked={}, poisoned=False)
            for i, host in enumerate(
                ["cheap0.com", "vangogh-heavy.net"]
                + [f"cheap{i}.com" for i in range(1, 6)]
            )
        ]
        homes = executor._plan_homes(tasks)
        heavy_home = homes[1]
        # The heavy shard gets a worker to itself; every cheap host packs
        # onto the other one (their combined load never reaches 100).
        for task in tasks:
            if task.index == 1:
                continue
            self.assertNotEqual(homes[task.index], heavy_home)

    def test_estimate_falls_back_to_mean_then_unit(self):
        executor = CrawlExecutor(simulator=None, jobs=2)
        self.assertEqual(executor._estimate("never-seen.com"), 1.0)
        executor._cost_ema = {"a.com": 2.0, "b.com": 4.0}
        self.assertEqual(executor._estimate("never-seen.com"), 3.0)
        self.assertEqual(executor._estimate("a.com"), 2.0)

    def test_queue_steals_from_static_plan_under_skew(self):
        """With one artificially heavy shard, the dynamic queue's
        assignment must depart from the LPT homes (steals > 0) — and the
        merge must keep the dataset byte-identical to sequential."""
        def skewed(simulator, crawler):
            executor = _SkewedExecutor(simulator, jobs=2)
            executor._pool = _RoundRobinPool(executor, crawler)
            executor._pool_mode = "stub"
            return executor

        stolen_crawler, stolen_executor = _manual_run(skewed)
        stats = stolen_executor.stats()
        self.assertGreater(stats["tasks"], 0)
        self.assertGreater(stats["steals"], 0)
        self.assertLess(stats["steals"], stats["tasks"])
        self.assertEqual(stats["fallback_days"], 0)

        plain_crawler, _ = _manual_run(
            lambda simulator, crawler: CrawlExecutor(simulator, jobs=1))
        self.assertEqual(
            _dataset_bytes(stolen_crawler.dataset),
            _dataset_bytes(plain_crawler.dataset),
        )


class TestShardStats(unittest.TestCase):
    REQUIRED = ("jobs", "cpus", "mode", "crawl_days", "tasks", "steals",
                "fallback_days", "per_shard_busy_s", "crawl_wall_s")

    def test_stats_fields_present_and_consistent(self):
        run, _, _ = _study(jobs=2)
        stats = run.shard_stats
        for field in self.REQUIRED:
            self.assertIn(field, stats)
        self.assertEqual(stats["jobs"], 2)
        self.assertEqual(stats["cpus"], os.cpu_count() or 1)
        self.assertIn(stats["mode"], ("fork", "spawn"))
        self.assertGreater(stats["crawl_days"], 0)
        self.assertGreater(stats["tasks"], 0)
        self.assertEqual(len(stats["per_shard_busy_s"]), 2)
        self.assertGreater(sum(stats["per_shard_busy_s"]), 0.0)
        self.assertGreater(stats["crawl_wall_s"], 0.0)

    def test_sequential_stats_mode_inline(self):
        run, _, _ = _study(jobs=1)
        stats = run.shard_stats
        self.assertEqual(stats["jobs"], 1)
        self.assertEqual(stats["mode"], "inline")
        self.assertEqual(stats["steals"], 0)
        self.assertEqual(len(stats["per_shard_busy_s"]), 1)


class TestTracedShardedRun(unittest.TestCase):
    def _span_names(self, span, out):
        out.append(span)
        for child in span.children:
            self._span_names(child, out)

    def test_shard_spans_and_worker_tracks(self):
        """A traced jobs=2 run emits per-shard summary spans and adopts
        the workers' crawl.host spans onto per-worker tracks."""
        set_tracing_enabled(True)
        TRACER.reset()
        try:
            StudyRun(
                small_preset(days=10, seed=SEED), classify=False, jobs=2,
            ).execute()
            spans = []
            for root in TRACER.roots:
                self._span_names(root, spans)
        finally:
            set_tracing_enabled(False)
            TRACER.reset()
        shard_spans = [s for s in spans if s.name == "crawl.shard"]
        self.assertTrue(shard_spans)
        self.assertEqual({s.tags["worker"] for s in shard_spans}, {0, 1})
        for span in shard_spans:
            self.assertIn("tasks", span.counters)
            self.assertIn("steals", span.counters)
        host_spans = [s for s in spans if s.name == "crawl.host"]
        self.assertTrue(host_spans)
        self.assertTrue(any(getattr(s, "track", 0) > 0 for s in host_spans))


class TestCrossJobsResume(unittest.TestCase):
    """Satellite 2: a run killed at one ``--jobs`` level and resumed at
    another must still produce the uninterrupted run's bytes — the
    checkpoint digest excludes the jobs knob by design."""

    def _crash_then_resume(self, crash_jobs, resume_jobs, die_after_day):
        config = small_preset(days=CLEAN_DAYS, seed=SEED)
        with tempfile.TemporaryDirectory() as tmp:
            ckpt = os.path.join(tmp, "run.ckpt")
            with self.assertRaises(SimulatedCrash):
                StudyRun(
                    small_preset(days=CLEAN_DAYS, seed=SEED), classify=False,
                    jobs=crash_jobs, checkpoint_path=ckpt,
                    die_after_day=die_after_day,
                ).execute()
            self.assertTrue(os.path.exists(ckpt))
            resumed = StudyRun(
                config, classify=False, jobs=resume_jobs,
                checkpoint_path=ckpt, resume=True,
            )
            results = resumed.execute()
            self.assertEqual(resumed.resumed_from_day, die_after_day + 1)
            return _psr_bytes(results)

    def test_kill_sharded_resume_sequential(self):
        _, baseline, _ = _study(jobs=1)
        got = self._crash_then_resume(crash_jobs=2, resume_jobs=1,
                                      die_after_day=6)
        self.assertEqual(got, _psr_bytes(baseline))

    def test_kill_sequential_resume_sharded(self):
        _, baseline, _ = _study(jobs=1)
        got = self._crash_then_resume(crash_jobs=1, resume_jobs=4,
                                      die_after_day=5)
        self.assertEqual(got, _psr_bytes(baseline))


if __name__ == "__main__":
    unittest.main()
