"""Tests for id allocation, slugs, and random-variate helpers."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.util.ids import IdAllocator, slugify
from repro.util.randmath import binomial, poisson


class TestSlugify:
    def test_basic(self):
        assert slugify("Beats By Dre") == "beats-by-dre"

    def test_punctuation(self):
        assert slugify("PHP?P=") == "php-p"

    def test_never_empty(self):
        assert slugify("???") == "x"

    @given(st.text(max_size=50))
    def test_output_is_url_safe(self, text):
        slug = slugify(text)
        assert slug
        assert all(c.isalnum() or c == "-" for c in slug)
        assert not slug.startswith("-") and not slug.endswith("-")


class TestIdAllocator:
    def test_first_id_is_one(self):
        ids = IdAllocator()
        assert ids.next("orders") == 1

    def test_monotonic(self):
        ids = IdAllocator()
        values = [ids.next("n") for _ in range(100)]
        assert values == sorted(values)
        assert len(set(values)) == 100

    def test_namespaces_independent(self):
        ids = IdAllocator()
        ids.next("a")
        ids.next("a")
        assert ids.next("b") == 1

    def test_seed(self):
        ids = IdAllocator()
        ids.seed("orders", 1000)
        assert ids.next("orders") == 1001

    def test_seed_cannot_rewind(self):
        ids = IdAllocator()
        ids.seed("orders", 1000)
        ids.next("orders")
        with pytest.raises(ValueError):
            ids.seed("orders", 50)

    def test_peek_does_not_allocate(self):
        ids = IdAllocator()
        ids.next("x")
        assert ids.peek("x") == 1
        assert ids.peek("x") == 1


class TestBinomial:
    def test_zero_n(self):
        assert binomial(random.Random(0), 0, 0.5) == 0

    def test_p_zero(self):
        assert binomial(random.Random(0), 100, 0.0) == 0

    def test_p_one(self):
        assert binomial(random.Random(0), 100, 1.0) == 100

    def test_negative_n_raises(self):
        with pytest.raises(ValueError):
            binomial(random.Random(0), -1, 0.5)

    def test_bad_p_raises(self):
        with pytest.raises(ValueError):
            binomial(random.Random(0), 10, 1.5)

    @given(st.integers(0, 500), st.floats(0.0, 1.0))
    def test_within_range(self, n, p):
        draw = binomial(random.Random(99), n, p)
        assert 0 <= draw <= n

    def test_mean_roughly_np_small(self):
        rng = random.Random(5)
        draws = [binomial(rng, 40, 0.25) for _ in range(2000)]
        assert abs(sum(draws) / len(draws) - 10.0) < 0.5

    def test_mean_roughly_np_large(self):
        rng = random.Random(5)
        draws = [binomial(rng, 10_000, 0.3) for _ in range(500)]
        assert abs(sum(draws) / len(draws) - 3000) < 30


class TestPoisson:
    def test_zero_lambda(self):
        assert poisson(random.Random(0), 0.0) == 0

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            poisson(random.Random(0), -1.0)

    @given(st.floats(0.0, 200.0))
    def test_nonnegative(self, lam):
        assert poisson(random.Random(3), lam) >= 0

    def test_mean_small_lambda(self):
        rng = random.Random(5)
        draws = [poisson(rng, 2.5) for _ in range(4000)]
        assert abs(sum(draws) / len(draws) - 2.5) < 0.15

    def test_mean_large_lambda(self):
        rng = random.Random(5)
        draws = [poisson(rng, 500.0) for _ in range(500)]
        assert abs(sum(draws) / len(draws) - 500.0) < 6.0
