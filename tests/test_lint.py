"""Tests for the ``repro.lint`` static analyzer.

Fixture files under ``tests/lint_fixtures/`` carry one rule each, with a
positive case (must fire), a negative case (must stay quiet), and a
suppressed case (fires but is waived by an inline
``# repro: allow-D00x <reason>`` comment).  The shipped ``src/`` tree
must lint clean — both through the API and through the real
``python -m repro lint`` entry point CI uses.
"""

import json
import os
import subprocess
import sys
import textwrap
import unittest
from pathlib import Path

from repro.lint import (
    all_rules,
    format_json,
    lint_file,
    lint_paths,
    registered_codes,
    select_rules,
    summary_line,
    write_summary,
)

TESTS_DIR = Path(__file__).resolve().parent
FIXTURES = TESTS_DIR / "lint_fixtures"
REPO_ROOT = TESTS_DIR.parent

#: Per-fixture ground truth: unsuppressed finding lines, by rule code.
EXPECTED = {
    "d001_random.py": ("D001", [7, 11]),
    "d002_nprandom.py": ("D002", [7, 11]),
    "d003_wallclock.py": ("D003", [8, 12, 16]),
    "d004_id_keys.py": ("D004", [5, 9, 13]),
    "d005_ordering.py": ("D005", [5, 9, 14]),
    "d006_defaults.py": ("D006", [4]),
    "d007_executor.py": ("D007", [10]),
    "d008_except.py": ("D008", [7, 14]),
    "d009_retry.py": ("D009", [7, 19]),
    "d010_poolloop.py": ("D010", [10]),
    "d011_atomicio.py": ("D011", [10, 15]),
}


def run_cli(*argv, cwd=REPO_ROOT):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *argv],
        cwd=cwd, env=env, capture_output=True, text=True,
    )


class TestFixtures(unittest.TestCase):
    """Every rule fires on its fixture — and only where expected."""

    def test_each_fixture_yields_expected_findings(self):
        for filename, (code, lines) in EXPECTED.items():
            with self.subTest(fixture=filename):
                result = lint_file(str(FIXTURES / filename), all_rules())
                got = [(f.code, f.line) for f in result.findings]
                self.assertEqual(got, [(code, line) for line in lines])

    def test_every_registered_rule_fires(self):
        report = lint_paths([str(FIXTURES)], all_rules(), root=str(REPO_ROOT))
        self.assertEqual(sorted(report.by_rule), registered_codes())

    def test_fixture_totals(self):
        # Top-level fixtures only: flow/ holds the --deep (D1xx) fixture
        # packages, which are shallow-clean by design (see test_lint_flow).
        shallow_only = sorted(str(p) for p in FIXTURES.glob("*.py"))
        report = lint_paths(shallow_only, all_rules(), root=str(REPO_ROOT))
        self.assertEqual(len(report.findings), 22)
        self.assertEqual(report.files, len(EXPECTED))
        # One waived case per fixture, none stale.
        self.assertEqual(report.suppressions_used, 11)
        self.assertEqual(report.suppressions_unused, 0)
        self.assertFalse(report.ok)

    def test_select_restricts_rules(self):
        report = lint_paths(
            [str(FIXTURES)], select_rules(["D004"]), root=str(REPO_ROOT)
        )
        self.assertEqual(report.by_rule, {"D004": 3})
        self.assertEqual(report.rule_codes, ["D004"])


class TestSuppressions(unittest.TestCase):
    def lint_source(self, source, name="snippet.py"):
        path = Path(self.tmp) / name
        path.write_text(textwrap.dedent(source))
        return lint_file(str(path), all_rules())

    def setUp(self):
        import tempfile

        self._tmpdir = tempfile.TemporaryDirectory()
        self.tmp = self._tmpdir.name
        self.addCleanup(self._tmpdir.cleanup)

    def test_reasonless_suppression_does_not_suppress(self):
        result = self.lint_source(
            """\
            def f(x, acc=[]):  # repro: allow-D006
                acc.append(x)
                return acc
            """
        )
        codes = [f.code for f in result.findings]
        # The D006 finding survives AND the malformed waiver is reported.
        self.assertIn("D006", codes)
        self.assertIn("D000", codes)

    def test_unused_suppression_is_counted(self):
        path = Path(self.tmp) / "clean.py"
        path.write_text(
            "# repro: allow-D006 left over from a removed default\n"
            "def f(x):\n"
            "    return x\n"
        )
        report = lint_paths([str(path)], all_rules())
        self.assertTrue(report.ok)
        self.assertEqual(report.suppressions_unused, 1)
        self.assertEqual(report.unused_suppression_sites[0][1], 1)
        self.assertIn("unused suppression", summary_line(report))

    def test_comma_list_covers_multiple_codes(self):
        result = self.lint_source(
            """\
            import time

            def f(mapping):
                # repro: allow-D003,D005 demo: both waived by one comment
                return [time.time() for _ in mapping.values()]
            """
        )
        self.assertEqual(result.findings, [])
        self.assertTrue(all(s.used for s in result.suppressions))

    def test_syntax_error_reported_as_meta(self):
        result = self.lint_source("def broken(:\n")
        self.assertEqual([f.code for f in result.findings], ["D000"])

    def test_unknown_select_code_raises(self):
        with self.assertRaises(ValueError):
            select_rules(["D999"])


class TestSanctionedDirs(unittest.TestCase):
    """D003's directory allowance: ``repro/obs`` reads the host clock for
    provenance timestamps; the same code anywhere else still fires."""

    WALLCLOCK = textwrap.dedent(
        """\
        import time

        def stamp():
            return time.strftime("%Y", time.localtime())
        """
    )

    def setUp(self):
        import tempfile

        self._tmpdir = tempfile.TemporaryDirectory()
        self.tmp = Path(self._tmpdir.name)
        self.addCleanup(self._tmpdir.cleanup)

    def lint_at(self, relpath):
        path = self.tmp / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.WALLCLOCK)
        return lint_file(str(path), select_rules(["D003"]))

    def test_obs_dir_is_exempt(self):
        result = self.lint_at("src/repro/obs/manifest_like.py")
        self.assertEqual(result.findings, [])

    def test_d003_still_fires_outside_obs(self):
        result = self.lint_at("src/repro/ecosystem/snippet.py")
        self.assertEqual([f.code for f in result.findings], ["D003"])

    def test_obs_as_plain_name_fragment_not_exempt(self):
        # 'repro/obs' must match whole path components, not substrings.
        result = self.lint_at("src/repro/observatory/snippet.py")
        self.assertEqual([f.code for f in result.findings], ["D003"])

    def test_util_perf_suffix_is_exempt(self):
        result = self.lint_at("src/repro/util/perf.py")
        self.assertEqual(result.findings, [])


class TestReporting(unittest.TestCase):
    def test_json_schema(self):
        report = lint_paths([str(FIXTURES)], all_rules(), root=str(REPO_ROOT))
        payload = json.loads(format_json(report))
        self.assertEqual(payload["version"], 1)
        self.assertEqual(len(payload["findings"]), payload["summary"]["findings"])
        self.assertEqual(payload["summary"]["files"], report.files)
        self.assertEqual(payload["summary"]["by_rule"], report.by_rule)
        first = payload["findings"][0]
        self.assertEqual(
            sorted(first), ["code", "col", "hint", "line", "message", "path"]
        )

    def test_write_summary_artifact(self):
        import tempfile

        report = lint_paths([str(FIXTURES)], all_rules(), root=str(REPO_ROOT))
        with tempfile.TemporaryDirectory() as tmp:
            out = Path(tmp) / "BENCH_lint.json"
            write_summary(report, str(out))
            payload = json.loads(out.read_text())
        self.assertEqual(payload["version"], 1)
        self.assertEqual(payload["findings"], len(report.findings))
        self.assertEqual(payload["suppressions_used"], report.suppressions_used)


class TestShippedTree(unittest.TestCase):
    """The codebase itself must hold the discipline the linter enforces."""

    def test_src_tree_is_clean_via_api(self):
        report = lint_paths(
            [str(REPO_ROOT / "src")], all_rules(), root=str(REPO_ROOT)
        )
        self.assertEqual(
            [f.format_text() for f in report.findings], [],
            "shipped src/ tree must lint clean",
        )
        self.assertEqual(report.suppressions_unused, 0)

    def test_benchmarks_tree_is_clean_via_api(self):
        report = lint_paths(
            [str(REPO_ROOT / "benchmarks")], all_rules(), root=str(REPO_ROOT)
        )
        self.assertEqual([f.format_text() for f in report.findings], [])


class TestCommandLine(unittest.TestCase):
    """End-to-end through ``python -m repro lint`` as CI invokes it."""

    def test_shipped_tree_exits_zero(self):
        proc = run_cli("src/")
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("repro.lint: ok", proc.stdout)

    def test_fixture_tree_exits_nonzero(self):
        proc = run_cli("tests/lint_fixtures/")
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("22 finding(s)", proc.stdout)

    def test_unknown_select_exits_two(self):
        proc = run_cli("src/", "--select", "D999")
        self.assertEqual(proc.returncode, 2)
        self.assertIn("unknown rule code", proc.stderr)

    def test_missing_path_exits_two(self):
        proc = run_cli("no/such/dir")
        self.assertEqual(proc.returncode, 2)

    def test_list_rules(self):
        proc = run_cli("--list-rules")
        self.assertEqual(proc.returncode, 0)
        for code in registered_codes():
            self.assertIn(code, proc.stdout)

    def test_json_output_parses(self):
        proc = run_cli("tests/lint_fixtures/", "--format", "json")
        self.assertEqual(proc.returncode, 1)
        payload = json.loads(proc.stdout)
        self.assertEqual(payload["version"], 1)
        self.assertEqual(payload["summary"]["findings"], 22)


if __name__ == "__main__":
    unittest.main()
