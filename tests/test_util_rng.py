"""Tests for the deterministic RNG discipline."""

from hypothesis import given, strategies as st

from repro.util.rng import RandomStreams, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", "b") == derive_seed(42, "a", "b")

    def test_varies_with_base(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_varies_with_path(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_path_boundaries_matter(self):
        # ("ab", "c") must differ from ("a", "bc").
        assert derive_seed(1, "ab", "c") != derive_seed(1, "a", "bc")

    @given(st.integers(), st.text(max_size=30))
    def test_always_64bit_nonnegative(self, base, name):
        seed = derive_seed(base, name)
        assert 0 <= seed < 2**64


class TestRandomStreams:
    def test_same_name_same_stream_object(self):
        streams = RandomStreams(7)
        assert streams.get("x") is streams.get("x")

    def test_reproducible_across_instances(self):
        a = RandomStreams(7).get("net").random()
        b = RandomStreams(7).get("net").random()
        assert a == b

    def test_streams_independent(self):
        """Drawing from one stream must not shift another."""
        fresh = RandomStreams(7)
        expected = fresh.get("b").random()
        used = RandomStreams(7)
        for _ in range(100):
            used.get("a").random()
        assert used.get("b").random() == expected

    def test_child_namespacing(self):
        streams = RandomStreams(7)
        a = streams.child("c1").get("x").random()
        b = streams.child("c2").get("x").random()
        assert a != b

    def test_child_cached(self):
        streams = RandomStreams(7)
        assert streams.child("c") is streams.child("c")

    def test_bounded_lognormal_respects_bounds(self):
        streams = RandomStreams(7)
        for i in range(200):
            value = RandomStreams(i).bounded_lognormal("d", 3.0, 2.0, 1.0, 10.0)
            assert 1.0 <= value <= 10.0

    def test_weighted_choice_returns_member(self):
        streams = RandomStreams(7)
        items = ["a", "b", "c"]
        for _ in range(50):
            assert streams.weighted_choice("w", items, [1, 1, 1]) in items

    def test_weighted_choice_respects_zero_weight(self):
        streams = RandomStreams(7)
        for _ in range(100):
            assert streams.weighted_choice("w0", ["a", "b"], [1.0, 0.0]) == "a"
