"""Tests for text rendering: tables, sparklines, CSV series."""

import pytest

from repro.reporting import render_table, series_to_csv, sparkline, sparkline_row, stacked_to_csv
from repro.util.simtime import SimDate


class TestRenderTable:
    def test_alignment_and_structure(self):
        out = render_table(["name", "count"], [["alpha", 12], ["b", 3]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", "+"}

    def test_numbers_formatted_with_separators(self):
        out = render_table(["n"], [[1234567]])
        assert "1,234,567" in out

    def test_floats_two_decimals(self):
        out = render_table(["f"], [[3.14159]])
        assert "3.14" in out

    def test_title(self):
        out = render_table(["a"], [[1]], title="Table 1")
        assert out.splitlines()[0] == "Table 1"

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])


class TestSparkline:
    def test_length_capped(self):
        assert len(sparkline(list(range(400)), width=40)) == 40

    def test_short_series_not_padded(self):
        assert len(sparkline([1, 2, 3], width=40)) == 3

    def test_monotone_series_monotone_bars(self):
        line = sparkline([0, 1, 2, 3], width=4)
        assert line == "".join(sorted(line))

    def test_constant_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_bad_width(self):
        with pytest.raises(ValueError):
            sparkline([1], width=0)

    def test_row_includes_extremes_as_percent(self):
        row = sparkline_row("Uggs", [0.01, 0.38], width=10)
        assert "Uggs" in row
        assert " 1.00" in row
        assert "38.00" in row


class TestCsv:
    def test_series_to_csv(self):
        day = SimDate("2014-01-01")
        csv = series_to_csv({day.ordinal: 3.5, (day + 1).ordinal: 4.0}, "psrs")
        lines = csv.strip().splitlines()
        assert lines[0] == "date,psrs"
        assert lines[1].startswith("2014-01-01,")

    def test_stacked_to_csv(self):
        day = SimDate("2014-01-01")
        csv = stacked_to_csv([day.ordinal], {"key": [0.5], "misc": [0.1]})
        lines = csv.strip().splitlines()
        assert lines[0] == "date,key,misc"
        assert lines[1] == "2014-01-01,0.500000,0.100000"

    def test_stacked_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            stacked_to_csv([1, 2], {"a": [0.5]})
