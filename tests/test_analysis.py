"""Tests for the analysis layer: tables, figures, intervention metrics."""

import pytest

from repro.util.simtime import SimDate
from repro.crawler.records import PsrDataset, PsrRecord
from repro.analysis import (
    DailyAggregates,
    campaign_figure4,
    campaign_table,
    conversion_metrics,
    label_coverage,
    label_lifetimes,
    pearson,
    poisoning_series,
    root_only_undercount,
    rotation_case_study,
    rotation_reactions,
    seized_store_lifetimes,
    seizure_order_case_study,
    seizure_table,
    sparkline_extremes,
    stacked_attribution,
    supplier_summary,
    vertical_table,
)


def _record(day0, **overrides):
    fields = dict(
        day=day0, vertical="Uggs", term="cheap uggs", rank=3,
        url="http://d.com/x.html", host="d.com", path="/x.html",
        label="none", mechanism="iframe", landing_url="http://s.com/",
        landing_host="s.com", is_store=True, seizure_case=None,
        seizure_firm=None, seizure_brand=None, campaign="KEY",
    )
    fields.update(overrides)
    return PsrRecord(**fields)


class TestPearson:
    def test_perfect_positive(self):
        assert pearson([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_constant_series_zero(self):
        assert pearson([1, 1, 1], [1, 2, 3]) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            pearson([1], [1, 2])


class TestAggregatesSynthetic:
    def test_counts_by_campaign_and_topk(self, day0):
        dataset = PsrDataset()
        dataset.note_serp(day0, "Uggs", 100)
        dataset.add(_record(day0, rank=5, campaign="KEY"))
        dataset.add(_record(day0, rank=50, campaign="VERA", url="u2", host="e.com"))
        dataset.add(_record(day0, rank=60, campaign="", url="u3", host="f.com"))
        agg = DailyAggregates(dataset)
        cell = agg.cell("Uggs", day0.ordinal)
        assert cell.total == 3
        assert cell.top10 == 1
        assert cell.by_campaign["KEY"] == 1
        assert cell.by_campaign[""] == 1
        assert agg.campaign_series("KEY", topk=10)[day0.ordinal] == 1
        assert agg.campaign_series("VERA", topk=10) == {}

    def test_penalized_tracked(self, day0):
        dataset = PsrDataset()
        dataset.add(_record(day0, label="hacked"))
        dataset.add(_record(day0, seizure_case="c1", url="u2", host="e.com"))
        dataset.add(_record(day0, url="u3", host="f.com"))
        agg = DailyAggregates(dataset)
        assert agg.cell("Uggs", day0.ordinal).penalized == 2


class TestVerticalSeriesSynthetic:
    def _dataset(self, day0):
        dataset = PsrDataset()
        for offset in (0, 1, 2):
            day = day0 + offset
            dataset.note_serp(day, "Uggs", 100)
            for i in range(10 * (offset + 1)):
                dataset.add(_record(day, rank=i + 1, url=f"u{offset}-{i}",
                                    host=f"h{i}.com"))
        return dataset

    def test_poisoning_series_values(self, day0):
        dataset = self._dataset(day0)
        series = dict(poisoning_series(dataset, "Uggs", topk=100))
        assert series[day0.ordinal] == pytest.approx(0.10)
        assert series[(day0 + 2).ordinal] == pytest.approx(0.30)

    def test_sparkline_extremes(self, day0):
        extremes = sparkline_extremes(self._dataset(day0), "Uggs", 100)
        assert extremes.minimum == pytest.approx(0.10)
        assert extremes.maximum == pytest.approx(0.30)

    def test_stacked_bands_sum_to_total(self, day0):
        dataset = PsrDataset()
        dataset.note_serp(day0, "Uggs", 100)
        dataset.add(_record(day0, campaign="KEY", host="a.com", url="u1"))
        dataset.add(_record(day0, campaign="VERA", host="b.com", url="u2"))
        dataset.add(_record(day0, campaign="", host="c.com", url="u3"))
        dataset.add(_record(day0, campaign="KEY", label="hacked", host="d.com", url="u4"))
        stacked = stacked_attribution(dataset, "Uggs", top_campaigns=2)
        total = stacked.total_poisoned(0)
        assert total == pytest.approx(0.04)
        assert stacked.penalized_share[0] == pytest.approx(0.01)


class TestLabelAnalysisSynthetic:
    def test_coverage(self, day0):
        dataset = PsrDataset()
        dataset.add(_record(day0, label="hacked"))
        for i in range(3):
            dataset.add(_record(day0, url=f"u{i}", host=f"h{i}.com"))
        stats = label_coverage(dataset)
        assert stats.coverage == pytest.approx(0.25)

    def test_root_only_undercount(self, day0):
        dataset = PsrDataset()
        # Root PSR labeled; two subpage PSRs on the same host unlabeled.
        dataset.add(_record(day0, label="hacked", path="/", url="http://d.com/"))
        dataset.add(_record(day0, path="/a.html", url="http://d.com/a.html"))
        dataset.add(_record(day0, path="/b.html", url="http://d.com/b.html"))
        # Unrelated host, never labeled: not counted.
        dataset.add(_record(day0, host="other.com", url="http://other.com/x"))
        gap = root_only_undercount(dataset)
        assert gap.labeled_results == 1
        assert gap.additional_labelable == 2
        assert gap.undercount_fraction == pytest.approx(2.0)

    def test_label_lifetimes_bounds(self, day0):
        dataset = PsrDataset()
        dataset.add(_record(day0))                      # first seen clean
        dataset.add(_record(day0 + 10))                 # last clean sighting
        dataset.add(_record(day0 + 20, label="hacked"))  # first labeled
        lifetimes = label_lifetimes(dataset)
        assert lifetimes.measured_hosts == 1
        lower, upper = lifetimes.per_host_bounds["d.com"]
        assert (lower, upper) == (10, 20)

    def test_pre_labeled_hosts_counted(self, day0):
        dataset = PsrDataset()
        dataset.add(_record(day0, label="hacked"))
        lifetimes = label_lifetimes(dataset)
        assert lifetimes.pre_labeled_hosts == 1
        assert lifetimes.measured_hosts == 0


class TestSeizureAnalysisSynthetic:
    def _dataset_with_seizure(self, day0):
        dataset = PsrDataset()
        # Store visible for 20 days, then notice, then doorway points to a
        # new store 5 days later.
        dataset.add(_record(day0, landing_host="store1.com"))
        dataset.add(_record(day0 + 20, landing_host="store1.com"))
        dataset.add(_record(
            day0 + 30, landing_host="store1.com", is_store=False,
            seizure_case="14-cv-1", seizure_firm="GBC", seizure_brand="Uggs",
        ))
        dataset.add(_record(day0 + 35, landing_host="store2.com"))
        return dataset

    def test_lifetimes(self, day0):
        stats = seized_store_lifetimes(self._dataset_with_seizure(day0))
        assert len(stats) == 1
        assert stats[0].firm == "GBC"
        assert stats[0].mean_lower_days == pytest.approx(20.0)
        assert stats[0].mean_upper_days == pytest.approx(30.0)

    def test_rotation_reaction(self, day0):
        stats = rotation_reactions(self._dataset_with_seizure(day0))
        assert len(stats) == 1
        assert stats[0].seized_stores == 1
        assert stats[0].redirected_stores == 1
        assert stats[0].mean_reaction_days == pytest.approx(5.0)


class TestTablesIntegration:
    """Tables built from the session study's measured data."""

    def test_table1_rows(self, study):
        rows = vertical_table(study.dataset)
        names = {r.vertical for r in rows}
        assert names == set(study.dataset.verticals())
        for row in rows:
            assert row.psrs > 0
            assert row.doorways > 0
            # Store and campaign counts bounded by ground truth totals.
            assert row.campaigns <= len(study.world.campaigns())

    def test_table2_rows(self, study):
        brand_names = [b.name for b in study.world.brand_catalog.all()]
        rows = campaign_table(study.dataset, study.archive, brand_names)
        assert rows
        by_name = {r.campaign: r for r in rows}
        for name, row in by_name.items():
            truth = study.world.campaign_by_name(name)
            assert truth is not None
            # Measured doorways never exceed ground truth.
            assert row.doorways <= len(truth.doorways)
            assert row.peak_days >= 1

    def test_table2_brands_detected_from_html(self, study):
        brand_names = [b.name for b in study.world.brand_catalog.all()]
        rows = campaign_table(study.dataset, study.archive, brand_names)
        assert any(r.brands >= 1 for r in rows)

    def test_table3_matches_ground_truth_cases(self, study):
        rows = seizure_table(study.dataset, study.crawler)
        if not rows:
            pytest.skip("no seizures observed in crawl window")
        events = study.world.events.of_kind(study.world.events.SEIZURE_CASE)
        true_case_count = len({e.payload["case_id"] for e in events})
        for row in rows:
            assert row.cases <= true_case_count
            assert row.observed_stores <= row.seized_domains
            assert row.classified_stores <= row.observed_stores


class TestFiguresIntegration:
    def test_figure2_stacked(self, study):
        stacked = stacked_attribution(study.dataset, "Uggs", top_campaigns=4)
        assert stacked.ordinals
        for index in range(len(stacked.ordinals)):
            total = stacked.total_poisoned(index)
            assert 0.0 <= total <= 1.0

    def test_figure3_sparklines(self, study):
        for vertical in study.dataset.verticals():
            top10 = sparkline_extremes(study.dataset, vertical, 10)
            top100 = sparkline_extremes(study.dataset, vertical, 100)
            assert 0 <= top10.minimum <= top10.maximum <= 1
            assert 0 <= top100.minimum <= top100.maximum <= 1

    def test_figure4_panel(self, study):
        panel = campaign_figure4(study.dataset, study.orderer, "MSVALIDATE")
        assert panel.campaign == "MSVALIDATE"
        assert panel.top100_series
        if panel.volume_points:
            values = [v for _, v in panel.volume_points]
            assert values == sorted(values) or len(panel.stores_used) > 1

    def test_figure5_rotation_case_study(self, study):
        case = rotation_case_study(study.dataset, study.orderer,
                                   world=study.world, campaign="BIGLOVE")
        if case is None:
            case = rotation_case_study(study.dataset, study.orderer,
                                       world=study.world)
        assert case is not None
        assert case.rotations >= 1
        assert case.top100_series

    def test_figure6_seizure_case_study(self, study):
        case = seizure_order_case_study(study.dataset, study.orderer,
                                        "PHP?P=", world=study.world)
        assert case.campaign == "PHP?P="
        for track in case.stores:
            numbers = [n for _, n in track.samples]
            assert numbers == sorted(numbers)

    def test_conversion_metrics_when_awstats_public(self, study):
        world = study.world
        candidates = [
            t.key for t in study.orderer.tracked_with_samples()
            if world.store_at(t.key) is not None
            and world.store_at(t.key).awstats_public
        ]
        if not candidates:
            pytest.skip("no public-awstats store tracked in this run")
        metrics = conversion_metrics(
            study.dataset, study.orderer, world, candidates[0],
            world.window.start, world.window.end,
        )
        assert metrics is not None
        assert metrics.total_visits > 0
        assert 0 <= metrics.referrer_fraction <= 1
        assert 0 < metrics.pages_per_visit < 20
        if metrics.orders_created:
            assert 0 < metrics.conversion_rate < 0.2
