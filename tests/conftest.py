"""Shared fixtures.

The expensive end-to-end study run (small preset) is session-scoped; most
integration-flavoured tests read from it rather than re-running the
simulation.
"""

from __future__ import annotations

import pytest

from repro import StudyRun
from repro.ecosystem import Simulator, small_preset
from repro.util.rng import RandomStreams
from repro.util.simtime import SimDate


@pytest.fixture(scope="session")
def study():
    """A complete small-preset study: simulation + crawl + orders +
    classification."""
    return StudyRun(small_preset(), seed_label_count=80).execute()


@pytest.fixture(scope="session")
def world(study):
    return study.world


@pytest.fixture(scope="session")
def dataset(study):
    return study.dataset


@pytest.fixture()
def streams():
    return RandomStreams(1234)


@pytest.fixture()
def day0():
    return SimDate("2013-11-13")
