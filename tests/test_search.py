"""Tests for the search engine: verticals, index, ranking, SERPs, CTR."""

import pytest

from repro.util.rng import RandomStreams
from repro.util.simtime import SimDate
from repro.web.domains import DomainRegistry
from repro.web.sites import Site, SiteKind
from repro.search import (
    ClickModel,
    IndexedEntry,
    QueryVolumeModel,
    RankingModel,
    ResultLabel,
    SearchEngine,
    SearchIndex,
    Vertical,
)
from repro.search.query import generate_terms, make_vertical
from repro.search.ranking import NoiseSource
from repro.search.serp import SearchResult


@pytest.fixture()
def registry(day0):
    return DomainRegistry()


def _site(registry, name, authority, day0):
    domain = registry.register(name, day0)
    return Site(domain, SiteKind.LEGITIMATE, authority=authority, created_on=day0)


@pytest.fixture()
def index(registry, day0):
    index = SearchIndex()
    for i in range(30):
        site = _site(registry, f"legit{i}.com", 0.3 + 0.02 * i, day0)
        index.add_page("cheap uggs", site, "/", relevance=0.5 + 0.01 * i)
    return index


class TestVerticals:
    def test_generate_terms_unique_and_sized(self, streams):
        terms = generate_terms("Uggs", ["Uggs"], 20, streams)
        assert len(terms) == 20
        assert len(set(terms)) == 20
        assert all("uggs" in t for t in terms)

    def test_generate_terms_deterministic(self):
        a = generate_terms("Uggs", ["Uggs"], 15, RandomStreams(5))
        b = generate_terms("Uggs", ["Uggs"], 15, RandomStreams(5))
        assert a == b

    def test_too_many_terms_raises(self, streams):
        with pytest.raises(ValueError):
            generate_terms("X", ["X"], 10_000, streams)

    def test_composite_vertical(self, streams):
        vertical = make_vertical("Golf", ["TaylorMade", "Callaway"], 12, streams,
                                 composite=True)
        assert vertical.composite
        assert len(vertical.terms) == 12

    def test_vertical_requires_brands(self):
        with pytest.raises(ValueError):
            Vertical(name="X", brands=[])

    def test_vertical_duplicate_terms_rejected(self):
        with pytest.raises(ValueError):
            Vertical(name="X", brands=["X"], terms=["a", "a"])


class TestQueryVolume:
    def test_volume_positive_and_bounded(self, streams):
        model = QueryVolumeModel(streams)
        for term in ("a", "b", "c"):
            base = model.base_volume(term)
            assert model.base_min <= base <= model.base_max

    def test_volume_stable_per_term(self, streams, day0):
        model = QueryVolumeModel(streams)
        assert model.volume("t", day0) == model.volume("t", day0)

    def test_weekend_boost(self, streams):
        model = QueryVolumeModel(streams)
        saturday = SimDate("2013-11-16")
        monday = SimDate("2013-11-18")
        assert model.volume("t", saturday) > model.volume("t", monday)


class TestIndex:
    def test_candidates(self, index):
        assert len(index.candidates("cheap uggs")) == 30
        assert index.candidates("unknown term") == []

    def test_remove_host(self, index):
        removed = index.remove_host("legit0.com")
        assert removed == 1
        assert all(e.host != "legit0.com" for e in index.candidates("cheap uggs"))

    def test_entries_for_host(self, index):
        assert len(index.entries_for_host("legit3.com")) == 1

    def test_len(self, index):
        assert len(index) == 30

    def test_entry_keys_stable_and_unique(self, index):
        keys = [e.entry_key for e in index.candidates("cheap uggs")]
        assert all(k is not None for k in keys)
        assert len(set(keys)) == len(keys)

    def test_deindex_then_readd_cycle(self, registry, day0):
        """Index-layer mirror of the PR 1 engine-layer fix: removal must be
        keyed by stable entry identity, so a host deindexed and re-added
        (new entry objects, possibly id()-recycled) serves exactly the new
        entries — and only those."""
        index = SearchIndex()
        stable = _site(registry, "stays.com", 0.5, day0)
        index.add_page("cheap uggs", stable, "/", relevance=0.6)
        doomed = _site(registry, "doomed.com", 0.9, day0)
        index.add_page("cheap uggs", doomed, "/", relevance=0.9)
        index.add_page("uggs outlet", doomed, "/sale", relevance=0.8)

        # Materialize columns, then deindex: every term the host served
        # must drop it, and the columnar view must rebuild.
        before = index.columns("cheap uggs")
        assert len(before) == 2
        assert index.remove_host("doomed.com") == 2
        assert index.entries_for_host("doomed.com") == []
        for term in ("cheap uggs", "uggs outlet"):
            assert all(e.host != "doomed.com" for e in index.candidates(term))

        # Re-add the same host as fresh entry objects: the old entries'
        # removal must not leak onto the newcomers, and the stale columns
        # must not be served.
        revived = Site(registry.get("doomed.com"), SiteKind.LEGITIMATE,
                       authority=0.7, created_on=day0)
        new_entry = index.add_page("cheap uggs", revived, "/v2", relevance=0.7)
        old_keys = {e.entry_key for e in before.entries}
        assert new_entry.entry_key not in old_keys
        after = index.columns("cheap uggs")
        assert after is not before
        assert [e.path for e in after.entries if e.host == "doomed.com"] == ["/v2"]
        assert len(index.candidates("cheap uggs")) == 2


class TestEngine:
    def test_serp_deterministic(self, index, streams, day0):
        engine = SearchEngine(index, streams, serp_size=20)
        a = [r.url for r in engine.serp("cheap uggs", day0)]
        b = [r.url for r in engine.serp("cheap uggs", day0)]
        assert a == b

    def test_serp_varies_by_day(self, index, streams, day0):
        engine = SearchEngine(index, streams, serp_size=20)
        a = [r.url for r in engine.serp("cheap uggs", day0)]
        b = [r.url for r in engine.serp("cheap uggs", day0 + 1)]
        assert a != b  # ranking noise differs day to day

    def test_ranks_sequential_from_one(self, index, streams, day0):
        serp = SearchEngine(index, streams, serp_size=10).serp("cheap uggs", day0)
        assert [r.rank for r in serp.results] == list(range(1, 11))

    def test_stronger_sites_rank_higher_on_average(self, registry, streams, day0):
        index = SearchIndex()
        weak = _site(registry, "weak.com", 0.1, day0)
        strong = _site(registry, "strong.com", 0.95, day0)
        index.add_page("t", weak, "/", relevance=0.5)
        index.add_page("t", strong, "/", relevance=0.5)
        engine = SearchEngine(index, streams)
        wins = sum(
            1 for d in range(50)
            if engine.serp("t", day0 + d).results[0].host == "strong.com"
        )
        assert wins > 45

    def test_seo_signal_lifts_rank(self, registry, streams, day0):
        index = SearchIndex()
        for i in range(20):
            index.add_page("t", _site(registry, f"l{i}.com", 0.6, day0), "/", 0.6)
        doorway = _site(registry, "doorway.com", 0.3, day0)
        index.add_page("t", doorway, "/d.html", 0.8, seo_signal=lambda day: 1.2)
        engine = SearchEngine(index, streams)
        serp = engine.serp("t", day0)
        rank = next(r.rank for r in serp.results if r.host == "doorway.com")
        assert rank <= 3

    def test_indexed_on_gates_entry(self, registry, streams, day0):
        index = SearchIndex()
        index.add_page("t", _site(registry, "old.com", 0.5, day0), "/", 0.5)
        index.add_page("t", _site(registry, "new.com", 0.9, day0), "/", 0.9,
                       indexed_on=day0 + 10)
        engine = SearchEngine(index, streams)
        assert "new.com" not in engine.serp("t", day0).hosts()
        assert "new.com" in engine.serp("t", day0 + 10).hosts()

    def test_demotion_pushes_out(self, index, streams, day0):
        engine = SearchEngine(index, streams, serp_size=10)
        target = engine.serp("cheap uggs", day0).results[0].host
        engine.demote_host(target, day0 + 1, amount=5.0)
        assert target in engine.serp("cheap uggs", day0).hosts()  # before
        assert target not in engine.serp("cheap uggs", day0 + 1).hosts()

    def test_demotion_not_weakened(self, index, streams, day0):
        engine = SearchEngine(index, streams)
        engine.demote_host("x.com", day0, 2.0)
        engine.demote_host("x.com", day0 + 1, 0.5)
        assert engine.penalty_of("x.com", day0 + 2) == 2.0

    def test_deindex_removes_everywhere(self, index, streams, day0):
        engine = SearchEngine(index, streams)
        host = engine.serp("cheap uggs", day0).results[0].host
        assert engine.deindex_host(host) == 1
        assert host not in engine.serp("cheap uggs", day0).hosts()

    def test_host_result_cap(self, registry, streams, day0):
        index = SearchIndex()
        big = _site(registry, "big.com", 0.9, day0)
        for i in range(5):
            index.add_page("t", big, f"/p{i}.html", 0.9)
        for i in range(10):
            index.add_page("t", _site(registry, f"s{i}.com", 0.5, day0), "/", 0.5)
        engine = SearchEngine(index, streams, max_results_per_host=2)
        hosts = engine.serp("t", day0).hosts()
        assert hosts.count("big.com") == 2

    def test_hacked_label_root_only(self, registry, streams, day0):
        index = SearchIndex()
        site = _site(registry, "hacked.com", 0.9, day0)
        index.add_page("t", site, "/", 0.9)
        index.add_page("t", site, "/sub.html", 0.9)
        engine = SearchEngine(index, streams, label_root_only=True)
        engine.label_host("hacked.com", day0, ResultLabel.HACKED)
        serp = engine.serp("t", day0)
        by_path = {r.path: r.label for r in serp.results if r.host == "hacked.com"}
        assert by_path["/"] is ResultLabel.HACKED
        assert by_path["/sub.html"] is ResultLabel.NONE

    def test_hacked_label_full_when_policy_lifted(self, registry, streams, day0):
        index = SearchIndex()
        site = _site(registry, "hacked.com", 0.9, day0)
        index.add_page("t", site, "/sub.html", 0.9)
        engine = SearchEngine(index, streams, label_root_only=False)
        engine.label_host("hacked.com", day0, ResultLabel.HACKED)
        result = engine.serp("t", day0).results[0]
        assert result.label is ResultLabel.HACKED

    def test_label_not_retroactive(self, registry, streams, day0):
        index = SearchIndex()
        index.add_page("t", _site(registry, "h.com", 0.9, day0), "/", 0.9)
        engine = SearchEngine(index, streams)
        engine.label_host("h.com", day0 + 5, ResultLabel.HACKED)
        assert engine.serp("t", day0).results[0].label is ResultLabel.NONE


class TestClickModel:
    def test_ctr_decreasing(self):
        model = ClickModel()
        ctrs = [model.ctr(r) for r in range(1, 101)]
        assert all(a >= b for a, b in zip(ctrs, ctrs[1:]))

    def test_rank_one_largest(self):
        model = ClickModel()
        assert model.ctr(1) == pytest.approx(0.28)

    def test_tail_positive(self):
        assert ClickModel().ctr(100) > 0

    def test_bad_rank_raises(self):
        with pytest.raises(ValueError):
            ClickModel().ctr(0)

    def test_label_multipliers(self):
        model = ClickModel()
        plain = SearchResult(rank=1, url="u", host="h", path="/")
        hacked = SearchResult(rank=1, url="u", host="h", path="/", label=ResultLabel.HACKED)
        malware = SearchResult(rank=1, url="u", host="h", path="/", label=ResultLabel.MALWARE)
        v = 1000.0
        assert model.expected_clicks(plain, v) > model.expected_clicks(hacked, v)
        assert model.expected_clicks(malware, v) < model.expected_clicks(hacked, v) * 0.1


class TestNoiseSource:
    """The batch noise stream must equal sequential scalar draws bit for
    bit — the equivalence the columnar engine's determinism rests on
    (see ``NoiseSource``)."""

    def test_batch_matches_scalar_draws(self, streams, day0):
        source = NoiseSource(streams, sigma=0.15)
        batch = source.batch("cheap uggs", day0, 64)
        gauss = source.for_serp("cheap uggs", day0)
        assert [gauss() for _ in range(64)] == batch.tolist()

    def test_batch_repeatable(self, streams, day0):
        source = NoiseSource(streams, sigma=0.15)
        first = source.batch("cheap uggs", day0, 32)
        second = source.batch("cheap uggs", day0, 32)
        assert first.tolist() == second.tolist()

    def test_streams_distinct_by_term_and_day(self, streams, day0):
        source = NoiseSource(streams, sigma=0.15)
        base = source.batch("cheap uggs", day0, 16).tolist()
        assert source.batch("louis vuitton outlet", day0, 16).tolist() != base
        assert source.batch("cheap uggs", day0 + 1, 16).tolist() != base

    def test_prefix_stable_under_length(self, streams, day0):
        """Drawing k values is a prefix of drawing k+m values, so the
        eligible-candidate count never perturbs earlier draws."""
        source = NoiseSource(streams, sigma=0.15)
        short = source.batch("cheap uggs", day0, 10)
        long = source.batch("cheap uggs", day0, 40)
        assert short.tolist() == long[:10].tolist()


class TestStaticScoreInvalidation:
    """Regression: the seed cached static scores by ``id(entry)``, which a
    deindex-then-re-add cycle could recycle — serving stale authority for a
    brand-new entry (and leaking retired entries forever).  The columnar
    cache keys on the term's TermColumns identity instead."""

    def test_deindex_then_readd_served_fresh(self, registry, streams, day0):
        index = SearchIndex()
        for i in range(12):
            site = _site(registry, f"bg{i}.com", 0.4 + 0.01 * i, day0)
            index.add_page("t", site, "/", relevance=0.5)
        strong = _site(registry, "comeback.com", 0.95, day0)
        index.add_page("t", strong, "/", relevance=0.95)
        engine = SearchEngine(index, streams, serp_size=20)

        first = {r.host: r.score for r in engine.serp("t", day0).results}
        assert "comeback.com" in first

        engine.deindex_host("comeback.com")
        assert all(
            r.host != "comeback.com" for r in engine.serp("t", day0).results
        )

        # Same host returns with rock-bottom signals; any stale cached
        # static (id-recycled or host-keyed) would resurrect the old score.
        index.add_page("t", strong, "/", relevance=0.01, authority_factor=0.01)
        again = {r.host: r.score for r in engine.serp("t", day0).results}
        assert "comeback.com" in again
        assert again["comeback.com"] < first["comeback.com"] - 0.5
