"""Tests for the PERF registry's table rendering (`% of total`, --top)."""

import pytest

from repro.util.perf import PerfRegistry


@pytest.fixture
def registry():
    reg = PerfRegistry()
    reg.handle("wide").add(0.8)
    reg.handle("wide").add(0.2)
    reg.handle("half").add(0.5)
    reg.handle("narrow").add(0.1)
    reg.count("cache.demo.hit", 3)
    return reg


def header_of(table):
    return table.splitlines()[0]


class TestPercentColumn:
    def test_header_includes_percent_of_total(self, registry):
        assert "% of total" in header_of(registry.format_table())

    def test_widest_timer_reads_100(self, registry):
        lines = registry.format_table().splitlines()
        wide_row = next(line for line in lines if line.startswith("wide"))
        assert "100.0%" in wide_row

    def test_shares_relative_to_widest(self, registry):
        table = registry.format_table()
        half_row = next(line for line in table.splitlines()
                        if line.startswith("half"))
        narrow_row = next(line for line in table.splitlines()
                          if line.startswith("narrow"))
        assert "50.0%" in half_row
        assert "10.0%" in narrow_row

    def test_empty_registry_renders_header_only_table(self):
        table = PerfRegistry().format_table()
        assert "% of total" in header_of(table)


class TestTopTruncation:
    def test_top_keeps_n_widest(self, registry):
        table = registry.format_table(top=2)
        assert "wide" in table
        assert "half" in table
        assert "narrow" not in table.split("cutoff")[0].replace(
            "... 1 more", "")
        assert "1 more timer(s) below --top cutoff" in table

    def test_top_larger_than_timer_count_shows_all(self, registry):
        table = registry.format_table(top=99)
        assert "narrow" in table
        assert "cutoff" not in table

    def test_counters_survive_truncation(self, registry):
        table = registry.format_table(top=1)
        assert "cache.demo.hit: 3" in table

    def test_default_is_untruncated(self, registry):
        assert registry.format_table() == registry.format_table(top=None)


class TestCliFlag:
    def test_perf_parser_accepts_top(self):
        from repro.cli import _build_parser

        args = _build_parser().parse_args(["perf", "--top", "5"])
        assert args.top == 5
        assert _build_parser().parse_args(["perf"]).top is None
