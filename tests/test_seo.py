"""Tests for the SEO package: templates, cloaking, schedules, C&C,
doorways."""

import pytest

from repro.util.rng import RandomStreams
from repro.util.simtime import DateRange, SimDate
from repro.web.domains import DomainRegistry
from repro.web.fetch import CRAWLER, SEARCH_USER, USER
from repro.web.sites import Site, SiteKind, StaticPage
from repro.html.parser import parse_html
from repro.web.render import render_document
from repro.seo import (
    Burst,
    CloakingType,
    CommandAndControl,
    DoorwayPageContext,
    EffortSchedule,
    IframeCloakingKit,
    RedirectCloakingKit,
    THEME_FAMILIES,
    make_kit,
)
from repro.seo.doorways import build_doorway
from repro.seo.schedule import random_schedule
from repro.seo.templates import TemplateTheme, assign_theme


@pytest.fixture()
def theme():
    return assign_theme("KEY", RandomStreams(9))


class TestTemplates:
    def test_theme_deterministic(self):
        a = assign_theme("KEY", RandomStreams(9))
        b = assign_theme("KEY", RandomStreams(9))
        assert a.class_prefix == b.class_prefix
        assert a.analytics_provider == b.analytics_provider
        assert a.stylesheet_path == b.stylesheet_path

    def test_distinct_campaigns_distinct_telltales(self):
        streams = RandomStreams(9)
        a = assign_theme("KEY", streams)
        b = assign_theme("MOONKIS", streams)
        assert a.class_prefix != b.class_prefix

    def test_theme_family_pinnable(self):
        theme = TemplateTheme("X", THEME_FAMILIES[0], RandomStreams(1))
        assert theme.family.family_id == "zc-classic"
        assert theme.platform == "zencart"

    def test_doorway_page_contains_term(self, theme):
        html = theme.doorway_seo_page("cheap uggs boots", "Uggs", "seed")
        assert "cheap uggs boots" in html
        doc = parse_html(html)
        assert doc.find_all("h1")

    def test_doorway_page_parseable_and_stuffed(self, theme):
        html = theme.doorway_seo_page("cheap nike", "Nike", "s2")
        text = parse_html(html).text_content().lower()
        assert text.count("cheap nike") >= 4


class TestSchedule:
    def test_burst_active_window(self, day0):
        burst = Burst(start=day0, duration_days=10, level=0.8)
        assert burst.active_on(day0)
        assert burst.active_on(day0 + 9)
        assert not burst.active_on(day0 + 10)

    def test_level_takes_max_of_bursts(self, day0):
        schedule = EffortSchedule(
            [Burst(day0, 10, 0.5), Burst(day0 + 5, 10, 0.9)], background=0.05
        )
        assert schedule.level(day0) == 0.5
        assert schedule.level(day0 + 6) == 0.9
        assert schedule.level(day0 + 30) == 0.05

    def test_shutdown_zeroes_effort(self, day0):
        schedule = EffortSchedule([Burst(day0, 100, 0.8)], background=0.05)
        schedule.shutdown(day0 + 10)
        assert schedule.level(day0 + 9) == 0.8
        assert schedule.level(day0 + 10) == 0.0

    def test_random_schedule_peak_within_window(self, streams, day0):
        window = DateRange(day0, day0 + 200)
        schedule = random_schedule(streams, "x", window, peak_days_hint=40,
                                   peak_level=0.8)
        main = schedule.bursts[0]
        assert main.start in window
        assert 5 <= main.duration_days <= len(window)
        assert schedule.peak_level() > 0

    def test_random_schedule_deterministic(self, day0):
        window = DateRange(day0, day0 + 100)
        a = random_schedule(RandomStreams(3), "x", window, 30, 0.7)
        b = random_schedule(RandomStreams(3), "x", window, 30, 0.7)
        assert [(x.start, x.duration_days, x.level) for x in a.bursts] == \
               [(x.start, x.duration_days, x.level) for x in b.bursts]


class TestCnc:
    def test_set_and_get(self, day0):
        cnc = CommandAndControl("KEY", "keycdn1.net")
        cnc.set_landing("store-1", "http://a.com/", day0)
        assert cnc.landing_url("store-1") == "http://a.com/"
        assert cnc.landing_url("ghost") is None

    def test_history_records_changes(self, day0):
        cnc = CommandAndControl("KEY", "keycdn1.net")
        cnc.set_landing("s", "http://a.com/", day0)
        cnc.set_landing("s", "http://a.com/", day0 + 1)  # no-op
        cnc.set_landing("s", "http://b.com/", day0 + 2)
        assert len(cnc.history("s")) == 2
        assert cnc.history("s")[-1].url == "http://b.com/"

    def test_directory_snapshot(self, day0):
        cnc = CommandAndControl("KEY", "keycdn1.net")
        cnc.set_landing("a", "http://a.com/", day0)
        snap = cnc.directory_snapshot()
        snap["a"] = "tampered"
        assert cnc.landing_url("a") == "http://a.com/"


def _doorway_setup(day0, kit_type, compromised=True):
    streams = RandomStreams(11)
    registry = DomainRegistry()
    domain = registry.register("blog.com", day0 - 100)
    site = Site(domain, SiteKind.LEGITIMATE, authority=0.6, created_on=day0 - 100)
    site.add_page(StaticPage("/", html="<html><body>my travel blog</body></html>"))
    theme = assign_theme("KEY", streams)
    kit = make_kit(kit_type, streams, "KEY")
    doorway = build_doorway(
        campaign="KEY",
        vertical="Uggs",
        terms=["cheap uggs", "uggs outlet"],
        site=site,
        compromised=compromised,
        day=day0,
        theme=theme,
        kit=kit,
        landing_url=lambda: "http://uggstore.com/",
        streams=streams,
    )
    return doorway, site


class TestRedirectCloaking:
    def test_crawler_sees_seo_content(self, day0):
        doorway, site = _doorway_setup(day0, CloakingType.REDIRECT)
        page = site.get_page(doorway.pages[0].path)
        result = page.respond(CRAWLER, day0)
        assert result.redirect_to is None
        assert "cheap uggs" in result.html or "uggs outlet" in result.html

    def test_search_user_redirected_to_store(self, day0):
        doorway, site = _doorway_setup(day0, CloakingType.REDIRECT)
        page = site.get_page(doorway.pages[0].path)
        result = page.respond(SEARCH_USER, day0)
        assert result.redirect_to == "http://uggstore.com/"

    def test_direct_user_sees_original_content(self, day0):
        """Compromised sites stay hidden from their owners (Section 3.1.1)."""
        doorway, site = _doorway_setup(day0, CloakingType.REDIRECT)
        page = site.get_page(doorway.pages[0].path)
        result = page.respond(USER, day0)
        assert "travel blog" in result.html

    def test_dedicated_doorway_shows_seo_to_direct_user(self, day0):
        streams = RandomStreams(12)
        registry = DomainRegistry()
        domain = registry.register("throwaway.biz", day0)
        site = Site(domain, SiteKind.DEDICATED_DOORWAY, authority=0.1, created_on=day0)
        theme = assign_theme("KEY", streams)
        doorway = build_doorway(
            "KEY", "Uggs", ["cheap uggs"], site, compromised=False, day=day0,
            theme=theme, kit=RedirectCloakingKit(),
            landing_url=lambda: "http://s.com/", streams=streams,
        )
        page = site.get_page(doorway.pages[0].path)
        assert "cheap uggs" in page.respond(USER, day0).html

    def test_no_live_store_falls_back_to_seo(self, day0):
        kit = RedirectCloakingKit()
        ctx = DoorwayPageContext(
            campaign="K", vertical="V", term="t",
            landing_url=lambda: None, seo_html="<html><body>seo</body></html>",
        )
        result = kit.respond(ctx, SEARCH_USER, day0)
        assert result.redirect_to is None
        assert "seo" in result.html


class TestIframeCloaking:
    def test_same_html_for_crawler_and_user(self, day0):
        doorway, site = _doorway_setup(day0, CloakingType.IFRAME)
        page = site.get_page(doorway.pages[0].path)
        crawler_view = page.respond(CRAWLER, day0).html
        user_view = page.respond(SEARCH_USER, day0).html
        assert crawler_view == user_view

    def test_no_http_redirect(self, day0):
        doorway, site = _doorway_setup(day0, CloakingType.IFRAME)
        page = site.get_page(doorway.pages[0].path)
        assert page.respond(SEARCH_USER, day0).redirect_to is None

    def test_unrendered_view_has_no_iframe(self, day0):
        doorway, site = _doorway_setup(day0, CloakingType.IFRAME)
        page = site.get_page(doorway.pages[0].path)
        doc = parse_html(page.respond(CRAWLER, day0).html)
        assert doc.find_all("iframe") == []

    def test_rendered_view_reveals_fullpage_iframe(self, day0):
        doorway, site = _doorway_setup(day0, CloakingType.IFRAME)
        page = site.get_page(doorway.pages[0].path)
        rendered = render_document(parse_html(page.respond(SEARCH_USER, day0).html))
        iframes = rendered.find_all("iframe")
        assert iframes
        assert iframes[0].get("src") == "http://uggstore.com/"

    def test_make_kit_validates(self):
        with pytest.raises(ValueError):
            make_kit(CloakingType.NONE, RandomStreams(1), "X")


class TestDoorwayBuild:
    def test_compromised_site_marked(self, day0):
        doorway, site = _doorway_setup(day0, CloakingType.REDIRECT)
        assert site.kind is SiteKind.COMPROMISED
        assert doorway.compromised

    def test_pages_per_term(self, day0):
        doorway, _ = _doorway_setup(day0, CloakingType.REDIRECT)
        assert len(doorway.pages) == 2
        assert {p.term for p in doorway.pages} == {"cheap uggs", "uggs outlet"}

    def test_paths_keyword_friendly(self, day0):
        doorway, _ = _doorway_setup(day0, CloakingType.REDIRECT)
        for page in doorway.pages:
            assert page.path.endswith(".html")
            assert "cheap-uggs" in page.path or "uggs-outlet" in page.path

    def test_root_preserved_on_compromise(self, day0):
        doorway, site = _doorway_setup(day0, CloakingType.REDIRECT)
        root = site.get_page("/")
        assert "travel blog" in root.respond(USER, day0).html

    def test_quality_in_range(self, day0):
        doorway, _ = _doorway_setup(day0, CloakingType.REDIRECT)
        assert 0.4 <= doorway.quality <= 1.0
