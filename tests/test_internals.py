"""Breadth tests: event log, campaign internals, engine ranking properties,
schedule properties, and miscellaneous corners."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.util.rng import RandomStreams
from repro.util.simtime import DateRange, SimDate
from repro.ecosystem.events import EventLog
from repro.seo.schedule import Burst, EffortSchedule, random_schedule
from repro.seo.campaign import Campaign, CampaignSpec
from repro.search import RankingModel, SearchEngine, SearchIndex
from repro.web.domains import DomainRegistry
from repro.web.sites import DynamicPage, Site, SiteKind
from repro.web.fetch import PageResult, USER


class TestEventLog:
    def test_record_and_query_by_kind(self, day0):
        log = EventLog()
        log.record("a", day0, x=1)
        log.record("b", day0 + 1, y=2)
        log.record("a", day0 + 2, x=3)
        assert len(log) == 3
        assert [e.payload["x"] for e in log.of_kind("a")] == [1, 3]
        assert log.of_kind("missing") == []

    def test_iteration_preserves_order(self, day0):
        log = EventLog()
        for i in range(5):
            log.record("k", day0 + i, i=i)
        assert [e.payload["i"] for e in log] == list(range(5))

    def test_events_are_frozen(self, day0):
        log = EventLog()
        event = log.record("k", day0)
        with pytest.raises(Exception):
            event.kind = "other"


class TestScheduleProperties:
    @given(
        st.integers(0, 200), st.integers(5, 120),
        st.floats(0.1, 1.0), st.floats(0.0, 0.1),
    )
    @settings(max_examples=60, deadline=None)
    def test_level_bounded_by_peak_and_background(self, start, duration, level, background):
        day0 = SimDate("2013-11-13")
        schedule = EffortSchedule(
            [Burst(day0 + start, duration, level)], background=background
        )
        for offset in (0, start, start + duration - 1, start + duration, 400):
            value = schedule.level(day0 + offset)
            assert min(background, level) <= value <= max(background, level)

    def test_level_cached(self, day0):
        schedule = EffortSchedule([Burst(day0, 10, 0.5)])
        assert schedule.level(day0) == schedule.level(day0)

    @given(st.integers(1, 3))
    @settings(max_examples=20, deadline=None)
    def test_random_schedule_burst_count(self, count):
        window = DateRange("2013-11-13", "2014-07-15")
        schedule = random_schedule(
            RandomStreams(1), "x", window, 30, 0.7, burst_count=count
        )
        assert len(schedule.bursts) == count

    def test_pinned_main_start(self):
        window = DateRange("2013-11-13", "2014-07-15")
        schedule = random_schedule(
            RandomStreams(1), "x", window, 30, 0.7, main_start_offset=0
        )
        assert schedule.bursts[0].start == window.start


class TestCampaignInternals:
    def _world_and_campaign(self, spec=None):
        from repro.ecosystem import Simulator, small_preset

        sim = Simulator(small_preset(days=40))
        world = sim.build()
        return world, world.campaign_by_name("MSVALIDATE")

    def test_brand_pool_sized_by_spec(self):
        world, campaign = self._world_and_campaign()
        assert len(campaign.brand_pool) == campaign.spec.brands

    def test_stores_distributed_across_verticals(self):
        world, campaign = self._world_and_campaign()
        verticals = {s.vertical for s in campaign.stores}
        assert verticals <= set(campaign.spec.verticals)
        assert len(campaign.stores) >= campaign.spec.stores

    def test_store_pages_complete(self, day0):
        world, campaign = self._world_and_campaign()
        store = campaign.stores[0]
        site = world.web.get_site(store.current_domain.name)
        paths = site.paths()
        assert "/" in paths
        assert "/checkout" in paths
        assert "/checkout/confirm" in paths
        assert any(p.startswith("/product/") for p in paths)

    def test_checkout_confirm_allocates_sequentially(self, day0):
        world, campaign = self._world_and_campaign()
        store = campaign.stores[0]
        site = world.web.get_site(store.current_domain.name)
        page = site.get_page("/checkout/confirm")
        first = page.respond(USER, world.window.start)
        second = page.respond(USER, world.window.start)
        import re
        a = int(re.search(r"Order Number:\s*(\d+)", first.html).group(1))
        b = int(re.search(r"Order Number:\s*(\d+)", second.html).group(1))
        assert b == a + 1

    def test_plain_checkout_shows_no_number(self):
        world, campaign = self._world_and_campaign()
        store = campaign.stores[0]
        site = world.web.get_site(store.current_domain.name)
        page = site.get_page("/checkout")
        assert "Order Number" not in page.respond(USER, world.window.start).html

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            CampaignSpec(name="X", verticals=["V"], doorways=1, stores=1,
                         brands=0, peak_days=1)


def _engine_with_candidates(seed, authorities):
    streams = RandomStreams(seed)
    registry = DomainRegistry()
    index = SearchIndex()
    day0 = SimDate("2013-11-13")
    for i, authority in enumerate(authorities):
        domain = registry.register(f"s{i}.com", day0)
        site = Site(domain, SiteKind.LEGITIMATE, authority=authority, created_on=day0)
        index.add_page("t", site, "/", relevance=0.5)
    return SearchEngine(index, streams, ranking=RankingModel(noise_sigma=0.0))


class TestEngineProperties:
    @given(st.lists(st.floats(0.0, 1.0), min_size=2, max_size=30), st.integers(0, 3))
    @settings(max_examples=40, deadline=None)
    def test_zero_noise_ranks_by_score(self, authorities, seed):
        engine = _engine_with_candidates(seed, authorities)
        serp = engine.serp("t", SimDate("2014-01-01"))
        scores = [r.score for r in serp.results]
        assert scores == sorted(scores, reverse=True)

    def test_host_cap_honored_even_with_many_pages(self, day0):
        streams = RandomStreams(1)
        registry = DomainRegistry()
        index = SearchIndex()
        domain = registry.register("big.com", day0)
        site = Site(domain, SiteKind.LEGITIMATE, authority=0.9, created_on=day0)
        for i in range(20):
            index.add_page("t", site, f"/p{i}.html", relevance=0.9)
        engine = SearchEngine(index, streams, max_results_per_host=2)
        assert len(engine.serp("t", day0)) == 2

    def test_site_query_empty_for_unknown(self, day0):
        engine = _engine_with_candidates(0, [0.5])
        assert engine.site_query("nope.com", day0) == []


class TestDynamicPage:
    def test_responder_receives_profile_and_day(self, day0):
        seen = {}

        def respond(profile, day):
            seen["agent"] = profile.user_agent
            seen["day"] = day
            return PageResult(html="<html></html>")

        page = DynamicPage("/x", respond)
        page.respond(USER, day0)
        assert seen["agent"] == USER.user_agent
        assert seen["day"] == day0


class TestWorldMisc:
    def test_compromise_pool_drains(self):
        from repro.ecosystem import Simulator, small_preset

        config = small_preset(days=40)
        sim = Simulator(config)
        world = sim.build()
        before = world.compromise_pool_remaining()
        sim.run()
        assert world.compromise_pool_remaining() <= before

    def test_take_compromise_target_exhausts_gracefully(self):
        from repro.ecosystem.world import World

        # Direct check on the pool primitive.
        from repro.ecosystem import Simulator, small_preset
        sim = Simulator(small_preset(days=10))
        world = sim.build()
        while world.take_compromise_target() is not None:
            pass
        assert world.take_compromise_target() is None
