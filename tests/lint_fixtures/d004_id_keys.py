"""D004 fixture: ``id()`` as key/member (positive/negative/suppressed)."""


def bad_subscript_key(cache, obj):
    cache[id(obj)] = obj  # finding: id() as mapping key


def bad_id_set(items):
    return set(id(e) for e in items)  # finding: set of ids


def bad_membership(doomed, obj):
    return id(obj) in doomed  # finding: membership over ids


def ok_stable_key(cache, entry):
    cache[entry.entry_key] = entry  # no finding: stable identity attribute


def waived_live_pass(live_nodes):
    # repro: allow-D004 fixture: every node is strongly referenced for the whole pass
    return {id(n) for n in live_nodes}
