"""D003 fixture: wall-clock reads (positive/negative/suppressed)."""

import time
from datetime import date, datetime


def bad_time():
    return time.time()  # finding: wall clock


def bad_now():
    return datetime.now()  # finding: wall clock


def bad_today():
    return date.today()  # finding: wall clock


def ok_monotonic():
    return time.perf_counter()  # no finding: monotonic perf timer


def waived_stamp():
    # repro: allow-D003 fixture: operational log stamp, never feeds simulation state
    return time.time_ns()
