"""D007 fixture: module state written from pool workers (pos/neg/suppressed)."""

from concurrent.futures import ThreadPoolExecutor

RESULTS = []
TOTALS = {}


def bad_worker(item):
    RESULTS.append(item)  # finding: worker mutates module-level list
    return item


def ok_worker(item):
    local = [item]
    local.append(item)  # no finding: local accumulator
    return local


def run(items):
    with ThreadPoolExecutor(max_workers=2) as pool:
        list(pool.map(bad_worker, items))
        return list(pool.map(ok_worker, items))


def waived_worker(item):
    # repro: allow-D007 fixture: writes are disjoint per item and merged under a lock elsewhere
    TOTALS[item] = item
    return item


def run_waived(items):
    with ThreadPoolExecutor(max_workers=2) as pool:
        return list(pool.map(waived_worker, items))
