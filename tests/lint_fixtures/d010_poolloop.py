"""D010 fixture: pool construction inside a loop (pos/neg/suppressed)."""

import multiprocessing
from multiprocessing import Pool


def bad_daily_crawl(days, work):
    results = []
    for day in days:
        with Pool(processes=2) as pool:  # finding: a fresh pool every day
            results.extend(pool.map(str, work[day]))
    return results


def ok_persistent_pool(days, work):
    results = []
    with multiprocessing.get_context("spawn").Pool(2) as pool:  # no finding
        for day in days:
            results.extend(pool.map(str, work[day]))
    return results


def waived_startup_bench(days):
    for _day in days:
        # repro: allow-D010 fixture: the pool startup cost is the measurement
        pool = multiprocessing.Pool(2)
        pool.terminate()
