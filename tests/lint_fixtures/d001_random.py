"""D001 fixture: stdlib ``random`` discipline (positive/negative/suppressed)."""

import random


def bad_global_draw():
    return random.random()  # finding: module-global RNG


def bad_unseeded():
    return random.Random()  # finding: unseeded construction


def ok_instance_draw(rng):
    return rng.random()  # no finding: draw from an injected stream


def waived_seeded():
    # repro: allow-D001 fixture: seed is an explicit constant, reproducible by construction
    return random.Random(7)
