"""D005 fixture: unordered iteration -> ordered output (pos/neg/suppressed)."""


def bad_list_of_values(mapping):
    return list(mapping.values())  # finding: view order into a list


def bad_join_over_set(items):
    return ",".join(str(x) for x in set(items))  # finding: hash order into a string


def bad_accumulating_loop(mapping):
    out = []
    for value in mapping.values():  # finding: view order accumulated
        out.append(value)
    return out


def ok_sorted(mapping):
    return sorted(mapping.values())  # no finding: explicitly sorted


def ok_reduction(items):
    return max(set(items))  # no finding: order-insensitive reduction


def waived_insertion_order(mapping):
    # repro: allow-D005 fixture: insertion order is documented as deterministic here
    return list(mapping.keys())
