"""D009 fixture: retry discipline (positive/negative/suppressed)."""

import time


def bad_unbounded(fetch, url):
    while True:  # finding: no attempt bound
        try:
            return fetch(url)
        except IOError:
            continue


def bad_wall_clock_backoff(fetch, url, backoff_s):
    for attempt in range(3):
        try:
            return fetch(url)
        except IOError:
            time.sleep(backoff_s * 2 ** attempt)  # finding: host stalls
    return None


def ok_bounded_simulated(fetch, url, policy, clock):
    for attempt in range(policy.max_attempts):
        try:
            return fetch(url)
        except IOError:
            clock.advance_s(min(policy.cap_s, policy.base_s * 2 ** attempt))
    return None


def ok_event_loop(queue, handle):
    while True:  # no finding: not a retry loop (no exception handler)
        item = queue.get()
        if item is None:
            break
        handle(item)


def waived_interactive_poll(fetch, url):
    # repro: allow-D009 fixture: operator-facing poll, bounded by ctrl-C
    while True:
        try:
            return fetch(url)
        except IOError:
            continue
