"""Call-graph fixture: cross-module recursion cycle, decorator, global."""

from graphcase import beta

COUNTS = {}


def countdown(n):
    if n <= 0:
        return 0
    return beta.bounce(n - 1)


def logged(fn):
    def wrapper(*args, **kwargs):
        return fn(*args, **kwargs)
    return wrapper


@logged
def decorated_entry():
    return countdown(3)


def bump():
    COUNTS["calls"] = COUNTS.get("calls", 0) + 1
