"""Other half of the graphcase cycle, plus a method-resolution target."""

from graphcase import alpha


class Tracker:
    def __init__(self):
        self.seen = []

    def note(self, n):
        self.seen.append(n)


def bounce(n):
    tracker = Tracker()
    tracker.note(n)
    alpha.bump()
    return alpha.countdown(n)
