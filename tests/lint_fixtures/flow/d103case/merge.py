"""Merge-path ordering fixture (D103 positive / negative / waived)."""


# repro: merge-root
def merge(shards):
    total = 0
    for shard in shards:
        total += tally(shard)
        total += tally_sorted(shard)
        total += tally_waived(shard)
    return total


def tally(shard):
    pending = set(shard)
    total = 0
    for item in pending:
        total += item
    return total


def tally_sorted(shard):
    total = 0
    for item in sorted(set(shard)):
        total += item
    return total


def tally_waived(shard):
    seen = set(shard)
    count = 0
    # repro: allow-D103 commutative integer count; iteration order cannot change it
    for _item in seen:
        count += 1
    return count
