"""Effect-contract fixture (D104 positive / negative / unknown / waived)."""

TOTALS = {}


# repro: effects=pure
def declared_pure_but_counts(name):
    TOTALS[name] = TOTALS.get(name, 0) + 1


# repro: effects=pure
def truly_pure(a, b):
    return a + b


class Gauge:
    def __init__(self):
        self.value = 0

    # repro: effects=worker-safe
    def add(self, amount):
        self.value += amount


# repro: effects=bogus
def unknown_contract():
    return 1


# repro: allow-D104 ledger writes here are diverted and replayed deterministically
# repro: effects=pure
def waived_impure(name):
    TOTALS[name] = TOTALS.get(name, 0) - 1
