"""Artifact writers for the D102 fixture (positive / negative / waived)."""

from d102case import keys


def dump(entries, path):
    with open(path, "w") as handle:  # repro: allow-D011 fixture: D102 needs a bare write sink
        for entry in entries:
            key = keys.key_of(entry)
            handle.write(str(key) + "\n")


def dump_stable(entries, path):
    with open(path, "w") as handle:  # repro: allow-D011 fixture: D102 needs a bare write sink
        for entry in entries:
            key = keys.stable_key(entry)
            handle.write(str(key) + "\n")


# repro: allow-D102 keys are debug-only scratch output, never compared across runs
def dump_waived(entries, path):
    with open(path, "w") as handle:  # repro: allow-D011 fixture: D102 needs a bare write sink
        for entry in entries:
            key = keys.key_of(entry)
            handle.write(str(key) + "\n")
