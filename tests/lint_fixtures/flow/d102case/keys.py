"""The PR 1 bug class, split across a module boundary.

``key_of`` returns ``id(entry)`` — not a dict key or set member here, so
per-file D004 stays quiet.  Only the interprocedural pass sees the
identity value flow into an artifact writer one module away.
"""


def key_of(entry):
    return id(entry)


def stable_key(entry):
    return entry.name
