"""Worker-touched module state with a reasoned waiver (D101 waived)."""

LOCAL_STATS = {}


def tally(name):
    # repro: allow-D101 replica-local scratch; reset per task, never read by the parent
    LOCAL_STATS[name] = LOCAL_STATS.get(name, 0) + 1
