"""Parent-side counters a shard worker must never touch (D101 positive)."""

COUNTS = {}


def bump(name):
    COUNTS[name] = COUNTS.get(name, 0) + 1


def peek(name):
    return COUNTS.get(name, 0)
