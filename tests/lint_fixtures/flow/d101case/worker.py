"""Worker entry points for the D101 fixture.

``task`` reaches a parent-owned global two modules away (fires);
``safe_task`` only reads (quiet); ``local_task`` mutates this spawning
module's own replica state (allowed); ``waived_task`` hits a reasoned
inline waiver in ``waived.py``.
"""

from d101case import state, waived

PROGRESS = {}


# repro: worker-entry
def task(item):
    state.bump("tasks")
    return item * 2


# repro: worker-entry
def safe_task(item):
    return state.peek("tasks") + item


# repro: worker-entry
def local_task(item):
    PROGRESS["done"] = PROGRESS.get("done", 0) + 1
    return item


# repro: worker-entry
def waived_task(item):
    waived.tally("tasks")
    return item
