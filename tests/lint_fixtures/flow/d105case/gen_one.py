"""First claimant of the shared streams (lexicographically the owner)."""


def draw_demand(streams):
    return streams.get("demand").random()


def draw_shared_cursor(streams):
    return streams.get("cursor").random()
