"""Second module drawing the same streams (D105 positive / negative / waived)."""


def draw_demand_again(streams):
    return streams.get("demand").random()


def draw_own(streams):
    return streams.get("supply").random()


def draw_cursor(streams):
    # repro: allow-D105 intentional shared cursor: both draws replay one fixed sequence
    return streams.get("cursor").random()
