"""D006 fixture: mutable default arguments (positive/negative/suppressed)."""


def bad_accumulator(item, acc=[]):  # finding: shared list default
    acc.append(item)
    return acc


def ok_none_default(item, acc=None):  # no finding
    if acc is None:
        acc = []
    acc.append(item)
    return acc


def waived_readonly(item, table={}):  # repro: allow-D006 fixture: table is never mutated, read-only lookup
    return table.get(item)
