"""D002 fixture: numpy RNG discipline (positive/negative/suppressed)."""

import numpy as np


def bad_global_seed():
    np.random.seed(0)  # finding: module-global RandomState


def bad_global_draw():
    return np.random.rand(3)  # finding: module-global RandomState


def ok_generator():
    return np.random.Generator(np.random.PCG64(7))  # no finding


def waived_default_rng():
    # repro: allow-D002 fixture: version-pinned environment, default bit generator acceptable here
    return np.random.default_rng(7)
