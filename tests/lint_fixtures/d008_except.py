"""D008 fixture: swallowed exceptions (positive/negative/suppressed)."""


def bad_bare(fetch, url):
    try:
        return fetch(url)
    except:  # finding: bare except
        return None


def bad_silent(fetch, url):
    try:
        fetch(url)
    except Exception:  # finding: silent pass
        pass


def ok_specific(fetch, url):
    try:
        return fetch(url)
    except ValueError:
        return None


def ok_handled(fetch, url, failures):
    try:
        return fetch(url)
    except Exception as exc:
        failures.append(exc)  # no finding: failure is recorded
        return None


def waived_probe(fetch, url):
    try:
        fetch(url)
    # repro: allow-D008 fixture: best-effort probe, failures intentionally ignored
    except Exception:
        pass
