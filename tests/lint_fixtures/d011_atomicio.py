"""D011 fixture: raw write-mode open for artifacts (pos/neg/suppressed)."""

import json
import pickle

from repro.util.atomicio import atomic_write


def bad_dump_table(path, rows):
    with open(path, "w") as handle:  # finding: torn file on a crash
        handle.write("\n".join(rows))


def bad_pickle_graph(path, graph):
    with open(path, mode="wb") as handle:  # finding: write mode via kwarg
        pickle.dump(graph, handle)


def ok_read_config(path):
    with open(path) as handle:  # no finding: read mode
        return json.load(handle)


def ok_atomic_dump(path, payload):
    with atomic_write(path) as handle:  # no finding: the sanctioned writer
        json.dump(payload, handle)


def waived_append_log(path, line):
    # repro: allow-D011 fixture: append-only debug log, a torn tail is fine
    with open(path, "a") as handle:
        handle.write(line + "\n")
