"""Tests for scenario config, presets, world, and simulator behaviour."""

import pytest

from repro.util.simtime import DateRange, SimDate, STUDY_END, STUDY_START
from repro.seo.campaign import CampaignSpec
from repro.seo.cloaking import CloakingType
from repro.ecosystem import (
    ScenarioConfig,
    Simulator,
    VerticalSpec,
    paper_preset,
    small_preset,
)
from repro.ecosystem.presets import CAMPAIGN_TABLE, VERTICAL_TABLE


class TestConfigValidation:
    def test_duplicate_verticals_rejected(self):
        with pytest.raises(ValueError):
            ScenarioConfig(
                verticals=[VerticalSpec("A", ["A"]), VerticalSpec("A", ["A"])],
            )

    def test_campaign_unknown_vertical_rejected(self):
        with pytest.raises(ValueError):
            ScenarioConfig(
                verticals=[VerticalSpec("A", ["A"])],
                campaigns=[
                    CampaignSpec(name="X", verticals=["B"], doorways=1,
                                 stores=1, brands=1, peak_days=10)
                ],
            )

    def test_campaign_spec_validation(self):
        with pytest.raises(ValueError):
            CampaignSpec(name="X", verticals=[], doorways=1, stores=1,
                         brands=1, peak_days=1)
        with pytest.raises(ValueError):
            CampaignSpec(name="X", verticals=["V"], doorways=0, stores=1,
                         brands=1, peak_days=1)


class TestPaperPreset:
    def test_sixteen_verticals(self):
        config = paper_preset(scale=0.05)
        assert len(config.verticals) == 16
        names = {v.name for v in config.verticals}
        assert {"Louis Vuitton", "Uggs", "Golf", "Sunglasses", "Watches"} <= names

    def test_52_campaigns(self):
        config = paper_preset(scale=0.05)
        assert len(config.campaigns) == 52

    def test_key_targets_13_verticals(self):
        config = paper_preset(scale=0.05)
        key = next(c for c in config.campaigns if c.name == "KEY")
        assert len(key.verticals) == 13
        assert "Louis Vuitton" not in key.verticals
        assert "Uggs" not in key.verticals
        assert "Ed Hardy" not in key.verticals

    def test_scaled_counts_proportional(self):
        small = paper_preset(scale=0.05)
        large = paper_preset(scale=0.2)
        get = lambda cfg, name: next(c for c in cfg.campaigns if c.name == name)
        assert get(large, "KEY").doorways > get(small, "KEY").doorways * 2
        # Order of Table 2 preserved: KEY has by far the most doorways.
        assert get(large, "KEY").doorways == max(c.doorways for c in large.campaigns)

    def test_biglove_rotates_proactively(self):
        config = paper_preset(scale=0.05)
        biglove = next(c for c in config.campaigns if c.name == "BIGLOVE")
        assert biglove.proactive_rotation_days
        assert "Chanel" in biglove.extra_brands

    def test_two_firms_with_paper_clients(self):
        config = paper_preset(scale=0.05)
        firms = {f.name: f for f in config.firms}
        assert set(firms) == {"GBC", "SMGPA"}
        assert len(firms["GBC"].clients) == 17
        assert len(firms["SMGPA"].clients) == 11
        assert firms["GBC"].policy.brand_interval_overrides["Uggs"] == 14

    def test_key_demotion_scripted_mid_december(self):
        config = paper_preset(scale=0.05)
        assert any(
            s.campaign == "KEY" and s.day.month == 12 and s.day.year == 2013
            for s in config.scripted_demotions
        )

    def test_msvalidate_is_supplier_partner(self):
        assert "MSVALIDATE" in paper_preset(scale=0.05).supplier_partners

    def test_window_matches_study(self):
        config = paper_preset(scale=0.05)
        assert config.window.start == STUDY_START
        assert config.window.end == STUDY_END

    def test_scale_validated(self):
        with pytest.raises(ValueError):
            paper_preset(scale=0.0)
        with pytest.raises(ValueError):
            paper_preset(scale=1.5)

    def test_deterministic(self):
        a = paper_preset(scale=0.05)
        b = paper_preset(scale=0.05)
        assert [c.doorways for c in a.campaigns] == [c.doorways for c in b.campaigns]
        assert [c.verticals for c in a.campaigns] == [c.verticals for c in b.campaigns]

    def test_table_constants_match_paper(self):
        # Spot-check Table 2 rows.
        rows = dict((r[0], r[1:]) for r in CAMPAIGN_TABLE)
        assert rows["KEY"] == (1980, 97, 28, 65)
        assert rows["MSVALIDATE"] == (530, 98, 6, 52)
        assert rows["VERA"] == (155, 38, 12, 156)
        assert len(CAMPAIGN_TABLE) == 38
        assert len(VERTICAL_TABLE) == 16


class TestSimulatorGroundTruth:
    """World-level invariants after the session study's run."""

    def test_campaign_inventory_built(self, world):
        for campaign in world.campaigns():
            assert campaign.stores
            assert campaign.doorways
            assert campaign.cnc is not None

    def test_doorway_counts_match_specs(self, world):
        for campaign in world.campaigns():
            assert len(campaign.doorways) <= campaign.spec.doorways
            # All planned doorways eventually created.
            assert not campaign._doorway_plan

    def test_every_store_tracked(self, world):
        for campaign in world.campaigns():
            for store in campaign.stores:
                assert world.store_by_id(store.store_id) is store
                for host in store.all_hosts():
                    assert world.store_at(host) is store

    def test_rotations_follow_seizures(self, world):
        """Each seizure-reason rotation must target a store whose prior
        domain really was seized."""
        rotations = world.events.of_kind(world.events.ROTATION)
        seizure_rotations = [e for e in rotations if e.payload["reason"] == "seizure"]
        for event in seizure_rotations:
            old = world.web.domains.get(event.payload["old_host"])
            assert old is not None and old.is_seized
            assert old.seizure.day <= event.day

    def test_seized_stores_rotated_within_reaction_window(self, world):
        rotations = world.events.of_kind(world.events.ROTATION)
        for event in rotations:
            if event.payload["reason"] != "seizure":
                continue
            old = world.web.domains.get(event.payload["old_host"])
            delay = event.day - old.seizure.day
            assert delay >= 1

    def test_cnc_points_to_live_domain_after_rotation(self, world):
        for campaign in world.campaigns():
            for store in campaign.stores:
                landing = campaign.cnc.landing_url(store.store_id)
                assert landing == f"http://{store.current_domain.name}/"

    def test_compromise_pool_consumed_not_overdrawn(self, world):
        assert world.compromise_pool_remaining() >= 0

    def test_orders_happened(self, world):
        total = sum(s.total_orders_created() for s in world.stores())
        assert total > 0

    def test_supplier_received_partner_volume(self, study):
        supplier = study.supplier
        assert supplier is not None
        campaigns = {r.campaign for r in supplier.scrape_all()}
        assert "MSVALIDATE" in campaigns

    def test_store_sightings_track_visibility(self, world):
        sightings = world.store_sightings("Uggs")
        assert sightings
        for sighting in sightings:
            assert sighting.first_seen <= sighting.last_seen


class TestSimulatorDeterminism:
    def test_same_seed_same_outcome(self):
        config = small_preset(days=30)
        a = Simulator(config)
        a.run()
        b = Simulator(small_preset(days=30))
        b.run()
        orders_a = sorted(
            (s.store_id, s.total_orders_created()) for s in a.world.stores()
        )
        orders_b = sorted(
            (s.store_id, s.total_orders_created()) for s in b.world.stores()
        )
        assert orders_a == orders_b
        assert len(a.world.events) == len(b.world.events)

    def test_different_seed_different_outcome(self):
        a = Simulator(small_preset(seed=1, days=30))
        a.run()
        b = Simulator(small_preset(seed=2, days=30))
        b.run()
        orders_a = sum(s.total_orders_created() for s in a.world.stores())
        orders_b = sum(s.total_orders_created() for s in b.world.stores())
        assert orders_a != orders_b
