"""Tests for the statistics helpers, including the paper-specific
peak-range and purchase-pair rate computations."""

import pytest
from hypothesis import given, strategies as st

from repro.util.stats import (
    clamp,
    cumulative_to_rates,
    linear_interpolate,
    mean,
    median,
    peak_range,
    percentile,
)


class TestBasics:
    def test_mean(self):
        assert mean([1, 2, 3]) == 2.0

    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])

    def test_median_odd(self):
        assert median([5, 1, 3]) == 3

    def test_median_even_interpolates(self):
        assert median([1, 2, 3, 4]) == 2.5

    def test_percentile_bounds(self):
        values = list(range(11))
        assert percentile(values, 0) == 0
        assert percentile(values, 100) == 10
        assert percentile(values, 50) == 5

    def test_percentile_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            percentile([1], 101)

    def test_clamp(self):
        assert clamp(5, 0, 3) == 3
        assert clamp(-1, 0, 3) == 0
        assert clamp(2, 0, 3) == 2

    def test_clamp_empty_interval_raises(self):
        with pytest.raises(ValueError):
            clamp(1, 3, 0)

    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False,
                              min_value=-1e6, max_value=1e6), min_size=1))
    def test_percentile_within_minmax(self, values):
        assert min(values) <= percentile(values, 37.5) <= max(values)


class TestPeakRange:
    def test_single_spike(self):
        counts = [0, 0, 100, 0, 0]
        assert peak_range(counts) == (2, 2)

    def test_uniform_takes_minimum_span(self):
        counts = [1] * 10
        lo, hi = peak_range(counts, fraction=0.6)
        assert hi - lo + 1 == 6

    def test_burst_with_tail(self):
        # The only 60% window of length three spans days 3-5.
        counts = [0, 0, 0, 30, 5, 30, 0, 0, 0, 0]
        lo, hi = peak_range(counts, fraction=0.6)
        assert (lo, hi) == (3, 5)

    def test_returns_a_minimal_window(self):
        counts = [1, 1, 1, 20, 20, 20, 1, 1, 1, 1]
        lo, hi = peak_range(counts, fraction=0.6)
        target = 0.6 * sum(counts)
        assert sum(counts[lo:hi + 1]) >= target
        width = hi - lo + 1
        # No strictly narrower window reaches the target.
        for start in range(len(counts) - width + 2):
            end = start + width - 2
            if end < len(counts):
                assert sum(counts[start:end + 1]) < target

    def test_zero_total_raises(self):
        with pytest.raises(ValueError):
            peak_range([0, 0, 0])

    def test_bad_fraction_raises(self):
        with pytest.raises(ValueError):
            peak_range([1], fraction=0.0)

    @given(st.lists(st.floats(min_value=0, max_value=100), min_size=1).filter(
        lambda xs: sum(xs) > 0))
    def test_window_contains_fraction(self, counts):
        lo, hi = peak_range(counts, fraction=0.6)
        assert 0 <= lo <= hi < len(counts)
        assert sum(counts[lo:hi + 1]) >= 0.6 * sum(counts) - 1e-9


class TestInterpolation:
    def test_exact_points(self):
        samples = [(0, 0.0), (10, 100.0)]
        assert linear_interpolate(samples, [0, 10]) == [0.0, 100.0]

    def test_midpoint(self):
        assert linear_interpolate([(0, 0.0), (10, 100.0)], [5]) == [50.0]

    def test_clamps_outside_span(self):
        samples = [(5, 10.0), (10, 20.0)]
        assert linear_interpolate(samples, [0, 20]) == [10.0, 20.0]

    def test_duplicate_x_raises(self):
        with pytest.raises(ValueError):
            linear_interpolate([(1, 1.0), (1, 2.0)], [1])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            linear_interpolate([], [1])


class TestCumulativeToRates:
    def test_simple_rate(self):
        rates = cumulative_to_rates([(0, 100.0), (10, 200.0)])
        assert rates[0] == 10.0
        assert rates[9] == 10.0
        assert 10 not in rates

    def test_two_segments(self):
        rates = cumulative_to_rates([(0, 0.0), (5, 50.0), (10, 60.0)])
        assert rates[2] == 10.0
        assert rates[7] == 2.0

    def test_decreasing_counter_raises(self):
        with pytest.raises(ValueError):
            cumulative_to_rates([(0, 10.0), (5, 5.0)])

    def test_duplicate_day_raises(self):
        with pytest.raises(ValueError):
            cumulative_to_rates([(3, 1.0), (3, 2.0)])

    def test_single_sample_empty(self):
        assert cumulative_to_rates([(0, 5.0)]) == {}

    @given(
        st.lists(
            st.tuples(st.integers(0, 400), st.integers(0, 10_000)),
            min_size=2, max_size=20, unique_by=lambda t: t[0],
        )
    )
    def test_rates_reconstruct_total(self, raw):
        """Summing day rates over each gap recovers the counter deltas."""
        pts = sorted(raw)
        # Make the counter monotone.
        running = 0
        samples = []
        for (x, delta) in pts:
            running += delta
            samples.append((x, float(running)))
        rates = cumulative_to_rates(samples)
        total = sum(rates.values())
        expected = samples[-1][1] - samples[0][1]
        assert abs(total - expected) < 1e-6
