"""Tests for the interventions: notices, search ops, seizures."""

import pytest

from repro.util.rng import RandomStreams
from repro.util.simtime import SimDate
from repro.interventions import (
    BrandProtectionFirm,
    CourtCase,
    NoticeInfo,
    SeizureAuthority,
    SeizurePolicy,
    build_notice_page,
    parse_notice_page,
)
from repro.interventions.search_ops import ScriptedDemotion, SearchOpsPolicy
from repro.web.hosting import Web
from repro.web.fetch import USER


class TestNotices:
    def _info(self):
        return NoticeInfo(
            case_id="14-cv-0042-gbc",
            firm="GBC",
            brand="Louis Vuitton",
            domain="lvvipmall.com",
            co_seized=["lvvipmall.com", "lvtopshop.net", "lvoutlet24.com"],
        )

    def test_roundtrip(self):
        info = self._info()
        parsed = parse_notice_page(build_notice_page(info))
        assert parsed is not None
        assert parsed.case_id == info.case_id
        assert parsed.firm == "GBC"
        assert parsed.brand == "Louis Vuitton"
        assert parsed.domain == "lvvipmall.com"
        assert parsed.co_seized == info.co_seized

    def test_non_notice_returns_none(self):
        assert parse_notice_page("<html><body><h1>Shop</h1></body></html>") is None

    def test_notice_is_noindex(self):
        assert 'name="robots"' in build_notice_page(self._info())


class TestCourtCase:
    def test_validation(self, day0):
        with pytest.raises(ValueError):
            CourtCase("c", "GBC", "Uggs", day0, day0 - 1, ["a.com"])
        with pytest.raises(ValueError):
            CourtCase("c", "GBC", "Uggs", day0, day0 + 1, [])


class TestSeizureAuthority:
    def test_execute_seizes_and_serves_notice(self, day0):
        web = Web()
        web.domains.register("store.com", day0)
        authority = SeizureAuthority(web)
        case = CourtCase("14-cv-1-gbc", "GBC", "Uggs", day0 + 10, day0 + 20,
                         ["store.com", "ghost.com"])
        policy = SeizurePolicy(notice_fraction=1.0)
        import random
        seized = authority.execute(case, policy, random.Random(0))
        assert seized == ["store.com"]  # ghost.com was never registered
        response = web.fetch("http://store.com/", USER, day0 + 20)
        parsed = parse_notice_page(response.html)
        assert parsed is not None
        assert parsed.case_id == "14-cv-1-gbc"
        assert "ghost.com" in parsed.co_seized

    def test_already_seized_skipped(self, day0):
        web = Web()
        web.domains.register("s.com", day0)
        authority = SeizureAuthority(web)
        import random
        rng = random.Random(0)
        policy = SeizurePolicy()
        case1 = CourtCase("c1", "GBC", "Uggs", day0, day0 + 1, ["s.com"])
        case2 = CourtCase("c2", "GBC", "Uggs", day0, day0 + 2, ["s.com"])
        assert authority.execute(case1, policy, rng) == ["s.com"]
        assert authority.execute(case2, policy, rng) == []


class _FakeWorldForOps:
    """Minimal world stub for the search team."""

    def __init__(self, engine, doorways, campaigns=None):
        self.engine = engine
        self._doorways = doorways
        self._campaigns = campaigns or {}
        self.demotions = []

    def active_doorways(self):
        return iter(self._doorways)

    def campaign_by_name(self, name):
        return self._campaigns.get(name)

    def record_demotion(self, name, day, amount):
        self.demotions.append((name, day, amount))


class _FakeDoorway:
    def __init__(self, host, created_on, root_injected=False):
        self.host = host
        self.created_on = created_on
        self.root_injected = root_injected


class _FakeCampaign:
    def __init__(self, name, doorways):
        self.name = name
        self.doorways = doorways


class TestSearchQualityTeam:
    def test_root_injected_labeled_much_more_often(self, day0):
        from repro.interventions.search_ops import SearchQualityTeam
        from repro.search.engine import SearchEngine
        from repro.search.index import SearchIndex

        streams = RandomStreams(21)
        engine = SearchEngine(SearchIndex(), streams)
        campaign = _FakeCampaign("C", [])
        rooted = [_FakeDoorway(f"r{i}.com", day0, True) for i in range(300)]
        plain = [_FakeDoorway(f"p{i}.com", day0, False) for i in range(300)]
        world = _FakeWorldForOps(engine, [(campaign, d) for d in rooted + plain])
        team = SearchQualityTeam(SearchOpsPolicy(), streams)
        for offset in range(150):
            team.on_day(world, day0 + offset)
        labeled = team.labeled_hosts()
        rooted_labeled = sum(1 for d in rooted if d.host in labeled)
        plain_labeled = sum(1 for d in plain if d.host in labeled)
        assert rooted_labeled > plain_labeled * 5

    def test_label_delays_in_paper_window(self, day0):
        from repro.interventions.search_ops import SearchQualityTeam
        from repro.search.engine import SearchEngine
        from repro.search.index import SearchIndex

        streams = RandomStreams(22)
        engine = SearchEngine(SearchIndex(), streams)
        campaign = _FakeCampaign("C", [])
        doorways = [_FakeDoorway(f"r{i}.com", day0, True) for i in range(400)]
        world = _FakeWorldForOps(engine, [(campaign, d) for d in doorways])
        team = SearchQualityTeam(SearchOpsPolicy(), streams)
        for offset in range(200):
            team.on_day(world, day0 + offset)
        delays = [labeled_day - day0 for labeled_day in team.labeled_hosts().values()]
        assert delays
        mean_delay = sum(delays) / len(delays)
        assert 13 <= mean_delay <= 32  # the paper's measured window

    def test_scripted_demotion_hits_whole_fleet(self, day0):
        from repro.interventions.search_ops import SearchQualityTeam
        from repro.search.engine import SearchEngine
        from repro.search.index import SearchIndex

        streams = RandomStreams(23)
        engine = SearchEngine(SearchIndex(), streams)
        doorways = [_FakeDoorway(f"k{i}.com", day0) for i in range(40)]
        campaign = _FakeCampaign("KEY", doorways)
        world = _FakeWorldForOps(engine, [(campaign, d) for d in doorways],
                                 {"KEY": campaign})
        team = SearchQualityTeam(
            SearchOpsPolicy(),
            streams,
            scripted=[ScriptedDemotion("KEY", day0 + 5, amount=2.6)],
        )
        team.on_day(world, day0 + 4)
        assert engine.penalty_of("k0.com", day0 + 4) == 0.0
        team.on_day(world, day0 + 5)
        assert engine.penalty_of("k0.com", day0 + 6) == 2.6
        assert world.demotions == [("KEY", day0 + 5, 2.6)]


class _FakeSighting:
    def __init__(self, host, first_seen):
        self.host = host
        self.first_seen = first_seen


class _FakeWorldForFirm:
    def __init__(self, web, sightings):
        self.web = web
        self._sightings = sightings
        self.cases = []

    def store_sightings(self, brand):
        return self._sightings.get(brand, [])

    def record_seizure_case(self, firm, case, seized, day):
        self.cases.append(case)


class TestBrandProtectionFirm:
    def _setup(self, day0, hosts, first_seen_offset=0):
        web = Web()
        for host in hosts:
            web.domains.register(host, day0)
        authority = SeizureAuthority(web)
        sightings = {
            "Uggs": [_FakeSighting(h, day0 + first_seen_offset) for h in hosts]
        }
        world = _FakeWorldForFirm(web, sightings)
        policy = SeizurePolicy(
            case_interval_days=30, batch_size=10, legal_delay_days=7,
            min_observed_age_days=20,
        )
        firm = BrandProtectionFirm("GBC", ["Uggs"], policy, RandomStreams(31), authority)
        return web, world, firm

    def test_cases_filed_in_bulk_after_min_age(self, day0):
        hosts = [f"store{i}.com" for i in range(15)]
        web, world, firm = self._setup(day0, hosts)
        for offset in range(120):
            firm.on_day(world, day0 + offset)
        assert firm.docket
        first = firm.docket[0]
        # Bulk: multiple domains per case, capped at batch size.
        assert 1 < len(first.domains) <= 10
        # Legal delay respected.
        assert first.executed_on - first.filed_on == 7
        # Stores were at least min_observed_age_days old when filed.
        assert first.filed_on - day0 >= 20

    def test_seizures_apply_to_registry(self, day0):
        hosts = [f"store{i}.com" for i in range(5)]
        web, world, firm = self._setup(day0, hosts)
        for offset in range(150):
            firm.on_day(world, day0 + offset)
        seized = [d.name for d in web.domains.seized()]
        assert seized
        for name in seized:
            record = web.domains.get(name).seizure
            assert record.firm == "GBC"
            assert record.brand == "Uggs"
            assert set(record.co_seized) >= {name}

    def test_total_domains_seized_counts_docket(self, day0):
        hosts = [f"store{i}.com" for i in range(5)]
        web, world, firm = self._setup(day0, hosts)
        for offset in range(150):
            firm.on_day(world, day0 + offset)
        assert firm.total_domains_seized() == sum(len(c.domains) for c in firm.docket)

    def test_brand_interval_override(self, day0):
        web = Web()
        authority = SeizureAuthority(web)
        policy = SeizurePolicy(case_interval_days=100,
                               brand_interval_overrides={"Uggs": 14})
        firm = BrandProtectionFirm("GBC", ["Uggs", "Nike"], policy,
                                   RandomStreams(32), authority)
        assert firm._interval_for("Uggs") == 14
        assert firm._interval_for("Nike") == 100
