"""End-to-end behavioural assertions: the headline findings of the paper
must hold in the reproduced pipeline (direction and rough shape)."""

import pytest

from repro.util.simtime import SimDate
from repro.analysis import (
    DailyAggregates,
    campaign_figure4,
    label_coverage,
    rotation_reactions,
    seized_store_lifetimes,
    supplier_summary,
)


class TestHeadlineFindings:
    def test_key_demotion_collapses_key_psrs(self, study):
        """Section 5.2.1: KEY's PSRs drop precipitously after the scripted
        penalization, and orders follow."""
        demotion = next(
            e for e in study.world.events.of_kind(study.world.events.DEMOTION)
            if e.payload["campaign"] == "KEY"
        )
        aggregates = DailyAggregates(study.dataset)
        series = aggregates.campaign_series("KEY")
        before = [v for d, v in series.items() if d < demotion.day.ordinal]
        after = [v for d, v in series.items() if d > demotion.day.ordinal + 7]
        assert before, "KEY never visible before demotion"
        mean_before = sum(before) / len(before)
        mean_after = sum(after) / len(after) if after else 0.0
        assert mean_after < mean_before * 0.25

    def test_key_orders_stop_after_demotion(self, study):
        demotion = next(
            e for e in study.world.events.of_kind(study.world.events.DEMOTION)
            if e.payload["campaign"] == "KEY"
        )
        key = study.world.campaign_by_name("KEY")
        window = study.world.window
        before = after = 0
        for store in key.stores:
            for offset in range(len(window)):
                day = window.start + offset
                orders = store.orders_created_on(day)
                if day < demotion.day:
                    before += orders
                elif day > demotion.day + 7:
                    after += orders
        days_before = demotion.day - window.start
        days_after = window.end - demotion.day - 7
        if days_before > 0 and days_after > 0 and before > 0:
            rate_before = before / days_before
            rate_after = after / days_after
            assert rate_after < rate_before * 0.5

    def test_psr_visibility_correlates_with_orders(self, study):
        """Figure 4's core claim: order rates track PSR prevalence."""
        correlations = []
        for campaign in ("MSVALIDATE", "BIGLOVE", "PHP?P="):
            panel = campaign_figure4(study.dataset, study.orderer, campaign)
            if panel.rate_bins and panel.top100_series:
                correlations.append(panel.visibility_order_correlation)
        assert correlations
        # Most campaigns show a clear positive relationship.
        positive = [c for c in correlations if c > 0.2]
        assert len(positive) >= max(1, len(correlations) // 2)

    def test_seizure_reaction_is_fast(self, study):
        """Section 5.3.2: campaigns redirect doorways to backups within
        days of a seizure, not weeks."""
        stats = rotation_reactions(study.dataset)
        if not any(s.redirected_stores for s in stats):
            pytest.skip("no observed post-seizure redirects in window")
        for s in stats:
            if s.redirected_stores:
                assert s.mean_reaction_days <= 21

    def test_seizures_cover_small_fraction_of_stores(self, study):
        """Section 5.3.1: seizures touch only a few percent of stores, so
        the ecosystem keeps operating."""
        all_stores = study.dataset.store_hosts()
        seized = {
            r.landing_host for r in study.dataset.records if r.seizure_case
        }
        assert len(seized) < len(all_stores)

    def test_label_coverage_is_low(self, study):
        """Section 5.2.2: the 'hacked' label reaches only a small share of
        PSRs (paper: 2.5%)."""
        coverage = label_coverage(study.dataset).coverage
        assert coverage < 0.15

    def test_unknown_share_exists(self, study):
        """Roughly the paper's split: a substantial minority of PSRs cannot
        be attributed (they belong to unlabeled campaigns)."""
        unattributed = sum(1 for r in study.dataset.records if not r.campaign)
        assert 0 < unattributed < len(study.dataset)

    def test_supplier_shape(self, study):
        summary = supplier_summary(study.supplier.scrape_all())
        assert summary.total_records > 0
        assert summary.delivery_rate > 0.85
        assert summary.top_regions_fraction > 0.7


class TestStudyRunApi:
    def test_results_wired(self, study):
        assert study.dataset is study.crawler.dataset
        assert study.archive is study.crawler.archive
        assert study.classifier is not None
        assert study.attribution is not None
        assert study.labeled_pages

    def test_order_campaign_hints_follow_attribution(self, study):
        for tracked in study.orderer.tracked.values():
            if tracked.campaign_hint:
                assert tracked.campaign_hint in study.classifier.classes

    def test_classify_can_be_disabled(self):
        from repro import StudyRun
        from repro.ecosystem import small_preset

        results = StudyRun(small_preset(days=30), classify=False).execute()
        assert results.classifier is None
        assert results.attribution is None
        assert all(not r.campaign for r in results.dataset.records)
