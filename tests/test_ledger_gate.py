"""Tests for the run ledger and the release gate.

Covers the contract chain ISSUE 9 promises:

* ledger append/round-trip — records survive a write/read cycle with
  provenance intact, and the loader tolerates torn lines *anywhere* in
  the file (an append-only log buries a crash's torn tail under later
  appends);
* band math — absolute and relative tolerances, one-sided directions,
  first-match-wins pattern ordering, perf bands parked on foreign hosts;
* gate exit codes through the real CLI — 0 on a clean re-check, 1 on an
  injected Table 2 drift (a perturbed ``peak_days``), 2 on missing
  inputs (no ledger record, no baseline file);
* ``repro compare``/``repro history`` rendering determinism.

The study-shaped records come from the session-scoped ``study`` fixture
so this file adds no extra simulation runs to the suite.
"""

import copy
import json
import os

import pytest

from repro.cli import main
from repro.ecosystem import small_preset
from repro.obs.gate import (
    DEFAULT_BANDS,
    Band,
    check_bands,
    gate_metrics,
    host_fingerprint,
    load_baseline,
    run_gate,
    write_baseline,
)
from repro.obs.ledger import (
    RunLedger,
    build_study_record,
    flatten,
    record_metrics,
)


@pytest.fixture(scope="module")
def study_record(study):
    """One real ledger record built from the session study."""
    return build_study_record(
        small_preset(), study, wall_s=12.5, stride=2, preset="small")


@pytest.fixture(autouse=True)
def no_ambient_ledger(monkeypatch):
    monkeypatch.delenv("REPRO_LEDGER", raising=False)


class TestLedgerRoundTrip:
    def test_append_read_round_trip(self, tmp_path, study_record):
        ledger = RunLedger(str(tmp_path / "ledger.jsonl"))
        written = ledger.append(dict(study_record))
        assert written["run_id"]
        assert written["schema"] == 1
        (loaded,) = ledger.records()
        assert loaded == json.loads(json.dumps(written))
        assert loaded["kind"] == "study"
        assert loaded["key"].endswith("/stride2")
        assert loaded["headline"]["psr"]["total"] > 0
        assert loaded["headline"]["table2"]
        assert ledger.skipped == 0

    def test_torn_line_mid_file_is_skipped_not_fatal(self, tmp_path,
                                                     study_record):
        path = str(tmp_path / "ledger.jsonl")
        ledger = RunLedger(path)
        first = ledger.append(dict(study_record))
        # A crash mid-append leaves a torn, newline-less tail...
        with open(path, "a") as handle:
            handle.write('{"_type": "run", "kind": "stu')
        # ...which the next append buries (self-healing newline prefix).
        second = ledger.append(dict(study_record))
        with pytest.warns(RuntimeWarning, match="skipped 1 unparseable"):
            records = ledger.records()
        assert [r["run_id"] for r in records] == \
            [first["run_id"], second["run_id"]]
        assert ledger.skipped == 1

    def test_find_by_index_and_id_prefix(self, tmp_path, study_record):
        ledger = RunLedger(str(tmp_path / "ledger.jsonl"))
        first = ledger.append(dict(study_record))
        drifted = copy.deepcopy(study_record)
        drifted["headline"]["psr"]["total"] += 1
        second = ledger.append(drifted)
        assert ledger.find("-1")["run_id"] == second["run_id"]
        assert ledger.find("0")["run_id"] == first["run_id"]
        assert ledger.find(first["run_id"][:6])["run_id"] == first["run_id"]
        with pytest.raises(LookupError):
            ledger.find("ffffffffffff")
        with pytest.raises(LookupError):
            ledger.find("99")

    def test_flatten_keeps_numbers_drops_provenance(self):
        flat = flatten({"a": {"b": 2, "c": True, "d": "str"}, "e": 1.5})
        assert flat == {"a.b": 2, "e": 1.5}

    def test_record_metrics_covers_tables_and_curve(self, study_record):
        flat = record_metrics(study_record)
        assert flat["psr.total"] > 0
        assert any(path.startswith("table2.") for path in flat)
        assert any(path.startswith("psr_curve.") for path in flat)
        # Timing is the gate's perf-band business, not a headline metric.
        assert "wall_s" not in flat
        assert gate_metrics(study_record)["wall_s"] == 12.5


class TestBandMath:
    def test_allowed_is_max_of_abs_and_rel(self):
        band = Band("x", abs_tol=2, rel_tol=0.1)
        assert band.allowed(10) == 2       # abs floor wins near zero
        assert band.allowed(100) == 10     # rel takes over at scale
        assert band.allowed(-100) == 10    # magnitude, not sign

    def test_two_sided_drift_and_ok(self):
        bands = [Band("x", abs_tol=2)]
        ok, = check_bands({"x": 11.0}, {"x": 10.0}, bands)
        assert ok.status == "ok"
        up, = check_bands({"x": 13.0}, {"x": 10.0}, bands)
        assert up.status == "drift"
        down, = check_bands({"x": 7.0}, {"x": 10.0}, bands)
        assert down.status == "drift"

    def test_one_sided_bands(self):
        upper = [Band("x", abs_tol=1, direction="upper")]
        shrink, = check_bands({"x": 0.0}, {"x": 10.0}, upper)
        assert shrink.status == "ok"       # shrinking freely allowed
        grow, = check_bands({"x": 12.0}, {"x": 10.0}, upper)
        assert grow.status == "drift"
        lower = [Band("x", rel_tol=0.5, direction="lower")]
        slower, = check_bands({"x": 4.0}, {"x": 10.0}, lower)
        assert slower.status == "drift"    # a speedup band: falling is bad
        faster, = check_bands({"x": 99.0}, {"x": 10.0}, lower)
        assert faster.status == "ok"

    def test_checks_derive_from_baseline_paths_only(self):
        bands = [Band("x", abs_tol=1), Band("y", abs_tol=1)]
        checks = check_bands({"x": 1.0, "extra": 9.0}, {"x": 1.0, "y": 2.0},
                             bands)
        assert [(c.path, c.status) for c in checks] == \
            [("x", "ok"), ("y", "missing")]

    def test_first_matching_band_wins(self):
        bands = [Band("a.b", abs_tol=100), Band("a.*", abs_tol=0)]
        loose, = check_bands({"a.b": 50.0}, {"a.b": 0.0}, bands)
        assert loose.status == "ok"
        strict, = check_bands({"a.c": 50.0}, {"a.c": 0.0}, bands)
        assert strict.status == "drift"

    def test_perf_bands_park_on_foreign_host(self):
        bands = [Band("wall_s", rel_tol=0.5, direction="upper", kind="perf")]
        armed, = check_bands({"wall_s": 99.0}, {"wall_s": 10.0}, bands,
                             perf_armed=True)
        assert armed.status == "drift"
        parked, = check_bands({"wall_s": 99.0}, {"wall_s": 10.0}, bands,
                              perf_armed=False)
        assert parked.status == "skipped"

    def test_default_bands_cover_the_headline_tree(self, study_record):
        flat = record_metrics(study_record)
        for prefix in ("psr.", "table1.", "table2.", "table3."):
            paths = [p for p in flat if p.startswith(prefix)]
            assert paths, prefix
            for path in paths:
                assert any(b.matches(path) for b in DEFAULT_BANDS), path


class TestGateLibrary:
    def test_baseline_round_trip_and_schema_check(self, tmp_path,
                                                  study_record):
        path = str(tmp_path / "gate.json")
        write_baseline(path, [study_record])
        payload = load_baseline(path)
        assert payload["baselines"][study_record["key"]]["headline"] == \
            json.loads(json.dumps(study_record["headline"]))
        with open(path, "w") as handle:
            json.dump({"schema": 99, "baselines": {}}, handle)
        with pytest.raises(ValueError, match="schema"):
            load_baseline(path)

    def test_self_gate_passes_with_armed_perf(self, tmp_path, study_record):
        path = str(tmp_path / "gate.json")
        baseline = write_baseline(path, [study_record])
        result = run_gate(study_record, baseline)
        assert result is not None
        assert result.ok
        # Same manifest → same fingerprint → perf bands armed, all ok.
        assert host_fingerprint(study_record["manifest"]) == \
            host_fingerprint()
        statuses = {c.status for c in result.checks}
        assert statuses == {"ok"}
        verdict = result.verdict_lines()
        assert verdict[0].endswith("PASS")
        assert any(line.strip().startswith("perf:") for line in verdict)

    def test_unknown_key_returns_none(self, study_record):
        assert run_gate(study_record, {"baselines": {}}) is None

    def test_different_switches_park_perf_bands(self, tmp_path,
                                                study_record):
        baseline = write_baseline(str(tmp_path / "gate.json"),
                                  [study_record])
        # A disk-cache leg pays write overhead the memory-only baseline
        # never saw: the perf bands must park, not drift.
        leg = copy.deepcopy(study_record)
        leg["switches"]["disk_cache"] = True
        leg["wall_s"] = study_record["wall_s"] * 10
        result = run_gate(leg, baseline)
        assert result.ok
        perf = [c for c in result.checks if c.band.kind == "perf"]
        assert perf
        assert {c.status for c in perf} == {"skipped"}
        assert any("skipped (foreign host or switches)" in line
                   for line in result.verdict_lines())


class TestGateCommand:
    """Exit-code contract of ``repro gate`` through the real CLI."""

    def _seed(self, tmp_path, study_record):
        ledger_path = str(tmp_path / "ledger.jsonl")
        baseline_path = str(tmp_path / "gate.json")
        RunLedger(ledger_path).append(dict(study_record))
        return ledger_path, baseline_path

    def test_missing_ledger_and_baseline_are_usage_errors(self, tmp_path,
                                                          study_record):
        assert main(["gate"]) == 2  # no ledger anywhere
        ledger_path, baseline_path = self._seed(tmp_path, study_record)
        assert main(["gate", "--ledger", str(tmp_path / "absent.jsonl"),
                     "--baseline", baseline_path]) == 2  # empty ledger
        assert main(["gate", "--ledger", ledger_path,
                     "--baseline", baseline_path]) == 2  # no baseline file

    def test_update_then_clean_gate_passes(self, tmp_path, study_record,
                                           capsys):
        ledger_path, baseline_path = self._seed(tmp_path, study_record)
        assert main(["gate", "--ledger", ledger_path,
                     "--baseline", baseline_path, "--update"]) == 0
        verdict_path = str(tmp_path / "verdict.txt")
        assert main(["gate", "--ledger", ledger_path,
                     "--baseline", baseline_path,
                     "--verdict", verdict_path]) == 0
        stdout = capsys.readouterr().out
        assert "PASS" in stdout
        with open(verdict_path) as handle:
            assert "PASS" in handle.read()

    def test_injected_table2_drift_fails_the_gate(self, tmp_path,
                                                  study_record, capsys):
        ledger_path, baseline_path = self._seed(tmp_path, study_record)
        assert main(["gate", "--ledger", ledger_path,
                     "--baseline", baseline_path, "--update"]) == 0
        capsys.readouterr()
        # The acceptance drill: a perturbed penalty epoch shows up as a
        # Table 2 peak-days shift far beyond the 5%/±2 band.
        drifted = copy.deepcopy(study_record)
        campaign = sorted(drifted["headline"]["table2"])[0]
        drifted["headline"]["table2"][campaign]["peak_days"] += 30
        RunLedger(ledger_path).append(drifted)
        code = main(["gate", "--ledger", ledger_path,
                     "--baseline", baseline_path,
                     "--report", str(tmp_path / "report.txt")])
        assert code == 1
        stdout = capsys.readouterr().out
        assert "DRIFT" in stdout
        assert f"table2.{campaign}.peak_days" in stdout
        with open(tmp_path / "report.txt") as handle:
            assert "drift" in handle.read()

    def test_lost_metric_is_a_missing_drift(self, tmp_path, study_record,
                                            capsys):
        ledger_path, baseline_path = self._seed(tmp_path, study_record)
        assert main(["gate", "--ledger", ledger_path,
                     "--baseline", baseline_path, "--update"]) == 0
        lost = copy.deepcopy(study_record)
        del lost["headline"]["psr_curve"]
        RunLedger(ledger_path).append(lost)
        assert main(["gate", "--ledger", ledger_path,
                     "--baseline", baseline_path]) == 1
        assert "[missing]" in capsys.readouterr().out


class TestHistoryAndCompare:
    def _two_record_ledger(self, tmp_path, study_record):
        ledger_path = str(tmp_path / "ledger.jsonl")
        ledger = RunLedger(ledger_path)
        first = ledger.append(dict(study_record))
        drifted = copy.deepcopy(study_record)
        drifted["headline"]["psr"]["total"] += 5
        drifted["wall_s"] = 14.25
        second = ledger.append(drifted)
        return ledger_path, first, second

    def test_history_lists_records_and_sparklines(self, tmp_path,
                                                  study_record, capsys):
        ledger_path, first, second = self._two_record_ledger(
            tmp_path, study_record)
        assert main(["history", "--ledger", ledger_path]) == 0
        stdout = capsys.readouterr().out
        assert first["run_id"] in stdout
        assert second["run_id"] in stdout
        assert "psr.total" in stdout
        assert main(["history", "--ledger",
                     str(tmp_path / "absent.jsonl")]) == 2

    def test_compare_is_deterministic_and_shows_deltas(self, tmp_path,
                                                       study_record, capsys):
        ledger_path, first, second = self._two_record_ledger(
            tmp_path, study_record)
        assert main(["compare", "0", "-1", "--ledger", ledger_path]) == 0
        once = capsys.readouterr().out
        assert main(["compare", "0", "-1", "--ledger", ledger_path]) == 0
        assert capsys.readouterr().out == once  # byte-identical re-render
        assert first["run_id"] in once
        assert second["run_id"] in once
        assert "psr.total" in once
        assert main(["compare", "0", "zzzz", "--ledger", ledger_path]) == 2
