"""Tests for URL parsing and the domain registry."""

import pytest

from repro.util.simtime import SimDate
from repro.web.domains import Domain, DomainRegistry, SeizureRecord
from repro.web.urls import Url, parse_url, registered_domain


class TestParseUrl:
    def test_basic(self):
        url = parse_url("http://example.com/path")
        assert url.scheme == "http"
        assert url.host == "example.com"
        assert url.path == "/path"

    def test_query(self):
        url = parse_url("http://doorway.com/?key=cheap+beats")
        assert url.query == "key=cheap+beats"
        assert url.query_params() == {"key": "cheap+beats"}

    def test_default_path(self):
        assert parse_url("http://example.com").path == "/"

    def test_host_lowercased(self):
        assert parse_url("http://EXAMPLE.com/").host == "example.com"

    def test_is_root(self):
        assert parse_url("http://x.com/").is_root
        assert not parse_url("http://x.com/a.html").is_root
        assert not parse_url("http://x.com/?q=1").is_root

    def test_root_helper(self):
        assert parse_url("http://x.com/a/b?q=1").root() == parse_url("http://x.com/")

    def test_with_path(self):
        url = parse_url("http://x.com/").with_path("checkout")
        assert str(url) == "http://x.com/checkout"

    def test_rejects_relative(self):
        with pytest.raises(ValueError):
            parse_url("/relative/path")

    def test_rejects_other_schemes(self):
        with pytest.raises(ValueError):
            parse_url("ftp://x.com/")

    def test_rejects_empty_host(self):
        with pytest.raises(ValueError):
            parse_url("http:///path")

    def test_str_roundtrip(self):
        raw = "https://shop.example.com/a/b?x=1"
        assert str(parse_url(raw)) == raw

    def test_registered_domain(self):
        assert registered_domain("shop.cocovipbags.com") == "cocovipbags.com"
        assert registered_domain("example.com") == "example.com"


class TestDomainRegistry:
    def test_register_and_get(self, day0):
        registry = DomainRegistry()
        domain = registry.register("example.com", day0)
        assert registry.get("EXAMPLE.com") is domain

    def test_duplicate_rejected(self, day0):
        registry = DomainRegistry()
        registry.register("example.com", day0)
        with pytest.raises(ValueError):
            registry.register("example.com", day0)

    def test_contains(self, day0):
        registry = DomainRegistry()
        registry.register("a.com", day0)
        assert "a.com" in registry
        assert "b.com" not in registry

    def test_seizure_state(self, day0):
        registry = DomainRegistry()
        domain = registry.register("store.com", day0)
        assert not domain.is_seized
        record = SeizureRecord(day=day0 + 30, case_id="14-cv-1", firm="GBC", brand="Uggs")
        domain.seize(record)
        assert domain.is_seized
        assert not domain.seized_as_of(day0 + 29)
        assert domain.seized_as_of(day0 + 30)

    def test_double_seizure_rejected(self, day0):
        registry = DomainRegistry()
        domain = registry.register("store.com", day0)
        domain.seize(SeizureRecord(day=day0 + 1, case_id="c1", firm="GBC", brand="Uggs"))
        with pytest.raises(ValueError):
            domain.seize(SeizureRecord(day=day0 + 2, case_id="c2", firm="GBC", brand="Uggs"))

    def test_seizure_before_registration_rejected(self, day0):
        registry = DomainRegistry()
        domain = registry.register("store.com", day0 + 10)
        with pytest.raises(ValueError):
            domain.seize(SeizureRecord(day=day0, case_id="c", firm="GBC", brand="Uggs"))

    def test_seized_listing_respects_as_of(self, day0):
        registry = DomainRegistry()
        a = registry.register("a.com", day0)
        registry.register("b.com", day0)
        a.seize(SeizureRecord(day=day0 + 5, case_id="c", firm="GBC", brand="Nike"))
        assert registry.seized(as_of=day0 + 4) == []
        assert [d.name for d in registry.seized(as_of=day0 + 5)] == ["a.com"]

    def test_listings_sorted_by_name(self, day0):
        """The D005 contract: listing APIs return name order, not insertion
        order, so consumers cannot silently depend on registration order."""
        registry = DomainRegistry()
        for name in ("zeta.com", "alpha.com", "mid.com"):
            registry.register(name, day0)
        for name in ("zeta.com", "alpha.com"):
            registry.get(name).seize(SeizureRecord(
                day=day0 + 1, case_id="c", firm="GBC", brand="Nike",
            ))
        assert [d.name for d in registry.all()] == [
            "alpha.com", "mid.com", "zeta.com",
        ]
        assert [d.name for d in registry.seized()] == ["alpha.com", "zeta.com"]
