"""Tests for the paper-flagged extensions: the payment intervention
(§4.3.2's future work), the term-selection bias experiment (§4.1.1), and
infrastructure-graph clustering (§4.2.3's validation evidence)."""

import pytest

from repro.util.rng import RandomStreams
from repro.util.simtime import SimDate
from repro.ecosystem import Simulator, small_preset
from repro.market.payments import default_payment_network
from repro.interventions.payments import PaymentPolicy
from repro.analysis import (
    alternate_term_sample,
    cluster_infrastructure,
    run_bias_experiment,
    term_bias_check,
)
from repro.analysis.infrastructure import build_infrastructure_graph


class TestPaymentNetwork:
    def test_blacklist_and_survivors(self):
        network = default_payment_network()
        network.blacklist("Realypay")
        assert network.is_blacklisted("Realypay")
        assert "Realypay" in network.blacklisted()
        assert all(p.name != "Realypay" for p in network.surviving_processors())

    def test_blacklist_unknown_rejected(self):
        with pytest.raises(KeyError):
            default_payment_network().blacklist("NotAProcessor")

    def test_reassign_avoids_blacklisted(self):
        network = default_payment_network()
        streams = RandomStreams(1)
        network.assign("s1", streams)
        network.blacklist("Realypay")
        network.blacklist("Mallpayment")
        replacement = network.reassign("s1", streams)
        assert replacement is not None
        assert not network.is_blacklisted(replacement.name)
        assert network.processor_of("s1") is replacement

    def test_reassign_none_when_all_terminated(self):
        network = default_payment_network()
        streams = RandomStreams(1)
        network.assign("s1", streams)
        for processor in network.processors:
            network.blacklist(processor.name)
        assert network.reassign("s1", streams) is None


def _payment_scenario(start_offset=20):
    config = small_preset(days=80)
    config.payment_policy = PaymentPolicy(
        start_day=config.window.start + start_offset,
        test_purchases_per_week=8,
        termination_threshold=4,
        action_delay_days=5,
    )
    return config


class TestPaymentIntervention:
    def test_terminations_happen_and_are_logged(self):
        sim = Simulator(_payment_scenario())
        world = sim.run()
        assert sim.payment_team is not None
        assert sim.payment_team.terminations
        events = world.events.of_kind("processor_termination")
        assert len(events) == len(sim.payment_team.terminations)
        for term in sim.payment_team.terminations:
            assert term.evidence_count >= 4
            assert world.payment_network.is_blacklisted(term.processor)

    def test_purchases_reveal_concentrated_banks(self):
        sim = Simulator(_payment_scenario())
        sim.run()
        banks = sim.payment_team.banks_observed()
        # The paper's buys revealed three banks; ours has three total.
        assert 1 <= len(banks) <= 3

    def test_sales_suppressed_relative_to_no_intervention(self):
        with_intervention = Simulator(_payment_scenario(start_offset=10))
        with_intervention.run()
        without = Simulator(small_preset(days=80))
        without.run()
        sales_with = sum(
            s.total_sales_completed() for s in with_intervention.world.stores()
        )
        sales_without = sum(s.total_sales_completed() for s in without.world.stores())
        assert sales_with < sales_without

    def test_orders_keep_flowing_while_sales_stop(self):
        """The intervention's signature: checkouts continue, payments fail."""
        sim = Simulator(_payment_scenario(start_offset=10))
        world = sim.run()
        terminations = sim.payment_team.terminations
        assert terminations
        first = min(t.day for t in terminations)
        orders_after = sum(
            s.orders_created_on(first + offset)
            for s in world.stores() for offset in range(1, 15)
        )
        assert orders_after > 0

    def test_campaigns_resign_with_survivors(self):
        sim = Simulator(_payment_scenario(start_offset=10))
        world = sim.run()
        blacklisted = set(world.payment_network.blacklisted())
        assert blacklisted
        if len(blacklisted) < len(world.payment_network.processors):
            still_frozen = [
                s.store_id for s in world.stores()
                if s.processor.name in blacklisted
            ]
            # Nearly every store should have re-signed by end of window.
            assert len(still_frozen) <= len(world.stores()) * 0.2

    def test_disabled_by_default(self):
        sim = Simulator(small_preset(days=30))
        sim.run()
        assert sim.payment_team is None


@pytest.fixture(scope="module")
def universe_world():
    config = small_preset(days=50)
    config.term_universe_factor = 2.0
    sim = Simulator(config)
    return sim.run()


class TestTermBias:
    def test_universe_superset_of_monitored(self, universe_world):
        for vertical in universe_world.verticals.values():
            assert set(vertical.terms) <= set(vertical.universe)
            assert len(vertical.universe) >= len(vertical.terms) * 1.5
            assert vertical.unmonitored_terms()

    def test_alternate_sample_from_universe(self, universe_world):
        vertical = universe_world.verticals["Uggs"]
        alternate = alternate_term_sample(vertical, len(vertical.terms), seed=2)
        assert len(alternate) == len(vertical.terms)
        assert set(alternate) <= set(vertical.universe)

    def test_alternate_sample_deterministic(self, universe_world):
        vertical = universe_world.verticals["Uggs"]
        a = alternate_term_sample(vertical, 5, seed=2)
        b = alternate_term_sample(vertical, 5, seed=2)
        assert a == b
        assert a != alternate_term_sample(vertical, 5, seed=3)

    def test_bias_check_rates_agree(self, universe_world):
        day = universe_world.window.end
        results = run_bias_experiment(universe_world, day, seed=1)
        assert results
        for result in results:
            assert 0.0 <= result.original.psr_fraction <= 1.0
            assert 0.0 <= result.alternate.psr_fraction <= 1.0
            # Same universe, same campaigns: rates within a few points.
            assert result.fraction_gap < 0.12

    def test_overlap_is_partial(self, universe_world):
        day = universe_world.window.end
        result = term_bias_check(universe_world, day, "Uggs", seed=1)
        assert 0 <= result.overlap_terms < len(result.original.terms)

    def test_distribution_distance_bounded(self, universe_world):
        day = universe_world.window.end
        result = term_bias_check(universe_world, day, "Louis Vuitton", seed=1)
        assert 0.0 <= result.campaign_distribution_distance() <= 1.0


class TestInfrastructureGraph:
    def test_graph_is_bipartite_shaped(self, study):
        graph = build_infrastructure_graph(study.dataset)
        for left, right in graph.edges():
            kinds = {graph.nodes[left]["kind"], graph.nodes[right]["kind"]}
            assert kinds == {"doorway", "store"}

    def test_components_match_ground_truth_campaigns(self, study):
        """Infrastructure is not shared across campaigns, so each component
        maps onto exactly one true campaign."""
        report = cluster_infrastructure(study.dataset)
        assert report.clusters
        for cluster in report.multi_host_clusters():
            true_campaigns = set()
            for host in cluster.doorway_hosts:
                pair = study.world.doorway_at(host)
                if pair is not None:
                    true_campaigns.add(pair[0].name)
            assert len(true_campaigns) == 1, cluster.doorway_hosts[:3]

    def test_purity_against_classifier_high(self, study):
        report = cluster_infrastructure(study.dataset)
        assert report.mean_purity > 0.9

    def test_rotated_store_domains_stay_in_one_cluster(self, study):
        """A store's rotated domains share doorways, so the infrastructure
        view keeps them together — the analyst's rotation evidence."""
        report = cluster_infrastructure(study.dataset)
        rotated = [
            t for t in study.orderer.tracked.values() if len(t.hosts_seen) > 1
        ]
        if not rotated:
            pytest.skip("no rotations tracked in this run")
        cluster_of_host = {}
        for cluster in report.clusters:
            for host in cluster.store_hosts:
                cluster_of_host[host] = cluster.index
        for tracked in rotated:
            indices = {
                cluster_of_host[h] for h in tracked.hosts_seen if h in cluster_of_host
            }
            assert len(indices) <= 1
