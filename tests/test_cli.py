"""Tests for the command-line interface."""

import os

import pytest

from repro.cli import main


class TestRunCommand:
    def test_run_small_writes_artifacts(self, tmp_path, capsys):
        out = str(tmp_path / "study")
        code = main(["run", "--preset", "small", "--stride", "2", "--out", out])
        assert code == 0
        for name in ("psrs.jsonl", "table1.txt", "table2.txt", "table3.txt",
                     "figure3.txt", "summary.txt"):
            path = os.path.join(out, name)
            assert os.path.exists(path), name
            assert os.path.getsize(path) > 0, name
        stdout = capsys.readouterr().out
        assert "PSRs:" in stdout
        assert "Artifacts written" in stdout

    def test_run_psrs_jsonl_loadable(self, tmp_path):
        out = str(tmp_path / "study")
        main(["run", "--preset", "small", "--stride", "3", "--out", out])
        from repro.crawler import PsrDataset

        dataset = PsrDataset.load_jsonl(os.path.join(out, "psrs.jsonl"))
        assert len(dataset) > 0
        assert dataset.verticals()

    def test_run_seed_changes_world(self, tmp_path):
        out_a = str(tmp_path / "a")
        out_b = str(tmp_path / "b")
        main(["run", "--preset", "small", "--seed", "1", "--out", out_a])
        main(["run", "--preset", "small", "--seed", "2", "--out", out_b])
        with open(os.path.join(out_a, "summary.txt")) as fa:
            summary_a = fa.read()
        with open(os.path.join(out_b, "summary.txt")) as fb:
            summary_b = fb.read()
        assert summary_a != summary_b


class TestAblationsCommand:
    def test_ablations_prints_table(self, capsys):
        code = main(["ablations", "--days", "40"])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "baseline" in stdout
        assert "no-interventions" in stdout
        assert "payment-intervention" in stdout


class TestParser:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])
