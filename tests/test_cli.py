"""Tests for the command-line interface."""

import json
import os

import pytest

from repro.cli import main
from repro.obs.trace import set_tracing_enabled


@pytest.fixture
def tracing_off_after():
    yield
    set_tracing_enabled(False)


class TestRunCommand:
    def test_run_small_writes_artifacts(self, tmp_path, capsys):
        out = str(tmp_path / "study")
        code = main(["run", "--preset", "small", "--stride", "2", "--out", out])
        assert code == 0
        for name in ("psrs.jsonl", "table1.txt", "table2.txt", "table3.txt",
                     "figure3.txt", "summary.txt"):
            path = os.path.join(out, name)
            assert os.path.exists(path), name
            assert os.path.getsize(path) > 0, name
        stdout = capsys.readouterr().out
        assert "PSRs:" in stdout
        assert "Artifacts written" in stdout

    def test_run_psrs_jsonl_loadable(self, tmp_path):
        out = str(tmp_path / "study")
        main(["run", "--preset", "small", "--stride", "3", "--out", out])
        from repro.crawler import PsrDataset

        dataset = PsrDataset.load_jsonl(os.path.join(out, "psrs.jsonl"))
        assert len(dataset) > 0
        assert dataset.verticals()

    def test_run_seed_changes_world(self, tmp_path):
        out_a = str(tmp_path / "a")
        out_b = str(tmp_path / "b")
        main(["run", "--preset", "small", "--seed", "1", "--out", out_a])
        main(["run", "--preset", "small", "--seed", "2", "--out", out_b])
        with open(os.path.join(out_a, "summary.txt")) as fa:
            summary_a = fa.read()
        with open(os.path.join(out_b, "summary.txt")) as fb:
            summary_b = fb.read()
        assert summary_a != summary_b


class TestTraceCommands:
    def test_trace_prints_tree_and_writes_exports(self, tmp_path, capsys,
                                                  tracing_off_after):
        trace_path = str(tmp_path / "trace.json")
        metrics_path = str(tmp_path / "metrics.jsonl")
        code = main(["trace", "--preset", "small", "--stride", "2",
                     "--json", trace_path, "--metrics", metrics_path])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "study" in stdout
        assert "simulate" in stdout
        assert "wall-clock" in stdout
        with open(trace_path) as handle:
            payload = json.load(handle)
        assert payload["traceEvents"]
        assert payload["otherData"]["manifest"]["package"] == "repro"
        from repro.obs.metrics import MetricsRecorder

        manifest, rows = MetricsRecorder.load_jsonl(metrics_path)
        assert manifest is not None
        assert rows

    def test_run_trace_writes_trace_artifacts(self, tmp_path,
                                              tracing_off_after):
        out = str(tmp_path / "study")
        code = main(["run", "--preset", "small", "--stride", "3",
                     "--trace", "--out", out])
        assert code == 0
        for name in ("trace.json", "manifest.json", "metrics.jsonl",
                     "telemetry.jsonl", "psrs.jsonl"):
            assert os.path.getsize(os.path.join(out, name)) > 0, name
        with open(os.path.join(out, "manifest.json")) as handle:
            manifest = json.load(handle)
        assert manifest["trace_enabled"] is True
        assert "digest" in manifest["config"]
        from repro.obs.metrics import TELEMETRY_COLUMNS, MetricsRecorder

        _, rows = MetricsRecorder.load_jsonl(
            os.path.join(out, "telemetry.jsonl"))
        assert rows
        # Serialized rows are sort_keys=True; the column *set* is the
        # schema contract here (order is pinned on the in-memory rows).
        assert all(set(row) == set(TELEMETRY_COLUMNS) for row in rows)

    def test_run_appends_ledger_record(self, tmp_path, capsys):
        out = str(tmp_path / "study")
        ledger_path = str(tmp_path / "ledger.jsonl")
        code = main(["run", "--preset", "small", "--stride", "3",
                     "--out", out, "--ledger", ledger_path])
        assert code == 0
        assert "Ledger record" in capsys.readouterr().out
        from repro.obs.ledger import RunLedger

        records = RunLedger(ledger_path).records()
        assert len(records) == 1
        record = records[0]
        assert record["kind"] == "study"
        assert record["headline"]["psr"]["total"] > 0
        assert record["switches"]["stride"] == 3

    def test_untraced_run_writes_no_observability_artifacts(self, tmp_path):
        # Plain runs keep byte-identical same-seed artifacts; metrics and
        # trace files (timing + provenance data) require --trace.
        out = str(tmp_path / "study")
        main(["run", "--preset", "small", "--stride", "3", "--out", out])
        assert not os.path.exists(os.path.join(out, "metrics.jsonl"))
        assert not os.path.exists(os.path.join(out, "telemetry.jsonl"))
        assert not os.path.exists(os.path.join(out, "trace.json"))
        assert not os.path.exists(os.path.join(out, "manifest.json"))


class TestAblationsCommand:
    def test_ablations_prints_table(self, capsys):
        code = main(["ablations", "--days", "40"])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "baseline" in stdout
        assert "no-interventions" in stdout
        assert "payment-intervention" in stdout


class TestParser:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])
