"""Tests for the simulation calendar."""

import datetime

import pytest
from hypothesis import given, strategies as st

from repro.util.simtime import DateRange, SimDate, STUDY_END, STUDY_START


class TestSimDate:
    def test_from_iso_string(self):
        day = SimDate("2013-11-13")
        assert day.year == 2013
        assert day.month == 11
        assert day.day == 13

    def test_from_date(self):
        day = SimDate(datetime.date(2014, 7, 15))
        assert day.isoformat() == "2014-07-15"

    def test_from_ordinal_roundtrip(self):
        day = SimDate("2014-01-01")
        assert SimDate(day.ordinal) == day

    def test_from_simdate_copies(self):
        day = SimDate("2014-01-01")
        assert SimDate(day) == day

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            SimDate(3.14)
        with pytest.raises(ValueError):
            SimDate("not-a-date")

    def test_add_days(self):
        assert SimDate("2013-12-31") + 1 == SimDate("2014-01-01")

    def test_radd(self):
        assert 1 + SimDate("2013-12-31") == SimDate("2014-01-01")

    def test_subtract_simdate_gives_days(self):
        assert SimDate("2014-01-10") - SimDate("2014-01-01") == 9

    def test_subtract_int_gives_simdate(self):
        assert SimDate("2014-01-10") - 9 == SimDate("2014-01-01")

    def test_ordering(self):
        assert SimDate("2013-11-13") < SimDate("2013-11-14")
        assert SimDate("2013-11-14") >= SimDate("2013-11-13")

    def test_hashable(self):
        assert len({SimDate("2014-01-01"), SimDate("2014-01-01")}) == 1

    def test_str_is_iso(self):
        assert str(SimDate("2014-02-28")) == "2014-02-28"

    @given(st.integers(min_value=1, max_value=3_000_000), st.integers(-500, 500))
    def test_add_then_subtract_roundtrip(self, ordinal, delta):
        day = SimDate(ordinal)
        assert (day + delta) - day == delta


class TestDateRange:
    def test_length_inclusive(self):
        window = DateRange("2014-01-01", "2014-01-10")
        assert len(window) == 10

    def test_study_window_is_245_days(self):
        assert len(DateRange(STUDY_START, STUDY_END)) == 245

    def test_contains(self):
        window = DateRange("2014-01-01", "2014-01-10")
        assert SimDate("2014-01-05") in window
        assert SimDate("2014-01-11") not in window

    def test_rejects_reversed(self):
        with pytest.raises(ValueError):
            DateRange("2014-01-10", "2014-01-01")

    def test_iteration_yields_every_day(self):
        window = DateRange("2014-01-01", "2014-01-05")
        days = list(window)
        assert len(days) == 5
        assert days[0] == window.start
        assert days[-1] == window.end

    def test_stride(self):
        window = DateRange("2014-01-01", "2014-01-10")
        days = list(window.days(stride=3))
        assert [d.day for d in days] == [1, 4, 7, 10]

    def test_stride_rejects_zero(self):
        with pytest.raises(ValueError):
            list(DateRange("2014-01-01", "2014-01-02").days(stride=0))

    def test_clip(self):
        window = DateRange("2014-01-05", "2014-01-10")
        assert window.clip("2014-01-01") == window.start
        assert window.clip("2014-02-01") == window.end
        assert window.clip("2014-01-07") == SimDate("2014-01-07")

    def test_offset_of(self):
        window = DateRange("2014-01-01", "2014-01-10")
        assert window.offset_of("2014-01-01") == 0
        assert window.offset_of("2014-01-10") == 9

    def test_offset_of_outside_raises(self):
        window = DateRange("2014-01-01", "2014-01-10")
        with pytest.raises(ValueError):
            window.offset_of("2014-02-01")

    def test_equality(self):
        assert DateRange("2014-01-01", "2014-01-10") == DateRange("2014-01-01", "2014-01-10")
