"""Tests for the measurement crawlers: Dagger, VanGogh, store detection,
records, and the full SERP crawl loop (via the session study fixture)."""

import pytest

from repro.util.rng import RandomStreams
from repro.util.simtime import SimDate
from repro.web.domains import DomainRegistry
from repro.web.fetch import Response
from repro.web.hosting import Web
from repro.web.sites import Site, SiteKind, StaticPage
from repro.seo import CloakingType, make_kit
from repro.seo.doorways import build_doorway
from repro.seo.templates import assign_theme
from repro.crawler import (
    CrawlPolicy,
    Dagger,
    PsrDataset,
    PsrRecord,
    StoreDetector,
    VanGogh,
)
from repro.crawler.dagger import jaccard, text_shingle


@pytest.fixture()
def cloaked_web(day0):
    """A tiny web: one legit site, one redirect doorway, one iframe doorway,
    one storefront."""
    streams = RandomStreams(77)
    web = Web()

    legit_domain = web.domains.register("legit.com", day0)
    legit = Site(legit_domain, SiteKind.LEGITIMATE, authority=0.5, created_on=day0)
    legit.add_page(StaticPage("/", html="<html><body><p>honest reviews of boots</p></body></html>"))
    web.add_site(legit)

    store_domain = web.domains.register("uggstore.com", day0)
    store = Site(store_domain, SiteKind.STOREFRONT, created_on=day0)
    store.add_page(StaticPage(
        "/",
        html="<html><body><a href='/cart'>Add to Cart</a><a href='/checkout'>Checkout</a></body></html>",
        cookies=("zenid", "realypay_session"),
    ))
    web.add_site(store)

    theme = assign_theme("KEY", streams)
    for host, kit_type in (("redirdoor.com", CloakingType.REDIRECT),
                           ("framedoor.com", CloakingType.IFRAME)):
        domain = web.domains.register(host, day0)
        site = Site(domain, SiteKind.LEGITIMATE, authority=0.4, created_on=day0)
        site.add_page(StaticPage("/", html="<html><body>gardening blog</body></html>"))
        web.add_site(site)
        kit = make_kit(kit_type, streams, f"KEY-{host}")
        build_doorway(
            "KEY", "Uggs", ["cheap uggs"], site, compromised=True, day=day0,
            theme=theme, kit=kit, landing_url=lambda: "http://uggstore.com/",
            streams=streams,
        )
    return web


def _doorway_path(web, host, day0):
    site = web.get_site(host)
    return next(p for p in site.paths() if p != "/")


class TestTextShingle:
    def test_tokens_lowercased(self):
        tokens = text_shingle("<html><body><p>Cheap UGGS</p></body></html>")
        assert "cheap" in tokens and "uggs" in tokens

    def test_jaccard_identical(self):
        a = {"x", "y"}
        assert jaccard(a, a) == 1.0

    def test_jaccard_disjoint(self):
        assert jaccard({"a"}, {"b"}) == 0.0

    def test_jaccard_empty(self):
        assert jaccard(set(), set()) == 1.0


class TestDagger:
    def test_legit_page_clean(self, cloaked_web, day0):
        result = Dagger(cloaked_web).check("http://legit.com/", day0)
        assert not result.cloaked
        assert result.similarity > 0.9

    def test_redirect_cloaking_detected(self, cloaked_web, day0):
        url = f"http://redirdoor.com{_doorway_path(cloaked_web, 'redirdoor.com', day0)}"
        result = Dagger(cloaked_web).check(url, day0)
        assert result.cloaked
        assert result.mechanism == "redirect"
        assert result.landing_url == "http://uggstore.com/"

    def test_iframe_cloaking_invisible_to_dagger(self, cloaked_web, day0):
        """The blind spot that motivated VanGogh: same HTML both ways."""
        url = f"http://framedoor.com{_doorway_path(cloaked_web, 'framedoor.com', day0)}"
        result = Dagger(cloaked_web).check(url, day0)
        assert not result.cloaked

    def test_content_cloaking_detected(self, day0):
        """A page serving totally different text to crawler vs user."""
        web = Web()
        from repro.web.sites import DynamicPage
        from repro.web.fetch import PageResult
        domain = web.domains.register("content.com", day0)
        site = Site(domain, SiteKind.DEDICATED_DOORWAY, created_on=day0)

        def respond(profile, d):
            if profile.looks_like_crawler:
                return PageResult(html="<html><body>cheap uggs boots outlet sale</body></html>")
            return PageResult(html="<html><body>totally unrelated casino poker slots</body></html>")

        site.add_page(DynamicPage("/", respond))
        web.add_site(site)
        result = Dagger(web).check("http://content.com/", day0)
        assert result.cloaked
        assert result.mechanism == "content"


class TestVanGogh:
    def test_iframe_cloaking_detected(self, cloaked_web, day0):
        url = f"http://framedoor.com{_doorway_path(cloaked_web, 'framedoor.com', day0)}"
        result = VanGogh(cloaked_web).check(url, day0)
        assert result.iframe_cloaked
        assert result.iframe_src == "http://uggstore.com/"
        assert result.landing_response is not None
        assert result.landing_response.ok

    def test_legit_page_clean(self, cloaked_web, day0):
        result = VanGogh(cloaked_web).check("http://legit.com/", day0)
        assert not result.iframe_cloaked

    def test_small_iframe_not_flagged(self, day0):
        web = Web()
        domain = web.domains.register("ads.com", day0)
        site = Site(domain, SiteKind.LEGITIMATE, created_on=day0)
        site.add_page(StaticPage(
            "/",
            html='<html><body><iframe src="http://ad.net/" width="300" height="250"></iframe></body></html>',
        ))
        web.add_site(site)
        result = VanGogh(web).check("http://ads.com/", day0)
        assert not result.iframe_cloaked
        assert result.rendered_iframe_count == 1

    def test_oversized_pixel_iframe_flagged(self, day0):
        web = Web()
        domain = web.domains.register("px.com", day0)
        site = Site(domain, SiteKind.LEGITIMATE, created_on=day0)
        site.add_page(StaticPage(
            "/",
            html='<html><body><iframe src="http://s.com/" width="1200" height="900"></iframe></body></html>',
        ))
        web.add_site(site)
        assert VanGogh(web).check("http://px.com/", day0).iframe_cloaked


class TestStoreDetector:
    def test_cookie_detection(self):
        detector = StoreDetector()
        landing = Response(200, "u", "u", html="<html></html>",
                           cookies=("zenid", "other"))
        evidence = detector.detect(landing)
        assert evidence.is_store
        assert "zenid" in evidence.cookie_hits

    def test_content_detection(self):
        detector = StoreDetector()
        landing = Response(200, "u", "u", html="<html><body>proceed to checkout</body></html>")
        evidence = detector.detect(landing)
        assert evidence.is_store
        assert "checkout" in evidence.content_hits

    def test_clean_page(self):
        detector = StoreDetector()
        landing = Response(200, "u", "u", html="<html><body>a poem</body></html>")
        assert not detector.detect(landing).is_store

    def test_failed_fetch_not_store(self):
        detector = StoreDetector()
        assert not detector.detect(Response(404, "u", "u")).is_store
        assert not detector.detect(None).is_store


class TestPsrRecords:
    def _record(self, day0, **overrides):
        fields = dict(
            day=day0, vertical="Uggs", term="cheap uggs", rank=3,
            url="http://d.com/x.html", host="d.com", path="/x.html",
            label="none", mechanism="iframe", landing_url="http://s.com/",
            landing_host="s.com", is_store=True, seizure_case=None,
            seizure_firm=None, seizure_brand=None, campaign="KEY",
        )
        fields.update(overrides)
        return PsrRecord(**fields)

    def test_json_roundtrip(self, day0):
        record = self._record(day0)
        back = PsrRecord.from_json(record.to_json())
        assert back == record or all(
            getattr(back, f) == getattr(record, f) for f in PsrRecord.__slots__
        )

    def test_penalized_semantics(self, day0):
        assert not self._record(day0).penalized
        assert self._record(day0, label="hacked").penalized
        assert self._record(day0, seizure_case="c1").penalized

    def test_dataset_first_last_seen(self, day0):
        dataset = PsrDataset()
        dataset.add(self._record(day0))
        dataset.add(self._record(day0 + 10))
        assert dataset.host_first_seen("d.com") == day0
        assert dataset.host_last_seen("d.com") == day0 + 10

    def test_dataset_fraction(self, day0):
        dataset = PsrDataset()
        dataset.note_serp(day0, "Uggs", 100)
        dataset.add(self._record(day0, rank=5))
        dataset.add(self._record(day0, rank=50, url="u2", path="/y.html"))
        assert dataset.psr_fraction(day0, "Uggs", 100) == pytest.approx(0.02)
        assert dataset.psr_fraction(day0, "Uggs", 10) == pytest.approx(0.1)

    def test_dataset_jsonl_roundtrip(self, tmp_path, day0):
        dataset = PsrDataset()
        for i in range(5):
            dataset.add(self._record(day0 + i, rank=i + 1))
        path = str(tmp_path / "psrs.jsonl")
        dataset.dump_jsonl(path)
        loaded = PsrDataset.load_jsonl(path)
        assert len(loaded) == 5
        assert loaded.records[2].rank == 3

    def test_daily_counts_filters(self, day0):
        dataset = PsrDataset()
        dataset.add(self._record(day0, campaign="KEY", rank=5))
        dataset.add(self._record(day0, campaign="VERA", rank=15, url="u2"))
        assert dataset.daily_counts(campaign="KEY")[day0.ordinal] == 1
        assert dataset.daily_counts(topk=10)[day0.ordinal] == 1


class TestCrawlerIntegration:
    """Assertions over the session study's crawled dataset."""

    def test_crawler_found_psrs(self, study):
        assert len(study.dataset) > 100

    def test_mechanisms_match_campaign_kits(self, study):
        """Each doorway host's detected mechanism must match the cloaking
        kit its true campaign uses."""
        by_kit = {c.name: c.spec.cloaking for c in study.world.campaigns()}
        for record in study.dataset.records[:500]:
            pair = study.world.doorway_at(record.host)
            assert pair is not None, record.host
            campaign = pair[0]
            expected = by_kit[campaign.name]
            if expected is CloakingType.IFRAME:
                assert record.mechanism == "iframe"
            else:
                assert record.mechanism in ("redirect", "content")

    def test_no_false_positive_doorways(self, study):
        """Every PSR host is a genuine doorway (the paper's cloaking-based
        definition has ~zero false positives, Section 4.1.3)."""
        for record in study.dataset.records:
            assert study.world.doorway_at(record.host) is not None

    def test_store_landings_are_real_stores(self, study):
        for record in study.dataset.records:
            if record.is_store:
                store = study.world.store_at(record.landing_host)
                assert store is not None

    def test_seizure_notices_match_ground_truth(self, study):
        events = study.world.events.of_kind(study.world.events.SEIZURE_CASE)
        true_cases = {e.payload["case_id"] for e in events}
        for case_id in study.crawler.notices:
            assert case_id in true_cases

    def test_coverage_recorded_for_crawl_days(self, study):
        days = study.dataset.crawl_days()
        assert days
        for day in days[:5]:
            for vertical in study.dataset.verticals():
                coverage = study.dataset.coverage(day, vertical)
                if coverage is not None:
                    assert coverage.slots_top100 >= coverage.slots_top10
