"""Tests for the fault-injection / retry / checkpoint-resume layer.

Pins the resilience contract:

* fault decisions are deterministic, order-independent functions of
  (seed, profile, subject) — a resumed run replays the same failures;
* the retry layer is bounded (attempts, per-day budget, breaker) and
  backs off in *simulated* seconds;
* a clean profile (or no injector at all) leaves study output
  byte-identical to a run without the fault layer;
* a run killed mid-window and resumed from its checkpoint produces
  byte-identical final artifacts;
* JSONL loaders tolerate a torn final line and nothing else.
"""

import json
import os
import pickle
import tempfile
import unittest
import warnings
from pathlib import Path

from repro.analysis.ecosystem import _peak_duration
from repro.analysis.seizures import _extend_through_gaps
from repro.crawler.records import PsrDataset
from repro.ecosystem import small_preset
from repro.faults import (
    CheckpointError,
    FaultInjector,
    ResilientFetcher,
    RetryPolicy,
    SimulatedCrash,
    load_checkpoint,
    profile_named,
)
from repro.faults.injector import (
    FAULT_CONNECTION,
    FAULT_IP_BLOCK,
    FAULT_TIMEOUT,
    FAULT_TRUNCATED,
)
from repro.faults.profiles import FaultProfile, PROFILES
from repro.faults.retry import FAULT_CIRCUIT_OPEN
from repro.obs.metrics import MetricsRecorder
from repro.study import StudyRun
from repro.util.atomicio import atomic_write
from repro.util.simtime import SimDate
from repro.web.fetch import SEARCH_USER, Response

DAY = SimDate("2014-01-10")


def _profile(**rates) -> FaultProfile:
    return FaultProfile(name="test", description="test profile", **rates)


class TestFaultInjector(unittest.TestCase):
    def test_decisions_deterministic_across_instances(self):
        profile = _profile(timeout_rate=0.3, connection_rate=0.2)
        a = FaultInjector(profile, seed=7)
        b = FaultInjector(profile, seed=7)
        for i in range(200):
            url = f"http://host{i}.example.com/p"
            self.assertEqual(
                a.fetch_fault(url, SEARCH_USER, DAY),
                b.fetch_fault(url, SEARCH_USER, DAY),
            )

    def test_seed_changes_decisions(self):
        profile = _profile(timeout_rate=0.3)
        a = FaultInjector(profile, seed=0)
        b = FaultInjector(profile, seed=1)
        urls = [f"http://host{i}.example.com/p" for i in range(200)]
        self.assertNotEqual(
            [a.fetch_fault(u, SEARCH_USER, DAY) for u in urls],
            [b.fetch_fault(u, SEARCH_USER, DAY) for u in urls],
        )

    def test_order_independent(self):
        profile = _profile(timeout_rate=0.5)
        a = FaultInjector(profile, seed=3)
        b = FaultInjector(profile, seed=3)
        url = "http://shop.example.com/"
        # a asks attempts 0..3 in order; b asks attempt 3 cold.
        in_order = [a.fetch_fault(url, SEARCH_USER, DAY, attempt=k)
                    for k in range(4)]
        self.assertEqual(
            b.fetch_fault(url, SEARCH_USER, DAY, attempt=3), in_order[3]
        )

    def test_clean_profile_never_injects(self):
        injector = FaultInjector(PROFILES["clean"], seed=0)
        for i in range(100):
            url = f"http://host{i}.example.com/p"
            self.assertIsNone(injector.fetch_fault(url, SEARCH_USER, DAY))
            html, fault = injector.corrupt_html("<html>x</html>", url, DAY)
            self.assertIsNone(fault)
            self.assertEqual(html, "<html>x</html>")
            self.assertFalse(injector.serp_missing(f"term{i}", DAY))
            self.assertFalse(injector.awstats_down(f"h{i}.com", DAY))

    def test_ip_block_persists_for_whole_window(self):
        profile = _profile(ip_block_rate=0.4, ip_block_days=5)
        injector = FaultInjector(profile, seed=11)
        blocked_hosts = [
            f"h{i}.example.com" for i in range(100)
            if injector.host_blocked(f"h{i}.example.com", DAY)
        ]
        self.assertTrue(blocked_hosts)
        window_start = SimDate((DAY.ordinal // 5) * 5)
        for host in blocked_hosts:
            for offset in range(5):
                self.assertTrue(
                    injector.host_blocked(host, window_start + offset)
                )

    def test_corruption_independent_of_retry_count(self):
        profile = _profile(truncated_rate=1.0)
        injector = FaultInjector(profile, seed=5)
        html = "<html>" + "x" * 500 + "</html>"
        url = "http://doorway.example.com/p"
        first = injector.corrupt_html(html, url, DAY)
        self.assertEqual(first[1], FAULT_TRUNCATED)
        for _ in range(3):
            self.assertEqual(injector.corrupt_html(html, url, DAY), first)

    def test_pickle_round_trip_preserves_decisions(self):
        profile = _profile(timeout_rate=0.4, serp_missing_rate=0.3)
        original = FaultInjector(profile, seed=9)
        restored = pickle.loads(pickle.dumps(original))
        for i in range(100):
            url = f"http://host{i}.example.com/p"
            self.assertEqual(
                original.fetch_fault(url, SEARCH_USER, DAY),
                restored.fetch_fault(url, SEARCH_USER, DAY),
            )
            self.assertEqual(
                original.serp_missing(f"term{i}", DAY),
                restored.serp_missing(f"term{i}", DAY),
            )

    def test_profile_named_unknown_raises(self):
        with self.assertRaises(KeyError):
            profile_named("no-such-profile")


class _FakeWeb:
    """Web stand-in: always serves the same 200 page; counts fetches."""

    def __init__(self, injector=None):
        self.fault_injector = injector
        self.fetches = 0

    def fetch(self, url, profile, day):
        self.fetches += 1
        return Response(status=200, url=url, final_url=url,
                        html="<html>stock</html>")


class _ScriptedInjector:
    """Injector stand-in returning a scripted fault sequence."""

    def __init__(self, faults):
        self.faults = list(faults)

    def fetch_fault(self, url, visitor, day, attempt=0):
        if self.faults:
            return self.faults.pop(0)
        return None

    def corrupt_html(self, html, url, day):
        return html, None


class TestResilientFetcher(unittest.TestCase):
    def test_pass_through_without_injector(self):
        web = _FakeWeb(injector=None)
        fetcher = ResilientFetcher(web)
        response = fetcher.fetch("http://a.example.com/", SEARCH_USER, DAY)
        self.assertTrue(response.ok)
        self.assertIsNone(response.fault)
        self.assertEqual(web.fetches, 1)
        self.assertEqual(fetcher.simulated_backoff_s, 0.0)

    def test_transient_fault_retried_then_succeeds(self):
        web = _FakeWeb(_ScriptedInjector([FAULT_TIMEOUT, FAULT_CONNECTION]))
        fetcher = ResilientFetcher(web, RetryPolicy(max_attempts=3))
        response = fetcher.fetch("http://a.example.com/", SEARCH_USER, DAY)
        self.assertTrue(response.ok)
        self.assertIsNone(response.fault)
        self.assertEqual(web.fetches, 1)  # only the final attempt reached it
        self.assertGreater(fetcher.simulated_backoff_s, 0.0)

    def test_attempts_are_bounded(self):
        web = _FakeWeb(_ScriptedInjector([FAULT_TIMEOUT] * 50))
        fetcher = ResilientFetcher(web, RetryPolicy(max_attempts=3))
        response = fetcher.fetch("http://a.example.com/", SEARCH_USER, DAY)
        self.assertEqual(response.fault, FAULT_TIMEOUT)
        self.assertFalse(response.ok)
        self.assertEqual(web.fetches, 0)

    def test_ip_block_not_retried_within_day(self):
        web = _FakeWeb(_ScriptedInjector([FAULT_IP_BLOCK, None]))
        fetcher = ResilientFetcher(web, RetryPolicy(max_attempts=5))
        response = fetcher.fetch("http://a.example.com/", SEARCH_USER, DAY)
        self.assertEqual(response.fault, FAULT_IP_BLOCK)
        # The second scripted answer (None = success) was never consulted.
        self.assertEqual(web.fetches, 0)

    def test_breaker_opens_and_cools_down(self):
        policy = RetryPolicy(max_attempts=1, breaker_threshold=2,
                             breaker_cooldown_days=2)
        web = _FakeWeb(_ScriptedInjector([FAULT_TIMEOUT] * 10))
        fetcher = ResilientFetcher(web, policy)
        url = "http://blocked.example.com/"
        fetcher.fetch(url, SEARCH_USER, DAY)
        fetcher.fetch(url, SEARCH_USER, DAY)  # second failure trips it
        refused = fetcher.fetch(url, SEARCH_USER, DAY)
        self.assertEqual(refused.fault, FAULT_CIRCUIT_OPEN)
        # After the cooldown the breaker closes and fetches flow again.
        web.fault_injector = _ScriptedInjector([])
        recovered = fetcher.fetch(url, SEARCH_USER, DAY + 2)
        self.assertTrue(recovered.ok)

    def test_per_day_retry_budget(self):
        policy = RetryPolicy(max_attempts=3, per_day_retry_budget=1,
                             breaker_threshold=99)
        web = _FakeWeb(_ScriptedInjector([FAULT_TIMEOUT] * 20))
        fetcher = ResilientFetcher(web, policy)
        fetcher.fetch("http://a.example.com/", SEARCH_USER, DAY)
        self.assertEqual(fetcher._retries_today, 1)
        fetcher.fetch("http://b.example.com/", SEARCH_USER, DAY)
        self.assertEqual(fetcher._retries_today, 1)  # budget already spent
        # A new sim day resets the budget.
        fetcher.fetch("http://c.example.com/", SEARCH_USER, DAY + 1)
        self.assertEqual(fetcher._retries_today, 1)


class TestAtomicWrite(unittest.TestCase):
    def test_success_replaces_atomically(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "out.txt")
            with atomic_write(path) as handle:
                handle.write("payload")
            self.assertEqual(Path(path).read_text(), "payload")
            self.assertEqual(os.listdir(tmp), ["out.txt"])

    def test_failure_leaves_no_file_and_no_temp(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "out.txt")
            with self.assertRaises(RuntimeError):
                with atomic_write(path) as handle:
                    handle.write("partial")
                    raise RuntimeError("crash mid-write")
            self.assertEqual(os.listdir(tmp), [])

    def test_failure_preserves_previous_version(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "out.txt")
            Path(path).write_text("old")
            with self.assertRaises(RuntimeError):
                with atomic_write(path) as handle:
                    handle.write("new-partial")
                    raise RuntimeError("crash mid-write")
            self.assertEqual(Path(path).read_text(), "old")


class TestTornTailTolerance(unittest.TestCase):
    def _dataset_file(self, tmp):
        config = small_preset(days=12)
        results = StudyRun(config, classify=False).execute()
        path = os.path.join(tmp, "psrs.jsonl")
        results.dataset.dump_jsonl(path)
        return results.dataset, path

    def test_torn_final_line_skipped_with_warning(self):
        with tempfile.TemporaryDirectory() as tmp:
            dataset, path = self._dataset_file(tmp)
            with open(path, "a") as handle:
                handle.write('{"day": "2014-01-01", "term": "tru')
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                loaded = PsrDataset.load_jsonl(path)
            self.assertEqual(len(loaded), len(dataset))
            self.assertTrue(any("torn final line" in str(w.message)
                                for w in caught))

    def test_mid_file_corruption_still_raises(self):
        with tempfile.TemporaryDirectory() as tmp:
            _, path = self._dataset_file(tmp)
            lines = Path(path).read_text().splitlines()
            lines[len(lines) // 2] = '{"broken":'
            Path(path).write_text("\n".join(lines) + "\n")
            with self.assertRaises(json.JSONDecodeError):
                PsrDataset.load_jsonl(path)

    def test_metrics_torn_tail_skipped(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "metrics.jsonl")
            with open(path, "w") as handle:
                handle.write(json.dumps({"_type": "sample", "day": "d"}) + "\n")
                handle.write('{"_type": "sam')
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                manifest, rows = MetricsRecorder.load_jsonl(path)
            self.assertIsNone(manifest)
            self.assertEqual(len(rows), 1)
            self.assertTrue(any("torn final line" in str(w.message)
                                for w in caught))


class TestGapTolerantAnalysis(unittest.TestCase):
    def test_peak_duration_carries_forward_over_missed_days(self):
        series = {0: 5, 1: 5, 3: 5, 4: 5}
        # Day 2 as a true zero dilutes the peak: the >=60% window must
        # swallow the dead day.
        self.assertEqual(_peak_duration(series), 4)
        # Day 2 as a crawl-blind day carries forward: three live days
        # already hold 60% of the (bridged) mass.
        self.assertEqual(_peak_duration(series, {2}), 3)

    def test_peak_duration_ignores_irrelevant_missed_days(self):
        series = {0: 5, 1: 5, 2: 5}
        self.assertEqual(_peak_duration(series), _peak_duration(series, {9}))

    def test_extend_through_gaps(self):
        self.assertEqual(_extend_through_gaps(10, {11, 12, 13}, limit=20), 13)
        self.assertEqual(_extend_through_gaps(10, {11, 12, 13}, limit=12), 11)
        self.assertEqual(_extend_through_gaps(10, {12}, limit=20), 10)
        self.assertEqual(_extend_through_gaps(10, set(), limit=20), 10)

    def test_no_op_when_nothing_missed(self):
        config = small_preset(days=16)
        results = StudyRun(config, classify=False).execute()
        self.assertEqual(results.dataset.missed_ordinals(), set())


class TestCheckpointResume(unittest.TestCase):
    """The tentpole acceptance pin: kill + resume is byte-identical."""

    DAYS = 20

    def _dump(self, results, path):
        results.dataset.dump_jsonl(path)
        return Path(path).read_bytes()

    def test_kill_resume_output_byte_identical(self):
        with tempfile.TemporaryDirectory() as tmp:
            baseline = StudyRun(
                small_preset(days=self.DAYS), classify=False
            ).execute()
            expected = self._dump(baseline, os.path.join(tmp, "full.jsonl"))

            ckpt = os.path.join(tmp, "run.ckpt")
            with self.assertRaises(SimulatedCrash):
                StudyRun(
                    small_preset(days=self.DAYS), classify=False,
                    checkpoint_path=ckpt, die_after_day=7,
                ).execute()
            self.assertTrue(os.path.exists(ckpt))

            resumed_run = StudyRun(
                small_preset(days=self.DAYS), classify=False,
                checkpoint_path=ckpt, resume=True,
            )
            resumed = resumed_run.execute()
            self.assertEqual(resumed_run.resumed_from_day, 8)
            got = self._dump(resumed, os.path.join(tmp, "resumed.jsonl"))
            self.assertEqual(got, expected)
            # Completion clears the checkpoint.
            self.assertFalse(os.path.exists(ckpt))

    def test_kill_resume_under_faults_byte_identical(self):
        profile = PROFILES["flaky-network"]
        with tempfile.TemporaryDirectory() as tmp:
            baseline = StudyRun(
                small_preset(days=self.DAYS), classify=False,
                fault_profile=profile, fault_seed=4,
            ).execute()
            expected = self._dump(baseline, os.path.join(tmp, "full.jsonl"))

            ckpt = os.path.join(tmp, "run.ckpt")
            with self.assertRaises(SimulatedCrash):
                StudyRun(
                    small_preset(days=self.DAYS), classify=False,
                    fault_profile=profile, fault_seed=4,
                    checkpoint_path=ckpt, die_after_day=9,
                ).execute()
            resumed = StudyRun(
                small_preset(days=self.DAYS), classify=False,
                checkpoint_path=ckpt, resume=True,
            ).execute()
            got = self._dump(resumed, os.path.join(tmp, "resumed.jsonl"))
            self.assertEqual(got, expected)

    def test_checkpoint_rejects_mismatched_config(self):
        with tempfile.TemporaryDirectory() as tmp:
            ckpt = os.path.join(tmp, "run.ckpt")
            with self.assertRaises(SimulatedCrash):
                StudyRun(
                    small_preset(days=self.DAYS), classify=False,
                    checkpoint_path=ckpt, die_after_day=3,
                ).execute()
            with self.assertRaises(CheckpointError):
                load_checkpoint(ckpt, small_preset(days=self.DAYS + 5))


class TestChaosInvariants(unittest.TestCase):
    DAYS = 20

    def _psr_bytes(self, results, tmp, name):
        path = os.path.join(tmp, name)
        results.dataset.dump_jsonl(path)
        return Path(path).read_bytes()

    def test_same_fault_seed_same_output(self):
        profile = PROFILES["monsoon"]
        with tempfile.TemporaryDirectory() as tmp:
            first = StudyRun(
                small_preset(days=self.DAYS), classify=False,
                fault_profile=profile, fault_seed=2,
            ).execute()
            second = StudyRun(
                small_preset(days=self.DAYS), classify=False,
                fault_profile=profile, fault_seed=2,
            ).execute()
            self.assertEqual(
                self._psr_bytes(first, tmp, "a.jsonl"),
                self._psr_bytes(second, tmp, "b.jsonl"),
            )

    def test_clean_profile_matches_no_injector(self):
        with tempfile.TemporaryDirectory() as tmp:
            plain = StudyRun(
                small_preset(days=self.DAYS), classify=False
            ).execute()
            clean = StudyRun(
                small_preset(days=self.DAYS), classify=False,
                fault_profile=PROFILES["clean"], fault_seed=123,
            ).execute()
            self.assertEqual(
                self._psr_bytes(plain, tmp, "plain.jsonl"),
                self._psr_bytes(clean, tmp, "clean.jsonl"),
            )

    def test_chaos_run_degrades_but_survives(self):
        profile = PROFILES["monsoon"]
        chaos = StudyRun(
            small_preset(days=self.DAYS), classify=False,
            fault_profile=profile,
        ).execute()
        plain = StudyRun(
            small_preset(days=self.DAYS), classify=False
        ).execute()
        self.assertGreater(len(chaos.dataset), 0)
        self.assertLessEqual(len(chaos.dataset), len(plain.dataset))
        # Monsoon loses SERPs: the gaps are marked, not silently absent.
        self.assertTrue(chaos.dataset.missed_ordinals())
        missing = sum(
            c.terms_missed for c in chaos.dataset._coverage.values()
        )
        self.assertGreater(missing, 0)


if __name__ == "__main__":
    unittest.main()
