"""Tests for ``repro.lint.flow`` — the interprocedural ``--deep`` pass.

Fixture packages under ``tests/lint_fixtures/flow/`` each exercise one
rule with a positive case (must fire), a negative case (must stay
quiet), and a waived case (fires but is consumed by a reasoned
``# repro: allow-D10x`` comment).  They are shallow-clean by design so
the per-file fixture totals in ``test_lint.py`` stay pinned.

The shipped ``src/`` tree must come out of the deep pass clean — both
through the API and through the real ``python -m repro lint --deep``
entry point CI uses.
"""

import json
import os
import shutil
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

from repro.lint import lint_paths, select_rules
from repro.lint.flow import (
    analyze_paths,
    deep_lint,
    flow_rule_codes,
    graph_dump,
)

TESTS_DIR = Path(__file__).resolve().parent
FLOW_FIXTURES = TESTS_DIR / "lint_fixtures" / "flow"
REPO_ROOT = TESTS_DIR.parent


def run_cli(*argv, cwd=REPO_ROOT):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *argv],
        cwd=cwd, env=env, capture_output=True, text=True,
    )


def deep_on(case, **kwargs):
    kwargs.setdefault("cache_dir", None)
    return deep_lint([str(FLOW_FIXTURES / case)], **kwargs)


class TestCallGraph(unittest.TestCase):
    """Linking on the graphcase package: cycle, methods, decorators."""

    @classmethod
    def setUpClass(cls):
        cls.program, cls.effects, cls.stats = analyze_paths(
            [str(FLOW_FIXTURES / "graphcase")], cache_dir=None
        )

    def edges(self):
        return {(e.caller, e.callee) for e in self.program.edges}

    def test_cross_module_cycle_edges(self):
        self.assertIn(
            ("graphcase.alpha.countdown", "graphcase.beta.bounce"), self.edges()
        )
        self.assertIn(
            ("graphcase.beta.bounce", "graphcase.alpha.countdown"), self.edges()
        )

    def test_method_call_resolves_through_constructed_instance(self):
        self.assertIn(
            ("graphcase.beta.bounce", "graphcase.beta.Tracker.__init__"),
            self.edges(),
        )
        self.assertIn(
            ("graphcase.beta.bounce", "graphcase.beta.Tracker.note"), self.edges()
        )

    def test_decorated_function_is_linked(self):
        self.assertIn("graphcase.alpha.decorated_entry", self.program.functions)
        self.assertIn(
            ("graphcase.alpha.decorated_entry", "graphcase.alpha.countdown"),
            self.edges(),
        )

    def test_import_edges_counted(self):
        self.assertEqual(self.stats.import_edges, 2)  # alpha <-> beta

    def test_fixpoint_propagates_effects_around_the_cycle(self):
        # bump()'s global store must reach every function on the cycle,
        # and through it the decorated entry point two hops up.
        for qual in (
            "graphcase.beta.bounce",
            "graphcase.alpha.countdown",
            "graphcase.alpha.decorated_entry",
        ):
            targets = self.effects.of(qual).get("mutates-global", {}).get(
                "targets", {}
            )
            self.assertIn("graphcase.alpha:COUNTS", targets, qual)
        self.assertGreater(self.stats.fixpoint_iterations, 0)

    def test_witness_chain_names_the_origin(self):
        record = self.effects.of("graphcase.alpha.decorated_entry")[
            "mutates-global"
        ]["targets"]["graphcase.alpha:COUNTS"]
        self.assertEqual(record["origin"], "graphcase.alpha.bump")
        self.assertEqual(record["origin_module"], "graphcase.alpha")


class TestRules(unittest.TestCase):
    """Each D10x rule: fires on the positive, quiet on the negative,
    consumed by the waiver — per fixture package."""

    def findings(self, case):
        report = deep_on(case)
        return report, [(f.code, Path(f.path).name, f.line) for f in report.findings]

    def test_d101_worker_purity(self):
        report, findings = self.findings("d101case")
        self.assertEqual(findings, [("D101", "state.py", 7)])
        # task fires, safe_task (read-only) and local_task (spawn-module
        # global) stay quiet, waived_task's mutation is waived in waived.py.
        self.assertEqual(report.suppressions_used, 1)
        self.assertEqual(report.unused_suppression_sites, [])

    def test_d102_artifact_taint(self):
        report, findings = self.findings("d102case")
        self.assertEqual(findings, [("D102", "writer.py", 6)])
        self.assertIn("identity", report.findings[0].message)
        self.assertEqual(report.suppressions_used, 1)

    def test_d102_interprocedural_id_bug_is_invisible_to_shallow_rules(self):
        # The PR 1 regression class, split across a module boundary:
        # id() is produced in keys.py and only *used* as a key by the
        # writer — so per-file D004 (and every other shallow rule) stays
        # quiet, while --deep tracks the identity taint across the call.
        shallow = lint_paths(
            [str(FLOW_FIXTURES / "d102case")], select_rules(None)
        )
        self.assertEqual(shallow.findings, [])
        _report, findings = self.findings("d102case")
        self.assertEqual([code for code, _, _ in findings], ["D102"])

    def test_d103_merge_path_ordering(self):
        report, findings = self.findings("d103case")
        self.assertEqual(findings, [("D103", "merge.py", 17)])
        self.assertIn("merge root", report.findings[0].message)
        self.assertEqual(report.suppressions_used, 1)

    def test_d104_contract_verification(self):
        report, findings = self.findings("d104case")
        self.assertEqual(
            findings,
            [("D104", "contracts.py", 6), ("D104", "contracts.py", 25)],
        )
        messages = [f.message for f in report.findings]
        self.assertIn("mutates-global", messages[0])      # declared pure, isn't
        self.assertIn("unknown effect contract", messages[1])
        # truly_pure and the worker-safe mutates-self method stay quiet;
        # waived_impure's violation is consumed by its allow-D104.
        self.assertEqual(report.suppressions_used, 1)

    def test_d104_stray_annotation_reported(self):
        with tempfile.TemporaryDirectory() as tmp:
            stray = Path(tmp) / "stray.py"
            stray.write_text(
                "# repro: effects=pure\nVALUE = 3\n\ndef f():\n    return VALUE\n"
            )
            report = deep_lint([tmp], cache_dir=None)
        self.assertEqual(
            [(f.code, f.line) for f in report.findings], [("D104", 1)]
        )
        self.assertIn("not attached", report.findings[0].message)

    def test_d105_stream_aliasing(self):
        report, findings = self.findings("d105case")
        # 'demand' is drawn in both modules: the lexicographically-later
        # module gets the finding.  'supply' is single-module (quiet) and
        # the shared 'cursor' draw is waived.
        self.assertEqual(findings, [("D105", "gen_two.py", 5)])
        self.assertIn("'demand'", report.findings[0].message)
        self.assertEqual(report.suppressions_used, 1)

    def test_unused_deep_waiver_is_reported(self):
        with tempfile.TemporaryDirectory() as tmp:
            clean = Path(tmp) / "clean.py"
            clean.write_text(
                "# repro: allow-D102 left over from a removed writer\n"
                "def f(x):\n"
                "    return x\n"
            )
            report = deep_lint([tmp], cache_dir=None)
        self.assertEqual(report.findings, [])
        self.assertEqual(len(report.unused_suppression_sites), 1)

    def test_rule_selection(self):
        from repro.lint.flow import all_flow_rules

        only_d104 = [r for r in all_flow_rules() if r.code == "D104"]
        report = deep_on("d101case", rules=only_d104)
        self.assertEqual(report.findings, [])
        self.assertEqual(report.rule_codes, ["D104"])


class TestSummaryCache(unittest.TestCase):
    """The content-digest cache: cold misses, warm hits, edit invalidates."""

    def setUp(self):
        self._tmpdir = tempfile.TemporaryDirectory()
        self.tmp = Path(self._tmpdir.name)
        self.addCleanup(self._tmpdir.cleanup)
        self.pkg = self.tmp / "d103case"
        shutil.copytree(FLOW_FIXTURES / "d103case", self.pkg)
        self.cache_dir = str(self.tmp / "flowcache")

    def analyze(self):
        _program, _effects, stats = analyze_paths(
            [str(self.pkg)], cache_dir=self.cache_dir
        )
        return stats

    def test_cold_then_warm_then_invalidate(self):
        cold = self.analyze()
        self.assertEqual(cold.cache_hits, 0)
        self.assertEqual(cold.cache_misses, cold.modules)

        warm = self.analyze()
        self.assertEqual(warm.cache_hits, warm.modules)
        self.assertEqual(warm.cache_misses, 0)

        # Touching content (not just mtime) re-summarizes only that module.
        target = self.pkg / "merge.py"
        target.write_text(target.read_text() + "\n\ndef extra():\n    return 1\n")
        edited = self.analyze()
        self.assertEqual(edited.cache_misses, 1)
        self.assertEqual(edited.cache_hits, edited.modules - 1)
        # And the re-summarized module really is the new one.
        program, _effects, _stats = analyze_paths(
            [str(self.pkg)], cache_dir=self.cache_dir
        )
        self.assertIn("d103case.merge.extra", program.functions)

    def test_cache_disabled_runs_clean(self):
        _program, _effects, stats = analyze_paths([str(self.pkg)], cache_dir=None)
        self.assertEqual(stats.cache_hits, 0)


class TestShippedTreeDeep(unittest.TestCase):
    """``src/`` and ``benchmarks/`` must hold the interprocedural
    discipline too — with no stale deep waivers."""

    @classmethod
    def setUpClass(cls):
        cls.report = deep_lint(
            [str(REPO_ROOT / "src"), str(REPO_ROOT / "benchmarks")],
            root=str(REPO_ROOT),
            cache_dir=None,
        )

    def test_tree_is_deep_clean(self):
        self.assertEqual(
            [f.format_text() for f in self.report.findings], [],
            "shipped tree must pass repro lint --deep clean",
        )
        self.assertEqual(self.report.unused_suppression_sites, [])

    def test_real_roots_discovered(self):
        stats = self.report.stats
        self.assertGreater(stats.worker_roots, 0)
        self.assertGreater(stats.merge_roots, 0)
        self.assertGreater(stats.call_edges, 500)
        self.assertIn(
            "repro.perf.shardpool.CrawlExecutor._merge_day",
            self.report.program.merge_roots,
        )

    def test_graph_dump_shape(self):
        dump = graph_dump(self.report.program, self.report.stats)
        self.assertEqual(dump["schema"], 1)
        self.assertEqual(dump["stats"]["modules"], self.report.stats.modules)
        self.assertTrue(all("caller" in e for e in dump["edges"]))
        json.dumps(dump)  # must be JSON-serializable as-is


class TestCommandLine(unittest.TestCase):
    """End-to-end through ``python -m repro lint --deep`` as CI runs it."""

    def test_deep_clean_exit_zero(self):
        with tempfile.TemporaryDirectory() as tmp:
            proc = run_cli(
                "src/", "benchmarks/", "--deep",
                "--flow-cache", str(Path(tmp) / "cache"),
            )
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("repro.lint --deep: ok", proc.stdout)

    def test_deep_fixture_findings_exit_one(self):
        proc = run_cli(
            "tests/lint_fixtures/flow/", "--deep", "--no-flow-cache"
        )
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        for code in flow_rule_codes():
            self.assertIn(code, proc.stdout)

    def test_deep_code_without_deep_flag_exits_two(self):
        proc = run_cli("src/", "--select", "D102")
        self.assertEqual(proc.returncode, 2)
        self.assertIn("--deep", proc.stderr)

    def test_graph_requires_deep(self):
        proc = run_cli("src/", "--graph", "json")
        self.assertEqual(proc.returncode, 2)

    def test_graph_json_parses(self):
        proc = run_cli(
            "tests/lint_fixtures/flow/graphcase", "--deep", "--graph", "json",
            "--no-flow-cache",
        )
        payload = json.loads(proc.stdout)
        self.assertEqual(payload["schema"], 1)
        self.assertTrue(payload["edges"])

    def test_sarif_output_carries_both_registries(self):
        proc = run_cli(
            "tests/lint_fixtures/flow/", "--deep", "--format", "sarif",
            "--no-flow-cache",
        )
        self.assertEqual(proc.returncode, 1)
        payload = json.loads(proc.stdout)
        self.assertEqual(payload["version"], "2.1.0")
        run = payload["runs"][0]
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        self.assertLessEqual({"D001", "D101", "D105"}, rule_ids)
        result_rules = {r["ruleId"] for r in run["results"]}
        self.assertLessEqual(set(flow_rule_codes()), result_rules)

    def test_json_format_carries_deep_block(self):
        proc = run_cli(
            "tests/lint_fixtures/flow/d103case", "--deep", "--format", "json",
            "--no-flow-cache",
        )
        payload = json.loads(proc.stdout)
        deep = payload["summary"]["deep"]
        self.assertEqual(deep["by_rule"], {"D103": 1})
        self.assertEqual(deep["suppressions_used"], 1)
        self.assertIn("fixpoint_iterations", deep["stats"])
        self.assertEqual(len(payload["deep_findings"]), 1)

    def test_warm_cli_run_hits_cache(self):
        with tempfile.TemporaryDirectory() as tmp:
            cache = str(Path(tmp) / "cache")
            run_cli("src/repro/analysis", "--deep", "--flow-cache", cache)
            proc = run_cli(
                "src/repro/analysis", "--deep", "--flow-cache", cache,
                "--format", "json",
            )
        payload = json.loads(proc.stdout)
        stats = payload["summary"]["deep"]["stats"]
        self.assertEqual(stats["cache_hits"], stats["modules"])
        self.assertEqual(stats["cache_misses"], 0)

    def test_list_rules_includes_flow_rules_with_deep(self):
        proc = run_cli("--list-rules", "--deep")
        self.assertEqual(proc.returncode, 0)
        for code in flow_rule_codes():
            self.assertIn(code, proc.stdout)


if __name__ == "__main__":
    unittest.main()
