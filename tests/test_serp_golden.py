"""Golden-snapshot lock on SERP serving.

The scenario below exercises every scoring input the engine knows about —
authority/relevance statics, per-(term, day) ranking noise, time-varying
SEO signals, ``indexed_on`` gating, host demotion with a start day, result
labels, host-cap clustering, and deindexing — and pins the exact output
(URL order and bit-exact scores via ``float.hex``) to
``tests/data/serp_golden.json``.

The snapshot pins the columnar engine's noise stream: PCG64
``standard_normal`` with SHA-256-derived per-(term, day) state (see
``NoiseSource``), adopted — and the snapshot regenerated, the one
deliberate, documented divergence of that change — when serving went
columnar, because replaying CPython's Mersenne-Twister ``gauss`` stream
cost more per query in reseeding alone than the rest of serving combined.
Ordering, labels, and every other scoring input are unchanged from the
scalar loop, and batch noise equals sequential scalar draws bit for bit
(``tests/test_search.py``).  Regenerate (only with a justification in the
PR) via::

    PYTHONPATH=src python tests/test_serp_golden.py --regen
"""

from __future__ import annotations

import json
import os

from repro.util.rng import RandomStreams
from repro.util.simtime import SimDate
from repro.web.domains import DomainRegistry
from repro.web.sites import Site, SiteKind
from repro.search import ResultLabel, SearchEngine, SearchIndex

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "data", "serp_golden.json")

DAY0 = SimDate("2013-11-13")
TERMS = ("cheap uggs", "louis vuitton outlet", "beats by dre sale")
#: Days captured per term: before/after the demotion day and the
#: late-indexed doorway's entry day.
CAPTURE_OFFSETS = (0, 3, 6, 12, 30)


def _signal(quality: float):
    """A deterministic time-varying SEO signal (campaign effort analogue)."""

    def signal(day) -> float:
        return quality * (0.6 + 0.05 * (day.ordinal % 7))

    return signal


def build_engine() -> SearchEngine:
    streams = RandomStreams(20140715)
    registry = DomainRegistry()
    index = SearchIndex()
    for t, term in enumerate(TERMS):
        # Legitimate background: 120 single-page sites with interleaved
        # authority/relevance so ranking noise matters near the cut.
        for i in range(120):
            domain = registry.register(f"legit{t}-{i}.com", DAY0)
            site = Site(domain, SiteKind.LEGITIMATE,
                        authority=0.25 + 0.005 * ((i * 7) % 120),
                        created_on=DAY0)
            index.add_page(term, site, "/", relevance=0.4 + 0.004 * ((i * 13) % 120))
        # A handful of multi-page hosts to exercise the host-result cap.
        for i in range(4):
            domain = registry.register(f"big{t}-{i}.com", DAY0)
            site = Site(domain, SiteKind.LEGITIMATE, authority=0.85 + 0.02 * i,
                        created_on=DAY0)
            for p in range(5):
                index.add_page(term, site, f"/cat{p}.html", relevance=0.7 + 0.01 * p)
        # Doorways: strong SEO signal, deep-page authority discount, and a
        # staggered indexed_on so entry gating shows up in the captures.
        for i in range(8):
            domain = registry.register(f"doorway{t}-{i}.net", DAY0)
            site = Site(domain, SiteKind.COMPROMISED, authority=0.5 + 0.03 * i,
                        created_on=DAY0)
            index.add_page(
                term, site, f"/door{i}.html", relevance=0.75,
                seo_signal=_signal(0.8 + 0.05 * i),
                indexed_on=DAY0 + (i % 4) * 2,
                authority_factor=0.75,
            )
    engine = SearchEngine(index, streams, serp_size=50, max_results_per_host=2)
    # Interventions: a demotion kicking in mid-window, labels on two hosts,
    # and a deindexed doorway.
    engine.demote_host("doorway0-1.net", DAY0 + 5, amount=1.2)
    engine.demote_host("big0-3.com", DAY0 + 10, amount=0.4)
    engine.label_host("doorway1-2.net", DAY0 + 3, ResultLabel.HACKED)
    engine.label_host("doorway2-0.net", DAY0 + 4, ResultLabel.MALWARE)
    engine.deindex_host("doorway0-5.net")
    return engine


def capture(engine: SearchEngine):
    cases = []
    for term in TERMS:
        for offset in CAPTURE_OFFSETS:
            day = DAY0 + offset
            serp = engine.serp(term, day)
            cases.append({
                "term": term,
                "day": day.isoformat(),
                "results": [
                    {
                        "rank": r.rank,
                        "url": r.url,
                        "label": r.label.value,
                        "score": r.score.hex(),
                    }
                    for r in serp.results
                ],
            })
    return cases


def test_serp_golden_snapshot_cached_reserve_bit_exact():
    """A memoized re-serve must match the golden snapshot bit for bit.

    The first capture pass populates the engine's per-(term, day) SERP
    memo; the second pass serves every case again from it.  Both must
    equal the golden file — the cache can only ever hand back exactly
    what a fresh serve would have produced."""
    from repro.perf.cache import caches_enabled
    from repro.util.perf import PERF

    engine = build_engine()
    first = capture(engine)
    hits_before = PERF.counters().get("cache.serp.hit", 0)
    second = capture(engine)
    assert second == first
    with open(GOLDEN_PATH) as handle:
        golden = json.load(handle)
    assert [(c["term"], c["day"], [r["score"] for r in c["results"]]) for c in second] == \
           [(c["term"], c["day"], [r["score"] for r in c["results"]]) for c in golden]
    if caches_enabled():
        # Every repeat case came from the memo, not a re-rank.
        assert PERF.counters().get("cache.serp.hit", 0) >= hits_before + len(second)


def test_serp_golden_snapshot():
    with open(GOLDEN_PATH) as handle:
        golden = json.load(handle)
    cases = capture(build_engine())
    assert len(cases) == len(golden)
    for got, want in zip(cases, golden):
        assert got["term"] == want["term"]
        assert got["day"] == want["day"]
        got_rows = [(r["rank"], r["url"], r["label"]) for r in got["results"]]
        want_rows = [(r["rank"], r["url"], r["label"]) for r in want["results"]]
        assert got_rows == want_rows, f"order diverged for {got['term']}@{got['day']}"
        got_scores = [r["score"] for r in got["results"]]
        want_scores = [r["score"] for r in want["results"]]
        assert got_scores == want_scores, (
            f"scores not bit-identical for {got['term']}@{got['day']}"
        )


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
        with open(GOLDEN_PATH, "w") as handle:
            json.dump(capture(build_engine()), handle, indent=1)
        print(f"wrote {GOLDEN_PATH}")
    else:
        test_serp_golden_snapshot()
        print("golden snapshot matches")
