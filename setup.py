"""Legacy setup shim: this environment's pip lacks the `wheel` package, so
PEP-517 editable installs fail; plain `pip install -e .` works through this."""
from setuptools import setup, find_packages

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Search + Seizure: The Effectiveness of "
        "Interventions on SEO Campaigns' (IMC 2014)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy", "scipy", "networkx"],
)
