"""Fluent helper for composing HTML documents programmatically.

Campaign page templates (doorways, storefronts, seizure notices) are built
with this rather than string concatenation, so generated markup is always
well-formed and the parser/classifier round-trip is exact.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.html.nodes import Comment, Document, Element, Text


class PageBuilder:
    """Builds a Document with a head/body skeleton and chainable helpers."""

    def __init__(self, title: str = "", lang: str = "en"):
        self.doc = Document(Element("html", {"lang": lang}))
        self._head = self.doc.root.add("head")
        self._head.add("meta", {"charset": "utf-8"})
        if title:
            self._head.add("title", text=title)
        self._body = self.doc.root.add("body")

    @property
    def head(self) -> Element:
        return self._head

    @property
    def body(self) -> Element:
        return self._body

    def meta(self, name: str, content: str) -> "PageBuilder":
        self._head.add("meta", {"name": name, "content": content})
        return self

    def stylesheet(self, href: str) -> "PageBuilder":
        self._head.add("link", {"rel": "stylesheet", "href": href})
        return self

    def script(self, code: str = "", src: str = "") -> "PageBuilder":
        attrs = {"type": "text/javascript"}
        if src:
            attrs["src"] = src
        el = self._body.add("script", attrs)
        if code:
            el.append(Text(code))
        return self

    def comment(self, text: str) -> "PageBuilder":
        self._body.append(Comment(text))
        return self

    def div(self, cls: str = "", id_: str = "", text: str = "") -> Element:
        attrs: Dict[str, str] = {}
        if cls:
            attrs["class"] = cls
        if id_:
            attrs["id"] = id_
        return self._body.add("div", attrs, text=text)

    def heading(self, text: str, level: int = 1) -> "PageBuilder":
        if not 1 <= level <= 6:
            raise ValueError(f"heading level must be 1..6, got {level}")
        self._body.add(f"h{level}", text=text)
        return self

    def paragraph(self, text: str, cls: str = "") -> "PageBuilder":
        attrs = {"class": cls} if cls else {}
        self._body.add("p", attrs, text=text)
        return self

    def link(self, href: str, text: str, parent: Optional[Element] = None) -> "PageBuilder":
        (parent if parent is not None else self._body).add("a", {"href": href}, text=text)
        return self

    def image(self, src: str, alt: str = "", parent: Optional[Element] = None) -> "PageBuilder":
        (parent if parent is not None else self._body).add("img", {"src": src, "alt": alt})
        return self

    def iframe(self, src: str, width: str, height: str, **extra: str) -> "PageBuilder":
        attrs = {"src": src, "width": width, "height": height}
        attrs.update(extra)
        self._body.add("iframe", attrs)
        return self

    def build(self) -> Document:
        return self.doc

    def html(self) -> str:
        return self.doc.to_html()
