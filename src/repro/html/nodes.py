"""HTML document object model: a small tree of elements, text, and comments."""

from __future__ import annotations

import html as _htmllib
from typing import Dict, Iterator, List, Optional

#: Elements that never have children or closing tags.
VOID_ELEMENTS = frozenset(
    {
        "area", "base", "br", "col", "embed", "hr", "img", "input",
        "link", "meta", "param", "source", "track", "wbr",
    }
)


class Node:
    """Base class for all DOM nodes."""

    def to_html(self) -> str:
        raise NotImplementedError

    def text_content(self) -> str:
        return ""


class Text(Node):
    """A run of character data."""

    __slots__ = ("data",)

    def __init__(self, data: str):
        self.data = data

    def to_html(self) -> str:
        return _htmllib.escape(self.data, quote=False)

    def text_content(self) -> str:
        return self.data

    def __repr__(self) -> str:
        preview = self.data if len(self.data) <= 30 else self.data[:27] + "..."
        return f"Text({preview!r})"


class Comment(Node):
    """An HTML comment; campaigns leave telltale comments in templates."""

    __slots__ = ("data",)

    def __init__(self, data: str):
        self.data = data

    def to_html(self) -> str:
        return f"<!--{self.data}-->"

    def __repr__(self) -> str:
        return f"Comment({self.data!r})"


class Element(Node):
    """An HTML element with attributes and children."""

    __slots__ = ("tag", "attrs", "children")

    def __init__(self, tag: str, attrs: Optional[Dict[str, str]] = None, children=None):
        self.tag = tag.lower()
        self.attrs: Dict[str, str] = dict(attrs or {})
        self.children: List[Node] = list(children or [])

    def append(self, node: Node) -> Node:
        self.children.append(node)
        return node

    def add(self, tag: str, attrs: Optional[Dict[str, str]] = None, text: str = "") -> "Element":
        """Convenience: create a child element, optionally with a text child."""
        child = Element(tag, attrs)
        if text:
            child.append(Text(text))
        self.children.append(child)
        return child

    def get(self, name: str, default: str = "") -> str:
        return self.attrs.get(name, default)

    def iter(self) -> Iterator["Element"]:
        """Depth-first iteration over this element and all descendants."""
        yield self
        for child in self.children:
            if isinstance(child, Element):
                yield from child.iter()

    def find_all(self, tag: str) -> List["Element"]:
        return [el for el in self.iter() if el.tag == tag.lower()]

    def find(self, tag: str) -> Optional["Element"]:
        for el in self.iter():
            if el.tag == tag.lower():
                return el
        return None

    def text_content(self) -> str:
        return "".join(child.text_content() for child in self.children)

    def to_html(self) -> str:
        parts = [f"<{self.tag}"]
        for name, value in self.attrs.items():
            parts.append(f' {name}="{_htmllib.escape(str(value), quote=True)}"')
        if self.tag in VOID_ELEMENTS:
            parts.append("/>")
            return "".join(parts)
        parts.append(">")
        if self.tag in ("script", "style"):
            # Raw-text elements: children serialize unescaped, matching how
            # the parser tokenizes their content.
            for child in self.children:
                if isinstance(child, Text):
                    parts.append(child.data)
                else:
                    parts.append(child.to_html())
        else:
            for child in self.children:
                parts.append(child.to_html())
        parts.append(f"</{self.tag}>")
        return "".join(parts)

    def __repr__(self) -> str:
        return f"Element({self.tag!r}, attrs={self.attrs!r}, children={len(self.children)})"


class Document:
    """A parsed or generated HTML document."""

    def __init__(self, root: Optional[Element] = None):
        self.root = root if root is not None else Element("html")

    @property
    def head(self) -> Optional[Element]:
        return self.root.find("head")

    @property
    def body(self) -> Optional[Element]:
        return self.root.find("body")

    def iter(self) -> Iterator[Element]:
        return self.root.iter()

    def find_all(self, tag: str) -> List[Element]:
        return self.root.find_all(tag)

    def title(self) -> str:
        el = self.root.find("title")
        return el.text_content() if el is not None else ""

    def text_content(self) -> str:
        return self.root.text_content()

    def to_html(self) -> str:
        return "<!DOCTYPE html>" + self.root.to_html()

    def __repr__(self) -> str:
        return f"Document(title={self.title()!r})"
