"""Minimal HTML substrate.

The paper's measurement pipeline operates on raw HTML: the classifier
extracts tag-attribute-value bag-of-words features (Section 4.2.1), Dagger
diffs page versions, and VanGogh looks for full-viewport iframes
(Section 4.1.2).  This package provides just enough HTML machinery to
generate realistic pages and to parse them back — with no external
dependencies.
"""

from repro.html.nodes import Element, Text, Comment, Document
from repro.html.parser import parse_html, tokenize, Token
from repro.html.builder import PageBuilder

__all__ = [
    "Element",
    "Text",
    "Comment",
    "Document",
    "parse_html",
    "tokenize",
    "Token",
    "PageBuilder",
]
