"""A tolerant HTML tokenizer and tree builder.

Handles the HTML our generator emits plus common sloppiness (unquoted
attributes, unclosed tags, stray close tags) so the crawlers can parse pages
without ever raising.  ``script`` and ``style`` contents are treated as raw
text, which matters because iframe-cloaking JavaScript lives there.

``parse_html`` stays a pure function: the content-addressed memoized
wrapper lives in :mod:`repro.perf.cache` (``parse_html_cached``), and
callers that mutate their parse results must keep using this module
directly so shared cached Documents stay frozen.
"""

from __future__ import annotations

import html as _htmllib
import re
from typing import Dict, Iterator, List, NamedTuple, Tuple

from repro.html.nodes import Comment, Document, Element, Text, VOID_ELEMENTS

#: Elements whose content is raw text until the matching close tag.
RAW_TEXT_ELEMENTS = frozenset({"script", "style"})


class Token(NamedTuple):
    """A lexical token: kind is one of 'start', 'end', 'text', 'comment',
    'doctype'; for 'start' tokens, data is the tag name and attrs the
    attribute dict; self_closing marks ``<tag/>`` forms."""

    kind: str
    data: str
    attrs: Dict[str, str]
    self_closing: bool


_ATTR_RE = re.compile(
    r"""([a-zA-Z_:][-a-zA-Z0-9_:.]*)          # attribute name
        (?:\s*=\s*
            (?: "([^"]*)" | '([^']*)' | ([^\s>]+) )  # "v" | 'v' | bare
        )?""",
    re.VERBOSE,
)
_TAG_NAME_RE = re.compile(r"[a-zA-Z][-a-zA-Z0-9]*")


def _parse_attrs(text: str) -> Tuple[Dict[str, str], bool]:
    self_closing = text.rstrip().endswith("/")
    attrs: Dict[str, str] = {}
    for match in _ATTR_RE.finditer(text):
        name = match.group(1).lower()
        if name == "/":
            continue
        value = next((g for g in match.groups()[1:] if g is not None), "")
        attrs[name] = _htmllib.unescape(value)
    return attrs, self_closing


def tokenize(source: str) -> Iterator[Token]:
    """Yield tokens from HTML source; never raises on malformed input."""
    pos = 0
    length = len(source)
    raw_mode_tag = None
    while pos < length:
        if raw_mode_tag is not None:
            close = source.find(f"</{raw_mode_tag}", pos)
            if close == -1:
                if pos < length:
                    yield Token("text", source[pos:], {}, False)
                return
            if close > pos:
                yield Token("text", source[pos:close], {}, False)
            end = source.find(">", close)
            end = length if end == -1 else end + 1
            yield Token("end", raw_mode_tag, {}, False)
            pos = end
            raw_mode_tag = None
            continue

        lt = source.find("<", pos)
        if lt == -1:
            yield Token("text", _htmllib.unescape(source[pos:]), {}, False)
            return
        if lt > pos:
            yield Token("text", _htmllib.unescape(source[pos:lt]), {}, False)
        if source.startswith("<!--", lt):
            close = source.find("-->", lt + 4)
            if close == -1:
                yield Token("comment", source[lt + 4:], {}, False)
                return
            yield Token("comment", source[lt + 4:close], {}, False)
            pos = close + 3
            continue
        if source.startswith("<!", lt):
            close = source.find(">", lt)
            if close == -1:
                return
            yield Token("doctype", source[lt + 2:close].strip(), {}, False)
            pos = close + 1
            continue
        if source.startswith("</", lt):
            close = source.find(">", lt)
            if close == -1:
                return
            name = source[lt + 2:close].strip().lower()
            yield Token("end", name, {}, False)
            pos = close + 1
            continue
        # Start tag.
        match = _TAG_NAME_RE.match(source, lt + 1)
        if match is None:
            # A bare '<' in text; emit it literally and move on.
            yield Token("text", "<", {}, False)
            pos = lt + 1
            continue
        name = match.group(0).lower()
        close = source.find(">", match.end())
        if close == -1:
            return
        attrs, self_closing = _parse_attrs(source[match.end():close])
        yield Token("start", name, attrs, self_closing)
        pos = close + 1
        if name in RAW_TEXT_ELEMENTS and not self_closing:
            raw_mode_tag = name


def parse_html(source: str) -> Document:
    """Parse HTML into a :class:`Document`; tolerant of malformed markup.

    Content outside any ``<html>`` element is adopted into a synthesized
    root, so the result always has a usable tree.
    """
    root = Element("html")
    stack: List[Element] = [root]
    saw_html = False
    for token in tokenize(source):
        if token.kind == "text":
            if token.data:
                stack[-1].append(Text(token.data))
        elif token.kind == "comment":
            stack[-1].append(Comment(token.data))
        elif token.kind == "doctype":
            continue
        elif token.kind == "start":
            if token.data == "html" and not saw_html:
                # Merge attributes onto the synthesized root instead of
                # nesting a second <html>.
                saw_html = True
                root.attrs.update(token.attrs)
                continue
            element = Element(token.data, token.attrs)
            stack[-1].append(element)
            if token.data not in VOID_ELEMENTS and not token.self_closing:
                stack.append(element)
        elif token.kind == "end":
            if token.data in VOID_ELEMENTS:
                continue
            # Pop to the matching open tag if present; ignore stray closes.
            for i in range(len(stack) - 1, 0, -1):
                if stack[i].tag == token.data:
                    del stack[i:]
                    break
    return Document(root)
