"""Counterfeit product catalogs.

Knockoff economics from the paper's introduction: an item retailing at
$2400 sells as a counterfeit for ~$250 and costs ~$20 to produce.  We price
counterfeits at roughly 8-15% of MSRP with a production cost near 8% of the
counterfeit price.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.util.rng import RandomStreams
from repro.market.brands import Brand

_STYLE_WORDS = (
    "Classic", "Monogram", "Signature", "Vintage", "Limited", "Sport",
    "Premium", "Heritage", "Studio", "Pro", "Mini", "Grande",
)
_ITEM_WORDS_BY_CATEGORY = {
    "handbags": ("Tote", "Satchel", "Clutch", "Shoulder Bag", "Wallet", "Purse"),
    "apparel": ("Hoodie", "Polo", "Down Jacket", "Tee", "Parka", "Vest"),
    "footwear": ("Sneaker", "Boot", "Slipper", "Trainer", "Sandal", "Pump"),
    "electronics": ("Headphones", "Earbuds", "Speaker", "Studio Headset"),
    "jewelry": ("Pendant", "Bracelet", "Ring", "Necklace", "Charm"),
    "sunglasses": ("Aviator", "Wayfarer", "Polarized Shades", "Sport Frame"),
    "watches": ("Chronograph", "Diver", "GMT", "Automatic"),
    "golf": ("Driver", "Iron Set", "Putter", "Wedge"),
    "beauty": ("Cleansing Brush", "Skin System", "Brush Head"),
}


@dataclass(frozen=True)
class Product:
    """One listing on a counterfeit storefront."""

    sku: str
    brand: str
    title: str
    msrp: float
    price: float  # counterfeit asking price
    cost: float  # production cost at the supplier

    @property
    def margin(self) -> float:
        return self.price - self.cost


def generate_products(brand: Brand, count: int, streams: RandomStreams) -> List[Product]:
    """Deterministically generate a brand's counterfeit catalog."""
    if count < 1:
        raise ValueError("count must be >= 1")
    rng = streams.get(f"products:{brand.slug}")
    items = _ITEM_WORDS_BY_CATEGORY.get(brand.category, ("Item",))
    products: List[Product] = []
    for i in range(count):
        style = rng.choice(_STYLE_WORDS)
        item = rng.choice(items)
        price_fraction = rng.uniform(0.08, 0.15)
        price = round(brand.msrp * price_fraction, 2)
        cost = round(price * rng.uniform(0.06, 0.12), 2)
        products.append(
            Product(
                sku=f"{brand.slug}-{i + 1:04d}",
                brand=brand.name,
                title=f"{brand.name} {style} {item}",
                msrp=brand.msrp,
                price=max(price, 9.99),
                cost=max(cost, 1.50),
            )
        )
    return products
