"""The fulfillment supplier.

Section 4.5: the authors found a supplier partnering with MSVALIDATE whose
site exposed a scrolling list of fulfilled orders and a bulk order-status
lookup (20 at a time).  Scraping it yielded 279K shipment records over nine
months: 256K delivered, 4K seized at the source (China), 15K seized at the
destination, 1,319 returned; US/JP/AU plus Western Europe received 81%.

We model the supplier as a service that turns partner-campaign orders into
shipment records with that status/destination mix, and expose the same
bulk-lookup interface the paper scraped.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.util.rng import RandomStreams
from repro.util.simtime import SimDate


class ShipmentStatus(enum.Enum):
    DELIVERED = "delivered"
    SEIZED_AT_SOURCE = "seized_at_source"  # customs, China side
    SEIZED_AT_DESTINATION = "seized_at_destination"
    RETURNED = "returned"  # delivered, then returned by the customer
    IN_TRANSIT = "in_transit"

#: Terminal status mix measured in Section 4.5 (delivered includes returns).
_STATUS_WEIGHTS: Tuple[Tuple[ShipmentStatus, float], ...] = (
    (ShipmentStatus.DELIVERED, 0.9271),
    (ShipmentStatus.SEIZED_AT_SOURCE, 0.0145),
    (ShipmentStatus.SEIZED_AT_DESTINATION, 0.0537),
    (ShipmentStatus.RETURNED, 0.0047),
)

#: Destination mix: US 90K / JP 57K / AU 39K / W-EU 41K of 279K, rest spread.
_DESTINATION_WEIGHTS: Tuple[Tuple[str, float], ...] = (
    ("US", 0.3226), ("JP", 0.2043), ("AU", 0.1398),
    ("GB", 0.0520), ("DE", 0.0430), ("FR", 0.0320), ("IT", 0.0200),
    ("CA", 0.0380), ("KR", 0.0250), ("other", 0.1233),
)


@dataclass(frozen=True)
class ShipmentRecord:
    """One row of the supplier's order-tracking database."""

    order_id: int
    placed_on: SimDate
    destination: str
    status: ShipmentStatus
    campaign: str
    last_update: SimDate


class Supplier:
    """A drop-ship fulfillment house serving multiple SEO campaigns."""

    def __init__(self, name: str, streams: RandomStreams, partner_campaigns: Sequence[str]):
        self.name = name
        self._streams = streams.child(f"supplier:{name}")
        self.partner_campaigns = list(partner_campaigns)
        self._records: Dict[int, ShipmentRecord] = {}
        self._next_order_id = 700000

    def fulfill_orders(self, campaign: str, day: SimDate, count: int) -> List[ShipmentRecord]:
        """Accept ``count`` wholesale orders from a partner campaign."""
        if campaign not in self.partner_campaigns:
            raise ValueError(f"{campaign!r} is not a partner of supplier {self.name!r}")
        if count < 0:
            raise ValueError("count cannot be negative")
        rng = self._streams.get("fulfillment")
        statuses = [s for s, _ in _STATUS_WEIGHTS]
        status_weights = [w for _, w in _STATUS_WEIGHTS]
        destinations = [d for d, _ in _DESTINATION_WEIGHTS]
        dest_weights = [w for _, w in _DESTINATION_WEIGHTS]
        created: List[ShipmentRecord] = []
        for _ in range(count):
            self._next_order_id += 1
            status = rng.choices(statuses, weights=status_weights, k=1)[0]
            destination = rng.choices(destinations, weights=dest_weights, k=1)[0]
            transit_days = rng.randint(6, 21)
            record = ShipmentRecord(
                order_id=self._next_order_id,
                placed_on=day,
                destination=destination,
                status=status,
                campaign=campaign,
                last_update=day + transit_days,
            )
            self._records[record.order_id] = record
            created.append(record)
        return created

    # -------------------------------------------------------------- #
    # The scrapeable interface (what the paper's crawler used)
    # -------------------------------------------------------------- #

    def lookup(self, order_ids: Sequence[int]) -> List[Optional[ShipmentRecord]]:
        """Bulk order-status lookup, max 20 ids per request as on the real
        site; unknown ids return None slots."""
        if len(order_ids) > 20:
            raise ValueError("bulk lookup is limited to 20 orders per request")
        return [self._records.get(oid) for oid in order_ids]

    def scrape_all(self) -> List[ShipmentRecord]:
        """Enumerate the full record set by walking the id space in blocks of
        20, exactly as the measurement scrape did."""
        if not self._records:
            return []
        low = min(self._records)
        high = max(self._records)
        found: List[ShipmentRecord] = []
        for start in range(low, high + 1, 20):
            ids = list(range(start, min(start + 20, high + 1)))
            found.extend(r for r in self.lookup(ids) if r is not None)
        return found

    def record_count(self) -> int:
        return len(self._records)

    def summary(self) -> Dict[str, int]:
        """Status and destination totals (Section 4.5's headline numbers)."""
        out: Dict[str, int] = {"total": len(self._records)}
        for record in self._records.values():
            out[record.status.value] = out.get(record.status.value, 0) + 1
            key = f"dest:{record.destination}"
            out[key] = out.get(key, 0) + 1
        return out
