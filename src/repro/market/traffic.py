"""Visit logging and AWStats-style reports.

Some storefronts left their AWStats pages publicly readable; the paper
periodically scraped them for 647 stores (Section 4.4) and used the data for
the coco*.com conversion case study (Section 5.2.3).  :class:`VisitLog`
records what a store's web server would log; :class:`AwstatsReport` is the
aggregated view our crawler "scrapes".
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.util.rng import RandomStreams
from repro.util.simtime import SimDate

#: Fraction of visits that arrive with an intact HTTP referrer; the paper
#: measured 60% for coco*.com (HTTPS->HTTP transitions etc. strip it).
REFERRER_RETENTION = 0.60


class GeoModel:
    """Visitor-country mix, matching the supplier's shipping mix
    (Section 4.5: US, Japan, Australia, Western Europe ~81% combined)."""

    DEFAULT_MIX: Tuple[Tuple[str, float], ...] = (
        ("US", 0.32), ("JP", 0.20), ("AU", 0.14), ("GB", 0.06), ("DE", 0.05),
        ("FR", 0.04), ("IT", 0.03), ("CA", 0.04), ("KR", 0.03), ("other", 0.09),
    )

    def __init__(self, streams: RandomStreams, mix: Optional[Tuple[Tuple[str, float], ...]] = None):
        self._streams = streams
        self.mix = mix or self.DEFAULT_MIX
        total = sum(w for _, w in self.mix)
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"geo mix weights sum to {total}, expected 1.0")

    def sample_countries(self, name: str, count: int) -> Counter:
        countries = [c for c, _ in self.mix]
        weights = [w for _, w in self.mix]
        rng = self._streams.get(f"geo:{name}")
        return Counter(rng.choices(countries, weights=weights, k=count))


@dataclass
class DayTraffic:
    """One day of a store's server log, aggregated."""

    visits: int = 0
    page_fetches: int = 0
    referrers: Counter = field(default_factory=Counter)
    countries: Counter = field(default_factory=Counter)
    #: Which domain the store answered on that day (rotations show up here).
    host: str = ""


class VisitLog:
    """Per-day traffic for one store."""

    def __init__(self):
        self._days: Dict[int, DayTraffic] = {}

    def record(
        self,
        day: SimDate,
        visits: int,
        page_fetches: int,
        host: str,
        referrer_hosts: Optional[Counter] = None,
        countries: Optional[Counter] = None,
    ) -> None:
        if visits < 0 or page_fetches < 0:
            raise ValueError("negative traffic")
        entry = self._days.setdefault(day.ordinal, DayTraffic(host=host))
        entry.visits += visits
        entry.page_fetches += page_fetches
        entry.host = host
        if referrer_hosts:
            entry.referrers.update(referrer_hosts)
        if countries:
            entry.countries.update(countries)

    def day(self, day: SimDate) -> Optional[DayTraffic]:
        return self._days.get(day.ordinal)

    def days(self) -> List[int]:
        return sorted(self._days)

    def total_visits(self) -> int:
        return sum(t.visits for t in self._days.values())


@dataclass
class AwstatsReport:
    """The publicly scrapeable analytics view for one store over a window."""

    store_host: str
    first_day: SimDate
    last_day: SimDate
    total_visits: int
    total_page_fetches: int
    visits_with_referrer: int
    referrer_hosts: Counter
    countries: Counter
    daily_visits: Dict[int, int]
    daily_fetches: Dict[int, int]

    @property
    def pages_per_visit(self) -> float:
        if self.total_visits == 0:
            return 0.0
        return self.total_page_fetches / self.total_visits

    @property
    def referrer_fraction(self) -> float:
        if self.total_visits == 0:
            return 0.0
        return self.visits_with_referrer / self.total_visits


def awstats_for(
    log: VisitLog, store_host: str, first_day: SimDate, last_day: SimDate
) -> AwstatsReport:
    """Aggregate a visit log into the AWStats view over [first, last]."""
    if last_day < first_day:
        raise ValueError("window reversed")
    visits = 0
    fetches = 0
    with_ref = 0
    referrers: Counter = Counter()
    countries: Counter = Counter()
    daily_visits: Dict[int, int] = {}
    daily_fetches: Dict[int, int] = {}
    for ordinal in log.days():
        if not first_day.ordinal <= ordinal <= last_day.ordinal:
            continue
        entry = log.day(SimDate(ordinal))
        assert entry is not None
        visits += entry.visits
        fetches += entry.page_fetches
        referred = sum(entry.referrers.values())
        with_ref += referred
        referrers.update(entry.referrers)
        countries.update(entry.countries)
        daily_visits[ordinal] = entry.visits
        daily_fetches[ordinal] = entry.page_fetches
    return AwstatsReport(
        store_host=store_host,
        first_day=first_day,
        last_day=last_day,
        total_visits=visits,
        total_page_fetches=fetches,
        visits_with_referrer=with_ref,
        referrer_hosts=referrers,
        countries=countries,
        daily_visits=daily_visits,
        daily_fetches=daily_fetches,
    )
