"""The counterfeit-luxury market: brands, storefronts, payments, supply.

Storefronts are the monetization endpoint of every SEO campaign.  Each store
allocates order numbers independently and engages directly with payment
processors (Section 3.1.2) — the two structural facts the purchase-pair
estimator and the payment-intervention discussion rely on.
"""

from repro.market.brands import Brand, BrandCatalog, default_brand_catalog
from repro.market.products import Product, generate_products
from repro.market.payments import Bank, PaymentProcessor, default_payment_network
from repro.market.stores import Store, DomainTenure
from repro.market.traffic import AwstatsReport, GeoModel, VisitLog
from repro.market.supplier import Supplier, ShipmentRecord, ShipmentStatus

__all__ = [
    "Brand",
    "BrandCatalog",
    "default_brand_catalog",
    "Product",
    "generate_products",
    "Bank",
    "PaymentProcessor",
    "default_payment_network",
    "Store",
    "DomainTenure",
    "AwstatsReport",
    "GeoModel",
    "VisitLog",
    "Supplier",
    "ShipmentRecord",
    "ShipmentStatus",
]
