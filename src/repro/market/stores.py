"""Counterfeit storefronts.

A :class:`Store` is a *business*, not a domain: when a brand holder seizes
its domain, the campaign points doorways at a backup domain and the same
store keeps selling (Section 5.3.2, Figure 5's coco*.com rotations).  The
store therefore owns a domain-tenure history and a single monotonically
increasing order-number counter that survives rotations — the property the
purchase-pair technique measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.util.simtime import SimDate
from repro.web.domains import Domain
from repro.web.sites import Site, SiteKind
from repro.market.payments import PaymentProcessor
from repro.market.products import Product
from repro.market.traffic import VisitLog


@dataclass
class DomainTenure:
    """One span of a store living on one domain."""

    domain: Domain
    from_day: SimDate
    to_day: Optional[SimDate] = None  # None = still current

    def active_on(self, day: SimDate) -> bool:
        if day < self.from_day:
            return False
        return self.to_day is None or day < self.to_day


class Store:
    """A storefront business run by one SEO campaign."""

    def __init__(
        self,
        store_id: str,
        campaign: str,
        vertical: str,
        brands: List[str],
        products: List[Product],
        processor: PaymentProcessor,
        first_domain: Domain,
        opened_on: SimDate,
        locale: str = "us",
        order_number_start: int = 1000,
        platform: str = "zencart",
        order_creation_rate: float = 0.012,
        completion_rate: float = 0.6,
        awstats_public: bool = False,
    ):
        if not brands:
            raise ValueError("store needs at least one brand")
        self.store_id = store_id
        self.campaign = campaign
        self.vertical = vertical
        self.brands = list(brands)
        self.products = list(products)
        self.processor = processor
        self.locale = locale
        self.opened_on = opened_on
        #: 'zencart' or 'magento' — surfaces as e-commerce cookies.
        self.platform = platform
        #: Fraction of visits that reach checkout and get an order number.
        self.order_creation_rate = order_creation_rate
        #: Fraction of created orders whose payment actually clears.
        self.completion_rate = completion_rate
        #: Whether the store left its AWStats analytics publicly readable
        #: (the paper found 647 of 7,484 stores did, Section 4.4).
        self.awstats_public = awstats_public
        self._order_counter = order_number_start
        self.visits = VisitLog()
        self.tenures: List[DomainTenure] = [DomainTenure(first_domain, opened_on)]
        #: Filled in by the owning campaign: builds this store's pages onto a
        #: site when the store (re)locates to a domain.
        self.page_factory: Optional[Callable[["Store", Site], None]] = None
        #: Daily order-creation counts (ground truth for validation only).
        self._daily_orders: Dict[int, int] = {}
        #: Daily completed-sale counts (payments that actually cleared).
        self._daily_completed: Dict[int, int] = {}

    # ------------------------------------------------------------------ #
    # Domains
    # ------------------------------------------------------------------ #

    @property
    def current_tenure(self) -> DomainTenure:
        return self.tenures[-1]

    @property
    def current_domain(self) -> Domain:
        return self.current_tenure.domain

    def host_on(self, day: SimDate) -> Optional[str]:
        for tenure in self.tenures:
            if tenure.active_on(day):
                return tenure.domain.name
        return None

    def all_hosts(self) -> List[str]:
        return [tenure.domain.name for tenure in self.tenures]

    def rotate_domain(self, new_domain: Domain, day: SimDate) -> DomainTenure:
        """Move the store to a new domain (proactively, or after a seizure)."""
        current = self.current_tenure
        if new_domain.name == current.domain.name:
            raise ValueError(f"store {self.store_id} already on {new_domain.name}")
        current.to_day = day
        tenure = DomainTenure(new_domain, day)
        self.tenures.append(tenure)
        return tenure

    def is_seized_on(self, day: SimDate) -> bool:
        host_domain = self.current_domain
        return host_domain.seized_as_of(day)

    def conversion_ramp(self, day: SimDate, ramp_days: int = 14) -> float:
        """Conversion discount after a domain rotation.

        A store on a fresh domain converts below par for a couple of weeks
        (returning customers lost, checkout trust rebuilt, payment
        descriptors re-registered) — the mechanism behind the visible
        order-rate dip after the paper's Figure 6 seizure."""
        if len(self.tenures) < 2:
            return 1.0
        since = day - self.current_tenure.from_day
        if since < 0:
            return 1.0
        if since >= ramp_days:
            return 1.0
        return 0.4 + 0.6 * since / ramp_days

    # ------------------------------------------------------------------ #
    # Orders
    # ------------------------------------------------------------------ #

    @property
    def next_order_preview(self) -> int:
        """The order number the *next* checkout would receive."""
        return self._order_counter + 1

    def allocate_order_number(self, day: SimDate) -> int:
        """A visitor reached checkout: allocate the next order number.

        Order numbers are handed out before payment clears, so the counter
        upper-bounds completed sales (Section 4.3.1).
        """
        self._order_counter += 1
        key = day.ordinal
        self._daily_orders[key] = self._daily_orders.get(key, 0) + 1
        return self._order_counter

    def record_orders(self, day: SimDate, count: int) -> None:
        """Bulk-record ``count`` customer orders created on ``day``."""
        if count < 0:
            raise ValueError("order count cannot be negative")
        if count:
            self._order_counter += count
            key = day.ordinal
            self._daily_orders[key] = self._daily_orders.get(key, 0) + count

    def orders_created_on(self, day: SimDate) -> int:
        """Ground truth daily order creations (validation only)."""
        return self._daily_orders.get(day.ordinal, 0)

    def total_orders_created(self) -> int:
        return sum(self._daily_orders.values())

    def record_completed_sales(self, day: SimDate, count: int) -> None:
        """Bulk-record sales whose payment cleared on ``day``."""
        if count < 0:
            raise ValueError("sales count cannot be negative")
        if count:
            key = day.ordinal
            self._daily_completed[key] = self._daily_completed.get(key, 0) + count

    def total_sales_completed(self) -> int:
        return sum(self._daily_completed.values())

    # ------------------------------------------------------------------ #
    # Hosting
    # ------------------------------------------------------------------ #

    def build_site(self, day: SimDate) -> Site:
        """Materialize this store's pages on its current domain."""
        if self.page_factory is None:
            raise RuntimeError(f"store {self.store_id} has no page factory wired")
        site = Site(self.current_domain, SiteKind.STOREFRONT, authority=0.05, created_on=day)
        self.page_factory(self, site)
        return site

    def __repr__(self) -> str:
        return (
            f"Store({self.store_id!r}, campaign={self.campaign!r}, "
            f"host={self.current_domain.name!r})"
        )
