"""Luxury brands and the catalog used by the paper-preset scenario.

The paper monitors sixteen verticals (Table 1); composites (Golf,
Sunglasses, Watches) bundle several brands.  Campaigns additionally abuse
brands outside the monitored set (Table 2 shows campaigns spanning up to 30
brands), so the catalog carries extras like Chanel and Hollister.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.util.ids import slugify


@dataclass(frozen=True)
class Brand:
    """A trademark-holding luxury/lifestyle brand."""

    name: str
    category: str  # apparel, handbags, electronics, footwear, jewelry, ...
    #: Typical genuine retail price, USD — drives knockoff pricing (intro:
    #: a $2400 handbag knocks off at ~$250, produced for ~$20).
    msrp: float
    #: Whether the brand actively contracts brand-protection firms.
    protective: bool = True

    @property
    def slug(self) -> str:
        return slugify(self.name)


class BrandCatalog:
    """Registry of brands, addressable by name or slug."""

    def __init__(self, brands: Optional[List[Brand]] = None):
        self._by_slug: Dict[str, Brand] = {}
        for brand in brands or []:
            self.add(brand)

    def add(self, brand: Brand) -> Brand:
        if brand.slug in self._by_slug:
            raise ValueError(f"duplicate brand {brand.name!r}")
        self._by_slug[brand.slug] = brand
        return brand

    def get(self, name: str) -> Brand:
        slug = slugify(name)
        if slug not in self._by_slug:
            raise KeyError(f"unknown brand {name!r}")
        return self._by_slug[slug]

    def __contains__(self, name: str) -> bool:
        return slugify(name) in self._by_slug

    def all(self) -> List[Brand]:
        return sorted(self._by_slug.values(), key=lambda b: b.slug)

    def __len__(self) -> int:
        return len(self._by_slug)


_DEFAULT_BRANDS = [
    # Vertical-anchoring brands (Table 1).
    Brand("Abercrombie", "apparel", 90.0),
    Brand("Adidas", "footwear", 110.0),
    Brand("Beats By Dre", "electronics", 300.0),
    Brand("Clarisonic", "beauty", 150.0),
    Brand("Ed Hardy", "apparel", 75.0),
    Brand("Isabel Marant", "footwear", 620.0),
    Brand("Louis Vuitton", "handbags", 2400.0),
    Brand("Moncler", "apparel", 1200.0),
    Brand("Nike", "footwear", 130.0),
    Brand("Ralph Lauren", "apparel", 145.0),
    Brand("Tiffany", "jewelry", 450.0),
    Brand("Uggs", "footwear", 180.0),
    Brand("Woolrich", "apparel", 350.0),
    # Composite-vertical members.
    Brand("TaylorMade", "golf", 400.0),
    Brand("Callaway", "golf", 430.0),
    Brand("Titleist", "golf", 380.0),
    Brand("Oakley", "sunglasses", 160.0),
    Brand("Ray-Ban", "sunglasses", 175.0),
    Brand("Christian Dior", "sunglasses", 420.0),
    Brand("Rolex", "watches", 8500.0),
    Brand("Omega", "watches", 4800.0),
    Brand("Breitling", "watches", 5200.0),
    # Brands abused by campaigns beyond the monitored verticals.
    Brand("Chanel", "handbags", 3100.0),
    Brand("Christian Louboutin", "footwear", 700.0),
    Brand("Hollister", "apparel", 60.0, protective=False),
    Brand("The North Face", "apparel", 250.0),
    Brand("Gucci", "handbags", 1900.0),
    Brand("Prada", "handbags", 1700.0),
    Brand("Michael Kors", "handbags", 350.0),
    Brand("Canada Goose", "apparel", 900.0, protective=False),
    Brand("Tory Burch", "footwear", 275.0, protective=False),
    Brand("Hermes", "handbags", 9000.0),
    Brand("Burberry", "apparel", 1500.0),
    Brand("Juicy Couture", "apparel", 120.0, protective=False),
    Brand("Timberland", "footwear", 190.0, protective=False),
    Brand("New Balance", "footwear", 100.0, protective=False),
    Brand("Supra", "footwear", 115.0, protective=False),
    Brand("Karen Millen", "apparel", 310.0, protective=False),
    Brand("Mulberry", "handbags", 1100.0, protective=False),
    Brand("Celine", "handbags", 2600.0, protective=False),
    Brand("Monster", "electronics", 250.0, protective=False),
    Brand("Jimmy Choo", "footwear", 650.0, protective=False),
    Brand("Belstaff", "apparel", 800.0, protective=False),
    Brand("Barbour", "apparel", 420.0, protective=False),
    Brand("Paul Smith", "apparel", 380.0, protective=False),
    Brand("Lacoste", "apparel", 125.0, protective=False),
    Brand("Longchamp", "handbags", 480.0, protective=False),
    Brand("Miu Miu", "handbags", 1400.0, protective=False),
    Brand("Fendi", "handbags", 2100.0, protective=False),
    Brand("Givenchy", "handbags", 2200.0, protective=False),
    Brand("Balenciaga", "handbags", 1800.0, protective=False),
    Brand("Bottega Veneta", "handbags", 2500.0, protective=False),
]


def default_brand_catalog() -> BrandCatalog:
    """The brand universe for the paper-preset scenario."""
    return BrandCatalog(list(_DEFAULT_BRANDS))
