"""Payment processing.

The paper's transactions (Section 4.3.2) cleared through just three
acquiring banks — two in China, one in Korea — a concentration it flags as
"another viable area for interventions".  We model a small processor layer
(Realypay/Mallpayment-style gateways) in front of those banks; merchant
identifiers leak into storefront HTML, which is how the paper confirmed that
stores engage processors directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from hashlib import blake2b
from typing import Dict, List, Optional

from repro.util.rng import RandomStreams


@dataclass(frozen=True)
class Bank:
    """An acquiring bank identified by BIN prefix."""

    name: str
    country: str
    bin_prefix: str


@dataclass
class PaymentProcessor:
    """A gateway that storefronts embed checkout forms for."""

    name: str
    bank: Bank
    #: Cookie the gateway script drops on checkout pages — one of the store
    #: -detection signals (Section 4.1.3).
    cookie_name: str

    def merchant_id(self, store_id: str) -> str:
        """The merchant identifier exposed in storefront HTML source.

        Derived with a seeded digest, not builtin ``hash``: that one is
        salted per process (PYTHONHASHSEED), which made checkout-page
        bytes differ between runs and defeated the cross-run disk cache.
        """
        digest = blake2b(f"{self.name}|{store_id}".encode("utf-8"),
                         digest_size=4).digest()
        return f"{self.name.upper()}-{int.from_bytes(digest, 'big') % 10**8:08d}"


@dataclass
class PaymentNetwork:
    """The processor/bank universe plus assignment of stores to processors."""

    banks: List[Bank]
    processors: List[PaymentProcessor]
    _assignments: Dict[str, PaymentProcessor] = field(default_factory=dict)
    #: Processors terminated by a payment intervention (Section 4.3.2's
    #: future work); stores clearing through them cannot complete sales.
    _blacklisted: set = field(default_factory=set)

    def assign(self, store_id: str, streams: RandomStreams) -> PaymentProcessor:
        """Deterministically pick a processor for a store, heavily skewed so
        transaction volume concentrates on few banks as observed."""
        if store_id in self._assignments:
            return self._assignments[store_id]
        weights = [0.45, 0.30, 0.15, 0.06, 0.04][: len(self.processors)]
        processor = streams.weighted_choice(f"payproc:{store_id}", self.processors, weights)
        self._assignments[store_id] = processor
        return processor

    def processor_of(self, store_id: str) -> PaymentProcessor:
        if store_id not in self._assignments:
            raise KeyError(f"store {store_id!r} has no processor assigned")
        return self._assignments[store_id]

    def is_blacklisted(self, processor_name: str) -> bool:
        return processor_name in self._blacklisted

    def blacklist(self, processor_name: str) -> None:
        if processor_name not in {p.name for p in self.processors}:
            raise KeyError(f"unknown processor {processor_name!r}")
        self._blacklisted.add(processor_name)

    def blacklisted(self) -> List[str]:
        return sorted(self._blacklisted)

    def surviving_processors(self) -> List[PaymentProcessor]:
        return [p for p in self.processors if p.name not in self._blacklisted]

    def reassign(self, store_id: str, streams: RandomStreams) -> Optional[PaymentProcessor]:
        """Move a store to a surviving processor; None when all are gone."""
        survivors = self.surviving_processors()
        if not survivors:
            return None
        rng = streams.get(f"payproc-resign:{store_id}")
        processor = rng.choice(survivors)
        self._assignments[store_id] = processor
        return processor

    def bank_distribution(self) -> Dict[str, int]:
        """How many assigned stores clear through each bank."""
        counts: Dict[str, int] = {}
        for processor in self._assignments.values():
            counts[processor.bank.name] = counts.get(processor.bank.name, 0) + 1
        return counts


def default_payment_network() -> PaymentNetwork:
    """Two Chinese banks plus one Korean, as the paper's BINs showed."""
    banks = [
        Bank("Guangzhou Merchant Bank", "CN", "622575"),
        Bank("Shenzhen Commerce Bank", "CN", "621483"),
        Bank("Seoul Trade Bank", "KR", "625904"),
    ]
    processors = [
        PaymentProcessor("Realypay", banks[0], "realypay_session"),
        PaymentProcessor("Mallpayment", banks[1], "mallpayment_id"),
        PaymentProcessor("EastPay", banks[0], "eastpay_token"),
        PaymentProcessor("GoldGate", banks[2], "goldgate_sid"),
        PaymentProcessor("SwiftAsia", banks[1], "swiftasia_ck"),
    ]
    return PaymentNetwork(banks=banks, processors=processors)
