"""Intervention ablations.

The paper's conclusion argues current interventions fail for want of
*coverage* and *responsiveness* and sketches what better ones would look
like.  These ablations run the same scenario under variant intervention
policies and compare the campaigns' ground-truth order volume (the revenue
proxy interventions ultimately target):

* ``no-interventions`` — upper bound on campaign business;
* ``baseline`` — the paper's observed policy mix;
* ``full-path-labels`` — lift the root-only labeling restriction and widen
  detection (Section 5.2.2's counterfactual);
* ``interstitial-labels`` — same coverage, but warnings block the click the
  way GSB malware interstitials do (Section 3.2.1 notes this is policy, not
  technology);
* ``reactive-seizures`` — file weekly, small batches, short legal delay
  (Section 5.3.2's counterfactual);
* ``aggressive-demotion`` — demote detected doorways hard and often;
* ``doorway-seizures`` — footnote 6's alternative: also seize dedicated
  doorway domains (compromised ones stay off-limits for liability);
* ``payment-intervention`` — the paper's Section 4.3.2 future work:
  terminate the concentrated acquiring processors via test-purchase
  evidence (after [24]).
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, replace
from time import perf_counter
from typing import Callable, Dict, List, Optional, Tuple

from repro.ecosystem.config import ScenarioConfig
from repro.ecosystem.simulator import Simulator
from repro.crawler.serp_crawler import CrawlPolicy, SearchCrawler
from repro.interventions.search_ops import SearchOpsPolicy
from repro.interventions.payments import PaymentPolicy
from repro.obs.trace import TRACER, set_tracing_enabled, tracing_enabled
from repro.perf.cache import caches_enabled, set_caches_enabled
from repro.perf.gctune import low_pause_gc
from repro.util.perf import PERF


@dataclass
class AblationOutcome:
    """Aggregate effect of one intervention configuration."""

    name: str
    #: Ground-truth order creations across every campaign store.
    total_orders: int
    #: Ground-truth completed sales (payments that cleared) — the metric a
    #: payment intervention moves even when checkouts keep happening.
    completed_sales: int
    #: PSRs observed by the measurement crawl.
    psr_count: int
    #: Fraction of PSRs carrying a warning label.
    labeled_fraction: float
    #: Store domains seized by end of window.
    seized_domains: int

    def orders_vs(self, baseline: "AblationOutcome") -> float:
        """Order volume relative to another outcome (1.0 = unchanged)."""
        if baseline.total_orders == 0:
            return 0.0
        return self.total_orders / baseline.total_orders

    def sales_vs(self, baseline: "AblationOutcome") -> float:
        """Completed-sales volume relative to another outcome."""
        if baseline.completed_sales == 0:
            return 0.0
        return self.completed_sales / baseline.completed_sales


def run_ablation(
    name: str, config: ScenarioConfig, crawl_stride: int = 2
) -> AblationOutcome:
    """Run one scenario variant and collect the outcome metrics."""
    with low_pause_gc():
        with TRACER.span("ablation", variant=name):
            return _run_ablation(name, config, crawl_stride)


def _run_ablation(
    name: str, config: ScenarioConfig, crawl_stride: int
) -> AblationOutcome:
    simulator = Simulator(config)
    world = simulator.build()
    crawler = SearchCrawler(world.web, CrawlPolicy(stride_days=crawl_stride))
    simulator.run(observers=[crawler])
    dataset = crawler.dataset
    labeled = sum(1 for r in dataset.records if r.label != "none")
    seized = sum(
        1 for domain in world.web.domains.seized()
        if world.store_at(domain.name) is not None
    )
    total_orders = sum(s.total_orders_created() for s in world.stores())
    completed = sum(s.total_sales_completed() for s in world.stores())
    return AblationOutcome(
        name=name,
        total_orders=total_orders,
        completed_sales=completed,
        psr_count=len(dataset),
        labeled_fraction=(labeled / len(dataset)) if len(dataset) else 0.0,
        seized_domains=seized,
    )


def ablation_variants(
    base_factory: Callable[[], ScenarioConfig],
) -> Dict[str, ScenarioConfig]:
    """Build the standard variant set from a fresh-config factory.

    The factory is called once per variant so mutations never leak between
    runs.
    """
    variants: Dict[str, ScenarioConfig] = {}

    baseline = base_factory()
    variants["baseline"] = baseline

    off = base_factory()
    off.search_policy = SearchOpsPolicy(
        label_fraction=0.0, label_fraction_root_injected=0.0,
        hard_demotion_hazard_per_day=0.0,
    )
    off.scripted_demotions = []
    off.firms = []
    variants["no-interventions"] = off

    labels = base_factory()
    labels.search_policy = replace(
        labels.search_policy,
        label_root_only=False,
        label_fraction=0.5,
        label_fraction_root_injected=0.8,
        label_delay_median_days=7.0,
    )
    variants["full-path-labels"] = labels

    interstitial = base_factory()
    interstitial.search_policy = replace(
        interstitial.search_policy,
        label_root_only=False,
        label_fraction=0.5,
        label_fraction_root_injected=0.8,
        label_delay_median_days=7.0,
        label_with_interstitial=True,
    )
    variants["interstitial-labels"] = interstitial

    seizures = base_factory()
    for firm in seizures.firms:
        firm.policy = replace(
            firm.policy,
            case_interval_days=7,
            brand_interval_overrides={},
            legal_delay_days=3,
            min_observed_age_days=7,
        )
    variants["reactive-seizures"] = seizures

    demotion = base_factory()
    demotion.search_policy = replace(
        demotion.search_policy,
        hard_demotion_hazard_per_day=0.04,
        hard_demotion_amount=3.0,
    )
    variants["aggressive-demotion"] = demotion

    doorways = base_factory()
    for firm in doorways.firms:
        firm.policy = replace(firm.policy, seize_dedicated_doorways=True)
    variants["doorway-seizures"] = doorways

    payments = base_factory()
    payments.payment_policy = PaymentPolicy(
        start_day=payments.window.start + max(7, len(payments.window) // 5),
        test_purchases_per_week=8,
        termination_threshold=6,
        action_delay_days=7,
    )
    variants["payment-intervention"] = payments

    return variants


#: Fixed reporting order: 'baseline' first, counterfactuals after.
VARIANT_ORDER = (
    "baseline", "no-interventions", "full-path-labels",
    "interstitial-labels", "reactive-seizures", "aggressive-demotion",
    "doorway-seizures", "payment-intervention",
)


def _run_variant(
    task: Tuple[str, ScenarioConfig, int, bool, bool],
) -> Tuple[AblationOutcome, Dict[str, int], List[dict], float]:
    """Pool worker: one variant end to end, in its own process.

    Module-level (picklable) on purpose.  The parent's cache and tracing
    switches ride in the task tuple because a programmatic toggle would
    not survive a spawn-context child; the worker sends its PERF counters
    and exported spans back so cache hit rates and trace trees from all
    processes land in the parent registry/tracer.
    """
    name, config, crawl_stride, cache_on, trace_on = task
    set_caches_enabled(cache_on)
    set_tracing_enabled(trace_on)
    # A fork-context child inherits the parent's registry, and a pool
    # worker is reused across variants; reset both so the counters and
    # spans sent back are this variant's own, not accumulated state.
    TRACER.reset()
    PERF.reset()
    start = perf_counter()
    outcome = run_ablation(name, config, crawl_stride)
    return outcome, PERF.counters(), TRACER.export(), perf_counter() - start


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer fork (cheap, inherits warm module caches); spawn elsewhere."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return multiprocessing.get_context("spawn")


def run_intervention_ablations(
    base_factory: Callable[[], ScenarioConfig],
    crawl_stride: int = 2,
    jobs: int = 1,
    timings: Optional[Dict[str, float]] = None,
) -> List[AblationOutcome]:
    """Run every standard variant; 'baseline' comes first.

    ``jobs > 1`` fans the variants out over a ``multiprocessing`` pool —
    each run is an independent simulation over its own picklable
    :class:`ScenarioConfig`, and simulation is CPU-bound Python, so
    processes (not GIL-bound threads) are what helps.  ``Pool.map``
    returns results in submission order, so the outcome list is identical
    for any job count; a test pins that, along with outcome equality
    against the sequential path.

    ``timings``, when given, is filled with per-variant wall seconds
    (worker-side wall for pooled runs) keyed by variant name — reporting
    only, kept out of :class:`AblationOutcome` so outcome equality across
    job counts stays exact.
    """
    variants = ablation_variants(base_factory)
    if jobs <= 1:
        outcomes = []
        for name in VARIANT_ORDER:
            start = perf_counter()
            outcomes.append(run_ablation(name, variants[name], crawl_stride))
            if timings is not None:
                timings[name] = perf_counter() - start
        return outcomes
    tasks = [(name, variants[name], crawl_stride, caches_enabled(),
              tracing_enabled())
             for name in VARIANT_ORDER]
    with _pool_context().Pool(processes=min(jobs, len(tasks))) as pool:
        paired = pool.map(_run_variant, tasks)
    # Fold worker-side cache counters into the parent registry (integer
    # sums commute, so the merged totals are schedule-independent), and
    # adopt worker span trees in submission (= VARIANT_ORDER) order so the
    # merged trace is deterministic for any job count.
    for track, (outcome, counters, spans, wall_s) in enumerate(paired, start=1):
        for name, value in sorted(counters.items()):
            PERF.count(name, value)
        TRACER.adopt(spans, track=track)
        if timings is not None:
            timings[outcome.name] = wall_s
    return [outcome for outcome, _, _, _ in paired]
