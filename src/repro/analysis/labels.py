"""Search-intervention analysis (Section 5.2.2): label coverage, the
root-only policy gap, and doorway lifetimes before labeling."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Set, Tuple

from repro.util.simtime import SimDate
from repro.util.stats import mean
from repro.crawler.records import PsrDataset


@dataclass
class LabelStats:
    total_psrs: int
    labeled_psrs: int
    labeled_hosts: int

    @property
    def coverage(self) -> float:
        """Fraction of PSRs carrying the 'hacked' label (paper: 2.5%)."""
        if self.total_psrs == 0:
            return 0.0
        return self.labeled_psrs / self.total_psrs


def label_coverage(dataset: PsrDataset) -> LabelStats:
    labeled = [r for r in dataset.records if r.label == "hacked"]
    return LabelStats(
        total_psrs=len(dataset),
        labeled_psrs=len(labeled),
        labeled_hosts=len({r.host for r in labeled}),
    )


@dataclass
class RootOnlyGap:
    """How many PSRs escape because only roots are labeled."""

    labeled_results: int
    #: PSRs on labeled hosts that carried no label (the paper's +49%).
    additional_labelable: int

    @property
    def undercount_fraction(self) -> float:
        if self.labeled_results == 0:
            return 0.0
        return self.additional_labelable / self.labeled_results


def root_only_undercount(dataset: PsrDataset) -> RootOnlyGap:
    """Count PSRs sharing a root domain with a labeled result but escaping
    the label themselves (Section 5.2.2's 68,193 vs 102,104)."""
    labeled_hosts: Set[str] = {r.host for r in dataset.records if r.label == "hacked"}
    labeled_results = sum(1 for r in dataset.records if r.label == "hacked")
    additional = sum(
        1
        for r in dataset.records
        if r.label == "none" and r.host in labeled_hosts
    )
    return RootOnlyGap(labeled_results=labeled_results, additional_labelable=additional)


@dataclass
class LabelLifetimes:
    """Doorway lifetimes until labeling, with the paper's two bounds."""

    #: Hosts already labeled the first time the crawler saw them.
    pre_labeled_hosts: int
    measured_hosts: int
    #: Mean of (last unlabeled sighting - first sighting): the lower bound.
    mean_lower_days: float
    #: Mean of (first labeled sighting - first sighting): the upper bound.
    mean_upper_days: float
    per_host_bounds: Dict[str, Tuple[int, int]]


def label_lifetimes(dataset: PsrDataset) -> LabelLifetimes:
    """Reconstruct labeling delays from crawl observations alone.

    The crawler cannot see the exact labeling instant, only the last crawl
    where a host's results were unlabeled and the first where one carried
    the label — hence the paired bounds (the paper reports 13-32 days).
    """
    first_seen: Dict[str, SimDate] = {}
    last_unlabeled: Dict[str, SimDate] = {}
    first_labeled: Dict[str, SimDate] = {}
    for record in dataset.records:
        host = record.host
        if host not in first_seen or record.day < first_seen[host]:
            first_seen[host] = record.day
        if record.label == "hacked":
            if host not in first_labeled or record.day < first_labeled[host]:
                first_labeled[host] = record.day
        else:
            if host not in last_unlabeled or record.day > last_unlabeled[host]:
                last_unlabeled[host] = record.day

    pre_labeled = 0
    bounds: Dict[str, Tuple[int, int]] = {}
    for host, labeled_day in first_labeled.items():
        start = first_seen[host]
        if labeled_day == start:
            pre_labeled += 1
            continue
        unlabeled_before = last_unlabeled.get(host)
        if unlabeled_before is None or unlabeled_before > labeled_day:
            # Label observed before any clean sighting within the series.
            lower = 0
        else:
            lower = unlabeled_before - start
        upper = labeled_day - start
        bounds[host] = (lower, upper)

    lowers = [b[0] for b in bounds.values()]  # repro: allow-D005 feeds an integer mean only — order-insensitive
    uppers = [b[1] for b in bounds.values()]  # repro: allow-D005 feeds an integer mean only — order-insensitive
    return LabelLifetimes(
        pre_labeled_hosts=pre_labeled,
        measured_hosts=len(bounds),
        mean_lower_days=mean(lowers) if lowers else 0.0,
        mean_upper_days=mean(uppers) if uppers else 0.0,
        per_host_bounds=bounds,
    )
