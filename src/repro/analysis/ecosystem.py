"""Ecosystem census: Tables 1 and 2.

Everything here is computed from *measured* data (PSR dataset + crawled
page archive + classifier attribution), never from simulator ground truth:
brands abused by a campaign, for instance, are recovered by scanning its
attributed storefront pages for known brand names, which is how a human
analyst would do it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set

from repro.util.stats import peak_range
from repro.crawler.records import PageArchive, PsrDataset
from repro.analysis.aggregates import DailyAggregates


@dataclass
class VerticalRow:
    """One row of Table 1."""

    vertical: str
    psrs: int
    doorways: int
    stores: int
    campaigns: int


@dataclass
class CampaignRow:
    """One row of Table 2."""

    campaign: str
    doorways: int
    stores: int
    brands: int
    peak_days: int


def vertical_table(dataset: PsrDataset, aggregates: Optional[DailyAggregates] = None) -> List[VerticalRow]:
    """Table 1: per-vertical PSRs, doorway domains, stores, campaigns."""
    aggregates = aggregates or DailyAggregates(dataset)
    rows: List[VerticalRow] = []
    for vertical in dataset.verticals():
        psrs = sum(1 for r in dataset.records if r.vertical == vertical)
        doorways = len(dataset.doorway_hosts(vertical))
        stores = len(dataset.store_hosts(vertical))
        campaigns = len(
            {c for c in aggregates.campaign_totals(vertical) if c}
        )
        rows.append(
            VerticalRow(
                vertical=vertical, psrs=psrs, doorways=doorways,
                stores=stores, campaigns=campaigns,
            )
        )
    return rows


def extract_brands(html: str, brand_names: Sequence[str]) -> Set[str]:
    """Brand trademarks visible on a page (case-insensitive substring scan)."""
    lowered = html.lower()
    return {name for name in brand_names if name.lower() in lowered}


def campaign_table(
    dataset: PsrDataset,
    archive: PageArchive,
    brand_names: Sequence[str],
    min_doorways: int = 1,
    aggregates: Optional[DailyAggregates] = None,
) -> List[CampaignRow]:
    """Table 2: per-campaign doorways, stores, brands, and peak duration.

    Peak duration is the paper's metric (Section 5.1.2): the shortest
    contiguous span of days containing >= 60% of the campaign's PSRs.
    """
    aggregates = aggregates or DailyAggregates(dataset)
    host_campaign: Dict[str, str] = {}
    store_campaign: Dict[str, str] = {}
    for record in dataset.records:
        if not record.campaign:
            continue
        host_campaign.setdefault(record.host, record.campaign)
        if record.is_store:
            store_campaign.setdefault(record.landing_host, record.campaign)

    doorways_by_campaign: Dict[str, Set[str]] = {}
    for host, campaign in host_campaign.items():
        doorways_by_campaign.setdefault(campaign, set()).add(host)
    stores_by_campaign: Dict[str, Set[str]] = {}
    for host, campaign in store_campaign.items():
        stores_by_campaign.setdefault(campaign, set()).add(host)

    rows: List[CampaignRow] = []
    for campaign in aggregates.campaigns():
        doorways = doorways_by_campaign.get(campaign, set())
        if len(doorways) < min_doorways:
            continue
        stores = stores_by_campaign.get(campaign, set())
        brands: Set[str] = set()
        for host in stores:
            html = archive.stores.get(host)
            if html:
                brands |= extract_brands(html, brand_names)
        series = aggregates.campaign_series(campaign)
        peak_days = _peak_duration(series, dataset.missed_ordinals())
        rows.append(
            CampaignRow(
                campaign=campaign,
                doorways=len(doorways),
                stores=len(stores),
                brands=len(brands),
                peak_days=peak_days,
            )
        )
    rows.sort(key=lambda r: r.campaign)
    return rows


def _peak_duration(
    daily_series: Dict[int, int],
    missed_ordinals: FrozenSet[int] = frozenset(),
) -> int:
    """Peak range length in days over a sparse daily-count series.

    A day absent from the series is a true zero *unless* the crawl was
    blind that day (``missed_ordinals``, from injected SERP outages): a
    blind day carries the previous observation forward, so one missed
    crawl day cannot split a contiguous peak in two.
    """
    if not daily_series:
        return 0
    start = min(daily_series)
    end = max(daily_series)
    dense: List[float] = []
    for d in range(start, end + 1):
        if d in daily_series:
            dense.append(float(daily_series[d]))
        elif d in missed_ordinals and dense:
            dense.append(dense[-1])
        else:
            dense.append(0.0)
    lo, hi = peak_range(dense, fraction=0.6)
    return hi - lo + 1
