"""Per-vertical poisoning views: Figures 2 and 3.

* :func:`poisoning_series` — daily % of top-10/top-100 result slots
  poisoned (Figure 3's sparklines come from its extremes);
* :func:`stacked_attribution` — daily share of search results per campaign
  plus the penalized band and the unattributed remainder (Figure 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.crawler.records import PsrDataset
from repro.analysis.aggregates import DailyAggregates


def poisoning_series(
    dataset: PsrDataset, vertical: str, topk: int = 100,
    aggregates: Optional[DailyAggregates] = None,
) -> List[Tuple[int, float]]:
    """(day ordinal, fraction of result slots poisoned) per crawl day."""
    aggregates = aggregates or DailyAggregates(dataset)
    series: List[Tuple[int, float]] = []
    for day in dataset.crawl_days():
        coverage = dataset.coverage(day, vertical)
        if coverage is None:
            continue
        slots = coverage.slots_top10 if topk <= 10 else coverage.slots_top100
        if slots == 0:
            series.append((day.ordinal, 0.0))
            continue
        cell = aggregates.cell(vertical, day.ordinal)
        hits = 0
        if cell is not None:
            hits = cell.top10 if topk <= 10 else cell.total
        series.append((day.ordinal, hits / slots))
    return series


@dataclass
class SparklineExtremes:
    vertical: str
    topk: int
    minimum: float
    maximum: float
    series: List[Tuple[int, float]]


def sparkline_extremes(
    dataset: PsrDataset, vertical: str, topk: int,
    aggregates: Optional[DailyAggregates] = None,
) -> SparklineExtremes:
    """Figure 3's per-vertical min/max poisoned percentages."""
    series = poisoning_series(dataset, vertical, topk, aggregates)
    values = [v for _, v in series] or [0.0]
    return SparklineExtremes(
        vertical=vertical,
        topk=topk,
        minimum=min(values),
        maximum=max(values),
        series=series,
    )


@dataclass
class StackedSeries:
    """Figure 2's stacked-area data for one vertical."""

    vertical: str
    ordinals: List[int]
    #: campaign -> fraction-of-result-slots series aligned with ordinals.
    campaign_shares: Dict[str, List[float]]
    #: PSRs from campaigns outside the displayed set, as one band.
    misc_share: List[float]
    #: Unattributed (classifier-unknown) PSR share.
    unknown_share: List[float]
    #: Penalized (labeled or seized) PSR share — Figure 2's red band.
    penalized_share: List[float]

    def total_poisoned(self, index: int) -> float:
        return (
            sum(series[index] for series in self.campaign_shares.values())
            + self.misc_share[index]
            + self.unknown_share[index]
            + self.penalized_share[index]
        )


def stacked_attribution(
    dataset: PsrDataset,
    vertical: str,
    top_campaigns: int = 5,
    aggregates: Optional[DailyAggregates] = None,
) -> StackedSeries:
    """Attribute the vertical's daily PSR share to its top campaigns.

    Matches Figure 2's construction: penalized PSRs form their own band;
    active PSRs split across the vertical's ``top_campaigns`` biggest
    campaigns, a "misc" band collapsing the remaining classified ones, and
    an unattributed band.
    """
    aggregates = aggregates or DailyAggregates(dataset)
    totals = aggregates.campaign_totals(vertical)
    leaders = [
        name for name, _ in sorted(totals.items(), key=lambda kv: -kv[1])[:top_campaigns]
    ]
    leader_set = set(leaders)
    ordinals: List[int] = []
    shares: Dict[str, List[float]] = {name: [] for name in leaders}
    misc: List[float] = []
    unknown: List[float] = []
    penalized: List[float] = []
    for day in dataset.crawl_days():
        coverage = dataset.coverage(day, vertical)
        if coverage is None or coverage.slots_top100 == 0:
            continue
        slots = coverage.slots_top100
        ordinals.append(day.ordinal)
        cell = aggregates.cell(vertical, day.ordinal)
        if cell is None:
            for name in leaders:
                shares[name].append(0.0)
            misc.append(0.0)
            unknown.append(0.0)
            penalized.append(0.0)
            continue
        # Penalized results are pulled out of their campaign bands so the
        # stacked areas sum to the vertical's total poisoned share.
        active_total = cell.total - cell.penalized
        penalized.append(cell.penalized / slots)
        misc_count = 0
        unknown_count = cell.by_campaign.get("", 0)
        leader_counts = {name: 0 for name in leaders}
        for campaign, count in cell.by_campaign.items():
            if not campaign:
                continue
            if campaign in leader_set:
                leader_counts[campaign] = count
            else:
                misc_count += count
        # Scale non-penalized bands so they sum to the active share.
        classified_and_unknown = sum(leader_counts.values()) + misc_count + unknown_count
        scale = 1.0
        if classified_and_unknown > 0:
            scale = active_total / classified_and_unknown
        for name in leaders:
            shares[name].append(leader_counts[name] * scale / slots)
        misc.append(misc_count * scale / slots)
        unknown.append(unknown_count * scale / slots)
    return StackedSeries(
        vertical=vertical,
        ordinals=ordinals,
        campaign_shares=shares,
        misc_share=misc,
        unknown_share=unknown,
        penalized_share=penalized,
    )
