"""Figure 4: PSR prevalence vs. order activity per campaign.

For each campaign, four aligned series: cumulative order volume and binned
order rates from representative tracked stores, and daily PSR counts in the
top-100 and top-10 — plus a correlation coefficient between visibility and
order rate, the paper's core evidence that search penalization works.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.crawler.records import PsrDataset
from repro.orders.purchase_pair import OrderVolumeSeries, TestOrderer, TrackedStore
from repro.analysis.aggregates import DailyAggregates


def pearson(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation; 0.0 when either series is constant."""
    if len(xs) != len(ys):
        raise ValueError("series lengths differ")
    n = len(xs)
    if n < 2:
        return 0.0
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x <= 0 or var_y <= 0:
        return 0.0
    return cov / math.sqrt(var_x * var_y)


@dataclass
class CampaignPanel:
    """One column of Figure 4."""

    campaign: str
    #: Representative stores' combined cumulative volume samples.
    volume_points: List[Tuple[int, float]]
    #: (bin start ordinal, est. orders/day).
    rate_bins: List[Tuple[int, float]]
    #: day ordinal -> PSR count.
    top100_series: Dict[int, int]
    top10_series: Dict[int, int]
    #: day ordinal -> penalized PSR count (the dark bar portion).
    penalized_series: Dict[int, int]
    stores_used: List[str]
    #: Correlation between weekly top-100 PSR counts and order rates.
    visibility_order_correlation: float

    @property
    def peak_rate(self) -> float:
        return max((rate for _, rate in self.rate_bins), default=0.0)

    @property
    def max_top100(self) -> int:
        return max(self.top100_series.values(), default=0)

    @property
    def max_top10(self) -> int:
        return max(self.top10_series.values(), default=0)


def _stores_of_campaign(orderer: TestOrderer, campaign: str) -> List[TrackedStore]:
    return [
        t for t in orderer.tracked_with_samples()
        if t.campaign_hint == campaign
    ]


def campaign_figure4(
    dataset: PsrDataset,
    orderer: TestOrderer,
    campaign: str,
    representative_stores: int = 4,
    rate_bin_days: int = 7,
    aggregates: Optional[DailyAggregates] = None,
) -> CampaignPanel:
    """Build one campaign's Figure 4 panel.

    Representative stores are chosen as the paper describes: visible in
    PSRs and with the highest order activity among the campaign's tracked
    stores.
    """
    aggregates = aggregates or DailyAggregates(dataset)
    tracked = _stores_of_campaign(orderer, campaign)
    tracked.sort(
        key=lambda t: OrderVolumeSeries(t.samples).total_orders_created(), reverse=True
    )
    chosen = tracked[:representative_stores]

    volume_points: List[Tuple[int, float]] = []
    combined_rates: Dict[int, float] = {}
    for store in chosen:
        series = OrderVolumeSeries(store.samples)
        base = series.samples[0].order_number if series.samples else 0
        volume_points.extend(
            (s.day.ordinal, float(s.order_number - base)) for s in series.samples
        )
        for ordinal, rate in series.daily_rates().items():
            combined_rates[ordinal] = combined_rates.get(ordinal, 0.0) + rate
    volume_points.sort()

    rate_bins: List[Tuple[int, float]] = []
    if combined_rates:
        start = min(combined_rates)
        end = max(combined_rates)
        cursor = start
        while cursor <= end:
            window = [
                combined_rates[d]
                for d in range(cursor, min(cursor + rate_bin_days, end + 1))
                if d in combined_rates
            ]
            if window:
                rate_bins.append((cursor, sum(window) / len(window)))
            cursor += rate_bin_days

    top100 = aggregates.campaign_series(campaign, topk=100)
    top10 = aggregates.campaign_series(campaign, topk=10)
    penalized: Dict[int, int] = {}
    for record in dataset.records:
        if record.campaign == campaign and record.penalized:
            penalized[record.day.ordinal] = penalized.get(record.day.ordinal, 0) + 1

    correlation = _weekly_correlation(top100, combined_rates, rate_bin_days)
    return CampaignPanel(
        campaign=campaign,
        volume_points=volume_points,
        rate_bins=rate_bins,
        top100_series=top100,
        top10_series=top10,
        penalized_series=penalized,
        stores_used=[t.key for t in chosen],
        visibility_order_correlation=correlation,
    )


def _weekly_correlation(
    psr_series: Dict[int, int], rates: Dict[int, float], bin_days: int
) -> float:
    """Correlate weekly-mean PSR counts with weekly-mean order rates over
    the overlapping span."""
    if not psr_series or not rates:
        return 0.0
    start = max(min(psr_series), min(rates))
    end = min(max(psr_series), max(rates))
    if end - start < bin_days:
        return 0.0
    xs: List[float] = []
    ys: List[float] = []
    cursor = start
    while cursor + bin_days <= end + 1:
        window = range(cursor, cursor + bin_days)
        psr_window = [psr_series.get(d, 0) for d in window]
        rate_window = [rates[d] for d in window if d in rates]
        if rate_window:
            xs.append(sum(psr_window) / len(psr_window))
            ys.append(sum(rate_window) / len(rate_window))
        cursor += bin_days
    return pearson(xs, ys)
