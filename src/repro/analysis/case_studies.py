"""Case studies: Figures 5 and 6 plus the conversion metrics of §5.2.3.

* :func:`rotation_case_study` — a store rotating across domains (the
  BIGLOVE coco*.com Chanel store): PSR prevalence, AWStats traffic, and
  order volume, segmented by domain tenure.
* :func:`conversion_metrics` — visits, referrer retention, pages/visit,
  and the visit→order conversion rate for one store.
* :func:`seizure_order_case_study` — order-number curves for several of a
  campaign's stores around a seizure event (the PHP?P= Abercrombie-UK
  figure).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.util.simtime import SimDate
from repro.crawler.records import PsrDataset
from repro.crawler.awstats import scrape_awstats, AwstatsNotPublic, AwstatsUnavailable
from repro.orders.purchase_pair import OrderVolumeSeries, TestOrderer, TrackedStore


@dataclass
class RotationCaseStudy:
    """Figure 5's aligned panels for one rotating store."""

    store_key: str
    campaign: str
    hosts: List[str]
    #: host -> (first day ordinal, last day ordinal) observed in PSR landings.
    tenures: Dict[str, Tuple[int, int]]
    #: day ordinal -> PSR count (top 100 / top 10) landing on any tenure host.
    top100_series: Dict[int, int]
    top10_series: Dict[int, int]
    #: day ordinal -> visits (from AWStats when public, else empty).
    traffic_series: Dict[int, int]
    volume_points: List[Tuple[int, float]]
    rate_bins: List[Tuple[int, float]]

    @property
    def rotations(self) -> int:
        return max(0, len(self.hosts) - 1)


def _pick_rotating_store(
    orderer: TestOrderer, campaign: Optional[str]
) -> Optional[TrackedStore]:
    candidates = [
        t for t in orderer.tracked_with_samples()
        if len(t.hosts_seen) >= 2 and (campaign is None or t.campaign_hint == campaign)
    ]
    if not candidates:
        return None
    return max(candidates, key=lambda t: (len(t.hosts_seen), len(t.samples)))


def rotation_case_study(
    dataset: PsrDataset,
    orderer: TestOrderer,
    world=None,
    campaign: Optional[str] = None,
    store_key: Optional[str] = None,
) -> Optional[RotationCaseStudy]:
    """Build the Figure 5 panels for a rotating store.

    Picks the campaign's most-rotated tracked store unless ``store_key``
    pins one.  Traffic comes from the store's public AWStats when exposed
    (as for coco*.com); otherwise the traffic panel stays empty.
    """
    if store_key is not None:
        tracked = orderer.tracked.get(store_key)
    else:
        tracked = _pick_rotating_store(orderer, campaign)
    if tracked is None:
        return None
    hosts = list(dict.fromkeys(tracked.hosts_seen))
    host_set = set(hosts)

    top100: Dict[int, int] = {}
    top10: Dict[int, int] = {}
    tenures: Dict[str, Tuple[int, int]] = {}
    for record in dataset.records:
        if record.landing_host not in host_set:
            continue
        ordinal = record.day.ordinal
        top100[ordinal] = top100.get(ordinal, 0) + 1
        if record.in_top10:
            top10[ordinal] = top10.get(ordinal, 0) + 1
        first, last = tenures.get(record.landing_host, (ordinal, ordinal))
        tenures[record.landing_host] = (min(first, ordinal), max(last, ordinal))

    traffic: Dict[int, int] = {}
    if world is not None:
        store = world.store_at(tracked.key)
        if store is not None and store.awstats_public:
            injector = getattr(world.web, "fault_injector", None)
            try:
                report = scrape_awstats(
                    store, world.window.start, world.window.end,
                    injector=injector,
                )
            except AwstatsUnavailable:
                # Analytics dark: the case study degrades to crawl + order
                # series only, exactly like a real scrape outage.
                report = None
            if report is not None:
                traffic = dict(report.daily_visits)

    series = OrderVolumeSeries(tracked.samples)
    base = series.samples[0].order_number if series.samples else 0
    volume_points = [
        (s.day.ordinal, float(s.order_number - base)) for s in series.samples
    ]
    return RotationCaseStudy(
        store_key=tracked.key,
        campaign=tracked.campaign_hint,
        hosts=hosts,
        tenures=tenures,
        top100_series=top100,
        top10_series=top10,
        traffic_series=traffic,
        volume_points=volume_points,
        rate_bins=series.rate_histogram(),
    )


@dataclass
class ConversionMetrics:
    """Section 5.2.3's funnel numbers for one store."""

    store_key: str
    total_visits: int
    referrer_fraction: float
    pages_per_visit: float
    referrer_doorways: int
    #: Of the referring doorways, how many our own crawl had seen (47.7%
    #: for coco*.com — the crawl monitors a subset of terms).
    referrer_doorways_seen_in_crawl: int
    orders_created: int

    @property
    def conversion_rate(self) -> float:
        """Orders per visit (paper: ~0.7%, a sale every ~151 visits)."""
        if self.total_visits == 0:
            return 0.0
        return self.orders_created / self.total_visits

    @property
    def visits_per_order(self) -> float:
        if self.orders_created == 0:
            return 0.0
        return self.total_visits / self.orders_created


def conversion_metrics(
    dataset: PsrDataset,
    orderer: TestOrderer,
    world,
    store_key: str,
    first_day: SimDate,
    last_day: SimDate,
) -> Optional[ConversionMetrics]:
    """Join AWStats traffic with purchase-pair order estimates."""
    tracked = orderer.tracked.get(store_key)
    store = world.store_at(store_key)
    if tracked is None or store is None:
        return None
    try:
        report = scrape_awstats(
            store, first_day, last_day,
            injector=getattr(world.web, "fault_injector", None),
        )
    except (AwstatsNotPublic, AwstatsUnavailable):
        return None
    series = OrderVolumeSeries(
        [s for s in tracked.samples if first_day <= s.day <= last_day]
    )
    crawled_doorways = dataset.doorway_hosts()
    referrer_hosts = set(report.referrer_hosts)
    return ConversionMetrics(
        store_key=store_key,
        total_visits=report.total_visits,
        referrer_fraction=report.referrer_fraction,
        pages_per_visit=report.pages_per_visit,
        referrer_doorways=len(referrer_hosts),
        referrer_doorways_seen_in_crawl=len(referrer_hosts & crawled_doorways),
        orders_created=series.total_orders_created(),
    )


@dataclass
class StoreOrderTrack:
    """One store's curve in Figure 6."""

    store_key: str
    locale_label: str
    samples: List[Tuple[int, int]]
    #: Day the store's domain was first observed seized, if ever.
    seizure_observed: Optional[int]


@dataclass
class SeizureOrderCaseStudy:
    campaign: str
    stores: List[StoreOrderTrack]

    def seized_tracks(self) -> List[StoreOrderTrack]:
        return [s for s in self.stores if s.seizure_observed is not None]


def seizure_order_case_study(
    dataset: PsrDataset,
    orderer: TestOrderer,
    campaign: str,
    max_stores: int = 4,
    world=None,
) -> SeizureOrderCaseStudy:
    """Figure 6: order-number samples for a campaign's stores with the
    seizure events marked."""
    notice_day: Dict[str, int] = {}
    for record in dataset.records:
        if record.seizure_case and record.landing_host not in notice_day:
            notice_day[record.landing_host] = record.day.ordinal

    tracked = [
        t for t in orderer.tracked_with_samples() if t.campaign_hint == campaign
    ]
    # Prefer stores that experienced a seizure, then by sample count.
    tracked.sort(
        key=lambda t: (
            not any(h in notice_day for h in t.hosts_seen),
            -len(t.samples),
        )
    )
    stores: List[StoreOrderTrack] = []
    for t in tracked[:max_stores]:
        seizure = next(
            (notice_day[h] for h in t.hosts_seen if h in notice_day), None
        )
        locale = ""
        if world is not None:
            store = world.store_at(t.key)
            if store is not None:
                locale = f"{store.brands[0].lower()}[{store.locale}]"
        stores.append(
            StoreOrderTrack(
                store_key=t.key,
                locale_label=locale or t.key,
                samples=[(s.day.ordinal, s.order_number) for s in t.samples],
                seizure_observed=seizure,
            )
        )
    return SeizureOrderCaseStudy(campaign=campaign, stores=stores)
