"""Seizure-intervention analysis: Table 3 and Section 5.3.

All computed from crawl observations: seizure-notice landings give the
court cases, the embedded Schedule A gives the full co-seized domain lists,
and store sightings bracket lifetimes and rotation reactions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.util.simtime import SimDate
from repro.util.stats import mean
from repro.crawler.records import PsrDataset
from repro.crawler.serp_crawler import SearchCrawler


@dataclass
class SeizureRow:
    """One row of Table 3 (per brand-protection firm)."""

    firm: str
    cases: int
    brands: int
    #: Total domains listed in those cases' court documents.
    seized_domains: int
    #: Seized store domains directly observed in crawled PSRs.
    observed_stores: int
    #: Of those, stores attributed to a campaign by the classifier.
    classified_stores: int
    #: Distinct campaigns touched by this firm's seizures.
    campaigns: int


def seizure_table(dataset: PsrDataset, crawler: SearchCrawler) -> List[SeizureRow]:
    """Build Table 3 from notice landings plus harvested court documents."""
    firms: Set[str] = {
        r.seizure_firm for r in dataset.records if r.seizure_firm
    }
    rows: List[SeizureRow] = []
    for firm in sorted(firms):
        case_ids = {
            r.seizure_case for r in dataset.records
            if r.seizure_firm == firm and r.seizure_case
        }
        brands = {
            r.seizure_brand for r in dataset.records
            if r.seizure_firm == firm and r.seizure_brand
        }
        # The union of Schedule A lists across this firm's observed cases.
        # Sorted so the lookup order is deterministic: the union itself is
        # order-insensitive today, but this path feeds the seizure table
        # artifact and must not depend on the loop body staying commutative.
        seized_domains: Set[str] = set()
        for case_id in sorted(case_ids):
            notice = crawler.notices.get(case_id)
            if notice is not None:
                seized_domains |= set(notice.co_seized)
        observed = {
            r.landing_host for r in dataset.records
            if r.seizure_firm == firm and r.seizure_case
        }
        # Store attribution: campaign of the same landing host seen *before*
        # the seizure notice replaced it.
        host_campaigns: Dict[str, str] = {}
        for record in dataset.records:
            if record.is_store and record.campaign:
                host_campaigns.setdefault(record.landing_host, record.campaign)
        classified = [h for h in sorted(observed) if h in host_campaigns]
        campaigns = {host_campaigns[h] for h in classified}
        rows.append(
            SeizureRow(
                firm=firm,
                cases=len(case_ids),
                brands=len(brands),
                seized_domains=len(seized_domains),
                observed_stores=len(observed),
                classified_stores=len(classified),
                campaigns=len(campaigns),
            )
        )
    return rows


@dataclass
class StoreLifetimeStats:
    """Seized-store lifetimes (Section 5.3.2's 48-68 day windows)."""

    firm: str
    measured: int
    #: Mean days from first store sighting to last pre-seizure sighting.
    mean_lower_days: float
    #: Mean days from first store sighting to first notice observation.
    mean_upper_days: float


def seized_store_lifetimes(dataset: PsrDataset) -> List[StoreLifetimeStats]:
    """Per firm, bracket how long seized stores monetized traffic before
    the seizure took effect.

    Crawl-blind days (injected SERP outages) extend the *lower* bound:
    a store last seen right before a run of missed crawl days was plausibly
    still up through them, so the last sighting slides forward across the
    contiguous gap (never past the notice observation)."""
    missed = dataset.missed_ordinals()
    first_store_seen: Dict[str, SimDate] = {}
    last_store_seen: Dict[str, SimDate] = {}
    first_notice_seen: Dict[str, Tuple[SimDate, str]] = {}
    for record in dataset.records:
        host = record.landing_host
        if record.seizure_case:
            if host not in first_notice_seen or record.day < first_notice_seen[host][0]:
                first_notice_seen[host] = (record.day, record.seizure_firm or "")
        elif record.is_store:
            if host not in first_store_seen or record.day < first_store_seen[host]:
                first_store_seen[host] = record.day
            if host not in last_store_seen or record.day > last_store_seen[host]:
                last_store_seen[host] = record.day

    by_firm: Dict[str, List[Tuple[int, int]]] = {}
    for host, (notice_day, firm) in first_notice_seen.items():
        start = first_store_seen.get(host)
        if start is None:
            continue
        last_active = last_store_seen.get(host, start)
        last_ordinal = _extend_through_gaps(
            last_active.ordinal, missed, limit=notice_day.ordinal
        )
        lower = max(0, last_ordinal - start.ordinal)
        upper = max(0, notice_day - start)
        by_firm.setdefault(firm, []).append((lower, upper))

    stats: List[StoreLifetimeStats] = []
    for firm in sorted(by_firm):
        bounds = by_firm[firm]
        stats.append(
            StoreLifetimeStats(
                firm=firm,
                measured=len(bounds),
                mean_lower_days=mean([b[0] for b in bounds]),
                mean_upper_days=mean([b[1] for b in bounds]),
            )
        )
    return stats


def _extend_through_gaps(ordinal: int, missed: Set[int], limit: int) -> int:
    """Slide a last-sighting ordinal forward across contiguous missed
    crawl days, stopping strictly before ``limit``."""
    while ordinal + 1 in missed and ordinal + 1 < limit:
        ordinal += 1
    return ordinal


@dataclass
class RotationReactionStats:
    """How campaigns respond to seizures (Section 5.3.2)."""

    firm: str
    seized_stores: int
    redirected_stores: int
    #: Of the redirected, how many of the new domains were seized again.
    reseized_stores: int
    mean_reaction_days: float

    @property
    def redirected_fraction(self) -> float:
        if self.seized_stores == 0:
            return 0.0
        return self.redirected_stores / self.seized_stores


def rotation_reactions(dataset: PsrDataset, orderer=None) -> List[RotationReactionStats]:
    """Measure post-seizure domain agility from crawl data.

    A seized store counts as "redirected" when some doorway that previously
    landed on the seized host later lands on a different store host; the
    reaction time is the gap between the first notice observation and the
    first sighting of the replacement.
    """
    # doorway host -> ordered (day, landing_host, is_store, case, firm).
    by_doorway: Dict[str, List] = {}
    for record in dataset.records:
        by_doorway.setdefault(record.host, []).append(record)
    for records in by_doorway.values():
        records.sort(key=lambda r: r.day.ordinal)

    #: seized landing host -> (first notice day, firm).
    notice_of: Dict[str, Tuple[SimDate, str]] = {}
    for record in dataset.records:
        if record.seizure_case and record.landing_host not in notice_of:
            notice_of[record.landing_host] = (record.day, record.seizure_firm or "")

    redirected: Dict[str, Tuple[str, int, bool]] = {}
    for doorway, records in by_doorway.items():
        for index, record in enumerate(records):
            info = notice_of.get(record.landing_host)
            if info is None or not record.seizure_case:
                continue
            notice_day, firm = info
            for later in records[index + 1:]:
                if later.is_store and later.landing_host != record.landing_host:
                    reaction = later.day - notice_day
                    reseized = later.landing_host in notice_of
                    prior = redirected.get(record.landing_host)
                    if prior is None or reaction < prior[1]:
                        redirected[record.landing_host] = (firm, max(0, reaction), reseized)
                    break

    firms = sorted({firm for _, firm in notice_of.values()})
    stats: List[RotationReactionStats] = []
    for firm in firms:
        seized = [h for h, (_, f) in notice_of.items() if f == firm]
        moved = {h: v for h, v in redirected.items() if v[0] == firm}
        reactions = [v[1] for v in moved.values()]  # repro: allow-D005 feeds an integer mean only — order-insensitive
        stats.append(
            RotationReactionStats(
                firm=firm,
                seized_stores=len(seized),
                redirected_stores=len(moved),
                reseized_stores=sum(1 for v in moved.values() if v[2]),
                mean_reaction_days=mean(reactions) if reactions else 0.0,
            )
        )
    return stats
