"""Infrastructure-graph clustering (Section 4.2.3's validation evidence).

The paper's analysts validated classifier predictions by checking *shared
infrastructure*: "distinct SEO campaigns are unlikely to share certain
infrastructure such as SEO doorway pages and C&Cs, payment processing, and
customer support."  That intuition is a graph property: build a bipartite
graph of doorway hosts and landing-store hosts from the crawled PSRs, and
the connected components are infrastructure clusters — an independent,
classifier-free grouping of the ecosystem.

Comparing components against classifier attribution gives a purity score
the analyst can use to audit the model (and to merge campaigns the
classifier split, or flag ones it conflated).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

import networkx as nx

from repro.crawler.records import PsrDataset


def build_infrastructure_graph(dataset: PsrDataset) -> "nx.Graph":
    """Bipartite doorway<->store graph from PSR landings.

    Node attribute ``kind`` is 'doorway' or 'store'; edge weight counts how
    many PSR observations connected the pair.  Stores sharing a doorway (or
    doorways sharing a store) end up in one component — including rotated
    store domains, which stay linked through their common doorways.
    """
    graph = nx.Graph()
    for record in dataset.records:
        if not record.is_store:
            continue
        doorway = f"d:{record.host}"
        store = f"s:{record.landing_host}"
        if not graph.has_node(doorway):
            graph.add_node(doorway, kind="doorway", host=record.host)
        if not graph.has_node(store):
            graph.add_node(store, kind="store", host=record.landing_host)
        if graph.has_edge(doorway, store):
            graph[doorway][store]["weight"] += 1
        else:
            graph.add_edge(doorway, store, weight=1)
    return graph


@dataclass
class InfrastructureCluster:
    """One connected component of the infrastructure graph."""

    index: int
    doorway_hosts: List[str]
    store_hosts: List[str]
    #: Classifier campaign labels found inside the cluster, with counts.
    campaign_mix: Counter = field(default_factory=Counter)

    @property
    def size(self) -> int:
        return len(self.doorway_hosts) + len(self.store_hosts)

    @property
    def dominant_campaign(self) -> Optional[str]:
        named = Counter({c: n for c, n in self.campaign_mix.items() if c})
        if not named:
            return None
        return named.most_common(1)[0][0]

    @property
    def purity(self) -> float:
        """Share of labeled nodes agreeing with the dominant campaign."""
        named_total = sum(n for c, n in self.campaign_mix.items() if c)
        if named_total == 0:
            return 0.0
        dominant = self.dominant_campaign
        return self.campaign_mix[dominant] / named_total


@dataclass
class InfrastructureReport:
    clusters: List[InfrastructureCluster]
    #: Weighted mean purity over clusters with any labeled node.
    mean_purity: float
    #: Campaigns whose hosts span multiple clusters (possible split or
    #: genuinely partitioned infrastructure).
    fragmented_campaigns: Dict[str, int]

    def multi_host_clusters(self) -> List[InfrastructureCluster]:
        return [c for c in self.clusters if c.size > 1]


def cluster_infrastructure(
    dataset: PsrDataset, host_campaigns: Optional[Dict[str, str]] = None
) -> InfrastructureReport:
    """Component clustering plus agreement with campaign attribution.

    ``host_campaigns`` maps host -> campaign label; by default it is read
    off the dataset's attributed records.
    """
    if host_campaigns is None:
        host_campaigns = {}
        for record in dataset.records:
            if record.campaign:
                host_campaigns.setdefault(record.host, record.campaign)
                if record.is_store:
                    host_campaigns.setdefault(record.landing_host, record.campaign)

    graph = build_infrastructure_graph(dataset)
    clusters: List[InfrastructureCluster] = []
    campaign_cluster_count: Counter = Counter()
    for index, component in enumerate(nx.connected_components(graph)):
        doorways = sorted(
            graph.nodes[n]["host"] for n in component if graph.nodes[n]["kind"] == "doorway"
        )
        stores = sorted(
            graph.nodes[n]["host"] for n in component if graph.nodes[n]["kind"] == "store"
        )
        mix: Counter = Counter()
        seen_campaigns: Set[str] = set()
        for host in doorways + stores:
            label = host_campaigns.get(host, "")
            mix[label] += 1
            if label:
                seen_campaigns.add(label)
        for campaign in seen_campaigns:
            campaign_cluster_count[campaign] += 1
        clusters.append(
            InfrastructureCluster(
                index=index, doorway_hosts=doorways, store_hosts=stores,
                campaign_mix=mix,
            )
        )

    labeled_clusters = [c for c in clusters if any(c for c in c.campaign_mix if c)]
    weights = [sum(n for label, n in c.campaign_mix.items() if label) for c in labeled_clusters]
    purities = [c.purity for c in labeled_clusters]
    total_weight = sum(weights)
    mean_purity = (
        sum(w * p for w, p in zip(weights, purities)) / total_weight
        if total_weight else 0.0
    )
    fragmented = {
        campaign: count
        for campaign, count in campaign_cluster_count.items()
        if count > 1
    }
    clusters.sort(key=lambda c: -c.size)
    return InfrastructureReport(
        clusters=clusters, mean_purity=mean_purity,
        fragmented_campaigns=fragmented,
    )
