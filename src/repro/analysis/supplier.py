"""Supply-side shipment analysis (Section 4.5)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.market.supplier import ShipmentRecord, ShipmentStatus, Supplier

WESTERN_EUROPE = ("GB", "DE", "FR", "IT")


@dataclass
class SupplierSummary:
    """The headline numbers of Section 4.5."""

    total_records: int
    delivered: int
    seized_at_source: int
    seized_at_destination: int
    returned: int
    by_destination: Dict[str, int]

    @property
    def top_regions_fraction(self) -> float:
        """US + JP + AU + Western Europe share (paper: >81%)."""
        if self.total_records == 0:
            return 0.0
        top = (
            self.by_destination.get("US", 0)
            + self.by_destination.get("JP", 0)
            + self.by_destination.get("AU", 0)
            + sum(self.by_destination.get(c, 0) for c in WESTERN_EUROPE)
        )
        return top / self.total_records

    @property
    def delivery_rate(self) -> float:
        if self.total_records == 0:
            return 0.0
        return self.delivered / self.total_records


def supplier_summary(records: Sequence[ShipmentRecord]) -> SupplierSummary:
    """Aggregate a scraped record set the way Section 4.5 reports it.

    Delivered counts include later-returned orders (they did arrive), as in
    the paper's accounting of 256K delivered with 1,319 returns among them.
    """
    by_destination: Dict[str, int] = {}
    delivered = seized_src = seized_dst = returned = 0
    for record in records:
        by_destination[record.destination] = by_destination.get(record.destination, 0) + 1
        if record.status is ShipmentStatus.DELIVERED:
            delivered += 1
        elif record.status is ShipmentStatus.SEIZED_AT_SOURCE:
            seized_src += 1
        elif record.status is ShipmentStatus.SEIZED_AT_DESTINATION:
            seized_dst += 1
        elif record.status is ShipmentStatus.RETURNED:
            delivered += 1
            returned += 1
    return SupplierSummary(
        total_records=len(records),
        delivered=delivered,
        seized_at_source=seized_src,
        seized_at_destination=seized_dst,
        returned=returned,
        by_destination=by_destination,
    )


def scrape_and_summarize(supplier: Supplier) -> SupplierSummary:
    """Run the bulk-lookup scrape and summarize, end to end."""
    return supplier_summary(supplier.scrape_all())
