"""Analysis layer: turns the PSR dataset, order samples, and analytics
scrapes into the paper's tables and figures (Section 5)."""

from repro.analysis.aggregates import DailyAggregates
from repro.analysis.ecosystem import vertical_table, campaign_table, VerticalRow, CampaignRow
from repro.analysis.verticals import (
    poisoning_series,
    sparkline_extremes,
    stacked_attribution,
    StackedSeries,
)
from repro.analysis.correlation import campaign_figure4, CampaignPanel, pearson
from repro.analysis.labels import label_coverage, root_only_undercount, label_lifetimes, LabelStats
from repro.analysis.seizures import (
    seizure_table,
    SeizureRow,
    seized_store_lifetimes,
    rotation_reactions,
)
from repro.analysis.case_studies import (
    rotation_case_study,
    RotationCaseStudy,
    conversion_metrics,
    ConversionMetrics,
    seizure_order_case_study,
    SeizureOrderCaseStudy,
)
from repro.analysis.supplier import supplier_summary, SupplierSummary
from repro.analysis.ablations import (
    AblationOutcome,
    run_ablation,
    ablation_variants,
    run_intervention_ablations,
)
from repro.analysis.infrastructure import (
    build_infrastructure_graph,
    cluster_infrastructure,
    InfrastructureCluster,
    InfrastructureReport,
)
from repro.analysis.term_bias import (
    BiasCheckResult,
    TermSetObservation,
    alternate_term_sample,
    term_bias_check,
    run_bias_experiment,
)

__all__ = [
    "DailyAggregates",
    "vertical_table",
    "campaign_table",
    "VerticalRow",
    "CampaignRow",
    "poisoning_series",
    "sparkline_extremes",
    "stacked_attribution",
    "StackedSeries",
    "campaign_figure4",
    "CampaignPanel",
    "pearson",
    "label_coverage",
    "root_only_undercount",
    "label_lifetimes",
    "LabelStats",
    "seizure_table",
    "SeizureRow",
    "seized_store_lifetimes",
    "rotation_reactions",
    "rotation_case_study",
    "RotationCaseStudy",
    "conversion_metrics",
    "ConversionMetrics",
    "seizure_order_case_study",
    "SeizureOrderCaseStudy",
    "supplier_summary",
    "SupplierSummary",
    "AblationOutcome",
    "run_ablation",
    "ablation_variants",
    "run_intervention_ablations",
    "build_infrastructure_graph",
    "cluster_infrastructure",
    "InfrastructureCluster",
    "InfrastructureReport",
    "BiasCheckResult",
    "TermSetObservation",
    "alternate_term_sample",
    "term_bias_check",
    "run_bias_experiment",
]
