"""Term-selection bias check (Section 4.1.1).

Any SERP measurement is biased toward its chosen terms.  The paper
validated its two selection methods (keywords extracted from KEY doorway
URLs vs. Google-Suggest expansion) by re-crawling ten verticals for one day
with an *alternate* term sample: only 4 of 1,000 terms overlapped, yet PSR
rates and per-campaign attribution matched — evidence the monitored subset
was representative.

This module reproduces that experiment: draw an alternate sample from each
vertical's term universe, query the engine for one day with both sets, and
compare poisoning rates and campaign mixes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass
class TermSetObservation:
    """One day's crawl over one term set in one vertical."""

    terms: List[str]
    result_slots: int
    psr_count: int
    by_campaign: Dict[str, int] = field(default_factory=dict)

    @property
    def psr_fraction(self) -> float:
        if self.result_slots == 0:
            return 0.0
        return self.psr_count / self.result_slots

    def campaign_shares(self) -> Dict[str, float]:
        total = sum(self.by_campaign.values())
        if total == 0:
            return {}
        return {name: count / total for name, count in self.by_campaign.items()}


@dataclass
class BiasCheckResult:
    """Aggregate outcome of the alternate-terms experiment."""

    vertical: str
    overlap_terms: int
    original: TermSetObservation
    alternate: TermSetObservation

    @property
    def fraction_gap(self) -> float:
        """Absolute difference in poisoned fraction between the sets."""
        return abs(self.original.psr_fraction - self.alternate.psr_fraction)

    def campaign_distribution_distance(self) -> float:
        """Total-variation distance between campaign mixes (0 = identical)."""
        a = self.original.campaign_shares()
        b = self.alternate.campaign_shares()
        names = set(a) | set(b)
        if not names:
            return 0.0
        return 0.5 * sum(abs(a.get(n, 0.0) - b.get(n, 0.0)) for n in names)


def alternate_term_sample(
    vertical, count: int, seed: int = 0
) -> List[str]:
    """An independent sample from the vertical's term universe — the stand-in
    for regenerating terms with the other selection method."""
    # repro: allow-D001 seeded from a stable (tag, vertical, seed) repr; analysis-side resampling, outside the simulator's stream tree
    rng = random.Random(("alt-terms", vertical.name, seed).__repr__())
    count = min(count, len(vertical.universe))
    return sorted(rng.sample(vertical.universe, count))


def _observe(world, day, terms: Sequence[str]) -> TermSetObservation:
    observation = TermSetObservation(terms=list(terms), result_slots=0, psr_count=0)
    for term in terms:
        serp = world.engine.serp(term, day)
        observation.result_slots += len(serp.results)
        for result in serp.results:
            pair = world.doorway_at(result.host)
            if pair is None:
                continue
            observation.psr_count += 1
            campaign = pair[0].name
            observation.by_campaign[campaign] = (
                observation.by_campaign.get(campaign, 0) + 1
            )
    return observation


def term_bias_check(
    world, day, vertical_name: str, seed: int = 0
) -> BiasCheckResult:
    """Run the Section 4.1.1 experiment for one vertical on one day.

    Crawls the monitored terms and an alternate universe sample side by
    side (PSR identification here uses ground truth rather than re-running
    Dagger, since the question is about *term* bias, not detector recall).
    """
    vertical = world.verticals[vertical_name]
    alternate = alternate_term_sample(vertical, len(vertical.terms), seed)
    overlap = len(set(alternate) & set(vertical.terms))
    return BiasCheckResult(
        vertical=vertical_name,
        overlap_terms=overlap,
        original=_observe(world, day, vertical.terms),
        alternate=_observe(world, day, alternate),
    )


def run_bias_experiment(
    world, day, vertical_names: Optional[Sequence[str]] = None, seed: int = 0
) -> List[BiasCheckResult]:
    """The full experiment across verticals (the paper used the ten
    non-composite KEY verticals)."""
    if vertical_names is None:
        vertical_names = [
            name for name, v in sorted(world.verticals.items()) if not v.composite
        ]
    return [term_bias_check(world, day, name, seed) for name in vertical_names]
