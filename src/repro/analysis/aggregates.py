"""One-pass daily aggregates over a PSR dataset.

Every figure needs per-(vertical, day) and per-(campaign, day) counts; this
builds them all in a single scan so analyses stay O(records).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.crawler.records import PsrDataset


@dataclass
class DayCell:
    """Counts for one (vertical, day)."""

    total: int = 0
    top10: int = 0
    penalized: int = 0
    penalized_top10: int = 0
    by_campaign: Dict[str, int] = field(default_factory=dict)
    by_campaign_top10: Dict[str, int] = field(default_factory=dict)


class DailyAggregates:
    """Precomputed per-day views of a PSR dataset."""

    def __init__(self, dataset: PsrDataset):
        self.dataset = dataset
        #: (vertical, ordinal) -> DayCell; "" campaign = unattributed.
        self._cells: Dict[Tuple[str, int], DayCell] = {}
        #: campaign -> ordinal -> count (all verticals, top-100).
        self._campaign_daily: Dict[str, Dict[int, int]] = defaultdict(dict)
        self._campaign_daily_top10: Dict[str, Dict[int, int]] = defaultdict(dict)
        self._ordinals: Set[int] = set()
        for record in dataset.records:
            key = (record.vertical, record.day.ordinal)
            cell = self._cells.get(key)
            if cell is None:
                cell = self._cells[key] = DayCell()
            cell.total += 1
            campaign = record.campaign
            cell.by_campaign[campaign] = cell.by_campaign.get(campaign, 0) + 1
            if record.in_top10:
                cell.top10 += 1
                cell.by_campaign_top10[campaign] = cell.by_campaign_top10.get(campaign, 0) + 1
            if record.penalized:
                cell.penalized += 1
                if record.in_top10:
                    cell.penalized_top10 += 1
            if campaign:
                daily = self._campaign_daily[campaign]
                daily[record.day.ordinal] = daily.get(record.day.ordinal, 0) + 1
                if record.in_top10:
                    daily10 = self._campaign_daily_top10[campaign]
                    daily10[record.day.ordinal] = daily10.get(record.day.ordinal, 0) + 1
            self._ordinals.add(record.day.ordinal)

    # ------------------------------------------------------------------ #

    def ordinals(self) -> List[int]:
        return sorted(self._ordinals)

    def crawl_ordinals(self) -> List[int]:
        return [d.ordinal for d in self.dataset.crawl_days()]

    def cell(self, vertical: str, ordinal: int) -> Optional[DayCell]:
        return self._cells.get((vertical, ordinal))

    def campaign_series(self, campaign: str, topk: int = 100) -> Dict[int, int]:
        if topk <= 10:
            return dict(self._campaign_daily_top10.get(campaign, {}))
        return dict(self._campaign_daily.get(campaign, {}))

    def campaigns(self) -> List[str]:
        return sorted(self._campaign_daily)

    def campaign_totals(self, vertical: Optional[str] = None) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        if vertical is None:
            for campaign, series in self._campaign_daily.items():
                totals[campaign] = sum(series.values())
            return totals
        for (v, _), cell in self._cells.items():
            if v != vertical:
                continue
            for campaign, count in cell.by_campaign.items():
                if campaign:
                    totals[campaign] = totals.get(campaign, 0) + count
        return totals
