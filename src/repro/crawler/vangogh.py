"""VanGogh: iframe-cloaking detection (Section 4.1.2).

VanGogh renders pages (the paper used HtmlUnit, "essentially a headless
browser complete with a JavaScript interpreter"; we use the honest
mini-renderer in :mod:`repro.web.render`) and classifies a page as iframe
cloaking "if they load iframes where the height and width attributes are
both either set to 100% or larger than 800 pixels".
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import List, Optional

from repro.util.perf import PERF
from repro.util.simtime import SimDate
from repro.html.nodes import Document, Element
from repro.perf.cache import render_document_cached
from repro.web.fetch import RENDERING_CRAWLER, Response, SEARCH_USER
from repro.web.hosting import Web

MIN_FULLPAGE_PIXELS = 800


def _dimension_is_fullpage(value: str) -> bool:
    value = value.strip()
    if value.endswith("%"):
        try:
            return float(value[:-1]) >= 100.0
        except ValueError:
            return False
    try:
        return float(value.rstrip("px")) > MIN_FULLPAGE_PIXELS
    except ValueError:
        return False


def find_fullpage_iframes(doc: Document) -> List[Element]:
    """Iframes visually occupying the whole viewport."""
    hits = []
    for iframe in doc.find_all("iframe"):
        width = iframe.get("width")
        height = iframe.get("height")
        if width and height and _dimension_is_fullpage(width) and _dimension_is_fullpage(height):
            hits.append(iframe)
    return hits


@dataclass
class VanGoghResult:
    url: str
    iframe_cloaked: bool
    iframe_src: Optional[str]
    #: The store page fetched through the iframe (what the user "sees").
    landing_response: Optional[Response]
    rendered_iframe_count: int
    #: Injected-fault tag on the page fetch (None on clean fetches); a
    #: faulted check must not mark the URL clean.
    fault: Optional[str] = None


#: Always-on check timer (the trace tree shows it under each crawl span).
_CHECK_TIMER = PERF.handle("crawler.vangogh")


class VanGogh:
    """Render-and-inspect iframe-cloaking detector."""

    def __init__(self, web: Web, fetch=None):
        self.web = web
        #: Fetch callable; the measurement crawler passes its
        #: fault-aware :meth:`ResilientFetcher.fetch` here.
        self._fetch = fetch if fetch is not None else web.fetch

    def check(self, url: str, day: SimDate) -> VanGoghResult:
        start = perf_counter()
        try:
            return self._check(url, day)
        finally:
            _CHECK_TIMER.add(perf_counter() - start)  # repro: allow-D101 timer deltas are exported per task and merged canonically by the executor

    def _check(self, url: str, day: SimDate) -> VanGoghResult:
        response = self._fetch(url, RENDERING_CRAWLER, day)
        if not response.ok:
            return VanGoghResult(url, False, None, None, 0, fault=response.fault)
        # Cached on (content hash, profile): identical cloaked payloads —
        # the common case for doorways re-checked across crawl days — skip
        # the parse + script-execution pass entirely.
        rendered = render_document_cached(response.html, RENDERING_CRAWLER)
        fullpage = find_fullpage_iframes(rendered)
        if not fullpage:
            return VanGoghResult(
                url, False, None, None, len(rendered.find_all("iframe")),
                fault=response.fault,
            )
        src = fullpage[0].get("src")
        landing: Optional[Response] = None
        if src:
            try:
                landing = self._fetch(src, SEARCH_USER, day)
            except Exception:
                landing = None
        return VanGoghResult(
            url=url,
            iframe_cloaked=True,
            iframe_src=src or None,
            landing_response=landing,
            rendered_iframe_count=len(rendered.find_all("iframe")),
            fault=response.fault,
        )
