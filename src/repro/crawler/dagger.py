"""Dagger: redirect-cloaking detection.

The original Dagger system (Wang et al., CCS'11; updated for this study)
"uses heuristics to detect cloaking by examining semantic differences
between versions of the same page fetched first as a user and then as a
search engine crawler" (Section 4.1.2).  Our port keeps the same structure:

1. fetch the URL as a user clicking through a search result;
2. fetch it again with a Googlebot User-Agent;
3. flag cloaking when the user view redirected off the registered domain, or
   when the two views' text content diverges beyond a similarity threshold.

Like the original, Dagger does not execute JavaScript — that blind spot is
exactly what iframe cloaking exploits and why VanGogh exists.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from time import perf_counter
from typing import FrozenSet, Optional, Set

from repro.util.perf import PERF
from repro.util.simtime import SimDate
from repro.web.fetch import CRAWLER, Response, SEARCH_USER
from repro.web.hosting import Web
from repro.web.urls import parse_url, registered_domain
from repro.perf.cache import LRUCache, parse_html_cached

_TOKEN_RE = re.compile(r"[a-z0-9]{2,}")

#: Shingle sets are tiny (a few hundred interned tokens), so the cache can
#: run deep; the measurement crawler re-shingles known-cloaked landing
#: pages on every visit otherwise.
_SHINGLE_CACHE = LRUCache("shingle", maxsize=32768, persistent=True)


def _build_shingle(html: str) -> FrozenSet[str]:
    text = parse_html_cached(html).text_content()
    return frozenset(_TOKEN_RE.findall(text.lower()))


def text_shingle(html: str) -> Set[str]:
    """Lowercased word-token set of a page's visible text plus title.

    Content-addressed: repeated shingles of byte-identical HTML come from
    the cache (the returned frozenset is shared — don't mutate)."""
    return _SHINGLE_CACHE.memo_html(html, _build_shingle)


def jaccard(a: Set[str], b: Set[str]) -> float:
    if not a and not b:
        return 1.0
    union = len(a | b)
    if union == 0:
        return 1.0
    return len(a & b) / union


@dataclass
class DaggerResult:
    url: str
    cloaked: bool
    #: 'redirect' when the user view left the registered domain; 'content'
    #: when the two views' text diverged; None when clean.
    mechanism: Optional[str]
    similarity: float
    user_response: Response
    crawler_response: Response

    @property
    def landing_url(self) -> str:
        return self.user_response.final_url

    @property
    def degraded(self) -> bool:
        """True when either view carried an injected fault — the verdict
        is unreliable and must not mark the URL clean."""
        return (
            self.user_response.fault is not None
            or self.crawler_response.fault is not None
        )


#: Always-on check timer (the trace tree shows it under each crawl span).
_CHECK_TIMER = PERF.handle("crawler.dagger")


class Dagger:
    """Fetch-twice-and-diff cloaking detector."""

    def __init__(self, web: Web, similarity_threshold: float = 0.33, fetch=None):
        self.web = web
        self.similarity_threshold = similarity_threshold
        #: Fetch callable; the measurement crawler passes its
        #: fault-aware :meth:`ResilientFetcher.fetch` here.
        self._fetch = fetch if fetch is not None else web.fetch

    def check(self, url: str, day: SimDate) -> DaggerResult:
        start = perf_counter()
        try:
            return self._check(url, day)
        finally:
            _CHECK_TIMER.add(perf_counter() - start)  # repro: allow-D101 timer deltas are exported per task and merged canonically by the executor

    def _check(self, url: str, day: SimDate) -> DaggerResult:
        user_view = self._fetch(url, SEARCH_USER, day)
        crawler_view = self._fetch(url, CRAWLER, day)

        mechanism: Optional[str] = None
        cloaked = False
        similarity = 1.0

        if user_view.ok and crawler_view.ok:
            origin = registered_domain(parse_url(url).host)
            final = registered_domain(parse_url(user_view.final_url).host)
            if user_view.redirected and final != origin:
                cloaked = True
                mechanism = "redirect"
            else:
                similarity = jaccard(
                    text_shingle(user_view.html), text_shingle(crawler_view.html)
                )
                if similarity < self.similarity_threshold:
                    cloaked = True
                    mechanism = "content"
        return DaggerResult(
            url=url,
            cloaked=cloaked,
            mechanism=mechanism,
            similarity=similarity,
            user_response=user_view,
            crawler_response=crawler_view,
        )
