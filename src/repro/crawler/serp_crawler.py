"""The daily search-results crawl (Section 4.1.2).

For each monitored term the crawler takes the day's top-100 results and
works out which are poisoned:

* unknown URLs are checked with Dagger (fetch as user + as Googlebot);
  Dagger-clean pages go through VanGogh (render, look for full-page
  iframes) — the order the paper used, since rendering is expensive;
* the paper's workload-trimming rules are kept: domains previously seen
  and never detected as poisoned are skipped, and at most
  ``max_renders_per_host_per_day`` pages of one doorway domain are rendered
  per measurement;
* known-poisoned URLs are recorded as PSRs directly, with one landing fetch
  per (host, day) to track where the doorway currently forwards — which is
  how domain rotations and seizure notices become visible.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Set

from repro.obs.trace import TRACER
from repro.util.perf import PERF
from repro.util.simtime import SimDate
from repro.web.fetch import Response
from repro.web.urls import parse_url
from repro.faults.retry import ResilientFetcher, RetryPolicy
from repro.interventions.notices import NoticeInfo, parse_notice_page
from repro.perf.cache import CacheReplay, cache_ledger, disk_cache
from repro.crawler.dagger import Dagger
from repro.crawler.records import PageArchive, PsrDataset, PsrRecord
from repro.crawler.store_detect import StoreDetector, StoreEvidence
from repro.crawler.vangogh import VanGogh


@dataclass
class CrawlPolicy:
    """Operational knobs of the measurement crawl."""

    #: Crawl every N days (the paper crawled daily; scaled runs stretch it).
    stride_days: int = 1
    #: VanGogh renders at most this many pages per doorway domain per day.
    max_renders_per_host_per_day: int = 3
    #: Re-check previously-clean hosts after this many days (None = never,
    #: the paper's behaviour).
    recheck_clean_after_days: Optional[int] = None


@dataclass
class _LandingInfo:
    landing_url: str
    landing_host: str
    is_store: bool
    evidence: StoreEvidence
    notice: Optional[NoticeInfo]


class SearchCrawler:
    """Observer plugged into the simulator; builds the PSR dataset."""

    def __init__(
        self,
        web,
        policy: Optional[CrawlPolicy] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ):
        self.web = web
        self.policy = policy or CrawlPolicy()
        #: Every measurement fetch goes through the fault-aware fetcher
        #: (a pass-through while the web carries no injector).
        self.fetcher = ResilientFetcher(web, retry_policy)
        self.dagger = Dagger(web, fetch=self.fetcher.fetch)
        self.vangogh = VanGogh(web, fetch=self.fetcher.fetch)
        self.store_detector = StoreDetector()
        self.dataset = PsrDataset()
        self.archive = PageArchive()
        #: Court documents harvested from seizure-notice pages: case_id ->
        #: NoticeInfo (incl. the full co-seized domain schedule).
        self.notices: Dict[str, NoticeInfo] = {}
        #: case_id -> day the notice was first observed in a crawl.
        self.notice_first_seen: Dict[str, SimDate] = {}
        #: url -> mechanism for URLs known to cloak.
        self._cloaked_urls: Dict[str, str] = {}
        #: url -> day it was last checked clean (expires with the policy's
        #: recheck window, like clean hosts).
        self._clean_urls: Dict[str, SimDate] = {}
        #: hosts where every URL checked so far came back clean.
        self._clean_hosts: Dict[str, SimDate] = {}
        self._poisoned_hosts: Set[str] = set()
        self._first_crawl_day: Optional[SimDate] = None
        #: per-day caches, reset each crawl day.
        self._renders_today: Dict[str, int] = {}
        self._landing_today: Dict[str, Optional[_LandingInfo]] = {}
        self.crawl_day_count = 0
        #: Crawl shard executor (:class:`repro.perf.shardpool.CrawlExecutor`)
        #: attached by the study runner; None = classic sequential crawl.
        self._executor = None
        #: Shadow-LRU counters for canonical cache accounting under the
        #: executor (plain state: rides inside checkpoints so a resumed run
        #: keeps counting from warm shadows).
        self.cache_replay = CacheReplay()
        disk = disk_cache()
        if disk is not None:
            # Seed the replay's disk shadow from what is on disk *now*;
            # from here on the shadow evolves with the crawl's own lookup
            # stream, so counters stay canonical at any --jobs level and a
            # resumed run continues from the pickled shadow rather than
            # re-reading the (since grown) store.
            self.cache_replay.attach_disk(disk.index_snapshot())

    def __getstate__(self) -> dict:
        # The executor holds a live process pool; the study runner
        # reattaches one after a checkpoint resume (at whatever --jobs
        # level the resuming invocation asked for).
        state = dict(self.__dict__)
        state["_executor"] = None
        return state

    # ------------------------------------------------------------------ #
    # Shard-executor plumbing
    # ------------------------------------------------------------------ #

    def attach_executor(self, executor) -> None:
        self._executor = executor

    def detach_executor(self) -> None:
        self._executor = None

    @contextmanager
    def cache_scope(self) -> Iterator[None]:
        """Canonical cache accounting for non-crawl cache users.

        The test orderer shares the render/notice caches with the crawl;
        under an executor those caches' warmth depends on where crawl work
        ran, so its lookups must go through the same ledger-and-replay
        path the crawl uses.  Without an executor this is a no-op and the
        caches count live, exactly as before."""
        if self._executor is None:
            yield
            return
        entries = []
        with cache_ledger(entries):
            yield
        for name, value in sorted(self.cache_replay.replay(entries).items()):
            PERF.count(name, value)

    # ------------------------------------------------------------------ #
    # Observer interface
    # ------------------------------------------------------------------ #

    def on_day(self, world, context) -> None:
        day = context.day
        if self._first_crawl_day is None:
            self._first_crawl_day = day
        if (day - self._first_crawl_day) % self.policy.stride_days != 0:
            return
        with TRACER.span("crawl", sim_day=day.isoformat()):
            self.crawl_day_count += 1
            self._renders_today = {}
            self._landing_today = {}
            injector = getattr(self.web, "fault_injector", None)
            executor = self._executor
            #: Executor mode: (seq, vertical, term, result) for results the
            #: skip rules don't rule out, in SERP order — ``seq`` is the
            #: result's global position in that order, the merge key that
            #: makes the sharded day replay as the sequential one.
            work = []
            seq = 0
            for term, serp in context.serps.items():
                vertical = context.vertical_of_term[term]
                if injector is not None and injector.serp_missing(term, day):
                    # Lost SERP: record the gap so denominators and the
                    # gap-tolerant analyses know this (term, day) was not
                    # observed, rather than observed-and-empty.
                    self.dataset.note_missed_serp(day, vertical, term)
                    continue
                self.dataset.note_serp(day, vertical, len(serp.results))
                for result in serp.results:
                    if executor is None:
                        self._process_result(day, vertical, term, result)
                    elif self._needs_work(result.url, result.host, day):
                        work.append((seq, vertical, term, result))
                    seq += 1
            if executor is not None:
                executor.run_day(self, day, work)

    # ------------------------------------------------------------------ #
    # Per-result processing
    # ------------------------------------------------------------------ #

    def _process_result(self, day: SimDate, vertical: str, term: str, result) -> None:
        url = result.url
        mechanism = self._cloaked_urls.get(url)
        if mechanism is None:
            if self._skip_clean_url(url, day):
                return
            if self._skip_clean_host(result.host, day):
                return
            mechanism = self._classify_url(url, result.host, day)
            if mechanism is None:
                return
        landing = self._landing_for(result.host, url, mechanism, day)
        if landing is None:
            return
        self.dataset.add(
            PsrRecord(
                day=day,
                vertical=vertical,
                term=term,
                rank=result.rank,
                url=url,
                host=result.host,
                path=result.path,
                label=result.label.value,
                mechanism=mechanism,
                landing_url=landing.landing_url,
                landing_host=landing.landing_host,
                is_store=landing.is_store,
                seizure_case=landing.notice.case_id if landing.notice else None,
                seizure_firm=landing.notice.firm if landing.notice else None,
                seizure_brand=landing.notice.brand if landing.notice else None,
                campaign="",
            )
        )

    def _needs_work(self, url: str, host: str, day: SimDate) -> bool:
        """Executor-mode pre-filter: mirrors the skip checks at the top of
        :meth:`_process_result` against *day-start* state.  Must run in
        SERP order in the parent because the skip helpers delete expired
        clean marks as a side effect (recheck policy)."""
        if url in self._cloaked_urls:
            return True
        if self._skip_clean_url(url, day):
            return False
        if self._skip_clean_host(host, day):
            return False
        return True

    def _skip_clean_url(self, url: str, day: SimDate) -> bool:
        checked = self._clean_urls.get(url)
        if checked is None:
            return False
        recheck = self.policy.recheck_clean_after_days
        if recheck is not None and day - checked >= recheck:
            del self._clean_urls[url]
            return False
        return True

    def _skip_clean_host(self, host: str, day: SimDate) -> bool:
        checked = self._clean_hosts.get(host)
        if checked is None:
            return False
        recheck = self.policy.recheck_clean_after_days
        if recheck is not None and day - checked >= recheck:
            del self._clean_hosts[host]
            return False
        return True

    def _classify_url(self, url: str, host: str, day: SimDate) -> Optional[str]:
        """Run Dagger then (budget permitting) VanGogh on an unknown URL."""
        dagger_result = self.dagger.check(url, day)
        if dagger_result.cloaked:
            mechanism = dagger_result.mechanism or "content"
            self._mark_poisoned(url, host, mechanism)
            self.archive.add_doorway(host, dagger_result.crawler_response.html)
            return mechanism
        if dagger_result.degraded:
            # A faulted check proves nothing: leave the URL unknown (it is
            # re-examined on its next SERP appearance) instead of caching
            # a clean verdict off lost or damaged fetches.
            PERF.count("faults.degraded.classify")
            return None
        renders = self._renders_today.get(host, 0)
        if renders >= self.policy.max_renders_per_host_per_day:
            return None
        self._renders_today[host] = renders + 1
        vg = self.vangogh.check(url, day)
        if vg.iframe_cloaked:
            self._mark_poisoned(url, host, "iframe")
            self.archive.add_doorway(host, dagger_result.crawler_response.html)
            return "iframe"
        if vg.fault is not None:
            PERF.count("faults.degraded.classify")
            return None
        self._clean_urls[url] = day
        if host not in self._poisoned_hosts:
            self._clean_hosts[host] = day
        return None

    def _mark_poisoned(self, url: str, host: str, mechanism: str) -> None:
        self._cloaked_urls[url] = mechanism
        self._poisoned_hosts.add(host)
        self._clean_hosts.pop(host, None)

    # ------------------------------------------------------------------ #
    # Landing resolution (once per host per crawl day)
    # ------------------------------------------------------------------ #

    def _landing_for(
        self, host: str, url: str, mechanism: str, day: SimDate
    ) -> Optional[_LandingInfo]:
        if host in self._landing_today:
            return self._landing_today[host]
        landing_response = self._fetch_landing(url, mechanism, day)
        info: Optional[_LandingInfo] = None
        if (
            landing_response is not None
            and landing_response.fault is not None
            and not landing_response.ok
        ):
            # Landing lost to an injected fault after retries: this host's
            # PSRs are dropped for the day (mark-and-tolerate; the analyses
            # bridge the gap) rather than recorded with a bogus landing.
            PERF.count("faults.degraded.landing")
        if landing_response is not None and landing_response.ok:
            landing_host = parse_url(landing_response.final_url).host
            notice = parse_notice_page(landing_response.html)
            if notice is not None and notice.case_id not in self.notices:
                self.notices[notice.case_id] = notice
                self.notice_first_seen[notice.case_id] = day
            evidence = self.store_detector.detect(landing_response)
            if evidence.is_store:
                self.archive.add_store(landing_host, landing_response.html)
            info = _LandingInfo(
                landing_url=landing_response.final_url,
                landing_host=landing_host,
                is_store=evidence.is_store,
                evidence=evidence,
                notice=notice,
            )
        self._landing_today[host] = info
        return info

    def _fetch_landing(self, url: str, mechanism: str, day: SimDate) -> Optional[Response]:
        if mechanism in ("redirect", "content"):
            result = self.dagger.check(url, day)
            return result.user_response
        vg = self.vangogh.check(url, day)
        if vg.landing_response is not None:
            return vg.landing_response
        return None
