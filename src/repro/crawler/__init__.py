"""The measurement pipeline's crawlers (Section 4.1).

* :mod:`repro.crawler.dagger` — redirect-cloaking detection by fetching each
  page as a search-referred user and as Googlebot and diffing semantics;
* :mod:`repro.crawler.vangogh` — iframe-cloaking detection by rendering the
  page and looking for full-viewport iframes;
* :mod:`repro.crawler.store_detect` — counterfeit-store heuristics (cookies,
  cart/checkout markers);
* :mod:`repro.crawler.serp_crawler` — the daily top-100 crawl with the
  paper's workload-trimming rules, producing the PSR dataset;
* :mod:`repro.crawler.awstats` — scraping stores' public analytics.
"""

from repro.crawler.dagger import Dagger, DaggerResult
from repro.crawler.vangogh import VanGogh, VanGoghResult
from repro.crawler.store_detect import StoreDetector, StoreEvidence
from repro.crawler.records import PsrRecord, PsrDataset, PageArchive
from repro.crawler.serp_crawler import SearchCrawler, CrawlPolicy
from repro.crawler.awstats import AwstatsNotPublic, AwstatsUnavailable, scrape_awstats

__all__ = [
    "Dagger",
    "DaggerResult",
    "VanGogh",
    "VanGoghResult",
    "StoreDetector",
    "StoreEvidence",
    "PsrRecord",
    "PsrDataset",
    "PageArchive",
    "SearchCrawler",
    "CrawlPolicy",
    "AwstatsNotPublic",
    "AwstatsUnavailable",
    "scrape_awstats",
]
