"""Counterfeit-storefront detection heuristics (Section 4.1.3).

Two heuristics, applied to the landing site a PSR ultimately loads:

1. cookies commonly used by counterfeit luxury storefronts — payment
   processing (Realypay, Mallpayment), e-commerce (Zen Cart, Magento), and
   web analytics (Ajstat, CNZZ);
2. the substrings "cart" or "checkout" anywhere on the landing page.

Either hit marks the landing site as a counterfeit store.  Note that, as in
the paper, detection is brand-agnostic: a Christian Louboutin store found
via Louis Vuitton searches still counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.web.fetch import Response

#: Cookie-name substrings that mark counterfeit-store infrastructure.
STORE_COOKIE_MARKERS: Tuple[str, ...] = (
    "realypay", "mallpayment", "eastpay", "goldgate", "swiftasia",  # payment
    "zen", "magento", "frontend",  # e-commerce platforms
    "ajstat", "cnzz",  # web analytics
)
CONTENT_MARKERS: Tuple[str, ...] = ("cart", "checkout")


@dataclass
class StoreEvidence:
    """Why a landing site was (or wasn't) classified as a store."""

    is_store: bool
    cookie_hits: List[str] = field(default_factory=list)
    content_hits: List[str] = field(default_factory=list)


class StoreDetector:
    """Applies the two storefront heuristics to a landing response."""

    def __init__(
        self,
        cookie_markers: Tuple[str, ...] = STORE_COOKIE_MARKERS,
        content_markers: Tuple[str, ...] = CONTENT_MARKERS,
    ):
        self.cookie_markers = tuple(m.lower() for m in cookie_markers)
        self.content_markers = tuple(m.lower() for m in content_markers)

    def detect(self, landing: Optional[Response]) -> StoreEvidence:
        if landing is None or not landing.ok:
            return StoreEvidence(is_store=False)
        cookie_hits = [
            cookie
            for cookie in landing.cookies
            if any(marker in cookie.lower() for marker in self.cookie_markers)
        ]
        html_lower = landing.html.lower()
        content_hits = [m for m in self.content_markers if m in html_lower]
        return StoreEvidence(
            is_store=bool(cookie_hits or content_hits),
            cookie_hits=cookie_hits,
            content_hits=content_hits,
        )
