"""The crawler's output: PSR records, crawl coverage, and a page archive.

A :class:`PsrRecord` is one poisoned search result observed on one crawl
day — the unit behind every count in Tables 1-3 and every series in
Figures 2-6.  :class:`PsrDataset` aggregates records with the query helpers
the analysis layer needs, and serializes to JSON lines.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.util.atomicio import atomic_write
from repro.util.simtime import SimDate


@dataclass
class PsrRecord:
    """One poisoned search result on one crawl day."""

    __slots__ = (
        "day", "vertical", "term", "rank", "url", "host", "path", "label",
        "mechanism", "landing_url", "landing_host", "is_store",
        "seizure_case", "seizure_firm", "seizure_brand", "campaign",
    )

    day: SimDate
    vertical: str
    term: str
    rank: int
    url: str
    host: str
    path: str
    #: 'none' | 'hacked' | 'malware' (the SERP warning label).
    label: str
    #: 'redirect' | 'content' | 'iframe'.
    mechanism: str
    landing_url: str
    landing_host: str
    is_store: bool
    #: Set when the landing page was a seizure notice.
    seizure_case: Optional[str]
    seizure_firm: Optional[str]
    seizure_brand: Optional[str]
    #: Filled in by the campaign classifier ('' = unclassified).
    campaign: str

    @property
    def in_top10(self) -> bool:
        return self.rank <= 10

    @property
    def penalized(self) -> bool:
        """Penalized via search (label) or seizure (notice landing)."""
        return self.label != "none" or self.seizure_case is not None

    def to_json(self) -> str:
        payload = {name: getattr(self, name) for name in self.__slots__}
        payload["day"] = self.day.isoformat()
        return json.dumps(payload, sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "PsrRecord":
        payload = json.loads(line)
        payload["day"] = SimDate(payload["day"])
        return cls(**payload)


@dataclass
class SerpCoverage:
    """Result-slot denominators for one (day, vertical)."""

    slots_top100: int = 0
    slots_top10: int = 0
    terms_crawled: int = 0
    #: Terms whose SERP was lost that day (blocked crawl, missing page) —
    #: distinguishes unobserved from observed-and-empty.
    terms_missed: int = 0


class PsrDataset:
    """All PSR records plus crawl coverage."""

    def __init__(self):
        self.records: List[PsrRecord] = []
        #: (day_ordinal, vertical) -> coverage.
        self._coverage: Dict[Tuple[int, str], SerpCoverage] = {}
        self._first_seen_host: Dict[str, SimDate] = {}
        self._last_seen_host: Dict[str, SimDate] = {}
        #: Crawl-day ordinals with at least one missed SERP (empty in
        #: clean runs, so gap tolerance is a strict no-op without faults).
        self._missed_ordinals: Set[int] = set()

    # ------------------------------------------------------------------ #
    # Building
    # ------------------------------------------------------------------ #

    def add(self, record: PsrRecord) -> None:
        self.records.append(record)
        if record.host not in self._first_seen_host:
            self._first_seen_host[record.host] = record.day
        self._last_seen_host[record.host] = record.day

    def note_serp(self, day: SimDate, vertical: str, result_count: int) -> None:
        key = (day.ordinal, vertical)
        coverage = self._coverage.setdefault(key, SerpCoverage())
        coverage.slots_top100 += result_count
        coverage.slots_top10 += min(10, result_count)
        coverage.terms_crawled += 1

    def note_missed_serp(self, day: SimDate, vertical: str, term: str) -> None:
        """Record that (term, day)'s SERP could not be crawled.

        Gap-tolerant analyses (peak duration, seized-store lifetimes)
        read :meth:`missed_ordinals` to bridge these days instead of
        treating absence of records as absence of activity."""
        key = (day.ordinal, vertical)
        coverage = self._coverage.setdefault(key, SerpCoverage())
        coverage.terms_missed += 1
        self._missed_ordinals.add(day.ordinal)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[PsrRecord]:
        return iter(self.records)

    def verticals(self) -> List[str]:
        return sorted({r.vertical for r in self.records})

    def crawl_days(self) -> List[SimDate]:
        ordinals = sorted({day for day, _ in self._coverage})
        return [SimDate(o) for o in ordinals]

    def doorway_hosts(self, vertical: Optional[str] = None) -> Set[str]:
        return {
            r.host for r in self.records if vertical is None or r.vertical == vertical
        }

    def store_hosts(self, vertical: Optional[str] = None) -> Set[str]:
        return {
            r.landing_host
            for r in self.records
            if r.is_store and (vertical is None or r.vertical == vertical)
        }

    def coverage(self, day: SimDate, vertical: str) -> Optional[SerpCoverage]:
        return self._coverage.get((day.ordinal, vertical))

    def missed_ordinals(self) -> Set[int]:
        """Crawl-day ordinals where at least one SERP went unobserved."""
        return set(self._missed_ordinals)

    def psr_fraction(self, day: SimDate, vertical: str, topk: int = 100) -> float:
        """Fraction of crawled result slots that were poisoned."""
        coverage = self._coverage.get((day.ordinal, vertical))
        if coverage is None:
            return 0.0
        slots = coverage.slots_top10 if topk <= 10 else coverage.slots_top100
        if slots == 0:
            return 0.0
        hits = sum(
            1
            for r in self.records
            if r.day == day and r.vertical == vertical and r.rank <= topk
        )
        return hits / slots

    def daily_counts(
        self,
        vertical: Optional[str] = None,
        campaign: Optional[str] = None,
        topk: int = 100,
    ) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for r in self.records:
            if vertical is not None and r.vertical != vertical:
                continue
            if campaign is not None and r.campaign != campaign:
                continue
            if r.rank > topk:
                continue
            counts[r.day.ordinal] = counts.get(r.day.ordinal, 0) + 1
        return counts

    def host_count(self) -> int:
        """Distinct doorway hosts ever recorded (O(1), metrics sampling)."""
        return len(self._first_seen_host)

    def host_first_seen(self, host: str) -> Optional[SimDate]:
        return self._first_seen_host.get(host)

    def host_last_seen(self, host: str) -> Optional[SimDate]:
        return self._last_seen_host.get(host)

    def records_for_campaign(self, campaign: str) -> List[PsrRecord]:
        return [r for r in self.records if r.campaign == campaign]

    def campaigns(self) -> List[str]:
        return sorted({r.campaign for r in self.records if r.campaign})

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #

    def dump_jsonl(self, path: str, manifest: Optional[dict] = None) -> None:
        """One record per line; with ``manifest``, a leading provenance row
        (``{"_type": "manifest", ...}``) that :meth:`load_jsonl` skips.
        Record lines are byte-identical with or without the header.
        Written atomically: a kill mid-dump leaves the previous file."""
        with atomic_write(path) as handle:
            if manifest is not None:
                handle.write(json.dumps({"_type": "manifest", **manifest},
                                        sort_keys=True))
                handle.write("\n")
            for record in self.records:
                handle.write(record.to_json())
                handle.write("\n")

    @classmethod
    def load_jsonl(cls, path: str) -> "PsrDataset":
        """Load a PSR dump, tolerating a torn final line.

        Only the *last* line may be unparseable (a writer killed
        mid-append under a non-atomic writer); it is skipped with a
        warning.  Corruption anywhere else still raises."""
        dataset = cls()
        with open(path) as handle:
            lines = handle.read().splitlines()
        for index, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            if line.startswith('{"_type"'):
                continue
            try:
                dataset.add(PsrRecord.from_json(line))
            except (json.JSONDecodeError, KeyError, TypeError):
                if index == len(lines) - 1:
                    warnings.warn(
                        f"{path}: skipping torn final line ({len(line)} bytes)",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    break
                raise
        return dataset


class PageArchive:
    """Crawled HTML, deduplicated by host, for the classifier.

    ``doorways`` hold the crawler-view (keyword-stuffed) HTML; ``stores``
    hold landing-page HTML.  Rotated store domains appear as new hosts.
    """

    def __init__(self):
        self.doorways: Dict[str, str] = {}
        self.stores: Dict[str, str] = {}

    def add_doorway(self, host: str, html: str) -> None:
        self.doorways.setdefault(host, html)

    def add_store(self, host: str, html: str) -> None:
        self.stores.setdefault(host, html)

    def __len__(self) -> int:
        return len(self.doorways) + len(self.stores)
