"""Scraping publicly accessible AWStats pages (Section 4.4).

The paper fetched each open store's default AWStats URL
(``http://<site>/awstats/awstats.pl?config=<site>``).  Our equivalent walks
the same gate: only stores that left analytics public can be scraped, and
the view covers whatever window is requested.
"""

from __future__ import annotations

from typing import List

from repro.util.simtime import SimDate
from repro.market.stores import Store
from repro.market.traffic import AwstatsReport, awstats_for


class AwstatsNotPublic(Exception):
    """The store's analytics endpoint is not exposed."""


class AwstatsUnavailable(Exception):
    """The endpoint exists but could not be reached (host outage)."""


def scrape_awstats(
    store: Store, first_day: SimDate, last_day: SimDate, injector=None
) -> AwstatsReport:
    """Fetch the store's AWStats view over a window; raises when private.

    With a :class:`repro.faults.injector.FaultInjector`, the scrape can
    fail with :class:`AwstatsUnavailable` on injected outage days —
    callers degrade to crawl-only analysis, the way the paper had to when
    a store's analytics went dark mid-study."""
    if not store.awstats_public:
        raise AwstatsNotPublic(store.store_id)
    host = store.host_on(last_day) or store.current_domain.name
    if injector is not None and injector.awstats_down(host, last_day):
        raise AwstatsUnavailable(host)
    return awstats_for(store.visits, host, first_day, last_day)


def scrapeable_stores(stores: List[Store]) -> List[Store]:
    """The subset of discovered stores with open analytics."""
    return [store for store in stores if store.awstats_public]
