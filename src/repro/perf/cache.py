"""Content-addressed caches for the measurement hot path.

Profiling a scale-0.25 study run shows ~53% of wall-clock inside
``parse_html``: the Dagger/VanGogh crawlers, the seizure-notice miner, and
the feature extractor each re-parse HTML that the simulated web served
byte-identically many times over (cloaked pages rotate *content*, not
markup, only when campaign state changes).  Every cache here is therefore
**content-addressed**: the key is a BLAKE2b digest of the HTML string
itself, so a page that changes hashes to a new key and stale derived values
can never be served — no invalidation protocol is required beyond the hash.

Layers built on this module:

* :func:`parse_html_cached` — the shared DOM cache.  Returned
  :class:`~repro.html.nodes.Document` objects are shared between callers
  and MUST be treated as immutable; every consumer wired through it
  (shingling, feature extraction, notice mining, rendering) only reads.
* :func:`render_document_cached` — parse + mini-JS render, keyed on
  ``(content hash, visitor profile)``; the profile rides in the key because
  a renderer's view is profile-dependent even though the fetched HTML
  already reflects it.
* Derived-value caches owned by their consumers (Dagger's shingle sets,
  the classifier's feature Counters, seizure-notice parses, and the
  engine's per-day SERP memo) — all built from :class:`LRUCache` or the
  same counter conventions.

Every cache reports ``cache.<name>.hit`` / ``.miss`` / ``.evict`` counters
into the :data:`repro.util.perf.PERF` registry, so ``python -m repro perf``
and ``BENCH_study.json`` carry hit rates alongside the timers.

The whole layer can be switched off — :func:`set_caches_enabled`,
the :func:`caches_disabled` context manager, or ``REPRO_CACHE=0`` in the
environment — which is how the benchmarks measure cached vs. uncached runs
and how the correctness tests prove the two are bit-identical.

Underneath the in-process LRUs sits an optional *persistent* tier
(:mod:`repro.perf.diskcache`), keyed on the same content digests, so a
fresh process warm-starts from artifacts a previous run derived.  It is
enabled per-run (``--disk-cache DIR`` / :func:`set_disk_cache`) or via
``REPRO_DISK_CACHE=<dir>``; every persistent cache reports
``cache.<name>.disk_hit/.disk_miss/.promote/.write`` alongside the
memory counters, and :class:`CacheReplay` shadows the disk tier so those
counters stay canonical at any ``--jobs`` level.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from contextlib import contextmanager
from hashlib import blake2b
from typing import Any, Callable, Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

from repro.html.nodes import Document
from repro.html.parser import parse_html
from repro.perf.diskcache import DISK_MISS, DiskCache, entry_filename
from repro.util.perf import PERF
from repro.web.fetch import VisitorProfile
from repro.web.render import render_document

#: Global switch.  ``REPRO_CACHE=0`` opts a whole process out (the CI
#: equivalence jobs use it); tests and benchmarks toggle programmatically.
_enabled: bool = os.environ.get("REPRO_CACHE", "1") not in ("0", "false", "no")

#: The persistent tier (:class:`repro.perf.diskcache.DiskCache`), off by
#: default.  ``REPRO_DISK_CACHE=<dir>`` enables it lazily; ``--disk-cache``
#: / :func:`set_disk_cache` set it explicitly (and explicit disable beats
#: the environment).  ``--no-cache`` bypasses it wholesale: the disk tier
#: only ever runs underneath the memory tier.
_DISK: Optional[DiskCache] = None
_disk_resolved: bool = False

#: Every LRUCache ever constructed, for :func:`reset_caches`.  Module-level
#: caches only — per-object caches (the engine's SERP memo) validate
#: themselves and die with their owner instead of registering here.
_caches: List["LRUCache"] = []

#: When not None, :meth:`LRUCache.get_or_build` appends ``(name, key)``
#: here instead of bumping PERF counters (values are still served and
#: maintained).  See :func:`cache_ledger` / :class:`CacheReplay`.
_LEDGER: Optional[List[Tuple[str, Hashable]]] = None

_MISSING = object()


def caches_enabled() -> bool:
    """Whether the content-addressed caching layer is active."""
    return _enabled


# repro: allow-D104 process-local switch: each pool worker configures its own cache layer
# repro: effects=worker-safe
def set_caches_enabled(on: bool) -> bool:
    """Flip the global cache switch; returns the previous setting.

    Disabling also drops every registered cache's contents so a
    subsequent re-enable starts cold (the state a fresh process has).
    """
    global _enabled
    previous = _enabled
    _enabled = bool(on)
    if not _enabled:
        reset_caches()
    return previous


@contextmanager
def caches_disabled() -> Iterator[None]:
    """Run a block with the caching layer off (and cleared)."""
    previous = set_caches_enabled(False)
    try:
        yield
    finally:
        set_caches_enabled(previous)


def reset_caches() -> None:
    """Empty every registered cache (counters in PERF are left alone).

    The disk tier is *not* touched: dropping the memory tier is how tests
    and benchmarks simulate a cold process start, and a cold process is
    exactly what the disk tier exists to warm."""
    for cache in _caches:
        cache.clear()


# repro: allow-D104 process-local switch: spawn-mode pool workers configure their own disk tier
# repro: effects=worker-safe
def set_disk_cache(path: Optional[str], max_bytes: Optional[int] = None) -> Optional[str]:
    """Point the persistent tier at ``path`` (None disables it).

    Returns the previously active directory (or None).  An explicit call
    — either way — also stops the lazy ``REPRO_DISK_CACHE`` environment
    lookup, so ``--no-disk-cache`` beats an inherited environment knob.
    """
    global _DISK, _disk_resolved
    previous = _DISK.path if _DISK is not None else None
    _disk_resolved = True
    if path is None:
        _DISK = None
        return previous
    kwargs = {} if max_bytes is None else {"max_bytes": max_bytes}
    _DISK = DiskCache(path, **kwargs)
    return previous


# repro: allow-D104 lazy one-shot env resolution; each pool worker resolves its own copy
# repro: effects=worker-safe
def disk_cache() -> Optional[DiskCache]:
    """The active persistent tier, resolving ``REPRO_DISK_CACHE`` once."""
    global _DISK, _disk_resolved
    if not _disk_resolved:
        _disk_resolved = True
        path = os.environ.get("REPRO_DISK_CACHE")
        if path:
            _DISK = DiskCache(path)
    return _DISK


def disk_cache_path() -> Optional[str]:
    """Directory of the active persistent tier, or None when disabled."""
    disk = disk_cache()
    return disk.path if disk is not None else None


def content_key(html: str) -> bytes:
    """16-byte BLAKE2b digest of a page's HTML — the cache address."""
    return blake2b(html.encode("utf-8", "surrogatepass"), digest_size=16).digest()


class LRUCache:
    """Bounded mapping with least-recently-used eviction and PERF counters.

    Instances register their ``cache.<name>.hit/.miss/.evict`` counters at
    zero on construction so the perf report carries them even before any
    traffic, and report every event through :data:`PERF` afterwards.
    """

    __slots__ = ("name", "maxsize", "persistent", "_data", "_hit", "_miss",
                 "_evict", "_disk_hit", "_disk_miss", "_promote", "_write")

    def __init__(self, name: str, maxsize: int, persistent: bool = False):
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.name = name
        self.maxsize = maxsize
        #: Persistent caches consult the disk tier (when one is active) on
        #: a memory miss — see :mod:`repro.perf.diskcache` for which
        #: caches qualify and how their entries are invalidated.
        self.persistent = persistent
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._hit = f"cache.{name}.hit"
        self._miss = f"cache.{name}.miss"
        self._evict = f"cache.{name}.evict"
        self._disk_hit = f"cache.{name}.disk_hit"
        self._disk_miss = f"cache.{name}.disk_miss"
        self._promote = f"cache.{name}.promote"
        self._write = f"cache.{name}.write"
        PERF.count(self._hit, 0)
        PERF.count(self._miss, 0)
        PERF.count(self._evict, 0)
        if persistent:
            PERF.count(self._disk_hit, 0)
            PERF.count(self._disk_miss, 0)
            PERF.count(self._promote, 0)
            PERF.count(self._write, 0)
        _caches.append(self)

    def __len__(self) -> int:
        return len(self._data)

    def clear(self) -> None:
        self._data.clear()

    # repro: allow-D104 counter bumps are ledger-diverted in workers (cache_ledger) and replayed canonically by the parent
    # repro: effects=worker-safe
    def get_or_build(self, key: Hashable, build: Callable[[Any], Any], arg: Any) -> Any:
        """Return the cached value for ``key``, building via ``build(arg)``
        on a miss.  Assumes the caller already checked
        :func:`caches_enabled` (the wrappers below do).

        Under an active :func:`cache_ledger`, the lookup is recorded as
        ``(name, key)`` and *no* counters are bumped: the crawl shard pool
        replays the canonical lookup order through :class:`CacheReplay`
        so hit/miss/evict totals stay independent of which process served
        each lookup.  Values are still served and inserted normally.

        With a persistent tier active, a memory miss consults the disk
        before building: a disk hit is promoted into the memory tier
        (``.disk_hit`` + ``.promote``), a disk miss builds and persists
        the result (``.disk_miss`` + ``.write``).  ``.miss`` still counts
        every memory miss — the disk counters subdivide it.  Ledgered
        lookups keep the same disk behaviour with the counting deferred
        to :class:`CacheReplay`'s disk shadow.
        """
        global _LEDGER
        data = self._data
        ledger = _LEDGER
        if ledger is not None:
            ledger.append((self.name, key))
        found = data.get(key, _MISSING)
        if found is not _MISSING:
            data.move_to_end(key)
            if ledger is None:
                PERF.count(self._hit)
            return found
        disk = disk_cache() if self.persistent else None
        if ledger is None:
            PERF.count(self._miss)
            if disk is not None:
                cached = disk.load(self.name, key)
                if cached is not DISK_MISS:
                    PERF.count(self._disk_hit)
                    PERF.count(self._promote)
                    data[key] = cached
                    if len(data) > self.maxsize:
                        data.popitem(last=False)
                        PERF.count(self._evict)
                    return cached
                PERF.count(self._disk_miss)
            value = build(arg)
            if disk is not None and disk.store(self.name, key, value):
                PERF.count(self._write)
        else:
            if disk is not None:
                cached = disk.load(self.name, key)
                if cached is not DISK_MISS:
                    data[key] = cached
                    if len(data) > self.maxsize:
                        data.popitem(last=False)
                    return cached
            # Nested lookups made *by the build* (every derived cache's
            # build parses through the dom cache) are discarded: whether
            # they happen at all depends on this process's cache warmth,
            # which is schedule-dependent under the shard pool.  The
            # replay re-derives them from its own (canonical) miss state —
            # see CacheReplay._NESTED_DOM.
            _LEDGER = []
            try:
                value = build(arg)
            finally:
                _LEDGER = ledger
            if disk is not None:
                disk.store(self.name, key, value)
        data[key] = value
        if len(data) > self.maxsize:
            data.popitem(last=False)
            if ledger is None:
                PERF.count(self._evict)
        return value

    def memo_html(self, html: str, build: Callable[[str], Any]) -> Any:
        """Content-addressed :meth:`get_or_build` for HTML-derived values,
        with the enabled check folded in: the disabled path is exactly one
        extra branch over calling ``build`` directly."""
        if not _enabled:
            return build(html)
        return self.get_or_build(content_key(html), build, html)

    def __repr__(self) -> str:
        return f"LRUCache({self.name!r}, {len(self._data)}/{self.maxsize})"


# --------------------------------------------------------------------- #
# The shared DOM and render caches
# --------------------------------------------------------------------- #

#: Parsed-DOM cache.  Generated pages run a few KB / a few hundred nodes
#: (~50 KB of Python objects each), so even the benchmark world's ~40k
#: distinct pages fit in a couple of GB; undersizing is far worse — at
#: scale 0.25 a 2048-entry cache *thrashed* (50k evictions, hit rate
#: under 50%) and re-parsed pages it had just dropped.
_DOM_CACHE = LRUCache("dom", maxsize=65536, persistent=True)

#: Rendered-view cache (parse + mini-JS execution).  Sized like the DOM
#: cache: every page the rendering crawler revisits between content
#: rotations should still be resident.
_RENDER_CACHE = LRUCache("render", maxsize=65536, persistent=True)


def parse_html_cached(html: str) -> Document:
    """``parse_html`` memoized by content hash.

    The returned Document is shared across callers: treat it as frozen.
    Consumers that mutate parse results (e.g. ``render_document``'s
    internal fragment parses) must keep using the pure ``parse_html``.
    """
    if not _enabled:
        return parse_html(html)
    return _DOM_CACHE.get_or_build(content_key(html), parse_html, html)


def _render_build(html: str) -> Document:
    # render_document only *reads* the source document (it re-parses the
    # serialized form and mutates that private copy), so the shared DOM
    # cache is safe to feed it.
    return render_document(parse_html_cached(html))


def render_document_cached(html: str, profile: Optional[VisitorProfile] = None) -> Document:
    """Parse + render, cached on ``(content hash, visitor profile)``.

    The rendered Document is shared: read-only, like every cached DOM.
    """
    if not _enabled:
        return render_document(parse_html(html))
    return _RENDER_CACHE.get_or_build((content_key(html), profile), _render_build, html)


# --------------------------------------------------------------------- #
# Canonical cache accounting for out-of-order cache users
# --------------------------------------------------------------------- #


@contextmanager
# repro: allow-D104 the _LEDGER swap is process-local; workers divert cache counts into ledgers the parent replays
# repro: effects=worker-safe
def cache_ledger(entries: List[Tuple[str, Hashable]]) -> Iterator[List[Tuple[str, Hashable]]]:
    """Record cache lookups into ``entries`` instead of PERF counters.

    While active, every :meth:`LRUCache.get_or_build` call appends
    ``(cache_name, key)`` to ``entries`` and bumps nothing; the real cache
    still serves and stores values, so behaviour (and wall-time) is
    unchanged.  The crawl shard pool collects one ledger per SERP
    encounter — wherever the lookup actually ran — and replays the merged,
    canonically-ordered sequence through :class:`CacheReplay`, which emits
    the hit/miss/evict totals a single sequential process would have
    counted.  Nests: the previous ledger (or live counting) is restored on
    exit."""
    global _LEDGER
    previous = _LEDGER
    _LEDGER = entries
    try:
        yield entries
    finally:
        _LEDGER = previous


def registered_cache_maxsize(name: str) -> int:
    """Capacity of the registered module-level cache called ``name``."""
    for cache in _caches:
        if cache.name == name:
            return cache.maxsize
    raise KeyError(f"no registered cache named {name!r}")


def _shadow_bump(counts: Dict[str, int], name: str) -> None:
    counts[name] = counts.get(name, 0) + 1


class CacheReplay:
    """Shadow LRU state that turns cache ledgers into canonical counters.

    Keeps one key-only :class:`~collections.OrderedDict` per cache name
    with exactly the real caches' move-to-end/evict semantics.  Replaying
    ledger entries in canonical (sequential) order yields the hit/miss/
    evict counts of a single-process run, independent of the process pool
    schedule that actually served the lookups — which is what keeps
    ``metrics.jsonl``'s ``cache_hit_rate`` column byte-identical across
    ``--jobs`` levels.  Plain picklable state: rides inside checkpoints so
    a resumed run continues counting from warm shadows even though the
    fresh process's real caches start cold.

    With a persistent tier active, :meth:`attach_disk` seeds a per-cache
    *disk shadow* — the set of entry-file stems present when the run
    started.  The shadow then evolves exactly as the canonical sequential
    order would evolve the real directory (a counted ``write`` adds its
    stem), so ``disk_hit``/``disk_miss``/``promote``/``write`` totals are
    as schedule-independent as the memory counters.  The shadow never
    evicts: the disk tier's cap is far above a study run's working set,
    and an eviction would only perturb counters, never results."""

    #: Class-level default so CacheReplay instances pickled before the
    #: disk tier existed (old checkpoints) unpickle cleanly.
    _disk: Optional[Dict[str, set]] = None

    def __init__(self):
        self._shadows: Dict[str, "OrderedDict[Hashable, None]"] = {}
        self._sizes: Dict[str, int] = {}
        self._disk = None

    def attach_disk(self, snapshot: Dict[str, Iterable[str]]) -> None:
        """Seed the disk shadow from ``DiskCache.index_snapshot()``."""
        self._disk = {name: set(stems) for name, stems in snapshot.items()}

    #: Caches whose build routes through :func:`parse_html_cached` exactly
    #: once, keyed on the same content hash (the render cache key carries a
    #: (hash, profile) pair; the rest key on the hash directly).  A miss on
    #: one of these implies one nested dom lookup — recorded ledgers drop
    #: nested entries (warmth-dependent), so the replay re-derives them
    #: from its own shadow state instead.
    _NESTED_DOM = frozenset({"render", "shingle", "notice", "features"})

    def replay(self, entries: Iterable[Tuple[str, Hashable]]) -> Dict[str, int]:
        """Feed ledger entries through the shadows; returns counter deltas
        (``cache.<name>.hit`` / ``.miss`` / ``.evict``) for the caller to
        commit into PERF."""
        counts: Dict[str, int] = {}
        for name, key in entries:
            self._lookup(name, key, counts)
        return counts

    def _lookup(self, name: str, key: Hashable, counts: Dict[str, int]) -> None:
        data = self._shadows.get(name)
        if data is None:
            data = self._shadows[name] = OrderedDict()
            self._sizes[name] = registered_cache_maxsize(name)
        if key in data:
            data.move_to_end(key)
            event = f"cache.{name}.hit"
        else:
            disk = None if self._disk is None else self._disk.get(name)
            stem = entry_filename(key) if disk is not None else None
            if disk is not None and stem in disk:
                # Disk hit: the build is skipped, so no nested dom lookup.
                _shadow_bump(counts, f"cache.{name}.disk_hit")
                _shadow_bump(counts, f"cache.{name}.promote")
            else:
                if name in self._NESTED_DOM:
                    # The build's inner parse happens before the outer insert.
                    self._lookup("dom", key[0] if name == "render" else key, counts)
                if disk is not None:
                    _shadow_bump(counts, f"cache.{name}.disk_miss")
                    _shadow_bump(counts, f"cache.{name}.write")
                    disk.add(stem)
            data[key] = None
            if len(data) > self._sizes[name]:
                data.popitem(last=False)
                _shadow_bump(counts, f"cache.{name}.evict")
            event = f"cache.{name}.miss"
        counts[event] = counts.get(event, 0) + 1
