"""Performance subsystem: content-addressed caches for the crawl hot path.

:mod:`repro.util.perf` holds the always-on timing/counter registry; this
package holds the caching layer built on top of it (see
:mod:`repro.perf.cache`) and the scoped GC tune that keeps collector
pauses off the hot path while the caches are resident
(:mod:`repro.perf.gctune`).
"""

from repro.perf.cache import (
    LRUCache,
    caches_disabled,
    caches_enabled,
    content_key,
    parse_html_cached,
    render_document_cached,
    reset_caches,
    set_caches_enabled,
)
from repro.perf.gctune import low_pause_gc

__all__ = [
    "LRUCache",
    "low_pause_gc",
    "caches_disabled",
    "caches_enabled",
    "content_key",
    "parse_html_cached",
    "render_document_cached",
    "reset_caches",
    "set_caches_enabled",
]
