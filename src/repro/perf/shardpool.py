"""Sharded measurement crawl over a persistent work-stealing process pool.

The span trace shows the daily crawl (Dagger fetch + VanGogh render +
store detection + landing resolution) is the majority of ``simulator.day``
— and the paper's own infrastructure ran Dagger/VanGogh as concurrent
crawl fleets, so fanning the per-day check list over processes is faithful
to the system being reproduced, not just an optimisation.

Design constraints, in order of importance:

1. **Byte identity.**  ``--jobs N`` must produce byte-identical PSR dumps,
   golden SERPs, ``metrics.jsonl`` and checkpoint digests to ``--jobs 1``,
   with and without a fault profile.  Everything below serves this.
2. **Work stealing.**  Static host partitioning straggles on VanGogh-heavy
   shards; tasks go through the pool's shared task queue, so an idle
   worker picks up whatever is next regardless of any static plan.  The
   executor still computes an LPT ("longest processing time first") home
   plan from per-host cost estimates purely to *measure* stealing: a task
   executed by a worker other than its planned home counts as a steal.
3. **Persistence.**  One pool per :class:`repro.study.StudyRun`, created
   lazily on the first crawl day and reused until shutdown (lint rule
   D010 bans per-day pool construction).

How byte identity survives parallelism:

* **Tasks are per-host.**  The crawler's only cross-host state within a
  day is the SERP-ordered interleaving of its bookkeeping, so each task
  carries one host's encounters plus a slice of day-start state
  (known-cloaked URLs, poisoned flag).  Every encounter is tagged with its
  global SERP sequence number; workers return *operations* (PSR rows,
  archive adds, clean/cloaked markings, notices) tagged by that number,
  and the parent applies the merged, seq-sorted stream — which is exactly
  the order a sequential crawl would have produced.
* **Workers run lockstep world replicas.**  A forked (or spawn-rebuilt)
  worker owns a full simulator replica stepped through the same days as
  the parent.  The simulated web is a pure function of stepped state (the
  cloaking kits were made stateless for this), so replica fetches are
  byte-identical to parent fetches.  The parent's only world mutations a
  replica lacks — checkout order-number allocations from the test orderer
  — are never read by ``step_day`` or by any crawled page.
* **Fault decisions replay, order-independently.**  The sha256-keyed
  injector is a pure function of ``(seed, kind, subject)`` (asserted in
  ``tests/test_shardpool.py``), so workers consult it quietly and the
  parent *re-derives* every decision while replaying fetch events in
  canonical order against the real :class:`ResilientFetcher` state
  (budget, breaker, jitter stream).  The worker mimic has no breaker and
  an unlimited budget, so divergence is one-directional: the canonical
  path can only fail *earlier*.  When it does, the whole crawl day falls
  back to the sequential path — a decision that is itself a pure function
  of canonical state, so it fires identically at every jobs level.
* **Cache counters replay.**  Real cache lookups happen wherever the work
  ran; counting them there would make ``cache_hit_rate`` schedule-
  dependent.  Lookups are recorded in per-encounter ledgers
  (:func:`repro.perf.cache.cache_ledger`) and replayed through shadow
  LRUs (:class:`repro.perf.cache.CacheReplay`) in canonical order.
"""

from __future__ import annotations

import multiprocessing
import os
from collections import OrderedDict
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Tuple

from repro.obs.trace import Span, TRACER
from repro.util.perf import PERF
from repro.util.simtime import SimDate
from repro.web.fetch import Response, STATUS_UNREACHABLE
from repro.web.urls import parse_url
from repro.faults.injector import FAULT_IP_BLOCK, FaultInjector, TRANSIENT_FAULTS
from repro.faults.retry import RetryPolicy
from repro.interventions.notices import parse_notice_page
from repro.perf.cache import cache_ledger, disk_cache_path, set_disk_cache
from repro.crawler.dagger import Dagger
from repro.crawler.records import PsrRecord
from repro.crawler.store_detect import StoreDetector
from repro.crawler.vangogh import VanGogh


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer fork (cheap, inherits the stepped world); spawn elsewhere."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return multiprocessing.get_context("spawn")


# --------------------------------------------------------------------- #
# Wire format: parent -> worker
# --------------------------------------------------------------------- #


@dataclass
class _Encounter:
    """One SERP result that needs crawling, tagged with its global
    position in the day's term-major, rank-minor SERP walk."""

    seq: int
    vertical: str
    term: str
    rank: int
    url: str
    host: str
    path: str
    label: str


@dataclass
class _HostTask:
    """One host's work for one crawl day, plus the day-start state slice
    the per-host logic reads."""

    index: int
    host: str
    day_ordinal: int
    encounters: List[_Encounter]
    #: url -> mechanism for this host's already-known-cloaked URLs.
    cloaked: Dict[str, str]
    poisoned: bool
    trace: bool = False


# --------------------------------------------------------------------- #
# Wire format: worker -> parent
# --------------------------------------------------------------------- #


@dataclass
class _FetchEvent:
    """One measurement fetch as the worker mimic saw it.

    The parent replay re-derives every injector decision itself (they are
    pure), so the worker only reports *which attempt returned* (None =
    all attempts failed transiently) and whether the returned body was an
    ok, non-empty page (the precondition for the corruption roll)."""

    seq: int
    url: str
    user_agent: str
    returned_attempt: Optional[int]
    ok_html: bool


@dataclass
class _TaskResult:
    index: int
    host: str
    worker: int = 0
    wall_s: float = 0.0
    #: (seq, op, payload) bookkeeping operations, in execution order.
    ops: List[Tuple[int, str, object]] = field(default_factory=list)
    #: (seq, cache_name, key) ledger entries, in execution order.
    ledger: List[Tuple[int, str, object]] = field(default_factory=list)
    #: Fetch events, in execution order (empty on clean runs).
    events: List[_FetchEvent] = field(default_factory=list)
    #: PERF timer deltas accrued by the task (pool mode only; inline tasks
    #: accrue directly into the parent registry).
    timer_deltas: Dict[str, Tuple[int, float, float]] = field(default_factory=dict)
    #: Exported spans (pool mode with tracing on).
    spans: List[dict] = field(default_factory=list)


class _VisitorKey:
    """Stand-in visitor for injector replay: only ``user_agent`` is keyed."""

    __slots__ = ("user_agent",)

    def __init__(self, user_agent: str):
        self.user_agent = user_agent


# --------------------------------------------------------------------- #
# The worker-side task mimic
# --------------------------------------------------------------------- #


class _TaskFetcher:
    """Breaker-free, budget-free fetch mimic for shard workers.

    Asks the (quiet) injector per attempt exactly like
    :class:`~repro.faults.retry.ResilientFetcher` would, but never
    consults the per-day budget or the per-host breaker — those live in
    the parent and are applied during canonical replay.  Because the
    mimic retries a superset of what the canonical fetcher would, the
    canonical outcome can only fail earlier, never differently."""

    def __init__(self, web, injector, policy: Optional[RetryPolicy]):
        self.web = web
        self.injector = injector
        self.policy = policy or RetryPolicy()
        self.events: List[_FetchEvent] = []
        self.seq = 0

    def __call__(self, url: str, profile, day) -> Response:
        injector = self.injector
        if injector is None:
            return self.web.fetch(url, profile, day)
        day = SimDate(day)
        response: Optional[Response] = None
        returned: Optional[int] = None
        ok_html = False
        for attempt in range(max(1, self.policy.max_attempts)):
            kind = injector.fetch_fault(url, profile, day, attempt)
            if kind is not None:
                response = Response(status=STATUS_UNREACHABLE, url=url,
                                    final_url=url, fault=kind)
            else:
                response = self.web.fetch(url, profile, day)
                if response.ok and response.html:
                    ok_html = True
                    html, kind = injector.corrupt_html(response.html, url, day)
                    if kind is not None:
                        response.html = html
                        response.fault = kind
            if response.fault not in TRANSIENT_FAULTS:
                returned = attempt
                break
            if response.fault == FAULT_IP_BLOCK:
                break
            if attempt + 1 >= self.policy.max_attempts:
                break
        assert response is not None
        self.events.append(_FetchEvent(self.seq, url, profile.user_agent,
                                       returned, ok_html))
        return response


def _execute_task(web, injector, task: _HostTask, retry_policy, crawl_policy) -> _TaskResult:
    """Run one host's crawl-day logic against ``web``.

    A line-for-line mirror of ``SearchCrawler._process_result`` and its
    helpers, except that every state mutation becomes a seq-tagged op for
    the parent to apply in canonical order, and all fetches go through the
    event-recording :class:`_TaskFetcher`."""
    fetcher = _TaskFetcher(web, injector, retry_policy)
    dagger = Dagger(web, fetch=fetcher)
    vangogh = VanGogh(web, fetch=fetcher)
    detector = StoreDetector()
    day = SimDate(task.day_ordinal)
    recheck = crawl_policy.recheck_clean_after_days
    max_renders = crawl_policy.max_renders_per_host_per_day

    result = _TaskResult(index=task.index, host=task.host)
    ops = result.ops
    cloaked = dict(task.cloaked)
    poisoned = task.poisoned
    local_clean_urls: set = set()
    local_clean_host = False
    renders = 0
    landing_done = False
    landing: Optional[dict] = None

    for enc in task.encounters:
        fetcher.seq = enc.seq
        entries: List[Tuple[str, object]] = []
        with cache_ledger(entries):
            url = enc.url
            mechanism = cloaked.get(url)
            if mechanism is None:
                # _skip_clean_url / _skip_clean_host against marks made
                # earlier *today* (day-start marks were pre-filtered in
                # the parent).  A same-day mark only expires when the
                # recheck window is <= 0 days, mirroring `day - day >= 0`.
                if url in local_clean_urls:
                    if recheck is not None and recheck <= 0:
                        local_clean_urls.discard(url)
                        ops.append((enc.seq, "unclean_url", url))
                    else:
                        continue
                if local_clean_host:
                    if recheck is not None and recheck <= 0:
                        local_clean_host = False
                        ops.append((enc.seq, "unclean_host", task.host))
                    else:
                        continue
                dagger_result = dagger.check(url, day)
                if dagger_result.cloaked:
                    mechanism = dagger_result.mechanism or "content"
                    cloaked[url] = mechanism
                    poisoned = True
                    local_clean_host = False
                    ops.append((enc.seq, "cloak", (url, task.host, mechanism)))
                    ops.append((enc.seq, "doorway",
                                (task.host, dagger_result.crawler_response.html)))
                elif dagger_result.degraded:
                    ops.append((enc.seq, "degraded", "classify"))
                    continue
                else:
                    if renders >= max_renders:
                        continue
                    renders += 1
                    vg = vangogh.check(url, day)
                    if vg.iframe_cloaked:
                        mechanism = "iframe"
                        cloaked[url] = mechanism
                        poisoned = True
                        local_clean_host = False
                        ops.append((enc.seq, "cloak", (url, task.host, "iframe")))
                        ops.append((enc.seq, "doorway",
                                    (task.host, dagger_result.crawler_response.html)))
                    elif vg.fault is not None:
                        ops.append((enc.seq, "degraded", "classify"))
                        continue
                    else:
                        local_clean_urls.add(url)
                        ops.append((enc.seq, "clean_url", url))
                        if not poisoned:
                            local_clean_host = True
                            ops.append((enc.seq, "clean_host", task.host))
                        continue
            if not landing_done:
                landing_done = True
                landing = _resolve_landing(dagger, vangogh, detector, url,
                                           mechanism, day, enc.seq, ops)
            if landing is None:
                continue
            ops.append((enc.seq, "psr", {
                "vertical": enc.vertical,
                "term": enc.term,
                "rank": enc.rank,
                "url": url,
                "host": enc.host,
                "path": enc.path,
                "label": enc.label,
                "mechanism": mechanism,
                **landing,
            }))
        result.ledger.extend((enc.seq, name, key) for name, key in entries)
    result.events = fetcher.events
    return result


def _resolve_landing(dagger, vangogh, detector, url, mechanism, day, seq, ops) -> Optional[dict]:
    """Mirror of ``SearchCrawler._landing_for`` / ``_fetch_landing`` for
    one host's once-per-day landing resolution."""
    if mechanism in ("redirect", "content"):
        response = dagger.check(url, day).user_response
    else:
        response = vangogh.check(url, day).landing_response
    if response is not None and response.fault is not None and not response.ok:
        ops.append((seq, "degraded", "landing"))
    if response is None or not response.ok:
        return None
    landing_host = parse_url(response.final_url).host
    notice = parse_notice_page(response.html)
    if notice is not None:
        ops.append((seq, "notice", notice))
    evidence = detector.detect(response)
    if evidence.is_store:
        ops.append((seq, "store", (landing_host, response.html)))
    return {
        "landing_url": response.final_url,
        "landing_host": landing_host,
        "is_store": evidence.is_store,
        "seizure_case": notice.case_id if notice else None,
        "seizure_firm": notice.firm if notice else None,
        "seizure_brand": notice.brand if notice else None,
    }


# --------------------------------------------------------------------- #
# Worker process lifecycle
# --------------------------------------------------------------------- #


class _WorkerState:
    __slots__ = ("simulator", "web", "injector", "retry_policy",
                 "crawl_policy", "vertical_map", "replica_ordinal",
                 "worker_id")

    def __init__(self, simulator, retry_policy, crawl_policy, replica_ordinal, worker_id):
        self.simulator = simulator
        self.web = simulator.world.web
        self.injector = getattr(self.web, "fault_injector", None)
        self.retry_policy = retry_policy
        self.crawl_policy = crawl_policy
        self.vertical_map = simulator.vertical_of_term_map()
        self.replica_ordinal = replica_ordinal
        self.worker_id = worker_id


_WORKER: Optional[_WorkerState] = None


def _worker_init(mode, payload, counter, retry_policy, crawl_policy,
                 disk_path) -> None:
    """Pool initializer: build (fork: adopt) this worker's world replica."""
    global _WORKER
    with counter.get_lock():
        worker_id = counter.value
        counter.value += 1
    TRACER.set_enabled(False)
    TRACER.reset()
    # Workers share the parent's persistent disk tier (content-addressed
    # and idempotent, so concurrent writers are safe).  Fork inherits the
    # open handle; spawn must re-point at the same directory.
    set_disk_cache(disk_path)
    if mode == "fork":
        simulator, replica_ordinal = payload
    else:
        # Spawn: rebuild the simulator from config and fast-forward.  The
        # replica runs full step_day passes (traffic included) so its RNG
        # streams and world state match the parent's exactly.
        from repro.ecosystem.simulator import Simulator

        config, injector_state, replica_ordinal = payload
        simulator = Simulator(config)
        simulator.build()
        if injector_state is not None:
            profile, seed = injector_state
            simulator.world.web.fault_injector = FaultInjector(profile, seed=seed)
        vertical_map = simulator.vertical_of_term_map()
        for day in simulator.world.window:
            if day.ordinal > replica_ordinal:
                break
            simulator.step_day(day, vertical_map)
    state = _WorkerState(simulator, retry_policy, crawl_policy,
                         replica_ordinal, worker_id)
    if state.injector is not None:
        state.injector.quiet = True
    _WORKER = state


def _advance_replica(state: _WorkerState, target_ordinal: int) -> None:
    """Step the replica through every sim day up to ``target_ordinal``.

    Idempotent, so it serves both as the overlap hint the parent enqueues
    after each crawl day and as the catch-up at the start of every task."""
    while state.replica_ordinal < target_ordinal:
        state.replica_ordinal += 1
        state.simulator.step_day(SimDate(state.replica_ordinal),
                                 state.vertical_map)


def _advance_task(target_ordinal: int) -> None:
    assert _WORKER is not None
    _advance_replica(_WORKER, target_ordinal)


def _run_task(task: _HostTask) -> _TaskResult:
    state = _WORKER
    assert state is not None
    _advance_replica(state, task.day_ordinal)
    wall0 = perf_counter()
    timer_base = {name: (stat.calls, stat.total, stat.max)
                  for name, stat in PERF.timers().items()}
    if task.trace:
        TRACER.set_enabled(True)
        TRACER.reset()
        with TRACER.span("crawl.host", host=task.host):
            result = _execute_task(state.web, state.injector, task,
                                   state.retry_policy, state.crawl_policy)
        result.spans = TRACER.export()
        TRACER.set_enabled(False)
    else:
        result = _execute_task(state.web, state.injector, task,
                               state.retry_policy, state.crawl_policy)
    deltas: Dict[str, Tuple[int, float, float]] = {}
    for name, stat in PERF.timers().items():
        calls0, total0, _max0 = timer_base.get(name, (0, 0.0, 0.0))
        if stat.calls != calls0:
            deltas[name] = (stat.calls - calls0, stat.total - total0, stat.max)
    result.timer_deltas = deltas
    result.worker = state.worker_id
    result.wall_s = perf_counter() - wall0
    return result


# --------------------------------------------------------------------- #
# Canonical replay (parent side)
# --------------------------------------------------------------------- #


def _fetcher_snapshot(fetcher):
    return (dict(fetcher._failures), dict(fetcher._breaker_open_until),
            fetcher._day_ordinal, fetcher._retries_today,
            fetcher.simulated_backoff_s, fetcher._rng.getstate())


def _fetcher_restore(fetcher, snapshot) -> None:
    (fetcher._failures, fetcher._breaker_open_until, fetcher._day_ordinal,
     fetcher._retries_today, fetcher.simulated_backoff_s, rng_state) = (
        dict(snapshot[0]), dict(snapshot[1]), snapshot[2], snapshot[3],
        snapshot[4], snapshot[5])
    fetcher._rng.setstate(rng_state)


def _bump(counts: Dict[str, int], name: str, n: int = 1) -> None:
    counts[name] = counts.get(name, 0) + n


def _replay_fetch_events(fetcher, injector, events, day, counts) -> bool:
    """Re-run the canonical :class:`ResilientFetcher` control flow over the
    recorded fetch sequence, mutating the real fetcher state and buffering
    the counters it would have emitted.  Returns False on divergence —
    i.e. the canonical budget/breaker cut off a fetch the worker mimic
    delivered (the only direction divergence can go)."""
    policy = fetcher.policy
    if day.ordinal != fetcher._day_ordinal:
        fetcher._day_ordinal = day.ordinal
        fetcher._retries_today = 0
    for event in events:
        host = parse_url(event.url).host
        if fetcher._breaker_refuses(host, day):
            _bump(counts, "faults.breaker.short_circuit")
            if event.returned_attempt is not None:
                return False
            continue
        visitor = _VisitorKey(event.user_agent)
        returned: Optional[int] = None
        for attempt in range(max(1, policy.max_attempts)):
            kind = injector.fetch_fault(event.url, visitor, day, attempt)
            if kind is None:
                if event.ok_html:
                    corrupt = injector.corrupt_kind(event.url, day)
                    if corrupt is not None:
                        _bump(counts, f"faults.injected.{corrupt}")
                returned = attempt
                fetcher._failures.pop(host, None)
                break
            _bump(counts, f"faults.injected.{kind}")
            if kind == FAULT_IP_BLOCK:
                break
            if attempt + 1 >= policy.max_attempts:
                break
            if fetcher._retries_today >= policy.per_day_retry_budget:
                _bump(counts, "faults.retry.budget_exhausted")
                break
            fetcher._retries_today += 1
            _bump(counts, "faults.retried")
            backoff = min(policy.backoff_cap_s,
                          policy.base_backoff_s * (2.0 ** attempt))
            fetcher.simulated_backoff_s += backoff * (
                1.0 + policy.jitter * fetcher._rng.random()
            )
        if returned is None:
            failures = fetcher._failures.get(host, 0) + 1
            fetcher._failures[host] = failures
            if failures >= policy.breaker_threshold:
                fetcher._breaker_open_until[host] = (
                    day.ordinal + policy.breaker_cooldown_days
                )
                fetcher._failures.pop(host, None)
                _bump(counts, "faults.breaker.opened")
            _bump(counts, "faults.gave_up")
        if returned != event.returned_attempt:
            return False
    return True


# --------------------------------------------------------------------- #
# The executor
# --------------------------------------------------------------------- #


class CrawlExecutor:
    """Persistent crawl shard pool attached to one study run's crawler.

    ``jobs <= 1`` runs every task inline (same code path, no pool) so one
    executor implementation serves every jobs level — which is also what
    makes the byte-identity guarantee testable: jobs=1 and jobs=N share
    the task/merge machinery and differ only in where tasks execute.
    """

    def __init__(self, simulator, jobs: int = 1,
                 retry_policy: Optional[RetryPolicy] = None,
                 crawl_policy=None):
        self.simulator = simulator
        self.jobs = max(1, int(jobs))
        self.retry_policy = retry_policy or RetryPolicy()
        self.crawl_policy = crawl_policy
        self._pool = None
        self._pool_mode = "inline"
        self._hints: List[object] = []
        #: host -> EMA of task wall seconds, for the LPT home plan.
        self._cost_ema: Dict[str, float] = {}
        #: Per-crawl-day stats rows (see :meth:`stats`).
        self.day_stats: List[dict] = []

    # ---------------------------------------------------------------- #
    # Pool lifecycle
    # ---------------------------------------------------------------- #

    def _ensure_pool(self, day: SimDate) -> None:
        if self._pool is not None or self.jobs <= 1:
            return
        context = _pool_context()
        self._pool_mode = context.get_start_method()
        counter = context.Value("i", 0)
        if self._pool_mode == "fork":
            payload = (self.simulator, day.ordinal)
        else:
            web = self.simulator.world.web
            injector = getattr(web, "fault_injector", None)
            injector_state = (
                (injector.profile, injector.seed) if injector is not None else None
            )
            payload = (self.simulator.config, injector_state, day.ordinal)
        self._pool = context.Pool(
            processes=self.jobs,
            initializer=_worker_init,
            initargs=(self._pool_mode, payload, counter,
                      self.retry_policy, self.crawl_policy,
                      disk_cache_path()),
        )

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    # ---------------------------------------------------------------- #
    # Per-day entry point (called from SearchCrawler.on_day)
    # ---------------------------------------------------------------- #

    def run_day(self, crawler, day: SimDate, work: List[tuple]) -> None:
        """Crawl one day's work list and merge results canonically.

        ``work`` is the parent's pre-filtered encounter list:
        ``(seq, vertical, term, result)`` in SERP order for every result
        that needs classification or landing resolution."""
        if not work:
            return
        wall0 = perf_counter()
        tasks = self._build_tasks(crawler, day, work)
        homes = self._plan_homes(tasks)
        if self.jobs <= 1:
            results = [self._run_inline(crawler, task) for task in tasks]
        else:
            self._ensure_pool(day)
            self._drain_hints()
            order = sorted(tasks, key=lambda t: (-self._estimate(t.host), t.index))
            pending = [(task.index, self._pool.apply_async(_run_task, (task,)))
                       for task in order]
            results = [async_result.get() for _, async_result in pending]
        results.sort(key=lambda r: r.index)
        merged = self._merge_day(crawler, day, results)
        if not merged:
            PERF.count("shardpool.fallback_days")
            self._fallback_day(crawler, day, work)
        steals = sum(1 for r in results if r.worker != homes[r.index])
        PERF.count("shardpool.tasks", len(tasks))
        PERF.count("shardpool.steals", steals)
        for r in results:
            previous = self._cost_ema.get(r.host)
            self._cost_ema[r.host] = (
                r.wall_s if previous is None else 0.5 * previous + 0.5 * r.wall_s
            )
        busy = [0.0] * self.jobs
        for r in results:
            busy[r.worker % self.jobs] += r.wall_s
        self.day_stats.append({
            "day": day.isoformat(),
            "tasks": len(tasks),
            "steals": steals,
            "fallback": not merged,
            "wall_s": perf_counter() - wall0,
            "per_worker_busy_s": busy,
        })
        self._emit_shard_spans(busy, len(tasks), steals)
        if self._pool is not None:
            self._enqueue_advance_hints(crawler, day)

    # ---------------------------------------------------------------- #

    def _build_tasks(self, crawler, day: SimDate, work: List[tuple]) -> List[_HostTask]:
        by_host: "OrderedDict[str, List[_Encounter]]" = OrderedDict()
        for seq, vertical, term, result in work:
            by_host.setdefault(result.host, []).append(_Encounter(
                seq=seq, vertical=vertical, term=term, rank=result.rank,
                url=result.url, host=result.host, path=result.path,
                label=result.label.value,
            ))
        trace = TRACER.enabled
        tasks = []
        for index, (host, encounters) in enumerate(by_host.items()):
            cloaked = {}
            for enc in encounters:
                mechanism = crawler._cloaked_urls.get(enc.url)
                if mechanism is not None:
                    cloaked[enc.url] = mechanism
            tasks.append(_HostTask(
                index=index, host=host, day_ordinal=day.ordinal,
                encounters=encounters, cloaked=cloaked,
                poisoned=host in crawler._poisoned_hosts, trace=trace,
            ))
        return tasks

    def _estimate(self, host: str) -> float:
        known = self._cost_ema
        if host in known:
            return known[host]
        if known:
            return sum(known.values()) / len(known)
        return 1.0

    def _plan_homes(self, tasks: List[_HostTask]) -> Dict[int, int]:
        """LPT static assignment over cost estimates — the baseline the
        steal counter measures the dynamic queue against."""
        loads = [0.0] * self.jobs
        homes: Dict[int, int] = {}
        for task in sorted(tasks, key=lambda t: (-self._estimate(t.host), t.index)):
            worker = min(range(self.jobs), key=lambda w: (loads[w], w))
            homes[task.index] = worker
            loads[worker] += self._estimate(task.host)
        return homes

    def _run_inline(self, crawler, task: _HostTask) -> _TaskResult:
        injector = getattr(crawler.web, "fault_injector", None)
        wall0 = perf_counter()
        if injector is not None:
            injector.quiet = True
        try:
            with TRACER.span("crawl.host", host=task.host):
                result = _execute_task(crawler.web, injector, task,
                                       self.retry_policy, crawler.policy)
        finally:
            if injector is not None:
                injector.quiet = False
        result.worker = 0
        result.wall_s = perf_counter() - wall0
        return result

    def _drain_hints(self) -> None:
        for hint in self._hints:
            hint.wait()
        self._hints = []

    def _enqueue_advance_hints(self, crawler, day: SimDate) -> None:
        """Overlap replica stepping with the parent's next sim days: ask
        each (idle) worker to advance toward the next crawl day now."""
        stride = crawler.policy.stride_days
        target = day + stride
        window = self.simulator.world.window
        if target > window.end:
            return
        self._hints = [
            self._pool.apply_async(_advance_task, (target.ordinal,))
            for _ in range(self.jobs)
        ]

    # ---------------------------------------------------------------- #
    # Canonical merge
    # ---------------------------------------------------------------- #

    # repro: merge-root
    def _merge_day(self, crawler, day: SimDate, results: List[_TaskResult]) -> bool:
        """Apply worker results in canonical (sequential) order; returns
        False when the fetch replay diverged (state is rolled back and the
        caller re-runs the day sequentially)."""
        counts: Dict[str, int] = {}
        injector = getattr(crawler.web, "fault_injector", None)
        if injector is not None:
            events: List[_FetchEvent] = []
            for result in results:
                events.extend(result.events)
            events.sort(key=lambda e: e.seq)  # stable: in-task order kept
            snapshot = _fetcher_snapshot(crawler.fetcher)
            was_quiet = injector.quiet
            injector.quiet = True
            try:
                replayed = _replay_fetch_events(crawler.fetcher, injector,
                                                events, day, counts)
            finally:
                injector.quiet = was_quiet
            if not replayed:
                _fetcher_restore(crawler.fetcher, snapshot)
                return False
        ledger: List[Tuple[int, str, object]] = []
        for result in results:
            ledger.extend(result.ledger)
        ledger.sort(key=lambda entry: entry[0])
        for name, value in crawler.cache_replay.replay(
            (name, key) for _seq, name, key in ledger
        ).items():
            _bump(counts, name, value)
        ops: List[Tuple[int, str, object]] = []
        for result in results:
            ops.extend(result.ops)
        ops.sort(key=lambda op: op[0])  # stable: in-task order kept
        self._apply_ops(crawler, day, ops, counts)
        for name in sorted(counts):
            PERF.count(name, counts[name])
        if self._pool is not None:
            for result in results:
                for name, (calls, total, peak) in result.timer_deltas.items():
                    stat = PERF.handle(name)
                    stat.calls += calls
                    stat.total += total
                    if peak > stat.max:
                        stat.max = peak
            if TRACER.enabled:
                for result in results:
                    TRACER.adopt(result.spans, track=(result.worker % self.jobs) + 1)
        return True

    @staticmethod
    def _apply_ops(crawler, day: SimDate, ops, counts) -> None:
        for _seq, op, payload in ops:
            if op == "psr":
                crawler.dataset.add(PsrRecord(day=day, campaign="", **payload))
            elif op == "cloak":
                url, host, mechanism = payload
                crawler._cloaked_urls[url] = mechanism
                crawler._poisoned_hosts.add(host)
                crawler._clean_hosts.pop(host, None)
            elif op == "clean_url":
                crawler._clean_urls[payload] = day
            elif op == "clean_host":
                crawler._clean_hosts[payload] = day
            elif op == "unclean_url":
                crawler._clean_urls.pop(payload, None)
            elif op == "unclean_host":
                crawler._clean_hosts.pop(payload, None)
            elif op == "doorway":
                crawler.archive.add_doorway(*payload)
            elif op == "store":
                crawler.archive.add_store(*payload)
            elif op == "notice":
                if payload.case_id not in crawler.notices:
                    crawler.notices[payload.case_id] = payload
                    crawler.notice_first_seen[payload.case_id] = day
            elif op == "degraded":
                _bump(counts, f"faults.degraded.{payload}")

    # repro: merge-root
    def _fallback_day(self, crawler, day: SimDate, work: List[tuple]) -> None:
        """Sequential re-run of the whole crawl day through the crawler's
        own ``_process_result`` — real fetcher, live injector counts — so
        the canonical budget/breaker truncation plays out for real.  Cache
        lookups are still ledgered and replayed through the shadows: the
        real caches' warmth depends on where the discarded shard attempt
        ran, the shadows' does not."""
        entries: List[Tuple[str, object]] = []
        with cache_ledger(entries):
            for _seq, vertical, term, result in work:
                crawler._process_result(day, vertical, term, result)
        for name, value in sorted(crawler.cache_replay.replay(entries).items()):
            PERF.count(name, value)

    # ---------------------------------------------------------------- #
    # Reporting
    # ---------------------------------------------------------------- #

    def _emit_shard_spans(self, busy: List[float], tasks: int, steals: int) -> None:
        if not TRACER.enabled:
            return
        parent = TRACER.current
        sink = parent.children if parent is not None else TRACER.roots
        for worker, seconds in enumerate(busy):
            span = Span("crawl.shard", {"worker": worker})
            span.dur_s = seconds
            span.counters = {"tasks": tasks, "steals": steals}
            sink.append(span)

    def stats(self) -> dict:
        """Aggregate shard accounting for BENCH payloads and manifests."""
        per_shard = [0.0] * self.jobs
        for row in self.day_stats:
            for worker, seconds in enumerate(row["per_worker_busy_s"]):
                per_shard[worker] += seconds
        return {
            "jobs": self.jobs,
            "cpus": os.cpu_count() or 1,
            "mode": self._pool_mode,
            "crawl_days": len(self.day_stats),
            "tasks": sum(row["tasks"] for row in self.day_stats),
            "steals": sum(row["steals"] for row in self.day_stats),
            "fallback_days": sum(1 for row in self.day_stats if row["fallback"]),
            "per_shard_busy_s": [round(seconds, 6) for seconds in per_shard],
            "crawl_wall_s": round(
                sum(row["wall_s"] for row in self.day_stats), 6
            ),
        }
