"""Scoped garbage-collector tuning for cache-heavy study runs.

CPython's default thresholds (700 young allocations per gen-0 pass) were
set for small heaps.  A study run with the content-addressed caches warm
keeps hundreds of thousands of long-lived container objects resident —
DOM trees, rendered views, feature Counters — and every *full* collection
walks all of them: profiled at benchmark scale, collector pauses were
~26% of cached wall-clock, ~420 ms per full pass, charged to whatever
hot path happened to allocate next (``web.fetch`` absorbed most of it).

:func:`low_pause_gc` raises the thresholds for the duration of a run so
young garbage is still collected (in much cheaper, larger batches) while
full passes effectively stop.  That defers *cyclic* garbage only —
acyclic objects, including every evicted cache entry (DOM trees hold no
parent pointers), are reclaimed immediately by refcounting regardless.
On exit the previous thresholds are restored and one full collection
sweeps whatever cycles the scope deferred, so nothing leaks past it.

The tune is applied by ``StudyRun.execute`` and ``run_ablation`` — the
two entry points that run a full simulation — and helps cached and
uncached runs alike, so the benchmark A/B stays fair.
"""

from __future__ import annotations

import gc
from contextlib import contextmanager
from typing import Iterator, Tuple

#: Young-generation batch of 50k allocations keeps gen-0 passes off the
#: per-day hot path; the raised promotion ratios make full passes rare
#: enough that a study-length scope typically sees none.
LOW_PAUSE_THRESHOLDS: Tuple[int, int, int] = (50_000, 25, 20)


@contextmanager
def low_pause_gc() -> Iterator[None]:
    """Run a block under :data:`LOW_PAUSE_THRESHOLDS`, then restore and
    collect once.  Re-entrant: an inner scope defers to the outer one."""
    previous = gc.get_threshold()
    if previous == LOW_PAUSE_THRESHOLDS:
        yield  # already inside a low-pause scope; nothing to restore
        return
    gc.set_threshold(*LOW_PAUSE_THRESHOLDS)
    try:
        yield
    finally:
        gc.set_threshold(*previous)
        gc.collect()
