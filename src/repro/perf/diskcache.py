"""Persistent content-addressed cache tier underneath the in-process LRUs.

The source paper's measurement is longitudinal: months of daily crawls
over the same store/doorway population.  The reproduction's dominant cost
on every cold process start is re-deriving byte-identical intermediate
values — DOM parses, rendered views, shingle sets, feature bags, notice
verdicts — that a previous run already built.  This module persists those
values on disk under the *same* BLAKE2b content digests the in-process
caches key on (:func:`repro.perf.cache.content_key`), so a warm run
serves them from files instead of rebuilding, and correctness needs no
invalidation protocol beyond the hash: changed HTML is a different key.

Layout of a cache directory::

    <dir>/manifest.json          versioned manifest (schema, per-cache
                                 derivation-code digests, entry metadata,
                                 lifetime hit/miss totals)
    <dir>/<cache>/<key-hex>.pkl  one entry per derived value
    <dir>/quarantine/            entries that failed validation

Entry files embed a BLAKE2b digest of their pickled payload; a load that
fails the digest (or fails to unpickle, or was written under a different
schema or deriving-code version) **degrades to a miss** — the entry is
moved to ``quarantine/`` and the value is rebuilt, never served wrong and
never allowed to crash the run.  All writes go through
:func:`repro.util.atomicio.atomic_write`, so concurrent writers (crawl
shard workers race the parent on hot pages) are idempotent: both write
the same bytes to the same content address and the atomic rename makes
either winner correct.

The tier is size-capped: an in-memory index (rebuilt from a directory
scan on open, persisted to the manifest periodically) drives
oldest-first eviction once ``max_bytes`` is exceeded.  Losing an entry to
eviction — or to a concurrent evictor — is always safe: a miss rebuilds.

Counter semantics (``cache.<name>.disk_hit`` / ``.disk_miss`` /
``.promote`` / ``.write``) are owned by :mod:`repro.perf.cache`; this
module only reports per-instance totals so ``repro cache`` can show
lifetime hit rates.
"""

from __future__ import annotations

import importlib
import json
import os
import pickle
import zlib
from collections import OrderedDict
from hashlib import blake2b
from typing import Any, Dict, Hashable, Iterable, List, Optional, Tuple

from repro.util.atomicio import atomic_write

#: Disk-entry layout version.  Bumping it invalidates every existing
#: entry: stale-schema entries are quarantined on validate and read as
#: misses before that.
DISK_SCHEMA = 1

#: Default size cap — generous, because entries are small (a pickled DOM
#: runs tens of KB) and losing one only costs a rebuild.
DEFAULT_MAX_BYTES = 4 * 1024**3

#: Flush the manifest's entry metadata every this many stores (the index
#: is advisory — a directory scan on open is the ground truth).
_FLUSH_EVERY = 256

#: Sentinel for "no entry" — distinct from None, which is a legal cached
#: value (the notice cache remembers None verdicts).
DISK_MISS = object()

#: Caches whose values persist, with the modules whose source defines
#: their derivation.  A change to any deriving module changes that
#: cache's code digest and retires its entries (quarantined on validate,
#: missed before that) — the disk tier must never serve a value an older
#: build derived differently.
PERSISTENT_CACHES: Dict[str, Tuple[str, ...]] = {
    "dom": ("repro.html.parser", "repro.html.nodes"),
    "render": ("repro.html.parser", "repro.html.nodes", "repro.web.render"),
    "shingle": ("repro.html.parser", "repro.html.nodes", "repro.crawler.dagger"),
    "features": ("repro.html.parser", "repro.html.nodes", "repro.classify.features"),
    "notice": ("repro.html.parser", "repro.html.nodes", "repro.interventions.notices"),
}


def entry_filename(key: Hashable) -> str:
    """Stable file name for a cache key.

    Content keys are already 16-byte BLAKE2b digests and map straight to
    hex; composite keys (the render cache's ``(digest, profile)``) hash
    their parts' stable representations.  Pure function of the key — the
    replay shadows use it to test disk membership without touching disk.
    """
    if isinstance(key, bytes):
        return key.hex()
    digest = blake2b(digest_size=16)
    parts = key if isinstance(key, tuple) else (key,)
    for part in parts:
        digest.update(part if isinstance(part, bytes) else repr(part).encode("utf-8"))
        digest.update(b"\x1f")
    return digest.hexdigest()


def derivation_digests() -> Dict[str, str]:
    """Per-cache BLAKE2b digest of the deriving modules' source bytes."""
    sources: Dict[str, bytes] = {}
    digests: Dict[str, str] = {}
    for name, modules in PERSISTENT_CACHES.items():
        digest = blake2b(digest_size=8)
        for module_name in modules:
            blob = sources.get(module_name)
            if blob is None:
                module = importlib.import_module(module_name)
                path = module.__file__
                with open(path, "rb") as handle:
                    blob = handle.read()
                sources[module_name] = blob
            digest.update(blob)
            digest.update(b"\x00")
        digests[name] = digest.hexdigest()
    return digests


class DiskCache:
    """One cache directory: open, load/store entries, validate, evict."""

    def __init__(
        self,
        path: str,
        code_digests: Optional[Dict[str, str]] = None,
        max_bytes: int = DEFAULT_MAX_BYTES,
    ):
        self.path = os.path.abspath(path)
        self.code_digests = dict(code_digests or derivation_digests())
        self.max_bytes = max_bytes
        self.quarantine_dir = os.path.join(self.path, "quarantine")
        #: cache name -> filename -> size; ordered oldest-first, the
        #: eviction order.  Rebuilt from a scan on open.
        self._index: Dict[str, "OrderedDict[str, int]"] = {}
        self._total_bytes = 0
        self._stores_since_flush = 0
        #: Lifetime totals carried in the manifest across processes.
        self._hits: Dict[str, int] = {}
        self._misses: Dict[str, int] = {}
        self.quarantined = 0
        self._open()

    # ----------------------------------------------------------------- #
    # Open / manifest
    # ----------------------------------------------------------------- #

    def _manifest_path(self) -> str:
        return os.path.join(self.path, "manifest.json")

    def _open(self) -> None:
        os.makedirs(self.path, exist_ok=True)
        manifest = self._read_manifest()
        if manifest is not None:
            if manifest.get("schema") != DISK_SCHEMA:
                # A different layout version: retire everything at once.
                self._quarantine_all("schema")
                manifest = None
            else:
                stale = [
                    name for name, digest in self.code_digests.items()
                    if manifest.get("code_digests", {}).get(name) not in (None, digest)
                ]
                for name in stale:
                    self._quarantine_cache(name)
                self._hits = {
                    k: int(v) for k, v in manifest.get("hits", {}).items()
                }
                self._misses = {
                    k: int(v) for k, v in manifest.get("misses", {}).items()
                }
        self._scan()
        self._write_manifest()

    def _read_manifest(self) -> Optional[dict]:
        try:
            with open(self._manifest_path(), "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (OSError, ValueError):
            return None
        return manifest if isinstance(manifest, dict) else None

    def _write_manifest(self) -> None:
        entries = {
            name: {"count": len(files), "bytes": sum(files.values())}
            for name, files in sorted(self._index.items())
        }
        manifest = {
            "schema": DISK_SCHEMA,
            "code_digests": dict(sorted(self.code_digests.items())),
            "max_bytes": self.max_bytes,
            "entries": entries,
            "total_bytes": self._total_bytes,
            "hits": dict(sorted(self._hits.items())),
            "misses": dict(sorted(self._misses.items())),
        }
        with atomic_write(self._manifest_path()) as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")
        self._stores_since_flush = 0

    def _scan(self) -> None:
        """Rebuild the entry index from the directory (the ground truth:
        shard workers and concurrent runs write entries this process's
        manifest never saw)."""
        self._index = {}
        self._total_bytes = 0
        for name in sorted(self.code_digests):
            cache_dir = os.path.join(self.path, name)
            files: "OrderedDict[str, int]" = OrderedDict()
            try:
                listing = os.listdir(cache_dir)
            except OSError:
                listing = []
            stamped = []
            for filename in listing:
                if not filename.endswith(".pkl"):
                    continue
                full = os.path.join(cache_dir, filename)
                try:
                    stat = os.stat(full)
                except OSError:
                    continue
                stamped.append((stat.st_mtime, filename, stat.st_size))
            for _mtime, filename, size in sorted(stamped):
                files[filename] = size
                self._total_bytes += size
            self._index[name] = files

    # ----------------------------------------------------------------- #
    # Entry IO
    # ----------------------------------------------------------------- #

    def _entry_path(self, name: str, filename: str) -> str:
        return os.path.join(self.path, name, filename)

    def load(self, name: str, key: Hashable) -> Any:
        """The cached value for ``key``, or :data:`DISK_MISS`.

        Corrupt, truncated, stale-schema, or stale-code entries are
        quarantined and read as misses — a bad file can never crash a run
        or serve a wrong value.
        """
        filename = entry_filename(key) + ".pkl"
        path = self._entry_path(name, filename)
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except OSError:
            self._misses[name] = self._misses.get(name, 0) + 1
            return DISK_MISS
        value = self._decode(name, blob)
        if value is DISK_MISS:
            self._quarantine_entry(name, filename)
            self._misses[name] = self._misses.get(name, 0) + 1
            return DISK_MISS
        self._hits[name] = self._hits.get(name, 0) + 1
        return value

    def _decode(self, name: str, blob: bytes) -> Any:
        try:
            record = pickle.loads(blob)
        except Exception:
            return DISK_MISS
        if not isinstance(record, dict):
            return DISK_MISS
        if record.get("schema") != DISK_SCHEMA:
            return DISK_MISS
        if record.get("code_digest") != self.code_digests.get(name):
            return DISK_MISS
        payload = record.get("payload")
        if not isinstance(payload, bytes):
            return DISK_MISS
        digest = blake2b(payload, digest_size=16).hexdigest()
        if digest != record.get("payload_digest"):
            return DISK_MISS
        try:
            return pickle.loads(zlib.decompress(payload))
        except Exception:
            return DISK_MISS

    def store(self, name: str, key: Hashable, value: Any) -> bool:
        """Persist one derived value; returns False when it cannot be
        pickled (the memory tier still holds it; the disk tier just
        declines)."""
        try:
            payload = zlib.compress(
                pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL), 1
            )
        except Exception:
            return False
        record = {
            "schema": DISK_SCHEMA,
            "code_digest": self.code_digests.get(name),
            "payload_digest": blake2b(payload, digest_size=16).hexdigest(),
            "payload": payload,
        }
        blob = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
        filename = entry_filename(key) + ".pkl"
        cache_dir = os.path.join(self.path, name)
        os.makedirs(cache_dir, exist_ok=True)
        try:
            with atomic_write(os.path.join(cache_dir, filename), "wb") as handle:
                handle.write(blob)
        except OSError:
            return False
        files = self._index.setdefault(name, OrderedDict())
        previous = files.pop(filename, 0)
        files[filename] = len(blob)
        self._total_bytes += len(blob) - previous
        if self._total_bytes > self.max_bytes:
            self._evict_to(int(self.max_bytes * 0.9))
        self._stores_since_flush += 1
        if self._stores_since_flush >= _FLUSH_EVERY:
            self._write_manifest()
        return True

    def _evict_to(self, target_bytes: int) -> int:
        """Drop oldest entries (index order) until under ``target_bytes``."""
        evicted = 0
        for name in sorted(self._index):
            files = self._index[name]
            while files and self._total_bytes > target_bytes:
                filename, size = next(iter(files.items()))
                del files[filename]
                self._total_bytes -= size
                try:
                    os.unlink(self._entry_path(name, filename))
                except OSError:
                    pass
                evicted += 1
            if self._total_bytes <= target_bytes:
                break
        return evicted

    # ----------------------------------------------------------------- #
    # Quarantine
    # ----------------------------------------------------------------- #

    def _quarantine_entry(self, name: str, filename: str) -> None:
        os.makedirs(self.quarantine_dir, exist_ok=True)
        source = self._entry_path(name, filename)
        target = os.path.join(self.quarantine_dir, f"{name}-{filename}")
        try:
            os.replace(source, target)
        except OSError:
            try:
                os.unlink(source)
            except OSError:
                pass
        files = self._index.get(name)
        if files is not None:
            size = files.pop(filename, 0)
            self._total_bytes -= size
        self.quarantined += 1

    def _quarantine_cache(self, name: str) -> None:
        cache_dir = os.path.join(self.path, name)
        try:
            listing = sorted(os.listdir(cache_dir))
        except OSError:
            return
        for filename in listing:
            if filename.endswith(".pkl"):
                self._quarantine_entry(name, filename)

    def _quarantine_all(self, _reason: str) -> None:
        for name in sorted(self.code_digests):
            self._quarantine_cache(name)

    # ----------------------------------------------------------------- #
    # Inspection / maintenance (the ``repro cache`` subcommand)
    # ----------------------------------------------------------------- #

    def index_snapshot(self) -> Dict[str, frozenset]:
        """Per-cache frozen sets of entry file stems present right now —
        the disk shadow :class:`repro.perf.cache.CacheReplay` counts
        against, so disk hit/miss totals stay canonical at any ``--jobs``
        level (plain picklable data, rides inside checkpoints)."""
        return {
            name: frozenset(filename[:-4] for filename in files)
            for name, files in self._index.items()
        }

    def stats(self) -> dict:
        per_cache = {}
        for name in sorted(self.code_digests):
            files = self._index.get(name, {})
            hits = self._hits.get(name, 0)
            misses = self._misses.get(name, 0)
            per_cache[name] = {
                "entries": len(files),
                "bytes": sum(files.values()),
                "hits": hits,
                "misses": misses,
                "hit_rate": hits / (hits + misses) if hits + misses else None,
            }
        return {
            "path": self.path,
            "schema": DISK_SCHEMA,
            "max_bytes": self.max_bytes,
            "total_bytes": self._total_bytes,
            "utilization": (
                self._total_bytes / self.max_bytes if self.max_bytes else 0.0
            ),
            "entries": sum(len(files) for files in self._index.values()),
            "quarantined": self.quarantined,
            "caches": per_cache,
        }

    def validate(self) -> dict:
        """Check every entry's digest; quarantine failures.  Returns
        ``{"checked": n, "ok": n, "quarantined": n}``."""
        checked = ok = bad = 0
        for name in sorted(self.code_digests):
            for filename in list(self._index.get(name, ())):
                checked += 1
                path = self._entry_path(name, filename)
                try:
                    with open(path, "rb") as handle:
                        blob = handle.read()
                except OSError:
                    blob = b""
                if self._decode(name, blob) is DISK_MISS:
                    self._quarantine_entry(name, filename)
                    bad += 1
                else:
                    ok += 1
        self._write_manifest()
        return {"checked": checked, "ok": ok, "quarantined": bad}

    def flush(self) -> None:
        """Persist the manifest's entry metadata now."""
        self._write_manifest()

    def clear(self) -> int:
        """Remove every entry, the quarantine, and reset the manifest.
        Returns the number of entry files removed."""
        removed = 0
        for name in sorted(self._index):
            for filename in list(self._index[name]):
                try:
                    os.unlink(self._entry_path(name, filename))
                except OSError:
                    pass
                removed += 1
            try:
                os.rmdir(os.path.join(self.path, name))
            except OSError:
                pass
        try:
            for filename in os.listdir(self.quarantine_dir):
                try:
                    os.unlink(os.path.join(self.quarantine_dir, filename))
                except OSError:
                    pass
            os.rmdir(self.quarantine_dir)
        except OSError:
            pass
        self._index = {}
        self._total_bytes = 0
        self._hits = {}
        self._misses = {}
        self.quarantined = 0
        self._write_manifest()
        return removed

    def __repr__(self) -> str:
        return (f"DiskCache({self.path!r}, "
                f"{sum(len(f) for f in self._index.values())} entries, "
                f"{self._total_bytes} bytes)")
