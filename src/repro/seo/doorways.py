"""Doorway sites.

A doorway is a site (usually a compromised legitimate one, sometimes a
freshly registered throwaway) hosting cloaked pages that target a handful of
a vertical's search terms at keyword-friendly paths like
``/cheap-louis-vuitton-7.html``.  The root of a compromised site keeps
serving the owner's original content — the behaviour that both hides the
compromise from the owner and defeats Google's root-only "hacked" labeling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.util.ids import slugify
from repro.util.rng import RandomStreams
from repro.util.simtime import SimDate
from repro.web.fetch import PageResult, VisitorProfile
from repro.web.sites import DynamicPage, Site, SiteKind, StaticPage
from repro.seo.cloaking import DoorwayPageContext
from repro.seo.templates import TemplateTheme


@dataclass
class DoorwayPage:
    """One cloaked page on a doorway, targeting one term."""

    path: str
    term: str
    relevance: float
    context: DoorwayPageContext


class Doorway:
    """A doorway working for one campaign in one vertical."""

    def __init__(
        self,
        campaign: str,
        vertical: str,
        site: Site,
        compromised: bool,
        created_on: SimDate,
        quality: float,
    ):
        self.campaign = campaign
        self.vertical = vertical
        self.site = site
        self.compromised = compromised
        self.created_on = created_on
        #: Doorway-specific SEO effectiveness multiplier in (0, 1].
        self.quality = quality
        self.pages: List[DoorwayPage] = []
        #: True when the compromised site's root page is itself cloaked.
        self.root_injected = False

    @property
    def host(self) -> str:
        return self.site.host

    def __repr__(self) -> str:
        return f"Doorway({self.host!r}, campaign={self.campaign!r}, pages={len(self.pages)})"


def build_doorway(
    campaign: str,
    vertical: str,
    terms: Sequence[str],
    site: Site,
    compromised: bool,
    day: SimDate,
    theme: TemplateTheme,
    kit,
    landing_url: Callable[[], Optional[str]],
    streams: RandomStreams,
) -> Doorway:
    """Inject cloaked pages for the given terms onto a site.

    For compromised sites the original root page is preserved; for dedicated
    doorways a generic SEO root is installed too.
    """
    rng = streams.child(f"doorway:{site.host}").get("build")
    quality = rng.uniform(0.4, 1.0)
    doorway = Doorway(campaign, vertical, site, compromised, day, quality)
    original_html: Optional[str] = None
    if compromised:
        site.kind = SiteKind.COMPROMISED
        root = site.get_page("/")
        if isinstance(root, StaticPage):
            original_html = root.html
    else:
        if site.get_page("/") is None:
            root_html = theme.doorway_seo_page(vertical.lower(), vertical, f"{site.host}:root")
            site.add_page(StaticPage("/", html=root_html))

    for term in terms:
        suffix = rng.randint(1, 99)
        path = f"/{slugify(term)}-{suffix}.html"
        if site.get_page(path) is not None:
            path = f"/{slugify(term)}-{suffix}-{rng.randint(100, 999)}.html"
        seo_html = theme.doorway_seo_page(term, vertical, f"{site.host}{path}")
        context = DoorwayPageContext(
            campaign=campaign,
            vertical=vertical,
            term=term,
            landing_url=landing_url,
            seo_html=seo_html,
            original_html=original_html,
        )
        responder = _make_responder(kit, context)
        site.add_page(DynamicPage(path, responder))
        # Keyword stuffing earns near-max on-page relevance.
        relevance = rng.uniform(0.65, 0.95)
        doorway.pages.append(
            DoorwayPage(path=path, term=term, relevance=relevance, context=context)
        )
    return doorway


@dataclass
class KitResponder:
    """Picklable responder binding a cloaking kit to one page context.

    Doorway pages live in checkpointed world state, so their responders
    must survive a pickle round-trip — a local closure would not."""

    kit: object
    context: DoorwayPageContext

    def __call__(self, profile: VisitorProfile, day: SimDate) -> PageResult:
        return self.kit.respond(self.context, profile, day)


def _make_responder(kit, context: DoorwayPageContext) -> KitResponder:
    return KitResponder(kit, context)
