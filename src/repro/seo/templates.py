"""Per-campaign HTML templates.

Campaigns "develop in-house templates for the large-scale deployment of
online storefronts (e.g., customized templates for Zen Cart or Magento
providing a certain look and feel)" (Section 4.2.1).  That is the entire
reason HTML bag-of-words features identify campaigns — so template realism
matters here:

* every theme shares generic e-commerce boilerplate (cart tables, checkout
  buttons, platform cookies), keeping the classification problem non-trivial;
* each theme family adds family-level markup (a handful of campaigns share a
  family, producing the paper's confusable pairs);
* each campaign adds its own telltales: class-name prefix, analytics
  provider account, stylesheet path, generator meta, template comments.

Pages also carry per-page randomness (product mix, filler text) so two pages
from one store are similar, not identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.html.builder import PageBuilder
from repro.html.nodes import Element
from repro.util.ids import slugify
from repro.util.rng import RandomStreams

#: Web-analytics providers seen on counterfeit stores (Section 4.2.3).
ANALYTICS_PROVIDERS = ("51.la", "cnzz.com", "statcounter.com", "ajstat.com")

#: E-commerce platforms whose cookies the store detector keys on.
PLATFORM_COOKIES = {
    "zencart": ("zenid", "zencart_session"),
    "magento": ("frontend", "magento_cart"),
}


@dataclass(frozen=True)
class ThemeFamily:
    """A base template several campaigns customize (e.g., one widely-sold
    Zen Cart skin)."""

    family_id: str
    platform: str  # 'zencart' | 'magento'
    layout_class: str
    nav_style: str  # 'topnav' | 'sidenav'
    footer_text: str


THEME_FAMILIES: Tuple[ThemeFamily, ...] = (
    ThemeFamily("zc-classic", "zencart", "zc-main-wrapper", "topnav", "Powered by Zen Cart"),
    ThemeFamily("zc-luxe", "zencart", "luxe-container", "sidenav", "Powered by Zen Cart"),
    ThemeFamily("zc-outlet", "zencart", "outlet-grid", "topnav", "Zen Cart e-commerce"),
    ThemeFamily("mg-lux", "magento", "mg-page-wrapper", "topnav", "Magento Commerce"),
    ThemeFamily("mg-mall", "magento", "mall-columns", "sidenav", "Magento Commerce"),
    ThemeFamily("mg-fashion", "magento", "fashion-frame", "topnav", "Magento Demo Store"),
    ThemeFamily("zc-sport", "zencart", "sport-shell", "sidenav", "Powered by Zen Cart"),
    ThemeFamily("mg-euro", "magento", "euro-layout", "topnav", "Magento Commerce"),
    ThemeFamily("zc-jp", "zencart", "jp-base", "topnav", "Zen Cart e-commerce"),
    ThemeFamily("mg-direct", "magento", "direct-root", "sidenav", "Magento Commerce"),
)

_FILLER_SENTENCES = (
    "Free shipping worldwide on all orders over $99.",
    "Top quality guaranteed with fast delivery to your door.",
    "Shop the latest styles at unbeatable factory prices.",
    "100% secure checkout and easy returns within 30 days.",
    "New arrivals added every week, do not miss out.",
    "Best price online, save up to 80% off retail today.",
    "Trusted by thousands of happy customers worldwide.",
    "Limited stock available, order now while supplies last.",
)


class TemplateTheme:
    """One campaign's in-house template."""

    def __init__(self, campaign_name: str, family: ThemeFamily, streams: RandomStreams):
        self.campaign_name = campaign_name
        self.family = family
        self._streams = streams.child(f"theme:{slugify(campaign_name)}")
        rng = self._streams.get("identity")
        slug = slugify(campaign_name)
        #: A fraction of campaigns deploy the stock family template with
        #: almost no customization — these are the classifier's confusable
        #: cases (the paper's accuracy was 86.8%, not 100%).
        self.stock_template = rng.random() < 0.35
        if self.stock_template:
            self.class_prefix = f"{family.family_id}-std"
            self.stylesheet_path = f"/includes/templates/{family.family_id}/css/style.css"
            self.generator_tag = f"{family.platform}-stock"
            self.template_comment = f"tpl:{family.family_id}:stock"
        else:
            self.class_prefix = f"{slug[:6]}{rng.randint(10, 99)}"
            self.stylesheet_path = f"/includes/templates/{slug[:8]}/css/style{rng.randint(1, 4)}.css"
            self.generator_tag = f"{self.family.platform}-{slug[:5]}-{rng.randint(1, 9)}"
            self.template_comment = f"tpl:{slug[:10]}:{rng.randint(1000, 9999)}"
        self.analytics_provider = rng.choice(ANALYTICS_PROVIDERS)
        self.analytics_account = f"{rng.randint(100000, 999999)}"
        #: Asian-language source comments (Section 3.1.2 footnote).
        self.kit_comment = rng.choice(("zhuanqian kit v2", "waimao seo", "paiming tool", ""))

    @property
    def platform(self) -> str:
        return self.family.platform

    def platform_cookies(self) -> Tuple[str, ...]:
        return PLATFORM_COOKIES[self.family.platform]

    # ------------------------------------------------------------------ #
    # Shared chrome
    # ------------------------------------------------------------------ #

    def _chrome(self, page: PageBuilder, title_text: str) -> Element:
        """Family + campaign chrome; returns the main content element."""
        page.meta("generator", self.generator_tag)
        page.stylesheet(self.stylesheet_path)
        page.stylesheet(f"/skin/{self.family.family_id}/base.css")
        page.comment(self.template_comment)
        if self.kit_comment:
            page.comment(self.kit_comment)
        wrapper = page.div(cls=f"{self.family.layout_class} {self.class_prefix}-shell")
        header = wrapper.add("div", {"class": f"{self.class_prefix}-header"})
        header.add("h1", {"class": "site-title"}, text=title_text)
        nav = wrapper.add(
            "ul", {"class": f"nav-{self.family.nav_style} {self.class_prefix}-nav"}
        )
        for label in ("Home", "New Arrivals", "Best Sellers", "Contact Us"):
            item = nav.add("li", {"class": "nav-item"})
            item.add("a", {"href": f"/{slugify(label)}.html"}, text=label)
        main = wrapper.add("div", {"class": f"{self.class_prefix}-main content-area"})
        footer = wrapper.add("div", {"class": "footer"})
        footer.add("p", {"class": "footer-note"}, text=self.family.footer_text)
        return main

    def _analytics(self, page: PageBuilder) -> None:
        page.script(
            src=f"http://js.{self.analytics_provider}/stat.js?id={self.analytics_account}"
        )

    # ------------------------------------------------------------------ #
    # Storefront pages
    # ------------------------------------------------------------------ #

    def storefront_home(self, store, page_seed: str) -> str:
        """The store's landing page: product grid, cart links, merchant id."""
        rng = self._streams.get(f"store-page:{page_seed}")
        brand = store.brands[0]
        page = PageBuilder(title=f"{brand} Outlet Store - Official Online Shop")
        main = self._chrome(page, f"{brand} Online Store")
        main.add("p", {"class": "welcome"}, text=rng.choice(_FILLER_SENTENCES))
        grid = main.add("div", {"class": f"{self.class_prefix}-grid product-grid"})
        sample = min(len(store.products), rng.randint(6, 10))
        for product in rng.sample(store.products, sample):
            card = grid.add("div", {"class": "product-card"})
            card.add("img", {"src": f"/images/{product.sku}.jpg", "alt": product.title})
            card.add("a", {"href": f"/product/{product.sku}.html", "class": "product-link"},
                     text=product.title)
            card.add("span", {"class": "price"}, text=f"${product.price:.2f}")
            card.add("a", {"href": f"/cart?add={product.sku}", "class": "btn-cart"},
                     text="Add to Cart")
        sidebar = main.add("div", {"class": "checkout-box"})
        sidebar.add("a", {"href": "/checkout", "class": "btn-checkout"}, text="Checkout")
        # Merchant identifier exposed in HTML source (Section 3.1.2).
        main.add(
            "div",
            {"class": "payment-methods", "data-merchant": store.processor.merchant_id(store.store_id)},
            text=f"We accept Visa / MasterCard via {store.processor.name}",
        )
        self._analytics(page)
        return page.html()

    def storefront_product(self, store, product, page_seed: str) -> str:
        rng = self._streams.get(f"product-page:{page_seed}")
        page = PageBuilder(title=f"{product.title} - ${product.price:.2f}")
        main = self._chrome(page, product.title)
        detail = main.add("div", {"class": f"{self.class_prefix}-detail product-detail"})
        detail.add("img", {"src": f"/images/{product.sku}-large.jpg", "alt": product.title})
        detail.add("span", {"class": "price"}, text=f"${product.price:.2f}")
        detail.add("span", {"class": "msrp"}, text=f"Retail: ${product.msrp:.2f}")
        detail.add("p", {"class": "description"}, text=rng.choice(_FILLER_SENTENCES))
        detail.add("a", {"href": f"/cart?add={product.sku}", "class": "btn-cart"},
                   text="Add to Cart")
        self._analytics(page)
        return page.html()

    def storefront_checkout(self, store, order_number: Optional[int] = None) -> str:
        """Checkout page; shows the allocated order number before payment —
        the leak the purchase-pair technique reads."""
        page = PageBuilder(title="Checkout - Secure Payment")
        main = self._chrome(page, "Secure Checkout")
        form = main.add("form", {"action": "/checkout/submit", "method": "post",
                                 "class": f"{self.class_prefix}-checkout checkout-form"})
        if order_number is not None:
            form.add("div", {"class": "order-number", "id": "order-no"},
                     text=f"Order Number: {order_number}")
        for field_name in ("cardholder", "card_number", "expiry", "cvv"):
            row = form.add("div", {"class": "form-row"})
            row.add("label", {"for": field_name}, text=field_name.replace("_", " ").title())
            row.add("input", {"type": "text", "name": field_name, "id": field_name})
        form.add("input", {"type": "hidden", "name": "merchant",
                           "value": store.processor.merchant_id(store.store_id)})
        form.add("button", {"type": "submit", "class": "btn-pay"}, text="Pay Now")
        self._analytics(page)
        return page.html()

    # ------------------------------------------------------------------ #
    # Doorway SEO content
    # ------------------------------------------------------------------ #

    def doorway_seo_page(self, term: str, vertical_name: str, page_seed: str) -> str:
        """Keyword-stuffed content served to search crawlers."""
        rng = self._streams.get(f"doorway-page:{page_seed}")
        page = PageBuilder(title=f"{term} | {vertical_name} official outlet")
        page.meta("description", f"{term} - best {vertical_name} deals online")
        page.meta("keywords", ", ".join([term, vertical_name.lower(), "outlet", "cheap", "sale"]))
        page.comment(self.template_comment)
        body_div = page.div(cls=f"{self.class_prefix}-seo seo-content")
        for level in (1, 2, 3):
            body_div.add(f"h{level}", text=f"{term} {rng.choice(('sale', 'outlet', 'online', 'store'))}")
        for _ in range(rng.randint(4, 8)):
            sentence = (
                f"{term} {rng.choice(_FILLER_SENTENCES).lower()} "
                f"Buy {vertical_name.lower()} {rng.choice(('now', 'today', 'online'))}."
            )
            body_div.add("p", {"class": "kw"}, text=sentence)
        links = body_div.add("ul", {"class": "related-links"})
        for _ in range(rng.randint(3, 6)):
            links.add("li").add(
                "a", {"href": f"/{slugify(term)}-{rng.randint(1, 99)}.html"}, text=term
            )
        return page.html()


def assign_theme(
    campaign_name: str, streams: RandomStreams, family: Optional[ThemeFamily] = None
) -> TemplateTheme:
    """Build a campaign's theme, picking a family deterministically when not
    pinned by the scenario."""
    if family is None:
        rng = streams.child(f"theme:{slugify(campaign_name)}").get("family")
        family = rng.choice(THEME_FAMILIES)
    return TemplateTheme(campaign_name, family, streams)
