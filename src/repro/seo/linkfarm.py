"""Backlink farms.

Section 2: doorways "obtain high-ranking either by mimicking the structure
of high reputation sites (typically by creating backlinks to each other) or
by compromising existing sites and exploiting the positive reputation that
they have accrued."  Compromised doorways inherit host authority; this
module supplies the other mechanism — a campaign-operated link farm whose
PageRank-style link equity gives *dedicated* doorways their standing with
the search engine.

The farm is a directed graph: a core of interlinked farm sites (expired
domains, splogs, forum-profile links) pointing at the campaign's dedicated
doorways.  The engine-visible authority of a dedicated doorway is its
PageRank share of the farm, scaled — so bigger farms and better-connected
doorways genuinely rank higher, and the farm's shape is an honest input
rather than a drawn constant.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import networkx as nx

from repro.util.rng import RandomStreams

#: PageRank share -> engine authority scaling.
EQUITY_AUTHORITY_SCALE = 6.0
AUTHORITY_FLOOR = 0.05
AUTHORITY_CAP = 0.55


class LinkFarm:
    """One campaign's backlink network."""

    def __init__(self, campaign: str, streams: RandomStreams, farm_size: int = 40):
        if farm_size < 2:
            raise ValueError("farm_size must be >= 2")
        self.campaign = campaign
        self._rng = streams.child(f"linkfarm:{campaign}").get("build")
        self.graph: "nx.DiGraph" = nx.DiGraph()
        self._doorway_hosts: List[str] = []
        self._pagerank: Optional[Dict[str, float]] = None
        for index in range(farm_size):
            self.graph.add_node(f"farm:{index}", kind="farm")
        # Farm core: sparse random interlinking (splogs cite each other).
        nodes = [f"farm:{i}" for i in range(farm_size)]
        for node in nodes:
            for target in self._rng.sample(nodes, min(3, farm_size - 1)):
                if target != node:
                    self.graph.add_edge(node, target)

    @property
    def farm_size(self) -> int:
        return sum(1 for _, kind in self.graph.nodes(data="kind") if kind == "farm")

    def add_doorway(self, host: str, backlinks: Optional[int] = None) -> int:
        """Point farm sites at a new dedicated doorway; returns the number
        of backlinks created."""
        if host in self._doorway_hosts:
            raise ValueError(f"doorway {host!r} already in the farm")
        farm_nodes = [n for n, k in self.graph.nodes(data="kind") if k == "farm"]
        if backlinks is None:
            backlinks = self._rng.randint(
                max(2, len(farm_nodes) // 6), max(3, len(farm_nodes) // 2)
            )
        backlinks = min(backlinks, len(farm_nodes))
        self.graph.add_node(host, kind="doorway")
        for source in self._rng.sample(farm_nodes, backlinks):
            self.graph.add_edge(source, host)
        self._doorway_hosts.append(host)
        self._pagerank = None  # invalidate
        return backlinks

    def _ranks(self) -> Dict[str, float]:
        if self._pagerank is None:
            self._pagerank = nx.pagerank(self.graph, alpha=0.85)
        return self._pagerank

    def link_equity(self, host: str) -> float:
        """The doorway's PageRank share of the farm (0 if unknown)."""
        return self._ranks().get(host, 0.0)

    def authority_of(self, host: str) -> float:
        """Engine-visible authority for a dedicated doorway."""
        equity = self.link_equity(host)
        authority = AUTHORITY_FLOOR + equity * EQUITY_AUTHORITY_SCALE
        return min(AUTHORITY_CAP, authority)

    def doorway_hosts(self) -> List[str]:
        return list(self._doorway_hosts)

    def backlink_count(self, host: str) -> int:
        if host not in self.graph:
            return 0
        return self.graph.in_degree(host)
