"""Campaign agents.

A :class:`Campaign` owns its storefronts, doorway fleet, cloaking kit, page
theme, C&C directory, and per-vertical effort schedules, and reacts to
interventions: after a storefront domain seizure it rotates the store onto a
backup domain and repoints doorways via the C&C (Section 5.3.2); campaigns
configured for proactive rotation move domains on a timer even without a
seizure (Figure 5's coco*.com behaviour).

The campaign interacts with the rest of the simulation through a ``world``
object (see :class:`repro.ecosystem.world.World`) supplying the web, the
search index, domain registration, the compromise pool, and the event log.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.util.ids import slugify
from repro.util.rng import RandomStreams
from repro.util.simtime import DateRange, SimDate
from repro.web.sites import DynamicPage, Site, SiteKind, StaticPage
from repro.web.fetch import PageResult
from repro.market.products import generate_products
from repro.market.stores import Store
from repro.seo.cloaking import CloakingType, make_kit
from repro.seo.cnc import CommandAndControl
from repro.seo.doorways import Doorway, build_doorway
from repro.seo.linkfarm import LinkFarm
from repro.seo.schedule import EffortSchedule, random_schedule
from repro.seo.templates import THEME_FAMILIES, TemplateTheme, assign_theme


class ScheduledSignal:
    """Doorway SEO signal: the campaign's effort level times page quality.

    Structured (rather than a closure) so the search index can group
    same-schedule entries and the engine can evaluate each schedule once
    per SERP instead of once per candidate — every page of every doorway
    in a (campaign, vertical) shares one :class:`EffortSchedule`.
    """

    __slots__ = ("schedule", "quality")

    def __init__(self, schedule: EffortSchedule, quality: float):
        self.schedule = schedule
        self.quality = quality

    def __call__(self, day) -> float:
        return self.schedule.level(day) * self.quality


class _StorefrontHome:
    """Picklable generator for a store's home page (checkpointable state)."""

    __slots__ = ("theme", "store", "host")

    def __init__(self, theme: TemplateTheme, store: Store, host: str):
        self.theme = theme
        self.store = store
        self.host = host

    def __call__(self) -> str:
        return self.theme.storefront_home(self.store, self.host)


class _StorefrontProduct:
    """Picklable generator for one product page."""

    __slots__ = ("theme", "store", "product", "key")

    def __init__(self, theme: TemplateTheme, store: Store, product, key: str):
        self.theme = theme
        self.store = store
        self.product = product
        self.key = key

    def __call__(self) -> str:
        return self.theme.storefront_product(self.store, self.product, self.key)


class _StorefrontCheckout:
    """Picklable generator for the checkout page."""

    __slots__ = ("theme", "store")

    def __init__(self, theme: TemplateTheme, store: Store):
        self.theme = theme
        self.store = store

    def __call__(self) -> str:
        return self.theme.storefront_checkout(self.store, None)


class _CheckoutConfirm:
    """Picklable responder for /checkout/confirm: allocates an order number
    per request (the purchase-pair observable)."""

    __slots__ = ("theme", "store", "cookies")

    def __init__(self, theme: TemplateTheme, store: Store, cookies: tuple):
        self.theme = theme
        self.store = store
        self.cookies = cookies

    def __call__(self, profile, day) -> PageResult:
        number = self.store.allocate_order_number(day)
        return PageResult(
            html=self.theme.storefront_checkout(self.store, number),
            cookies=self.cookies,
        )


class _CncLanding:
    """Picklable C&C landing-URL lookup bound to one (campaign, store).

    Doorway page contexts hold one of these; like :class:`ScheduledSignal`
    it is a class rather than a closure so checkpointed worlds pickle."""

    __slots__ = ("campaign", "store_id")

    def __init__(self, campaign: "Campaign", store_id: str):
        self.campaign = campaign
        self.store_id = store_id

    def __call__(self) -> Optional[str]:
        assert self.campaign.cnc is not None
        return self.campaign.cnc.landing_url(self.store_id)


@dataclass
class CampaignSpec:
    """Static description of one campaign (Table 2 row, roughly)."""

    name: str
    verticals: List[str]
    doorways: int
    stores: int
    brands: int
    #: Peak poisoning duration hint, days (Table 2's "Peak" column).
    peak_days: int
    cloaking: CloakingType = CloakingType.IFRAME
    peak_level: float = 0.75
    background_level: float = 0.03
    compromised_fraction: float = 0.85
    #: Fraction of compromised doorways whose *root* is also cloaked (these
    #: are the PSRs the root-only "hacked" label can actually mark).
    root_injection_fraction: float = 0.2
    #: Mean days from a store seizure to repointing doorways at a backup.
    reaction_delay_mean: float = 7.0
    #: Rotate storefront domains proactively every N days (None = reactive only).
    proactive_rotation_days: Optional[int] = None
    terms_per_doorway: Tuple[int, int] = (4, 8)
    #: Pin the theme family (family_id) for confusability experiments.
    theme_family: Optional[str] = None
    #: Brands guaranteed to enter the campaign's pool beyond the vertical
    #: anchors (e.g., BIGLOVE's Chanel storefront).
    extra_brands: List[str] = field(default_factory=list)
    #: Pin the main SEO burst to start this many days into the window
    #: (None = random placement).
    main_burst_start_offset: Optional[int] = None
    #: Stop all SEO on this day (ISO string), e.g. after losing a supplier.
    shutdown_day: Optional[str] = None

    def __post_init__(self):
        if not self.verticals:
            raise ValueError(f"campaign {self.name!r} must target at least one vertical")
        if self.stores < 1 or self.doorways < 1:
            raise ValueError(f"campaign {self.name!r} needs stores and doorways")
        if self.brands < 1:
            raise ValueError(f"campaign {self.name!r} needs at least one brand")


@dataclass
class _PendingDoorway:
    day: SimDate
    vertical: str


@dataclass
class _PendingRotation:
    due: SimDate
    store: Store
    reason: str  # 'seizure' | 'proactive'


_LOCALES = ("us", "us", "us", "uk", "de", "jp", "au", "fr", "it")


class Campaign:
    """Runtime state and behaviour of one SEO campaign."""

    def __init__(self, spec: CampaignSpec, streams: RandomStreams):
        self.spec = spec
        self.name = spec.name
        self._streams = streams.child(f"campaign:{slugify(spec.name)}")
        self._rng = self._streams.get("lifecycle")
        family = None
        if spec.theme_family is not None:
            matches = [f for f in THEME_FAMILIES if f.family_id == spec.theme_family]
            if not matches:
                raise ValueError(f"unknown theme family {spec.theme_family!r}")
            family = matches[0]
        self.theme: TemplateTheme = assign_theme(spec.name, self._streams, family)
        self.kit = make_kit(spec.cloaking, self._streams, spec.name)
        self.cnc: Optional[CommandAndControl] = None
        self.stores: List[Store] = []
        self.doorways: List[Doorway] = []
        self.schedules: Dict[str, EffortSchedule] = {}
        self._stores_by_vertical: Dict[str, List[Store]] = {}
        self._doorway_plan: List[_PendingDoorway] = []
        self._pending_rotations: List[_PendingRotation] = []
        self._rotation_scheduled: Dict[str, SimDate] = {}
        self._last_proactive: Dict[str, SimDate] = {}
        self._resign_scheduled: Dict[str, SimDate] = {}
        self.brand_pool: List[str] = []
        #: Backlink farm powering the campaign's dedicated doorways.
        self.link_farm = LinkFarm(
            spec.name, self._streams,
            farm_size=max(10, min(120, spec.doorways * 2)),
        )

    # ------------------------------------------------------------------ #
    # Setup
    # ------------------------------------------------------------------ #

    def setup(self, world) -> None:
        """Create stores, schedules, C&C, and the doorway rollout plan."""
        spec = self.spec
        window: DateRange = world.window
        self.cnc = CommandAndControl(self.name, world.forge.cnc_domain(self.name))
        self._build_brand_pool(world)
        self._build_schedules(world, window)
        self._build_stores(world)
        self._plan_doorways(window)

    def _build_brand_pool(self, world) -> None:
        anchors: List[str] = []
        for vertical_name in self.spec.verticals:
            vertical = world.verticals[vertical_name]
            anchors.extend(b for b in vertical.brands if b not in anchors)
        pool = list(anchors)
        for extra in self.spec.extra_brands:
            if extra not in pool:
                pool.append(extra)
        if len(pool) < self.spec.brands:
            extras = [
                b.name for b in world.brand_catalog.all() if b.name not in pool
            ]
            self._rng.shuffle(extras)
            pool.extend(extras[: self.spec.brands - len(pool)])
        self.brand_pool = pool[: max(self.spec.brands, len(self.spec.extra_brands) + 1)]

    def _build_schedules(self, world, window: DateRange) -> None:
        shutdown = SimDate(self.spec.shutdown_day) if self.spec.shutdown_day else None
        for vertical_name in self.spec.verticals:
            schedule = random_schedule(
                self._streams,
                f"{vertical_name}",
                window,
                peak_days_hint=self.spec.peak_days,
                peak_level=self.spec.peak_level * self._rng.uniform(0.85, 1.1),
                background=self.spec.background_level,
                main_start_offset=self.spec.main_burst_start_offset,
                # Campaign-qualified so no two live schedules ever share a
                # grouping key (the stream name above is only unique within
                # this campaign's RNG subtree).
                group_key=f"{self.spec.name}:{vertical_name}",
            )
            if shutdown is not None:
                schedule.shutdown(shutdown)
            self.schedules[vertical_name] = schedule

    def _build_stores(self, world) -> None:
        spec = self.spec
        per_vertical = max(1, spec.stores // len(spec.verticals))
        remaining = spec.stores
        for index, vertical_name in enumerate(spec.verticals):
            count = per_vertical
            if index == len(spec.verticals) - 1:
                count = max(1, remaining)
            count = min(count, remaining) if remaining else 0
            for slot in range(count):
                self._create_store(world, vertical_name, slot)
            remaining -= count
            if remaining <= 0:
                remaining = 0
        # One dedicated store per pinned extra brand (e.g., BIGLOVE's
        # Chanel storefront of Figure 5), anchored in the first vertical.
        for offset, extra in enumerate(self.spec.extra_brands):
            self._create_store(
                world, self.spec.verticals[0], 1000 + offset, anchor_brand=extra
            )

    def _create_store(
        self, world, vertical_name: str, slot: int, anchor_brand: Optional[str] = None
    ) -> Store:
        vertical = world.verticals[vertical_name]
        anchor = anchor_brand if anchor_brand is not None else self._rng.choice(vertical.brands)
        locale = self._rng.choice(_LOCALES)
        store_id = f"{slugify(self.name)}-{slugify(vertical_name)}-{slot}"
        brands = [anchor]
        extra_count = self._rng.randint(0, min(2, max(0, len(self.brand_pool) - 1)))
        extras = [b for b in self.brand_pool if b != anchor]
        if extras and extra_count:
            brands.extend(self._rng.sample(extras, min(extra_count, len(extras))))
        products: List = []
        for brand_name in brands:
            brand = world.brand_catalog.get(brand_name)
            products.extend(generate_products(brand, 12, self._streams.child(store_id)))
        locale_tag = "" if locale == "us" else locale
        domain = world.register_domain(
            world.forge.store_domain(anchor, locale_tag), world.window.start
        )
        processor = world.payment_network.assign(store_id, self._streams)
        store = Store(
            store_id=store_id,
            campaign=self.name,
            vertical=vertical_name,
            brands=brands,
            products=products,
            processor=processor,
            first_domain=domain,
            opened_on=world.window.start,
            locale=locale,
            order_number_start=self._rng.randint(400, 5000),
            platform=self.theme.platform,
            order_creation_rate=self._rng.uniform(0.008, 0.016),
            completion_rate=self._rng.uniform(0.5, 0.7),
            awstats_public=self._rng.random() < 0.09,
        )
        store.page_factory = self._store_page_factory
        world.web.add_site(store.build_site(world.window.start))
        self.stores.append(store)
        self._stores_by_vertical.setdefault(vertical_name, []).append(store)
        assert self.cnc is not None
        self.cnc.set_landing(store.store_id, f"http://{domain.name}/", world.window.start)
        world.track_store(self, store)
        return store

    def _store_page_factory(self, store: Store, site: Site) -> None:
        """Build a store's pages on a (possibly new) domain."""
        cookies = self.theme.platform_cookies() + (store.processor.cookie_name,)
        host = site.host
        theme = self.theme
        site.add_page(
            StaticPage(
                "/",
                generator=_StorefrontHome(theme, store, host),
                cookies=cookies,
            )
        )
        for product in store.products[:6]:
            site.add_page(
                StaticPage(
                    f"/product/{product.sku}.html",
                    generator=_StorefrontProduct(
                        theme, store, product, f"{host}:{product.sku}"
                    ),
                    cookies=cookies,
                )
            )
        site.add_page(
            StaticPage(
                "/checkout",
                generator=_StorefrontCheckout(theme, store),
                cookies=cookies,
            )
        )
        site.add_page(
            DynamicPage("/checkout/confirm", _CheckoutConfirm(theme, store, cookies))
        )

    def _plan_doorways(self, window: DateRange) -> None:
        spec = self.spec
        plan: List[_PendingDoorway] = []
        for index in range(spec.doorways):
            vertical_name = spec.verticals[index % len(spec.verticals)]
            schedule = self.schedules[vertical_name]
            if self._rng.random() < 0.6 and schedule.bursts:
                burst = self._rng.choice(schedule.bursts)
                day = window.clip(burst.start + self._rng.randint(0, 9))
            else:
                day = window.start + self._rng.randint(0, len(window) - 1)
            plan.append(_PendingDoorway(day=day, vertical=vertical_name))
        plan.sort(key=lambda p: p.day.ordinal)
        self._doorway_plan = plan

    # ------------------------------------------------------------------ #
    # Daily behaviour
    # ------------------------------------------------------------------ #

    def on_day(self, world, day: SimDate) -> None:
        self._create_due_doorways(world, day)
        self._detect_seizures(world, day)
        self._schedule_proactive_rotations(world, day)
        self._execute_due_rotations(world, day)
        self._resign_frozen_processors(world, day)

    def day_has_work(self, world, day: SimDate, blacklist_active: bool = True) -> bool:
        """Exact no-op precheck for :meth:`on_day`.

        Returns False only when every daily sub-step would provably draw
        no randomness and mutate no state, so the simulator's batched
        campaign pass can skip this campaign without changing any RNG
        stream or world state.  Each clause mirrors the entry condition of
        the corresponding ``on_day`` sub-method; keep them in sync.
        ``blacklist_active`` lets the caller hoist the world-level
        "any processor blacklisted?" check out of the per-campaign loop.
        """
        if self._doorway_plan and self._doorway_plan[0].day <= day:
            return True  # _create_due_doorways pops a due entry
        for rotation in self._pending_rotations:
            if rotation.due <= day:
                return True  # _execute_due_rotations rotates
        interval = self.spec.proactive_rotation_days
        for store in self.stores:
            if store.store_id not in self._rotation_scheduled:
                if store.current_domain.seized_as_of(day):
                    return True  # _detect_seizures schedules (and draws)
                if interval is not None and day - self._last_proactive.get(
                    store.store_id, store.opened_on
                ) >= interval:
                    return True  # _schedule_proactive_rotations schedules
        if blacklist_active:
            network = world.payment_network
            for store in self.stores:
                if network.is_blacklisted(store.processor.name):
                    return True  # _resign_frozen_processors reacts (and draws)
        return False

    def _create_due_doorways(self, world, day: SimDate) -> None:
        while self._doorway_plan and self._doorway_plan[0].day <= day:
            pending = self._doorway_plan.pop(0)
            self._create_doorway(world, day, pending.vertical)

    def _create_doorway(self, world, day: SimDate, vertical_name: str) -> Optional[Doorway]:
        vertical = world.verticals[vertical_name]
        compromised = self._rng.random() < self.spec.compromised_fraction
        site: Optional[Site] = None
        if compromised:
            site = world.take_compromise_target()
            if site is None:
                compromised = False
        if site is None:
            domain = world.register_domain(world.forge.doorway_domain(), day)
            # Authority comes from the campaign's backlink farm: the engine
            # sees the farm's link equity pointing at this fresh domain.
            self.link_farm.add_doorway(domain.name)
            site = Site(domain, SiteKind.DEDICATED_DOORWAY,
                        authority=self.link_farm.authority_of(domain.name),
                        created_on=day)
            world.web.add_site(site)
        # Root-injected doorways overwrite the hacked site's main page; the
        # stuffed root ranks for several terms and few subpages exist.
        # These are the doorways whose PSRs the root-only "hacked" label can
        # actually reach (Section 5.2.2).
        inject_root = (
            compromised and self._rng.random() < self.spec.root_injection_fraction
        )
        lo, hi = self.spec.terms_per_doorway
        if inject_root:
            lo, hi = 1, 1
        term_count = min(len(vertical.universe), self._rng.randint(lo, max(lo, hi)))
        terms = self._rng.sample(vertical.universe, term_count)
        landing_store = self._pick_landing_store(vertical_name)
        landing = self._make_landing_lookup(world, landing_store)
        doorway = build_doorway(
            campaign=self.name,
            vertical=vertical_name,
            terms=terms,
            site=site,
            compromised=compromised,
            day=day,
            theme=self.theme,
            kit=self.kit,
            landing_url=landing,
            streams=self._streams,
        )
        if inject_root:
            self._inject_root(world, doorway, vertical, day, landing)
        schedule = self.schedules[vertical_name]
        indexed_on = day + self._rng.randint(1, 2)  # "SEO'ed in 24 hours"
        for page in doorway.pages:
            signal = self._make_signal(schedule, doorway.quality)
            world.index.add_page(
                page.term, site, page.path, page.relevance,
                seo_signal=signal, indexed_on=indexed_on,
                authority_factor=0.75 if page.path != "/" else 0.95,
            )
        self.doorways.append(doorway)
        world.track_doorway(self, doorway, landing_store)
        return doorway

    def _inject_root(self, world, doorway: Doorway, vertical, day, landing) -> None:
        """Cloak a compromised site's root — one stuffed page ranking for
        several of the vertical's terms (the only PSRs Google's root-only
        'hacked' label can mark, Section 5.2.2)."""
        from repro.seo.cloaking import DoorwayPageContext  # local to avoid cycle noise
        from repro.seo.doorways import DoorwayPage, _make_responder

        root_terms = self._rng.sample(
            vertical.universe, min(len(vertical.universe), self._rng.randint(4, 6))
        )
        primary = root_terms[0]
        seo_html = self.theme.doorway_seo_page(primary, vertical.name, f"{doorway.host}:rootinj")
        root = doorway.site.get_page("/")
        original = root.html if isinstance(root, StaticPage) else None
        context = DoorwayPageContext(
            campaign=self.name, vertical=vertical.name, term=primary,
            landing_url=landing, seo_html=seo_html, original_html=original,
        )
        doorway.site.replace_page(DynamicPage("/", _make_responder(self.kit, context)))
        for term in root_terms:
            relevance = self._rng.uniform(0.7, 0.95)
            doorway.pages.append(
                DoorwayPage(path="/", term=term, relevance=relevance, context=context)
            )
        doorway.root_injected = True

    def _make_signal(self, schedule: EffortSchedule, quality: float):
        return ScheduledSignal(schedule, quality)

    def _pick_landing_store(self, vertical_name: str) -> Store:
        stores = self._stores_by_vertical.get(vertical_name)
        if not stores:
            # Campaign targets the vertical with doorways but parks stores
            # elsewhere; reuse any store.
            stores = self.stores
        # Concentrate traffic: the first store per vertical is primary.
        weights = [3.0] + [1.0] * (len(stores) - 1)
        return self._rng.choices(stores, weights=weights, k=1)[0]

    def _make_landing_lookup(self, world, store: Store) -> _CncLanding:
        return _CncLanding(self, store.store_id)

    # ------------------------------------------------------------------ #
    # Seizure reaction and rotation
    # ------------------------------------------------------------------ #

    def _detect_seizures(self, world, day: SimDate) -> None:
        for store in self.stores:
            domain = store.current_domain
            if not domain.seized_as_of(day):
                continue
            if store.store_id in self._rotation_scheduled:
                continue
            delay = max(1, int(self._rng.expovariate(1.0 / self.spec.reaction_delay_mean)))
            due = day + delay
            self._rotation_scheduled[store.store_id] = due
            self._pending_rotations.append(
                _PendingRotation(due=due, store=store, reason="seizure")
            )

    def _schedule_proactive_rotations(self, world, day: SimDate) -> None:
        interval = self.spec.proactive_rotation_days
        if interval is None:
            return
        for store in self.stores:
            if store.store_id in self._rotation_scheduled:
                continue
            last = self._last_proactive.get(store.store_id, store.opened_on)
            if day - last >= interval:
                self._rotation_scheduled[store.store_id] = day
                self._pending_rotations.append(
                    _PendingRotation(due=day, store=store, reason="proactive")
                )

    def _execute_due_rotations(self, world, day: SimDate) -> None:
        still_pending: List[_PendingRotation] = []
        for rotation in self._pending_rotations:
            if rotation.due > day:
                still_pending.append(rotation)
                continue
            self._rotate_store(world, rotation.store, day, rotation.reason)
        self._pending_rotations = still_pending

    def _rotate_store(self, world, store: Store, day: SimDate, reason: str) -> None:
        anchor = store.brands[0]
        locale_tag = "" if store.locale == "us" else store.locale
        new_domain = world.register_domain(world.forge.store_domain(anchor, locale_tag), day)
        old_host = store.current_domain.name
        store.rotate_domain(new_domain, day)
        world.web.add_site(store.build_site(day))
        assert self.cnc is not None
        self.cnc.set_landing(store.store_id, f"http://{new_domain.name}/", day)
        self._rotation_scheduled.pop(store.store_id, None)
        self._last_proactive[store.store_id] = day
        world.record_rotation(self, store, old_host, new_domain.name, day, reason)

    def _resign_frozen_processors(self, world, day: SimDate) -> None:
        """React to payment-processor terminations (Section 4.3.2's
        intervention): after a delay, sign with a surviving processor."""
        network = world.payment_network
        for store in self.stores:
            if not network.is_blacklisted(store.processor.name):
                continue
            due = self._resign_scheduled.get(store.store_id)
            if due is None:
                delay = max(2, int(self._rng.expovariate(1.0 / 8.0)))
                self._resign_scheduled[store.store_id] = day + delay
                continue
            if day < due:
                continue
            del self._resign_scheduled[store.store_id]
            replacement = network.reassign(store.store_id, self._streams)
            if replacement is not None:
                store.processor = replacement

    # ------------------------------------------------------------------ #
    # Ground truth accessors (validation/tests only)
    # ------------------------------------------------------------------ #

    def doorway_hosts(self) -> List[str]:
        return [d.host for d in self.doorways]

    def store_hosts(self) -> List[str]:
        hosts: List[str] = []
        for store in self.stores:
            hosts.extend(store.all_hosts())
        return hosts

    def brands_abused(self) -> List[str]:
        return list(self.brand_pool)

    def __repr__(self) -> str:
        return f"Campaign({self.name!r}, doorways={len(self.doorways)}, stores={len(self.stores)})"
