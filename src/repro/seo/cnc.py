"""Campaign command-and-control.

Doorways do not hard-code their landing stores; they poll a C&C directory
for the current redirect target per vertical.  This is what makes the
post-seizure domain agility of Section 5.3.2 possible — the campaign flips
one directory entry and every doorway immediately forwards to the backup
domain.  (It is also what the paper's authors infiltrated to enumerate a
campaign's storefronts, Section 3.1.2.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.util.simtime import SimDate


@dataclass
class DirectoryChange:
    day: SimDate
    vertical: str
    url: str


class CommandAndControl:
    """Per-campaign directory: vertical -> current landing-store URL."""

    def __init__(self, campaign: str, cnc_host: str):
        self.campaign = campaign
        self.cnc_host = cnc_host
        self._current: Dict[str, str] = {}
        self._history: List[DirectoryChange] = []

    def set_landing(self, vertical: str, url: str, day: SimDate) -> None:
        previous = self._current.get(vertical)
        if previous == url:
            return
        self._current[vertical] = url
        self._history.append(DirectoryChange(day=day, vertical=vertical, url=url))

    def landing_url(self, vertical: str) -> Optional[str]:
        return self._current.get(vertical)

    def verticals(self) -> List[str]:
        return sorted(self._current)

    def history(self, vertical: Optional[str] = None) -> List[DirectoryChange]:
        if vertical is None:
            return list(self._history)
        return [c for c in self._history if c.vertical == vertical]

    def directory_snapshot(self) -> Dict[str, str]:
        """What an infiltrator would read off the C&C."""
        return dict(self._current)

    def __repr__(self) -> str:
        return f"CommandAndControl({self.campaign!r}, host={self.cnc_host!r})"
