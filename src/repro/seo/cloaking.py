"""Cloaking kits.

Two mechanisms from Section 3.1.1:

* **Redirect cloaking** — crawlers get keyword-stuffed SEO content; users
  arriving via search results get an HTTP redirect to the current landing
  store; direct visitors to a compromised site get the original content (so
  the owner doesn't notice the compromise).
* **Iframe cloaking** — everyone gets the same HTML, but obfuscated
  JavaScript loads the store in a full-viewport iframe.  Only a rendering
  client ever observes the store; non-rendering crawlers see the stuffed
  page, which is why VanGogh must execute JavaScript.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Callable, Optional

from repro.util.rng import RandomStreams, derive_seed
from repro.util.simtime import SimDate
from repro.web.fetch import PageResult, VisitorProfile


class CloakingType(enum.Enum):
    REDIRECT = "redirect"
    IFRAME = "iframe"
    NONE = "none"


@dataclass
class DoorwayPageContext:
    """Everything a cloaked page needs to answer a request."""

    campaign: str
    vertical: str
    term: str
    #: Returns the current landing-store URL (C&C lookup); None if the
    #: campaign has no live store for the vertical.
    landing_url: Callable[[], Optional[str]]
    #: Crawler-facing SEO content (generated once, cached).
    seo_html: str
    #: Original content for direct visitors on compromised hosts.
    original_html: Optional[str] = None


class RedirectCloakingKit:
    """Classic redirect cloaking."""

    cloaking_type = CloakingType.REDIRECT

    def respond(self, ctx: DoorwayPageContext, profile: VisitorProfile, day: SimDate) -> PageResult:
        if profile.looks_like_crawler:
            return PageResult(html=ctx.seo_html)
        if profile.via_search:
            target = ctx.landing_url()
            if target is not None:
                return PageResult(redirect_to=target)
            return PageResult(html=ctx.seo_html)
        # Direct visitor: hide on compromised hosts, else show SEO page.
        if ctx.original_html is not None:
            return PageResult(html=ctx.original_html)
        return PageResult(html=ctx.seo_html)


def _js_escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace("'", "\\'")


def _hex_encode(text: str) -> str:
    return "".join(f"%{ord(ch):02x}" for ch in text)


class IframeObfuscator:
    """Emits the iframe-loading script in one of several obfuscation styles.

    All styles stay inside the subset our honest mini-renderer executes —
    matching reality, where detection works only because rendering works.

    Responses must be pure functions of (campaign, target): doorway pages
    are fetched by the measurement crawl, simulated users, and test orders
    in an order that the crawl's process sharding does not preserve, so a
    stateful per-request stream here would make page bytes depend on fetch
    order.  Split-write chunk sizes therefore come from a throwaway RNG
    seeded per (campaign seed, markup) instead of a shared stream.
    """

    STYLES = ("plain", "split-write", "hex-write", "charcode-dom")

    def __init__(self, streams: RandomStreams, campaign: str):
        child = streams.child(f"obfuscation:{campaign}")
        self.style = child.get("style").choice(self.STYLES)
        self._chunk_seed = derive_seed(child.base_seed, *child.path, "chunks")

    def script_for(self, target_url: str) -> str:
        if self.style == "plain":
            return (
                "var f = document.createElement('iframe');\n"
                f"f.src = '{_js_escape(target_url)}';\n"
                "f.width = '100%';\nf.height = '100%';\n"
                "f.frameborder = '0';\n"
                "document.body.appendChild(f);"
            )
        markup = (
            f'<iframe src="{target_url}" width="100%" height="100%" '
            'frameborder="0" scrolling="no"></iframe>'
        )
        if self.style == "split-write":
            chunks = self._split(markup)
            parts = " + ".join(f"'{_js_escape(c)}'" for c in chunks)
            return f"var z = {parts};\ndocument.write(z);"
        if self.style == "hex-write":
            return f"document.write(unescape('{_hex_encode(markup)}'));"
        # charcode-dom: build the src via fromCharCode, attach via DOM APIs.
        codes = ",".join(str(ord(ch)) for ch in target_url)
        return (
            f"var u = String.fromCharCode({codes});\n"
            "var f = document.createElement('iframe');\n"
            "f.src = u;\nf.width = '100%';\nf.height = '100%';\n"
            "document.body.appendChild(f);"
        )

    def _split(self, text: str) -> list:
        # repro: allow-D001 seed derives from the scenario seed + markup, so chunking is a pure function of (campaign, target)
        rng = random.Random(derive_seed(self._chunk_seed, text))
        chunks = []
        pos = 0
        while pos < len(text):
            size = rng.randint(4, 11)
            chunks.append(text[pos:pos + size])
            pos += size
        return chunks


class IframeCloakingKit:
    """Iframe cloaking: identical HTML for all visitors; the store only
    appears after JavaScript execution."""

    cloaking_type = CloakingType.IFRAME

    def __init__(self, streams: RandomStreams, campaign: str):
        self._obfuscator = IframeObfuscator(streams, campaign)

    def respond(self, ctx: DoorwayPageContext, profile: VisitorProfile, day: SimDate) -> PageResult:
        target = ctx.landing_url()
        if target is None:
            return PageResult(html=ctx.seo_html)
        script = self._obfuscator.script_for(target)
        html = ctx.seo_html.replace(
            "</body>", f'<script type="text/javascript">{_script_body(script)}</script></body>'
        )
        return PageResult(html=html)


def _script_body(script: str) -> str:
    # Scripts are embedded verbatim; the HTML parser treats script content
    # as raw text so no escaping is needed beyond avoiding '</script'.
    return script.replace("</script", "<\\/script")


def make_kit(cloaking_type: CloakingType, streams: RandomStreams, campaign: str):
    if cloaking_type is CloakingType.REDIRECT:
        return RedirectCloakingKit()
    if cloaking_type is CloakingType.IFRAME:
        return IframeCloakingKit(streams, campaign)
    raise ValueError(f"no kit for cloaking type {cloaking_type}")
