"""SEO campaigns: doorway fleets, cloaking kits, C&C, effort schedules.

A campaign is the paper's unit of attribution (Section 4.2): one operation
running hundreds-to-thousands of doorways that funnel search traffic into a
concentrated set of storefronts, spanning multiple verticals and brands.
"""

from repro.seo.templates import TemplateTheme, ThemeFamily, THEME_FAMILIES
from repro.seo.cloaking import (
    CloakingType,
    DoorwayPageContext,
    RedirectCloakingKit,
    IframeCloakingKit,
    make_kit,
)
from repro.seo.schedule import EffortSchedule, Burst
from repro.seo.cnc import CommandAndControl
from repro.seo.linkfarm import LinkFarm
from repro.seo.doorways import Doorway
from repro.seo.campaign import Campaign, CampaignSpec

__all__ = [
    "TemplateTheme",
    "ThemeFamily",
    "THEME_FAMILIES",
    "CloakingType",
    "DoorwayPageContext",
    "RedirectCloakingKit",
    "IframeCloakingKit",
    "make_kit",
    "EffortSchedule",
    "Burst",
    "CommandAndControl",
    "LinkFarm",
    "Doorway",
    "Campaign",
    "CampaignSpec",
]
