"""Campaign effort schedules.

"The operators of the campaigns successfully SEO their doorways in
concentrated time periods" (Section 5.1.2): campaigns run at peak for ~51
days on average, with a long low-effort tail.  An :class:`EffortSchedule` is
a piecewise-constant level over the study window built from one-to-three
bursts on top of a background level; the level feeds the ranking model as
the doorway's observed off-page SEO signal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.util.rng import RandomStreams
from repro.util.simtime import DateRange, SimDate


@dataclass(frozen=True)
class Burst:
    """One concentrated SEO push."""

    start: SimDate
    duration_days: int
    level: float

    @property
    def end(self) -> SimDate:
        """Exclusive end day."""
        return self.start + self.duration_days

    def active_on(self, day: SimDate) -> bool:
        return self.start <= day < self.end


class EffortSchedule:
    """Piecewise SEO effort level over time for one (campaign, vertical)."""

    def __init__(self, bursts: Sequence[Burst], background: float = 0.08,
                 shutdown_day: Optional[SimDate] = None,
                 group_key: Optional[str] = None):
        self.bursts = sorted(bursts, key=lambda b: b.start.ordinal)
        self.background = background
        #: Campaigns sometimes stop SEO entirely (the KEY campaign's PSR
        #: collapse in mid-December, Section 5.2.1).
        self.shutdown_day = shutdown_day
        #: Stable identity for signal grouping in the search index; must be
        #: unique per schedule (campaign-qualified).  ``None`` opts the
        #: schedule's entries out of grouping — never keyed by ``id()``,
        #: which CPython recycles (the PR 1 cache-staleness class).
        self.group_key = group_key
        self._cache: Dict[int, float] = {}

    def level(self, day) -> float:
        day = SimDate(day)
        key = day.ordinal
        if key not in self._cache:
            self._cache[key] = self._compute(day)
        return self._cache[key]

    def _compute(self, day: SimDate) -> float:
        if self.shutdown_day is not None and day >= self.shutdown_day:
            return 0.0
        best = self.background
        for burst in self.bursts:
            if burst.active_on(day):
                best = max(best, burst.level)
        return best

    def peak_level(self) -> float:
        if not self.bursts:
            return self.background
        return max(b.level for b in self.bursts)

    def first_active_day(self) -> Optional[SimDate]:
        return self.bursts[0].start if self.bursts else None

    def shutdown(self, day: SimDate) -> None:
        self.shutdown_day = day
        self._cache.clear()


def random_schedule(
    streams: RandomStreams,
    name: str,
    window: DateRange,
    peak_days_hint: int,
    peak_level: float,
    background: float = 0.08,
    burst_count: Optional[int] = None,
    main_start_offset: Optional[int] = None,
    group_key: Optional[str] = None,
) -> EffortSchedule:
    """Generate a schedule whose main burst lasts roughly ``peak_days_hint``
    days (Table 2's per-campaign peak durations seed this).

    ``main_start_offset`` pins the main burst's start relative to the
    window (e.g., 0 for campaigns already at full steam when the study
    began, like KEY).
    """
    rng = streams.get(f"schedule:{name}")
    n_bursts = burst_count if burst_count is not None else rng.choice((1, 1, 2, 2, 3))
    total_days = len(window)
    bursts: List[Burst] = []
    main_duration = max(5, min(total_days, int(peak_days_hint * rng.uniform(0.85, 1.15))))
    latest_start = max(0, total_days - main_duration - 1)
    if main_start_offset is not None:
        main_start = window.clip(window.start + main_start_offset)
    else:
        main_start = window.start + rng.randint(0, latest_start)
    bursts.append(Burst(start=main_start, duration_days=main_duration, level=peak_level))
    for _ in range(n_bursts - 1):
        duration = max(5, int(main_duration * rng.uniform(0.3, 0.7)))
        start = window.start + rng.randint(0, max(0, total_days - duration - 1))
        level = peak_level * rng.uniform(0.5, 0.9)
        bursts.append(Burst(start=start, duration_days=duration, level=level))
    return EffortSchedule(bursts, background=background, group_key=group_key)
