"""Fictional customer identities for test orders.

Section 4.3.1: "The order and customer information we provide are
semantically consistent with real customers, but fictional and
automatically generated" (the paper used fakenamegenerator.com).  Identity
fields are internally consistent — the email derives from the name, the
postal address matches the chosen country — and card numbers are
Luhn-valid but drawn from a reserved test BIN so they can never collide
with a real account.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.rng import RandomStreams

_FIRST_NAMES = (
    "Alice", "Brian", "Carla", "Derek", "Elena", "Frank", "Grace", "Henry",
    "Irene", "Jonas", "Karen", "Liam", "Marta", "Nolan", "Olivia", "Peter",
    "Quinn", "Rosa", "Simon", "Tara",
)
_LAST_NAMES = (
    "Anderson", "Brooks", "Carver", "Dalton", "Ellis", "Foster", "Garner",
    "Hobbs", "Ingram", "Jensen", "Keller", "Lawson", "Meyer", "Norris",
    "Osborne", "Porter", "Quigley", "Rhodes", "Sutton", "Turner",
)
_STREETS = ("Maple St", "Oak Ave", "Cedar Ln", "Birch Rd", "Elm Dr", "Pine Ct")
_CITIES_BY_COUNTRY = {
    "US": ("Springfield", "Riverton", "Fairview", "Georgetown"),
    "GB": ("Croydon", "Reading", "Luton", "Swindon"),
    "DE": ("Bochum", "Kassel", "Erfurt", "Augsburg"),
    "JP": ("Chiba", "Sakai", "Niigata", "Himeji"),
    "AU": ("Geelong", "Cairns", "Ballarat", "Mackay"),
}
#: Reserved test BIN prefix — never a live card range.
_TEST_BIN = "411111"


def _luhn_check_digit(digits: str) -> str:
    total = 0
    for index, char in enumerate(reversed(digits)):
        value = int(char)
        if index % 2 == 0:  # positions counted from the check digit
            value *= 2
            if value > 9:
                value -= 9
        total += value
    return str((10 - total % 10) % 10)


@dataclass(frozen=True)
class FakeIdentity:
    """One internally consistent fictional customer."""

    full_name: str
    email: str
    street: str
    city: str
    country: str
    card_number: str

    def luhn_valid(self) -> bool:
        return _luhn_check_digit(self.card_number[:-1]) == self.card_number[-1]


class FakeIdentityGenerator:
    """Deterministic stream of fictional customers."""

    def __init__(self, streams: RandomStreams):
        self._rng = streams.child("fake-identities").get("gen")
        self._issued = 0

    def identity(self, country: str = "US") -> FakeIdentity:
        rng = self._rng
        first = rng.choice(_FIRST_NAMES)
        last = rng.choice(_LAST_NAMES)
        self._issued += 1
        email = f"{first.lower()}.{last.lower()}{self._issued}@mailinator.test"
        cities = _CITIES_BY_COUNTRY.get(country, _CITIES_BY_COUNTRY["US"])
        body = _TEST_BIN + "".join(str(rng.randint(0, 9)) for _ in range(9))
        card = body + _luhn_check_digit(body)
        return FakeIdentity(
            full_name=f"{first} {last}",
            email=email,
            street=f"{rng.randint(1, 9999)} {rng.choice(_STREETS)}",
            city=rng.choice(cities),
            country=country if country in _CITIES_BY_COUNTRY else "US",
            card_number=card,
        )

    @property
    def issued(self) -> int:
        return self._issued
