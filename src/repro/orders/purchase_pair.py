"""The purchase-pair order-volume estimator (Section 4.3.1).

Stores hand out monotonically increasing order numbers at checkout, before
payment clears.  Creating a test order at two points in time therefore
bounds the number of orders created in between.  The paper created 1,408
test orders on 290 stores at weekly intervals, capped at three orders per
day per campaign to stay under the radar.

:class:`TestOrderer` runs as a simulator observer: it discovers stores from
the measurement crawler's archive, walks each tracked store's checkout flow
weekly, parses the order number off the payment page, and — when a tracked
domain dies (seizure or rotation) — re-resolves the store through one of
its doorways, exactly the way a returning "customer" would.
"""

from __future__ import annotations

import re
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs.trace import TRACER
from repro.util.simtime import SimDate
from repro.util.stats import cumulative_to_rates, linear_interpolate
from repro.web.fetch import SEARCH_USER
from repro.web.urls import parse_url
from repro.crawler.vangogh import VanGogh
from repro.interventions.notices import parse_notice_page
from repro.orders.fakenames import FakeIdentity, FakeIdentityGenerator
from repro.util.rng import RandomStreams

_ORDER_NUMBER_RE = re.compile(r"Order Number:\s*(\d+)")


@dataclass(frozen=True)
class OrderSample:
    day: SimDate
    order_number: int


@dataclass
class OrderPolicy:
    """Operational limits on test ordering."""

    sample_interval_days: int = 7
    max_orders_per_day_per_campaign: int = 3
    max_tracked_stores: int = 300


@dataclass
class TrackedStore:
    """One store the orderer samples over time."""

    key: str  # first landing host observed = stable identity
    current_host: str
    doorway_url: str  # used to re-resolve after rotations/seizures
    mechanism: str
    campaign_hint: str = ""
    samples: List[OrderSample] = field(default_factory=list)
    next_sample_day: Optional[SimDate] = None
    dead: bool = False
    hosts_seen: List[str] = field(default_factory=list)


class OrderVolumeSeries:
    """Analysis view over one store's samples."""

    def __init__(self, samples: List[OrderSample]):
        self.samples = sorted(samples, key=lambda s: s.day.ordinal)

    def __len__(self) -> int:
        return len(self.samples)

    def total_orders_created(self) -> int:
        """Upper bound on orders created across the sampled span."""
        if len(self.samples) < 2:
            return 0
        return self.samples[-1].order_number - self.samples[0].order_number

    def volume_curve(self) -> List[Tuple[int, int]]:
        """(day_ordinal, cumulative order number) points."""
        return [(s.day.ordinal, s.order_number) for s in self.samples]

    def daily_rates(self) -> Dict[int, float]:
        """Estimated orders/day for each day between samples."""
        return cumulative_to_rates(
            [(s.day.ordinal, float(s.order_number)) for s in self.samples]
        )

    def rate_histogram(self, bin_days: int = 7) -> List[Tuple[int, float]]:
        """(bin start ordinal, mean orders/day) tuples."""
        rates = self.daily_rates()
        if not rates:
            return []
        start = min(rates)
        end = max(rates)
        bins: List[Tuple[int, float]] = []
        cursor = start
        while cursor <= end:
            window = [rates[d] for d in range(cursor, min(cursor + bin_days, end + 1)) if d in rates]
            if window:
                bins.append((cursor, sum(window) / len(window)))
            cursor += bin_days
        return bins

    def peak_daily_rate(self) -> float:
        rates = self.daily_rates()
        return max(rates.values()) if rates else 0.0

    def interpolated_volume(self, day_ordinals: List[int]) -> List[float]:
        return linear_interpolate(
            [(s.day.ordinal, float(s.order_number)) for s in self.samples], day_ordinals
        )


def _host_as_group(host: str) -> str:
    """Default order-cap grouping: each store host is its own group.

    Module-level (not a lambda) so a checkpointed orderer pickles."""
    return host


class TestOrderer:
    """Simulator observer creating weekly test orders on discovered stores."""

    def __init__(
        self,
        web,
        crawler,
        policy: Optional[OrderPolicy] = None,
        campaign_of_host: Optional[Callable[[str], str]] = None,
    ):
        self.web = web
        self.crawler = crawler
        self.policy = policy or OrderPolicy()
        #: Groups stores for the 3-orders/day cap; defaults to per-store.
        self.campaign_of_host = campaign_of_host or _host_as_group
        self.tracked: Dict[str, TrackedStore] = {}
        self._host_to_key: Dict[str, str] = {}
        self._vangogh = VanGogh(web)
        self.total_orders_created = 0
        self._discovery_cursor = 0
        #: Fictional customer identities, one per test order (Section 4.3.1).
        self._identities = FakeIdentityGenerator(RandomStreams(0x0FDE).child("orders"))
        self.identities_used: List[FakeIdentity] = []

    # ------------------------------------------------------------------ #
    # Observer interface
    # ------------------------------------------------------------------ #

    def on_day(self, world, context) -> None:
        day = context.day
        # Re-resolution renders share the crawl's content-addressed caches;
        # under a shard executor those lookups must be ledgered and replayed
        # so hit/miss counts stay canonical (no-op without an executor).
        scope = getattr(self.crawler, "cache_scope", None)
        with (scope() if scope is not None else nullcontext()), \
                TRACER.span("orders", sim_day=day.isoformat()):
            self._discover_new_stores(day)
            orders_today: Dict[str, int] = {}
            for tracked in self.tracked.values():
                if tracked.dead or tracked.next_sample_day is None:
                    continue
                if day < tracked.next_sample_day:
                    continue
                group = self.campaign_of_host(tracked.key)
                if orders_today.get(group, 0) >= self.policy.max_orders_per_day_per_campaign:
                    # Defer to tomorrow; the cap is per calendar day.
                    tracked.next_sample_day = day + 1
                    continue
                if self._sample(tracked, day):
                    orders_today[group] = orders_today.get(group, 0) + 1
                tracked.next_sample_day = day + self.policy.sample_interval_days

    # ------------------------------------------------------------------ #

    def _discover_new_stores(self, day: SimDate) -> None:
        records = self.crawler.dataset.records
        new_records = records[self._discovery_cursor:]
        self._discovery_cursor = len(records)
        if len(self.tracked) >= self.policy.max_tracked_stores:
            return
        for record in new_records:
            if not record.is_store:
                continue
            host = record.landing_host
            if host in self._host_to_key:
                continue
            if len(self.tracked) >= self.policy.max_tracked_stores:
                break
            # Stagger first samples so not everything fires the same day.
            tracked = TrackedStore(
                key=host,
                current_host=host,
                doorway_url=record.url,
                mechanism=record.mechanism,
                campaign_hint=record.campaign,
                next_sample_day=day + (len(self.tracked) % self.policy.sample_interval_days),
                hosts_seen=[host],
            )
            self.tracked[host] = tracked
            self._host_to_key[host] = host

    def _sample(self, tracked: TrackedStore, day: SimDate) -> bool:
        number = self._checkout_order_number(tracked.current_host, day)
        if number is None:
            if not self._reresolve(tracked, day):
                return False
            number = self._checkout_order_number(tracked.current_host, day)
            if number is None:
                return False
        # Order numbers are monotone per store; a lower number means the
        # doorway now forwards to a *different* store — stop the series
        # rather than corrupt it.
        if tracked.samples and number < tracked.samples[-1].order_number:
            tracked.dead = True
            return False
        tracked.samples.append(OrderSample(day=day, order_number=number))
        self.identities_used.append(self._identities.identity())
        self.total_orders_created += 1
        return True

    def _checkout_order_number(self, host: str, day: SimDate) -> Optional[int]:
        response = self.web.fetch(f"http://{host}/checkout/confirm", SEARCH_USER, day)
        if not response.ok:
            return None
        if parse_notice_page(response.html) is not None:
            return None
        match = _ORDER_NUMBER_RE.search(response.html)
        if match is None:
            return None
        return int(match.group(1))

    def _reresolve(self, tracked: TrackedStore, day: SimDate) -> bool:
        """Follow the store's doorway again to find its new domain."""
        if tracked.mechanism == "iframe":
            result = self._vangogh.check(tracked.doorway_url, day)
            landing = result.landing_response
        else:
            landing = self.web.fetch(tracked.doorway_url, SEARCH_USER, day)
        if landing is None or not landing.ok:
            return False
        if parse_notice_page(landing.html) is not None:
            return False
        new_host = parse_url(landing.final_url).host
        if new_host == tracked.current_host:
            return False
        tracked.current_host = new_host
        tracked.hosts_seen.append(new_host)
        self._host_to_key[new_host] = tracked.key
        return True

    # ------------------------------------------------------------------ #
    # Analysis accessors
    # ------------------------------------------------------------------ #

    def series_for(self, key: str) -> OrderVolumeSeries:
        tracked = self.tracked.get(key)
        if tracked is None:
            raise KeyError(f"not tracking store {key!r}")
        return OrderVolumeSeries(tracked.samples)

    def tracked_with_samples(self, minimum: int = 2) -> List[TrackedStore]:
        # repro: allow-D005 insertion order is deterministic order-placement order; consumers aggregate or re-key, none rank by position
        return [t for t in self.tracked.values() if len(t.samples) >= minimum]
