"""Order-volume estimation via the purchase-pair technique (Section 4.3)."""

from repro.orders.purchase_pair import (
    TestOrderer,
    OrderSample,
    OrderVolumeSeries,
    OrderPolicy,
)
from repro.orders.fakenames import FakeIdentity, FakeIdentityGenerator

__all__ = [
    "TestOrderer",
    "OrderSample",
    "OrderVolumeSeries",
    "OrderPolicy",
    "FakeIdentity",
    "FakeIdentityGenerator",
]
