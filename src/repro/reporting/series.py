"""CSV export of time series (for plotting outside the harness)."""

from __future__ import annotations

import io
from typing import Mapping, Sequence

from repro.util.simtime import SimDate


def series_to_csv(series: Mapping[int, float], value_name: str = "value") -> str:
    """Render a {day ordinal: value} series as 'date,<value_name>' CSV."""
    out = io.StringIO()
    out.write(f"date,{value_name}\n")
    for ordinal in sorted(series):
        out.write(f"{SimDate(ordinal).isoformat()},{series[ordinal]}\n")
    return out.getvalue()


def stacked_to_csv(
    ordinals: Sequence[int], bands: Mapping[str, Sequence[float]]
) -> str:
    """Render aligned stacked bands as one CSV (Figure 2 export)."""
    names = list(bands)
    for name in names:
        if len(bands[name]) != len(ordinals):
            raise ValueError(f"band {name!r} length does not match ordinals")
    out = io.StringIO()
    out.write("date," + ",".join(names) + "\n")
    for index, ordinal in enumerate(ordinals):
        row = [f"{bands[name][index]:.6f}" for name in names]
        out.write(f"{SimDate(ordinal).isoformat()}," + ",".join(row) + "\n")
    return out.getvalue()
