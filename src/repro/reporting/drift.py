"""Rendering for the release gate: drift tables, history sparklines,
record-vs-record diffs.

The gate's deterministic *verdict* is rendered by
:meth:`repro.obs.gate.GateResult.verdict_lines`; everything here is the
human-facing *report* — full per-check values (perf included), each gated
metric's trajectory across the ledger, and side-by-side record diffs for
``repro compare``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.reporting.sparkline import sparkline
from repro.reporting.tables import render_table


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.4g}"
    return f"{int(value):,}"


def render_drift_table(checks: Sequence, title: str = "Drift report") -> str:
    """Every band check as a table row, values included (perf too —
    this is the report, not the deterministic verdict)."""
    rows: List[List[str]] = []
    for check in checks:
        span = ("±" if check.band.direction == "both"
                else check.band.direction + " ")
        rows.append([
            check.status,
            check.path,
            _fmt(check.baseline),
            _fmt(check.current),
            _fmt(check.delta),
            f"{span}{check.allowed:g}",
            check.band.kind,
        ])
    return render_table(
        ["Status", "Metric", "Baseline", "Current", "Delta", "Allowed",
         "Kind"],
        rows, title=title,
    )


def render_history(series: Dict[str, List[float]], width: int = 24,
                   title: str = "Ledger history") -> str:
    """Each metric's trajectory across ledger records as a sparkline row
    (oldest left, latest right), with first/last values for scale."""
    lines = [title]
    label_width = max((len(path) for path in series), default=0)
    for path in sorted(series):
        values = series[path]
        if not values:
            continue
        spark = sparkline(values, width=min(width, len(values)))
        lines.append(
            f"  {path:<{label_width}s} {spark} "
            f"{_fmt(values[0])} -> {_fmt(values[-1])} "
            f"({len(values)} runs)"
        )
    if len(lines) == 1:
        lines.append("  (no history)")
    return "\n".join(lines)


def render_record_diff(record_a: dict, record_b: dict,
                       metrics_a: Dict[str, float],
                       metrics_b: Dict[str, float]) -> str:
    """``repro compare``: provenance header plus per-metric A/B table.

    Deterministic for fixed inputs: paths are the sorted union, and the
    output contains no wall-clock or host-varying fields beyond what the
    records themselves carry."""
    lines = []
    for side, record in (("A", record_a), ("B", record_b)):
        manifest = record.get("manifest") or {}
        lines.append(
            f"{side}: {record.get('run_id', '?')} "
            f"kind={record.get('kind', '?')} key={record.get('key', '?')} "
            f"git={str(manifest.get('git_sha'))[:12]}"
        )
    rows: List[List[str]] = []
    for path in sorted(set(metrics_a) | set(metrics_b)):
        a, b = metrics_a.get(path), metrics_b.get(path)
        if a is None or b is None:
            delta = "-"
        elif a == b:
            delta = "="
        else:
            delta = _fmt(b - a)
            if a:
                delta += f" ({(b - a) / abs(a):+.1%})"
        rows.append([path, _fmt(a), _fmt(b), delta])
    lines.append(render_table(["Metric", "A", "B", "Delta"], rows))
    return "\n".join(lines)
