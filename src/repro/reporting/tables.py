"""Monospace table rendering."""

from __future__ import annotations

from typing import Any, List, Optional, Sequence


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:,.2f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: Optional[str] = None,
) -> str:
    """Render rows as an aligned text table.

    >>> print(render_table(["a", "b"], [[1, 2]]))
    a | b
    --+--
    1 | 2
    """
    formatted: List[List[str]] = [[_format_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in formatted:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip())
    lines.append("-+-".join("-" * w for w in widths))
    for row in formatted:
        cells = []
        for index, cell in enumerate(row):
            if cell and cell.replace(",", "").replace(".", "").replace("-", "").isdigit():
                cells.append(cell.rjust(widths[index]))
            else:
                cells.append(cell.ljust(widths[index]))
        lines.append(" | ".join(cells).rstrip())
    return "\n".join(lines)
