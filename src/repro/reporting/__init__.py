"""Plain-text rendering of tables, sparklines, and series.

Benchmarks print the same rows/series the paper reports; these helpers keep
that output readable in a terminal without plotting dependencies.
"""

from repro.reporting.tables import render_table
from repro.reporting.sparkline import sparkline, sparkline_row
from repro.reporting.series import series_to_csv, stacked_to_csv
from repro.reporting.drift import (
    render_drift_table,
    render_history,
    render_record_diff,
)

__all__ = [
    "render_table",
    "sparkline",
    "sparkline_row",
    "series_to_csv",
    "stacked_to_csv",
    "render_drift_table",
    "render_history",
    "render_record_diff",
]
