"""Unicode sparklines (Figure 3's rendering)."""

from __future__ import annotations

from typing import Sequence

_BARS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 40) -> str:
    """Compress a series into a fixed-width unicode sparkline.

    >>> sparkline([0, 1, 2, 3], width=4)
    '▁▃▅█'
    """
    values = list(values)
    if not values:
        return ""
    if width < 1:
        raise ValueError("width must be >= 1")
    # Downsample by averaging buckets.
    if len(values) > width:
        bucketed = []
        for i in range(width):
            lo = i * len(values) // width
            hi = max(lo + 1, (i + 1) * len(values) // width)
            bucket = values[lo:hi]
            bucketed.append(sum(bucket) / len(bucket))
        values = bucketed
    low = min(values)
    high = max(values)
    span = high - low
    if span <= 0:
        return _BARS[0] * len(values)
    chars = []
    for value in values:
        index = int((value - low) / span * (len(_BARS) - 1))
        chars.append(_BARS[index])
    return "".join(chars)


def sparkline_row(
    label: str, values: Sequence[float], width: int = 40, as_percent: bool = True
) -> str:
    """One Figure 3 line: 'label  min  <spark>  max'."""
    values = list(values)
    if not values:
        return f"{label:<16} (no data)"
    low = min(values)
    high = max(values)
    if as_percent:
        low_text = f"{low * 100:5.2f}"
        high_text = f"{high * 100:5.2f}"
    else:
        low_text = f"{low:8.2f}"
        high_text = f"{high:8.2f}"
    return f"{label:<16} {low_text} {sparkline(values, width)} {high_text}"
