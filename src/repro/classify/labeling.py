"""Manual labeling and the human-machine refinement loop (Section 4.2.3).

The paper hand-labeled 491 pages across 52 campaigns, trained, predicted
the unlabeled remainder, manually *validated* the top-ranked predictions
per campaign (using infrastructure overlap as evidence), folded verified
pages back into the training set, and repeated.

Here, "manual" validation consults the simulation's ground truth — which is
exactly what a domain expert with infiltration access amounts to.  Pages
from campaigns outside the labeled universe (the scenario's background
campaigns) are never seeded and fail validation, so they remain unlabeled
— producing the "unknown" mass of Figure 2.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.crawler.records import PageArchive


class GroundTruthOracle:
    """host -> true campaign name, from simulator state.

    Stands in for the expert's evidence sources: shared C&C, payment
    processing, WHOIS, analytics accounts.
    """

    def __init__(self, world, labeled_universe: Optional[Set[str]] = None):
        self._world = world
        if labeled_universe is None:
            labeled_universe = {
                c.name for c in world.campaigns() if not c.name.startswith("BG.")
            }
        self.labeled_universe = set(labeled_universe)

    def campaign_of_host(self, host: str) -> Optional[str]:
        store = self._world.store_at(host)
        if store is not None:
            return store.campaign
        pair = self._world.doorway_at(host)
        if pair is not None:
            return pair[0].name
        return None

    def known_campaign_of_host(self, host: str) -> Optional[str]:
        """The expert can only confirm campaigns in the labeled universe."""
        campaign = self.campaign_of_host(host)
        if campaign is None or campaign not in self.labeled_universe:
            return None
        return campaign


@dataclass
class LabeledPage:
    host: str
    html: str
    campaign: str
    #: 'store' or 'doorway' — store templates carry the stronger signal.
    kind: str


def build_seed_labels(
    archive: PageArchive,
    oracle: GroundTruthOracle,
    target_size: int = 491,
    seed: int = 0,
) -> List[LabeledPage]:
    """The initial hand-labeled set: a spread across campaigns, biased the
    way the paper's was — storefront pages first, doorways to fill."""
    # repro: allow-D001 seeded by the explicit labeling-seed parameter; the classifier stack takes no RandomStreams dependency
    rng = random.Random(seed)
    by_campaign: Dict[str, List[LabeledPage]] = {}
    for host, html in archive.stores.items():
        campaign = oracle.known_campaign_of_host(host)
        if campaign is not None:
            by_campaign.setdefault(campaign, []).append(
                LabeledPage(host, html, campaign, "store")
            )
    for host, html in archive.doorways.items():
        campaign = oracle.known_campaign_of_host(host)
        if campaign is not None:
            by_campaign.setdefault(campaign, []).append(
                LabeledPage(host, html, campaign, "doorway")
            )
    seeds: List[LabeledPage] = []
    campaigns = sorted(by_campaign)
    # Round-robin so every campaign with crawled pages gets representation.
    cursor = {name: 0 for name in campaigns}
    for name in campaigns:
        by_campaign[name].sort(key=lambda p: (p.kind != "store", p.host))
    while len(seeds) < target_size:
        progressed = False
        for name in campaigns:
            pages = by_campaign[name]
            if cursor[name] < len(pages):
                seeds.append(pages[cursor[name]])
                cursor[name] += 1
                progressed = True
                if len(seeds) >= target_size:
                    break
        if not progressed:
            break
    rng.shuffle(seeds)
    return seeds


@dataclass
class RefinementRound:
    round_index: int
    candidates: int
    accepted: int
    rejected: int
    labeled_total: int


class RefinementLoop:
    """Iterative expansion of the labeled set with expert validation."""

    def __init__(
        self,
        oracle: GroundTruthOracle,
        confidence_threshold: float = 0.5,
        per_campaign_per_round: int = 10,
    ):
        self.oracle = oracle
        self.confidence_threshold = confidence_threshold
        self.per_campaign_per_round = per_campaign_per_round
        self.history: List[RefinementRound] = []

    def run(
        self,
        classifier_factory,
        labeled: List[LabeledPage],
        unlabeled: Dict[str, Tuple[str, str]],
        rounds: int = 3,
    ) -> Tuple[List[LabeledPage], object]:
        """Run up to ``rounds`` refinement passes.

        ``unlabeled`` maps host -> (html, kind).  Returns the expanded
        labeled set and the final trained classifier.
        """
        labeled = list(labeled)
        remaining = dict(unlabeled)
        classifier = classifier_factory()
        classifier.fit(labeled)
        for round_index in range(rounds):
            if not remaining:
                break
            hosts = sorted(remaining)
            predictions = classifier.predict_pages(
                [remaining[h][0] for h in hosts]
            )
            # Validate the top-ranked predictions per campaign.
            per_campaign: Dict[str, List[Tuple[float, str]]] = {}
            for host, (campaign, prob) in zip(hosts, predictions):
                if prob < self.confidence_threshold:
                    continue
                per_campaign.setdefault(campaign, []).append((prob, host))
            accepted = 0
            rejected = 0
            candidates = 0
            for campaign, ranked in per_campaign.items():
                ranked.sort(reverse=True)
                for prob, host in ranked[: self.per_campaign_per_round]:
                    candidates += 1
                    truth = self.oracle.known_campaign_of_host(host)
                    html, kind = remaining.pop(host)
                    if truth == campaign:
                        labeled.append(LabeledPage(host, html, campaign, kind))
                        accepted += 1
                    else:
                        rejected += 1
            self.history.append(
                RefinementRound(
                    round_index=round_index,
                    candidates=candidates,
                    accepted=accepted,
                    rejected=rejected,
                    labeled_total=len(labeled),
                )
            )
            if accepted == 0:
                break
            classifier = classifier_factory()
            classifier.fit(labeled)
        return labeled, classifier
