"""Campaign classification (Section 4.2).

Maps doorway and storefront pages to SEO campaigns with an L1-regularized
logistic regression over bag-of-words HTML features (tag-attribute-value
triplets), trained from a small manually-labeled seed set and refined in
human-machine rounds.
"""

from repro.classify.features import extract_features, Vocabulary, vectorize
from repro.classify.linear import L1LogisticRegression, OneVsRestL1Logistic
from repro.classify.crossval import kfold_indices, cross_validate_accuracy
from repro.classify.labeling import GroundTruthOracle, build_seed_labels, RefinementLoop
from repro.classify.pipeline import CampaignClassifier, AttributionResult

__all__ = [
    "extract_features",
    "Vocabulary",
    "vectorize",
    "L1LogisticRegression",
    "OneVsRestL1Logistic",
    "kfold_indices",
    "cross_validate_accuracy",
    "GroundTruthOracle",
    "build_seed_labels",
    "RefinementLoop",
    "CampaignClassifier",
    "AttributionResult",
]
