"""End-to-end campaign classification pipeline.

Fits the multiclass L1 model on labeled pages and attributes every PSR in a
dataset to a campaign: the landing store's page is classified when
available (store templates are the strongest signal), falling back to the
doorway's crawler-view HTML; predictions below the confidence threshold
stay unattributed — the "unknown" share of Figure 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.classify.features import Vocabulary, extract_features, vectorize
from repro.classify.labeling import LabeledPage
from repro.classify.linear import OneVsRestL1Logistic
from repro.crawler.records import PageArchive, PsrDataset
from repro.obs.trace import TRACER
from repro.util.perf import PERF


@dataclass
class AttributionResult:
    """Summary of one attribution pass over a PSR dataset."""

    total_records: int
    attributed_records: int
    campaigns: List[str]
    #: host -> (campaign, confidence) for every host we classified.
    host_predictions: Dict[str, Tuple[str, float]]

    @property
    def attribution_rate(self) -> float:
        if self.total_records == 0:
            return 0.0
        return self.attributed_records / self.total_records


class CampaignClassifier:
    """Vocabulary + one-vs-rest L1 logistic regression over page HTML."""

    def __init__(self, lam: float = 1e-3, min_df: int = 2,
                 confidence_threshold: float = 0.5, n_jobs: int = 1):
        self.lam = lam
        self.min_df = min_df
        self.confidence_threshold = confidence_threshold
        #: Thread count for the per-class one-vs-rest fits; any value
        #: produces identical weights (see OneVsRestL1Logistic.fit).
        self.n_jobs = n_jobs
        self.vocabulary: Optional[Vocabulary] = None
        self.model: Optional[OneVsRestL1Logistic] = None

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #

    def fit(self, labeled: Sequence[LabeledPage]) -> "CampaignClassifier":
        if not labeled:
            raise ValueError("no labeled pages")
        with PERF.timer("classifier.fit"):
            with TRACER.span("features", pages=len(labeled)):
                feature_maps = [extract_features(page.html) for page in labeled]
                self.vocabulary = Vocabulary(min_df=self.min_df).fit(feature_maps)
                X = vectorize(feature_maps, self.vocabulary)
            with TRACER.span("fit", pages=len(labeled)):
                self.model = OneVsRestL1Logistic(lam=self.lam, n_jobs=self.n_jobs)
                self.model.fit(X, [page.campaign for page in labeled])
        return self

    @property
    def classes(self) -> List[str]:
        if self.model is None:
            return []
        return list(self.model.classes_)

    # ------------------------------------------------------------------ #
    # Prediction
    # ------------------------------------------------------------------ #

    def predict_pages(self, pages: Sequence[str]) -> List[Tuple[str, float]]:
        """(campaign, confidence) for each HTML page."""
        if self.model is None or self.vocabulary is None:
            raise RuntimeError("classifier not fitted")
        if not pages:
            return []
        feature_maps = [extract_features(html) for html in pages]
        X = vectorize(feature_maps, self.vocabulary)
        return self.model.predict_with_confidence(X)

    def predict_page(self, html: str) -> Tuple[str, float]:
        return self.predict_pages([html])[0]

    # ------------------------------------------------------------------ #
    # Dataset attribution
    # ------------------------------------------------------------------ #

    def attribute(self, dataset: PsrDataset, archive: PageArchive) -> AttributionResult:
        """Fill in ``record.campaign`` for every PSR whose landing store or
        doorway page classifies above threshold."""
        host_predictions: Dict[str, Tuple[str, float]] = {}
        store_hosts = sorted(archive.stores)
        doorway_hosts = sorted(archive.doorways)
        for hosts, pages in (
            (store_hosts, [archive.stores[h] for h in store_hosts]),
            (doorway_hosts, [archive.doorways[h] for h in doorway_hosts]),
        ):
            if not hosts:
                continue
            for host, prediction in zip(hosts, self.predict_pages(pages)):
                # Store-page predictions win over doorway-page ones.
                host_predictions.setdefault(host, prediction)

        attributed = 0
        for record in dataset.records:
            prediction = host_predictions.get(record.landing_host)
            if prediction is None or prediction[1] < self.confidence_threshold:
                prediction = host_predictions.get(record.host)
            if prediction is not None and prediction[1] >= self.confidence_threshold:
                record.campaign = prediction[0]
                attributed += 1
            else:
                record.campaign = ""
        return AttributionResult(
            total_records=len(dataset),
            attributed_records=attributed,
            campaigns=self.classes,
            host_predictions=host_predictions,
        )
