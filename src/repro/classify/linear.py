"""From-scratch L1-regularized logistic regression (the LIBLINEAR stand-in).

The paper "used the LIBLINEAR package to learn L1-regularized models of
logistic regression" whose sparsity makes campaign predictions depend on a
handful of HTML features (Section 4.2.2).  LIBLINEAR is not available here,
so this module implements the same estimator: binary L1 logistic regression
fit by proximal gradient (ISTA) with backtracking line search, wrapped
one-vs-rest for multiclass.  The bias term is unregularized, as in
LIBLINEAR's formulation.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[~positive])
    out[~positive] = exp_z / (1.0 + exp_z)
    return out


def _log1pexp(z: np.ndarray) -> np.ndarray:
    """Numerically stable log(1 + exp(z))."""
    out = np.empty_like(z)
    small = z < 30
    out[small] = np.log1p(np.exp(z[small]))
    out[~small] = z[~small]
    return out


def soft_threshold(values: np.ndarray, threshold: float) -> np.ndarray:
    return np.sign(values) * np.maximum(np.abs(values) - threshold, 0.0)


class L1LogisticRegression:
    """Binary classifier: min (1/n) Σ log(1+exp(-y·f(x))) + lam·||w||₁."""

    def __init__(self, lam: float = 1e-3, max_iter: int = 300, tol: float = 1e-6):
        if lam < 0:
            raise ValueError("lam must be >= 0")
        self.lam = lam
        self.max_iter = max_iter
        self.tol = tol
        self.weights: Optional[np.ndarray] = None
        self.bias: float = 0.0
        self.n_iter_: int = 0

    # ------------------------------------------------------------------ #

    def _objective(self, X, y: np.ndarray, w: np.ndarray, b: float) -> float:
        margins = -y * (X @ w + b)
        loss = float(np.mean(_log1pexp(margins)))
        return loss + self.lam * float(np.abs(w).sum())

    def _gradient(self, X, y: np.ndarray, w: np.ndarray, b: float):
        z = y * (X @ w + b)
        coeff = -y * _sigmoid(-z) / len(y)
        grad_w = X.T @ coeff
        grad_w = np.asarray(grad_w).ravel()
        grad_b = float(np.sum(coeff))
        return grad_w, grad_b

    def fit(self, X, y: Sequence[int]) -> "L1LogisticRegression":
        """X: (n, d) sparse or dense; y: labels in {-1, +1} (or {0, 1}).

        The proximal loop carries the whole-matrix products ``X @ w + b``
        and ``|w|_1`` across iterations instead of recomputing them inside
        :meth:`_objective` / :meth:`_gradient`: the gradient's matvec
        reuses the margins computed when the iterate was accepted, cutting
        a third of the matvecs per iteration and keeping the per-class
        fits inside GIL-releasing BLAS/SciPy kernels (which is what lets
        ``OneVsRestL1Logistic``'s thread pool scale at small problem
        sizes).  Recomputing ``X @ w + b`` with identical inputs yields
        identical bits, so coefficients are bit-identical to the
        unfactored loop — a test asserts this against a line-for-line
        reference implementation.
        """
        y = np.asarray(y, dtype=np.float64)
        unique = set(np.unique(y).tolist())
        if unique <= {0.0, 1.0}:
            y = 2.0 * y - 1.0
        elif not unique <= {-1.0, 1.0}:
            raise ValueError(f"labels must be binary, got {sorted(unique)}")
        n, d = X.shape
        lam = self.lam
        w = np.zeros(d)
        b = 0.0
        step = 1.0
        Xwb = X @ w + b
        l1 = float(np.abs(w).sum())
        objective = float(np.mean(_log1pexp(-y * Xwb))) + lam * l1
        for iteration in range(self.max_iter):
            z = y * Xwb
            coeff = -y * _sigmoid(-z) / len(y)
            grad_w = np.asarray(X.T @ coeff).ravel()
            grad_b = float(np.sum(coeff))
            # Backtracking proximal step.
            improved = False
            for _ in range(40):
                w_new = soft_threshold(w - step * grad_w, step * self.lam)
                b_new = b - step * grad_b
                Xwb_new = X @ w_new + b_new
                l1_new = float(np.abs(w_new).sum())
                new_objective = float(np.mean(_log1pexp(-y * Xwb_new))) + lam * l1_new
                delta = w_new - w
                quad = (
                    objective
                    - self.lam * l1
                    + float(grad_w @ delta)
                    + grad_b * (b_new - b)
                    + (float(delta @ delta) + (b_new - b) ** 2) / (2 * step)
                    + self.lam * l1_new
                )
                if new_objective <= quad + 1e-12:
                    improved = True
                    break
                step *= 0.5
            if not improved:
                break
            converged = objective - new_objective < self.tol * max(1.0, abs(objective))
            w, b, objective = w_new, b_new, new_objective
            Xwb, l1 = Xwb_new, l1_new
            self.n_iter_ = iteration + 1
            if converged:
                break
            step = min(step * 1.5, 1e4)  # gentle step recovery
        self.weights = w
        self.bias = b
        return self

    def decision_function(self, X) -> np.ndarray:
        if self.weights is None:
            raise RuntimeError("model not fitted")
        return np.asarray(X @ self.weights).ravel() + self.bias

    def predict_proba(self, X) -> np.ndarray:
        return _sigmoid(self.decision_function(X))

    def predict(self, X) -> np.ndarray:
        return (self.decision_function(X) >= 0.0).astype(int)

    def nonzero_weights(self) -> int:
        if self.weights is None:
            return 0
        return int(np.count_nonzero(self.weights))


class OneVsRestL1Logistic:
    """Multiclass wrapper: one binary L1 model per class, probabilities
    normalized across classes.

    ``n_jobs`` fits the per-class binary models on a thread pool.  Each
    fit is an independent, RNG-free sequence of NumPy/SciPy operations
    over the shared (read-only) design matrix, so results are identical
    to the sequential path for any ``n_jobs`` — threads change wall-clock,
    never weights — and the heavy matvecs release the GIL.
    """

    def __init__(
        self,
        lam: float = 1e-3,
        max_iter: int = 300,
        tol: float = 1e-6,
        n_jobs: int = 1,
    ):
        self.lam = lam
        self.max_iter = max_iter
        self.tol = tol
        self.n_jobs = n_jobs
        self.classes_: List[str] = []
        self._models: Dict[str, L1LogisticRegression] = {}

    def _fit_one(self, X, y_all: np.ndarray, cls: str) -> L1LogisticRegression:
        y = np.where(y_all == cls, 1.0, -1.0)
        return L1LogisticRegression(self.lam, self.max_iter, self.tol).fit(X, y)

    def fit(self, X, labels: Sequence[str]) -> "OneVsRestL1Logistic":
        labels = list(labels)
        if X.shape[0] != len(labels):
            raise ValueError("X rows and labels length differ")
        self.classes_ = sorted(set(labels))
        if len(self.classes_) < 2:
            raise ValueError("need at least two classes")
        y_all = np.asarray(labels, dtype=object)
        workers = min(self.n_jobs, len(self.classes_))
        if workers > 1:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                fitted = list(
                    pool.map(lambda cls: self._fit_one(X, y_all, cls), self.classes_)
                )
        else:
            fitted = [self._fit_one(X, y_all, cls) for cls in self.classes_]
        # Assembled in class order either way, so iteration order (and
        # everything serialized from it) is job-count independent.
        self._models = dict(zip(self.classes_, fitted))
        return self

    def decision_matrix(self, X) -> np.ndarray:
        scores = np.column_stack(
            [self._models[cls].decision_function(X) for cls in self.classes_]
        )
        return scores

    def predict_proba(self, X) -> np.ndarray:
        """Per-class sigmoid scores normalized to sum to one per row."""
        raw = _sigmoid(self.decision_matrix(X))
        totals = raw.sum(axis=1, keepdims=True)
        totals[totals == 0.0] = 1.0
        return raw / totals

    def predict(self, X) -> List[str]:
        scores = self.decision_matrix(X)
        indices = np.argmax(scores, axis=1)
        return [self.classes_[i] for i in indices]

    def predict_with_confidence(self, X) -> List[Tuple[str, float]]:
        """(best class, confidence) per row.

        Confidence is the winning class's *raw* sigmoid score, not the
        normalized probability: a page from outside the training universe
        scores low against every one-vs-rest model, so thresholding raw
        scores leaves it unclassified (the paper's "unknown" PSRs), whereas
        normalized probabilities always sum to one and would overstate it.
        """
        raw = _sigmoid(self.decision_matrix(X))
        indices = np.argmax(raw, axis=1)
        return [
            (self.classes_[i], float(raw[row, i]))
            for row, i in enumerate(indices)
        ]

    def sparsity(self) -> Dict[str, int]:
        """Nonzero feature count per class — the interpretability the paper
        highlights ('a handful of HTML features')."""
        return {cls: model.nonzero_weights() for cls, model in self._models.items()}
