"""K-fold cross-validation (the paper's 10-fold protocol, Section 4.2.2)."""

from __future__ import annotations

import random
from collections import Counter
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Sequence, Tuple


from repro.classify.features import Vocabulary, vectorize
from repro.classify.linear import OneVsRestL1Logistic


def kfold_indices(n: int, k: int, seed: int = 0) -> List[List[int]]:
    """Shuffled fold membership: k disjoint index lists covering range(n)."""
    if k < 2:
        raise ValueError("k must be >= 2")
    if n < k:
        raise ValueError(f"cannot split {n} items into {k} folds")
    indices = list(range(n))
    # repro: allow-D001 seeded by the explicit fold-seed parameter; the classifier stack takes no RandomStreams dependency
    random.Random(seed).shuffle(indices)
    folds: List[List[int]] = [[] for _ in range(k)]
    for position, index in enumerate(indices):
        folds[position % k].append(index)
    return folds


def _fold_accuracy(
    feature_maps: Sequence[Counter],
    labels: List[str],
    held_out: List[int],
    lam: float,
    min_df: int,
) -> Optional[float]:
    """Held-out accuracy for one fold, or None if the training side is
    degenerate (fewer than two classes)."""
    held = set(held_out)
    train_idx = [i for i in range(len(labels)) if i not in held]
    train_labels = [labels[i] for i in train_idx]
    if len(set(train_labels)) < 2:
        return None
    vocabulary = Vocabulary(min_df=min_df).fit([feature_maps[i] for i in train_idx])
    X_train = vectorize([feature_maps[i] for i in train_idx], vocabulary)
    X_test = vectorize([feature_maps[i] for i in held_out], vocabulary)
    model = OneVsRestL1Logistic(lam=lam)
    model.fit(X_train, train_labels)
    predictions = model.predict(X_test)
    truth = [labels[i] for i in held_out]
    correct = sum(1 for p, t in zip(predictions, truth) if p == t)
    return correct / len(held_out)


def cross_validate_accuracy(
    feature_maps: Sequence[Counter],
    labels: Sequence[str],
    k: int = 10,
    lam: float = 1e-3,
    seed: int = 0,
    min_df: int = 2,
    n_jobs: int = 1,
) -> Tuple[float, List[float]]:
    """Mean held-out accuracy over k folds, refitting the vocabulary per fold
    (no leakage from held-out pages into the feature space).

    ``n_jobs`` runs folds on a thread pool.  Folds are independent and
    RNG-free past the shared ``kfold_indices`` shuffle, and accuracies are
    assembled in fold order, so results match the sequential path exactly.
    """
    if len(feature_maps) != len(labels):
        raise ValueError("feature_maps and labels length differ")
    labels = list(labels)
    folds = kfold_indices(len(labels), k, seed)
    workers = min(n_jobs, len(folds))
    if workers > 1:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            per_fold = list(pool.map(
                lambda held_out: _fold_accuracy(
                    feature_maps, labels, held_out, lam, min_df
                ),
                folds,
            ))
    else:
        per_fold = [
            _fold_accuracy(feature_maps, labels, held_out, lam, min_df)
            for held_out in folds
        ]
    accuracies = [a for a in per_fold if a is not None]
    if not accuracies:
        raise ValueError("no usable folds")
    return sum(accuracies) / len(accuracies), accuracies
