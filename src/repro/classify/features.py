"""HTML feature extraction (Section 4.2.1).

"We implemented a custom bag-of-words feature extractor based on
tag-attribute-value triplets" — each element contributes its tag, each
attribute a ``tag.attr`` token, and each (attribute, value) pair a
``tag.attr=value`` token.  Values are truncated and URLs reduced to their
path shape so features generalize across hosts while campaign template
telltales (class prefixes, stylesheet paths, analytics accounts) survive.
"""

from __future__ import annotations

import re
from collections import Counter
from typing import Dict, List, Optional, Sequence

import numpy as np
from scipy import sparse

from repro.html.nodes import Comment, Element
from repro.perf.cache import LRUCache, parse_html_cached

_MAX_VALUE_LEN = 48
_HOST_RE = re.compile(r"^https?://[^/]+")
_DIGIT_RUN_RE = re.compile(r"\d{3,}")

#: Attributes whose values are host-specific noise, not template signal.
_SKIP_VALUE_ATTRS = frozenset({"alt", "title", "value"})


def _normalize_value(attr: str, value: str) -> str:
    """Strip host-specific parts so the same template matches across domains."""
    value = _HOST_RE.sub("", value)
    value = _DIGIT_RUN_RE.sub("N", value)
    if len(value) > _MAX_VALUE_LEN:
        value = value[:_MAX_VALUE_LEN]
    return value


#: Feature Counters cached by content hash: attribution re-extracts the
#: same archived store/doorway pages every refinement round.
_FEATURE_CACHE = LRUCache("features", maxsize=32768, persistent=True)


def extract_features(html: str) -> Counter:
    """Tag-attribute-value bag of words for one page.

    Content-addressed: the returned Counter is shared between callers with
    identical HTML and must be treated as read-only (the training and
    attribution paths only read it into sparse matrices)."""
    return _FEATURE_CACHE.memo_html(html, _extract_features)


def _extract_features(html: str) -> Counter:
    doc = parse_html_cached(html)
    features: Counter = Counter()
    for node in doc.root.iter():
        tag = node.tag
        features[tag] += 1
        for attr, value in node.attrs.items():
            features[f"{tag}.{attr}"] += 1
            if attr in _SKIP_VALUE_ATTRS:
                continue
            norm = _normalize_value(attr, value)
            if norm:
                features[f"{tag}.{attr}={norm}"] += 1
            # Class lists additionally contribute per-class tokens — this is
            # where campaign class-prefix telltales live.
            if attr == "class":
                for cls in value.split():
                    features[f"{tag}.class~{_DIGIT_RUN_RE.sub('N', cls)}"] += 1
    # Template comments are strong campaign signatures.
    features.update(
        f"comment={_normalize_value('', c.data.strip())}"
        for c in _iter_comments(doc.root)
        if c.data.strip()
    )
    return features


def _iter_comments(root: Element):
    stack = [root]
    while stack:
        node = stack.pop()
        for child in node.children:
            if isinstance(child, Comment):
                yield child
            elif isinstance(child, Element):
                stack.append(child)


class Vocabulary:
    """Feature-name to column-index mapping, fit on a corpus."""

    def __init__(self, min_df: int = 1):
        self.min_df = min_df
        self._index: Dict[str, int] = {}

    def fit(self, feature_maps: Sequence[Counter]) -> "Vocabulary":
        document_frequency: Counter = Counter()
        for features in feature_maps:
            document_frequency.update(features.keys())
        self._index = {}
        for name in sorted(document_frequency):
            if document_frequency[name] >= self.min_df:
                self._index[name] = len(self._index)
        return self

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def index_of(self, name: str) -> Optional[int]:
        return self._index.get(name)

    def names(self) -> List[str]:
        ordered = [""] * len(self._index)
        for name, idx in self._index.items():
            ordered[idx] = name
        return ordered


def vectorize(
    feature_maps: Sequence[Counter], vocabulary: Vocabulary, sublinear: bool = True
) -> "sparse.csr_matrix":
    """Sparse count matrix (rows = pages); optional 1+log(count) scaling."""
    rows: List[int] = []
    cols: List[int] = []
    data: List[float] = []
    for row, features in enumerate(feature_maps):
        for name, count in features.items():
            col = vocabulary.index_of(name)
            if col is None:
                continue
            rows.append(row)
            cols.append(col)
            data.append(1.0 + float(np.log(count)) if sublinear else float(count))
    matrix = sparse.csr_matrix(
        (data, (rows, cols)), shape=(len(feature_maps), len(vocabulary))
    )
    return matrix
