"""repro — a reproduction of "Search + Seizure: The Effectiveness of
Interventions on SEO Campaigns" (Wang et al., IMC 2014).

The package pairs a synthetic-but-faithful ecosystem simulator (SEO
campaigns marketing counterfeit luxury goods through poisoned search
results, plus the interventions deployed against them) with a from-scratch
implementation of the paper's full measurement pipeline: cloaking-detection
crawlers, an L1 logistic-regression campaign classifier, purchase-pair
order-volume estimation, and the intervention-effectiveness analyses behind
every table and figure.

Quickstart::

    from repro import StudyRun
    from repro.ecosystem import paper_preset

    results = StudyRun(paper_preset(scale=0.08)).execute()
    print(len(results.dataset), "poisoned search results")
"""

from repro.study import StudyRun, StudyResults

__version__ = "1.0.0"

__all__ = ["StudyRun", "StudyResults", "__version__"]
