"""Tolerance bands and the release gate over the run ledger.

The paper's claims live in a handful of headline numbers — the Table 1–3
cells, PSR totals, poisoning-curve quantiles, seized-store lifetimes —
and the reproduction's performance story in a few timings.  This module
turns those into enforced invariants: a **band** is a dot-path pattern
plus an absolute/relative tolerance, and the **gate** checks the latest
ledger record (:mod:`repro.obs.ledger`) against a committed baseline
record, banding every baseline metric and failing on drift.

Two band kinds with deliberately different semantics:

* ``metric`` — deterministic headline values.  Checked everywhere, and
  their verdict lines include the numbers: same scenario → same values →
  the rendered verdict is byte-identical at any ``--jobs`` level and
  cold or warm disk cache (an acceptance invariant pinned in CI).
* ``perf`` — wall times and per-call µs.  Inherently noisy and
  host-dependent, so they only *arm* when the current host fingerprint
  (cpus/platform/python) **and** the run switches (jobs, caches, disk
  tier — byte-identity-preserving but not timing-preserving) match the
  baseline's, and their verdict lines never print the measured value —
  drift shows in the drift *report*, not the deterministic verdict.

Checks are derived from the **baseline's** paths: a metric the baseline
never recorded (say ``disk_store.*`` from a run without ``--disk-cache``)
is simply not gated, so optional subsystems can't flip the verdict; a
banded baseline path the current record lost is a hard ``missing`` drift.

The tolerance is ``allowed = max(abs_tol, rel_tol * |baseline|)``; a
``direction`` of ``upper``/``lower`` makes the band one-sided (e.g.
quarantined entries may shrink freely but never grow).
"""

from __future__ import annotations

import json
import os
import platform
import sys
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Dict, List, Optional, Sequence

from repro.obs.ledger import RunLedger, record_metrics
from repro.util.atomicio import atomic_write

#: Baseline file schema, bumped on field changes.
BASELINE_SCHEMA = 1


@dataclass(frozen=True)
class Band:
    """One tolerance band: which paths, how much drift, which direction."""

    pattern: str
    abs_tol: float = 0.0
    rel_tol: float = 0.0
    #: ``both`` | ``upper`` (current may not exceed baseline + tolerance)
    #: | ``lower`` (current may not fall below baseline - tolerance).
    direction: str = "both"
    #: ``metric`` (deterministic, value-rendering) | ``perf`` (host-gated,
    #: status-only in the verdict).
    kind: str = "metric"

    def matches(self, path: str) -> bool:
        return fnmatchcase(path, self.pattern)

    def allowed(self, baseline: float) -> float:
        return max(self.abs_tol, self.rel_tol * abs(baseline))


#: The committed vocabulary of what must not drift.  Ordered most-specific
#: first: the first matching band wins.
DEFAULT_BANDS: Sequence[Band] = (
    # Headline counts and rates (deterministic).
    Band("psr.*", rel_tol=0.02, abs_tol=1),
    Band("labels.coverage", abs_tol=0.005),
    Band("attribution.rate", abs_tol=0.02),
    Band("attribution.campaigns", abs_tol=0),
    # Table 1–3 cells: small absolute slop for count cells near zero,
    # relative slop for the big ones.
    Band("table1.*", rel_tol=0.05, abs_tol=2),
    Band("table2.*", rel_tol=0.05, abs_tol=2),
    Band("table3.*", rel_tol=0.05, abs_tol=2),
    # PSR poisoning-curve quantiles are fractions of result slots.
    Band("psr_curve.*", abs_tol=0.02),
    # Seized-store lifetime brackets (days).
    Band("lifetimes.*.measured", abs_tol=1),
    Band("lifetimes.*", rel_tol=0.10, abs_tol=2),
    # Disk-store health: quarantines must never grow; the store may not
    # blow past its cap headroom.
    Band("disk_store.quarantined", abs_tol=0, direction="upper"),
    Band("disk_store.utilization", abs_tol=0.25, direction="upper"),
    Band("disk_store.entries", rel_tol=0.25, abs_tol=64),
    # Perf bands: noisy, host-gated, one-sided (faster is never drift).
    Band("wall_s", rel_tol=0.50, direction="upper", kind="perf"),
    Band("perf.engine.serp.mean_us", rel_tol=0.75, direction="upper",
         kind="perf"),
    Band("perf.simulator.day.mean_us", rel_tol=0.75, direction="upper",
         kind="perf"),
    # Benchmark-record metrics (bench:study / bench:serp / bench:lint).
    Band("psrs", rel_tol=0.02, abs_tol=1),
    Band("checkpoint_delta_ratio", abs_tol=0.10, direction="upper"),
    Band("total_s_cached", rel_tol=0.50, direction="upper", kind="perf"),
    Band("*_us_per_serp", rel_tol=0.75, direction="upper", kind="perf"),
    Band("*mean_us", rel_tol=0.75, direction="upper", kind="perf"),
    Band("*_s", rel_tol=0.75, direction="upper", kind="perf"),
    Band("*speedup", rel_tol=0.50, direction="lower", kind="perf"),
)


def host_fingerprint(manifest: Optional[dict] = None) -> dict:
    """The host facts that make perf numbers comparable across runs."""
    if manifest is not None:
        return {
            "cpus": manifest.get("cpus"),
            "platform": manifest.get("platform"),
            "python": manifest.get("python"),
        }
    return {
        "cpus": os.cpu_count(),
        "platform": sys.platform,
        "python": platform.python_version(),
    }


def perf_metrics(record: dict) -> Dict[str, float]:
    """A record's timing metrics, flattened: run wall time plus the PERF
    timer snapshot (``perf.<timer>.mean_us`` / ``.total_s``)."""
    flat: Dict[str, float] = {}
    if record.get("wall_s") is not None:
        flat["wall_s"] = record["wall_s"]
    for name in sorted(record.get("perf") or {}):
        entry = record["perf"][name]
        if not isinstance(entry, dict):
            continue
        for stat in ("mean_us", "total_s"):
            if stat in entry:
                flat[f"perf.{name}.{stat}"] = entry[stat]
    return flat


def gate_metrics(record: dict) -> Dict[str, float]:
    """Everything bandable in one record: deterministic headline metrics
    plus timing metrics.  Which semantics apply is the matching band's
    ``kind``, not the dict of origin — a benchmark's headline legitimately
    carries wall times."""
    flat = record_metrics(record)
    flat.update(perf_metrics(record))
    return flat


@dataclass
class BandCheck:
    """One banded comparison of a baseline path against the current run."""

    path: str
    band: Band
    baseline: float
    current: Optional[float]
    #: ``ok`` | ``drift`` | ``missing`` | ``skipped`` (perf band with a
    #: foreign host fingerprint or different run switches).
    status: str = "ok"

    @property
    def delta(self) -> Optional[float]:
        if self.current is None:
            return None
        return self.current - self.baseline

    @property
    def allowed(self) -> float:
        return self.band.allowed(self.baseline)


def check_bands(
    current: Dict[str, float],
    baseline: Dict[str, float],
    bands: Sequence[Band] = DEFAULT_BANDS,
    perf_armed: bool = True,
) -> List[BandCheck]:
    """Band every baseline path against the current values.

    Paths the baseline lacks are not checked (optional subsystems);
    baseline paths without a matching band are not checked (unbanded
    provenance); a banded baseline path absent from ``current`` is a
    ``missing`` drift.  ``perf_armed=False`` parks every perf-kind band
    as ``skipped`` (foreign host or switch settings)."""
    checks: List[BandCheck] = []
    for path in sorted(baseline):
        band = next((b for b in bands if b.matches(path)), None)
        if band is None:
            continue
        base = baseline[path]
        value = current.get(path)
        check = BandCheck(path=path, band=band, baseline=base, current=value)
        if band.kind == "perf" and not perf_armed:
            check.status = "skipped"
        elif value is None:
            check.status = "missing"
        else:
            delta = value - base
            allowed = band.allowed(base)
            over = delta > allowed and band.direction in ("both", "upper")
            under = -delta > allowed and band.direction in ("both", "lower")
            check.status = "drift" if (over or under) else "ok"
        checks.append(check)
    return checks


@dataclass
class GateResult:
    """The gate's verdict over one record-vs-baseline comparison."""

    key: str
    checks: List[BandCheck] = field(default_factory=list)

    @property
    def drifted(self) -> List[BandCheck]:
        return [c for c in self.checks if c.status in ("drift", "missing")]

    @property
    def ok(self) -> bool:
        return not self.drifted

    def verdict_lines(self) -> List[str]:
        """The deterministic verdict: one line per metric-kind check.

        Metric values are deterministic by construction (same scenario →
        same numbers at any ``--jobs``, cold or warm), so this rendering
        is byte-identical across those variants on a clean run — CI pins
        that with ``cmp``.  Perf checks are summarized in one count line
        (their per-run values are noise); their detail lives in the drift
        report, and a perf drift still flips the header to DRIFT."""
        lines = [f"gate {self.key}: {'PASS' if self.ok else 'DRIFT'}"]
        perf_checks = [c for c in self.checks if c.band.kind == "perf"]
        for check in self.checks:
            if check.band.kind == "perf":
                continue
            if check.status == "missing":
                lines.append(
                    f"  [missing] {check.path} "
                    f"(baseline {check.baseline:g})"
                )
            else:
                span = ("" if check.band.direction == "both"
                        else " " + check.band.direction)
                lines.append(
                    f"  [{check.status:>7s}] {check.path} "
                    f"{check.baseline:g} -> {check.current:g} "
                    f"(allowed ±{check.allowed:g}{span})"
                )
        if perf_checks:
            armed = [c for c in perf_checks if c.status != "skipped"]
            if not armed:
                lines.append(
                    f"  perf: {len(perf_checks)} banded, "
                    f"skipped (foreign host or switches)"
                )
            else:
                bad = sum(1 for c in armed
                          if c.status in ("drift", "missing"))
                lines.append(
                    f"  perf: {len(armed)} banded, "
                    f"{bad} drifted (see drift report)"
                )
        return lines


# ---------------------------------------------------------------------- #
# Baseline file
# ---------------------------------------------------------------------- #

def load_baseline(path: str) -> dict:
    """Read a baseline file; raises ``FileNotFoundError``/``ValueError``."""
    with open(path) as handle:
        payload = json.load(handle)
    if payload.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"{path}: baseline schema {payload.get('schema')!r} "
            f"(expected {BASELINE_SCHEMA})"
        )
    return payload


def write_baseline(path: str, records: Sequence[dict],
                   existing: Optional[dict] = None) -> dict:
    """Write (or update, keyed by record ``key``) a baseline file."""
    payload = existing if existing is not None else {
        "schema": BASELINE_SCHEMA, "baselines": {}}
    for record in records:
        payload["baselines"][record["key"]] = record
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with atomic_write(path) as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload


def extra_bands(baseline: dict) -> List[Band]:
    """Optional per-repo band overrides carried in the baseline file,
    checked before the defaults."""
    bands = []
    for spec in baseline.get("bands", []):
        bands.append(Band(
            pattern=spec["pattern"],
            abs_tol=spec.get("abs_tol", 0.0),
            rel_tol=spec.get("rel_tol", 0.0),
            direction=spec.get("direction", "both"),
            kind=spec.get("kind", "metric"),
        ))
    return bands


def run_gate(record: dict, baseline: dict,
             bands: Optional[Sequence[Band]] = None) -> Optional[GateResult]:
    """Gate one ledger record against the baseline file's matching entry.

    Returns ``None`` when the baseline has no entry for the record's key
    (the caller decides whether that is a usage error)."""
    base_record = baseline.get("baselines", {}).get(record.get("key"))
    if base_record is None:
        return None
    if bands is None:
        bands = list(extra_bands(baseline)) + list(DEFAULT_BANDS)
    # Perf numbers are only comparable from the same host *and* the same
    # switch settings: a cold disk-cache leg legitimately pays write
    # overhead a memory-only baseline never saw, and that must park the
    # perf bands, not fail the gate.
    armed = (
        host_fingerprint(record.get("manifest"))
        == host_fingerprint(base_record.get("manifest"))
        and record.get("switches") == base_record.get("switches")
    )
    checks = check_bands(
        gate_metrics(record), gate_metrics(base_record),
        bands=bands, perf_armed=armed,
    )
    return GateResult(key=record["key"], checks=checks)


def gate_history(ledger: RunLedger, checks: Sequence[BandCheck], key: str,
                 kind: Optional[str] = None,
                 limit: int = 32) -> Dict[str, List[float]]:
    """Ledger history series for the gated paths (drift report sparklines).

    Filtered by kind as well as key so chaos-run records of the same
    scenario never blend into a study metric's trajectory."""
    paths = [c.path for c in checks]
    series = ledger.history(paths, kind=kind, key=key)
    return {
        path: values[-limit:]
        for path, values in sorted(series.items()) if values
    }
