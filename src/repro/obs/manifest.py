"""Run provenance: the manifest embedded in every emitted artifact.

Benchmark trajectories (``BENCH_*.json``), PSR dumps, and ablation
outputs are only comparable across runs when each one records *what ran*:
which scenario (seed, window, census sizes — collapsed into a stable
config digest), which code (package version, git SHA), on what host (CPU
count, platform, Python), and under which switches (caches, tracing).
:func:`run_manifest` builds that block; the BENCH writers
(``benchmarks/benchlib.py``, :func:`repro.lint.reporting.write_summary`)
and the CLI's artifact writers embed it.

This module is the one sanctioned wall-clock reader in the tree
(``created_at`` timestamps provenance, never simulation state) — the D003
lint rule exempts ``repro/obs/`` for exactly this; simulation code still
may not read the host clock.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from dataclasses import asdict, is_dataclass
from hashlib import blake2b
from typing import Dict, Optional

#: Manifest schema version, bumped on field changes.
MANIFEST_SCHEMA = 1

_git_sha_cache: Dict[str, Optional[str]] = {}


def git_sha(root: Optional[str] = None) -> Optional[str]:
    """The repository HEAD commit, or None outside a checkout."""
    key = root or ""
    if key in _git_sha_cache:
        return _git_sha_cache[key]
    cwd = root or os.path.dirname(os.path.abspath(__file__))
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=5,
        )
        sha = proc.stdout.strip() if proc.returncode == 0 else None
    except (OSError, subprocess.SubprocessError):
        sha = None
    _git_sha_cache[key] = sha
    return sha


def _canonical(value):
    """A stable, JSON-able projection of a config value tree."""
    if is_dataclass(value) and not isinstance(value, type):
        return {"__type": type(value).__name__,
                **{k: _canonical(v) for k, v in sorted(asdict(value).items())}}
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    # SimDate, DateRange, enums, policies: repr is stable and value-bearing.
    return repr(value)


def config_digest(config) -> str:
    """16-hex-char BLAKE2b digest of a scenario config's canonical form.

    Two configs with the same digest run the same scenario; any field
    change (seed, window, census counts, policies) changes the digest."""
    blob = json.dumps(_canonical(config), sort_keys=True).encode("utf-8")
    return blake2b(blob, digest_size=8).hexdigest()


def run_manifest(config=None, **extra) -> dict:
    """The provenance block for one run's artifacts.

    ``config`` (a :class:`repro.ecosystem.config.ScenarioConfig`) adds the
    scenario fields; ``extra`` keys (e.g. ``preset=\"small\"``,
    ``scale=0.25``) ride along verbatim."""
    from repro import __version__
    from repro.obs.trace import tracing_enabled
    from repro.perf.cache import caches_enabled, disk_cache_path

    manifest = {
        "schema": MANIFEST_SCHEMA,
        "package": "repro",
        "version": __version__,
        "git_sha": git_sha(),
        "python": platform.python_version(),
        "platform": sys.platform,
        "cpus": os.cpu_count(),
        "cache_enabled": caches_enabled(),
        "disk_cache": disk_cache_path(),
        "trace_enabled": tracing_enabled(),
        # Wall-clock is sanctioned here (provenance, not simulation state).
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%S%z", time.localtime()),
    }
    if config is not None:
        manifest["config"] = {
            "digest": config_digest(config),
            "seed": config.seed,
            "window_start": config.window.start.isoformat(),
            "window_end": config.window.end.isoformat(),
            "days": len(config.window),
            "verticals": len(config.verticals),
            "campaigns": len(config.all_campaign_specs()),
            "terms_per_vertical": config.terms_per_vertical,
            "serp_size": config.serp_size,
        }
    manifest.update(extra)
    return manifest
