"""Hierarchical span tracing over the study pipeline.

A *span* is one named, nested region of a run — ``study``, ``simulate``,
one ``day`` (tagged with its sim-date), that day's ``campaigns`` /
``interventions`` / ``serps`` / ``traffic`` passes, the measurement
``crawl``, the ``classify`` stages, an ablation variant.  Each span
records:

* wall-clock (``perf_counter`` pairs — the same monotonic source the PERF
  registry uses; never the host calendar clock);
* its tags (``sim_day``, variant names, ...);
* the **PERF counter and timer deltas** that accrued inside it, so the
  flat always-on registry gains phase structure: the trace tree shows
  *where inside* ``simulator.day`` the ``engine.serp`` / ``web.fetch`` /
  ``crawler.dagger`` time goes without adding per-call instrumentation.

Tracing is **off by default**.  Disabled, :meth:`Tracer.span` returns a
shared ``nullcontext`` — no allocation, no clock read — so the hooks wired
through the simulator and crawler cost nothing on untraced runs; spans are
only created at phase granularity (a few per simulated day), so traced
runs stay within a few percent of untraced wall-clock.  Tracing reads no
simulation state and writes none: traced study outputs are byte-identical
to untraced ones (pinned in ``tests/test_obs.py``).

Exports:

* :meth:`Tracer.render` — an aggregated text tree (same-named siblings
  merge, with call counts), printed by ``python -m repro trace``;
* :meth:`Tracer.chrome_trace` — Chrome/Perfetto ``trace_event`` JSON
  (open in ``chrome://tracing`` or https://ui.perfetto.dev);
* :meth:`Tracer.export` / :meth:`Tracer.adopt` — picklable span dicts for
  forwarding worker-process spans into the parent tracer (the ablation
  pool forwards each variant's spans in deterministic variant order, the
  same pattern as its PERF counter merge).
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext
from time import perf_counter
from typing import Dict, Iterator, List, Optional, Tuple

from repro.util.perf import PERF

#: Shared do-nothing context for the disabled fast path.
_NULL_SPAN = nullcontext()


class Span:
    """One completed (or in-flight) traced region."""

    __slots__ = (
        "name", "tags", "ts_us", "dur_s", "children", "counters", "timers",
        "track", "_t0", "_counter_base", "_timer_base",
    )

    def __init__(self, name: str, tags: Dict[str, object]):
        self.name = name
        self.tags = tags
        #: Start offset from the tracer epoch, microseconds.
        self.ts_us = 0.0
        #: Wall-clock seconds between enter and exit.
        self.dur_s = 0.0
        self.children: List["Span"] = []
        #: PERF counter deltas accrued inside the span.
        self.counters: Dict[str, int] = {}
        #: PERF timer deltas accrued inside the span: name -> (calls, seconds).
        self.timers: Dict[str, Tuple[int, float]] = {}
        #: Chrome-trace track (worker spans adopted from a pool get their own).
        self.track = 0
        self._t0 = 0.0
        self._counter_base: Dict[str, int] = {}
        self._timer_base: Dict[str, Tuple[int, float]] = {}

    # ------------------------------------------------------------------ #

    def _enter(self, epoch: float) -> None:
        self._counter_base = PERF.counters()
        self._timer_base = {
            name: (stat.calls, stat.total) for name, stat in PERF.timers().items()
        }
        self._t0 = perf_counter()
        self.ts_us = (self._t0 - epoch) * 1e6

    def _exit(self) -> None:
        self.dur_s = perf_counter() - self._t0
        base = self._counter_base
        self.counters = {
            name: value - base.get(name, 0)
            for name, value in PERF.counters().items()
            if value - base.get(name, 0)
        }
        timer_base = self._timer_base
        timers: Dict[str, Tuple[int, float]] = {}
        for name, stat in PERF.timers().items():
            calls0, total0 = timer_base.get(name, (0, 0.0))
            if stat.calls != calls0:
                timers[name] = (stat.calls - calls0, stat.total - total0)
        self.timers = timers
        self._counter_base = {}
        self._timer_base = {}

    # ------------------------------------------------------------------ #

    def exclusive_timers(self) -> Dict[str, Tuple[int, float]]:
        """Timer deltas not already accounted for by an explicit child span
        (a PERF timer that advanced inside ``serps`` shows there, not again
        on the enclosing ``day``)."""
        out: Dict[str, Tuple[int, float]] = {}
        for name, (calls, total) in self.timers.items():
            child_calls = sum(c.timers.get(name, (0, 0.0))[0] for c in self.children)
            child_total = sum(c.timers.get(name, (0, 0.0))[1] for c in self.children)
            if calls - child_calls > 0:
                out[name] = (calls - child_calls, total - child_total)
        return out

    def to_dict(self) -> dict:
        """Picklable/JSON-able form (used to forward worker spans)."""
        return {
            "name": self.name,
            "tags": dict(self.tags),
            "ts_us": self.ts_us,
            "dur_s": self.dur_s,
            "counters": dict(self.counters),
            "timers": {name: list(delta) for name, delta in self.timers.items()},
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        span = cls(payload["name"], dict(payload.get("tags", {})))
        span.ts_us = payload.get("ts_us", 0.0)
        span.dur_s = payload.get("dur_s", 0.0)
        span.counters = dict(payload.get("counters", {}))
        span.timers = {
            name: (int(delta[0]), float(delta[1]))
            for name, delta in payload.get("timers", {}).items()
        }
        span.children = [cls.from_dict(c) for c in payload.get("children", [])]
        return span

    def structure(self) -> tuple:
        """Timing-free shape: (name, tags, child structures).  Two runs of
        the same seed must produce equal structures (tested)."""
        return (
            self.name,
            tuple(sorted((k, str(v)) for k, v in self.tags.items())),
            tuple(child.structure() for child in self.children),
        )

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, dur={self.dur_s:.3f}s, "
                f"children={len(self.children)})")


class Tracer:
    """Process-global span collector (see module docstring)."""

    def __init__(self):
        self._enabled = False
        self._epoch: Optional[float] = None
        self._stack: List[Span] = []
        self.roots: List[Span] = []

    # ------------------------------------------------------------------ #
    # Switching
    # ------------------------------------------------------------------ #

    @property
    def enabled(self) -> bool:
        return self._enabled

    # repro: effects=worker-safe
    def set_enabled(self, on: bool) -> bool:
        """Flip tracing; enabling starts a fresh trace.  Returns previous."""
        previous = self._enabled
        self._enabled = bool(on)
        if self._enabled and not previous:
            self.reset()
        return previous

    # repro: effects=worker-safe
    def reset(self) -> None:
        self._stack = []
        self.roots = []
        self._epoch = None

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #

    def span(self, name: str, **tags):
        """Context manager opening a child span of the current one.

        Disabled tracer: returns a shared no-op context (zero cost)."""
        if not self._enabled:
            return _NULL_SPAN
        return self._record(name, tags)

    @contextmanager
    def _record(self, name: str, tags: Dict[str, object]) -> Iterator[Span]:
        span = Span(name, tags)
        if self._epoch is None:
            self._epoch = perf_counter()
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        span._enter(self._epoch)
        try:
            yield span
        finally:
            span._exit()
            self._stack.pop()

    @property
    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    # ------------------------------------------------------------------ #
    # Worker forwarding
    # ------------------------------------------------------------------ #

    def export(self) -> List[dict]:
        """The completed root spans as picklable dicts."""
        return [root.to_dict() for root in self.roots]

    def adopt(self, span_dicts: List[dict], track: int = 0) -> List[Span]:
        """Attach forwarded spans under the current span (or as roots).

        Workers run in their own processes with their own clocks, so
        adopted spans keep their original timestamps but move to their own
        chrome-trace ``track``; callers adopt in a deterministic order
        (the ablation pool uses submission order) so the merged tree is
        schedule-independent."""
        adopted = []
        for payload in span_dicts:
            span = Span.from_dict(payload)
            _set_track(span, track)
            if self._stack:
                self._stack[-1].children.append(span)
            else:
                self.roots.append(span)
            adopted.append(span)
        return adopted

    # ------------------------------------------------------------------ #
    # Rendering / export
    # ------------------------------------------------------------------ #

    def render(self, show_timers: bool = True, show_counters: bool = False) -> str:
        """Aggregated text tree: same-named siblings merge with a ``×N``
        call count; PERF timer deltas appear as ``·`` leaf lines at the
        deepest span that exclusively accrued them."""
        if not self.roots:
            return "(no spans recorded — enable tracing first)"
        lines: List[str] = []
        groups = _aggregate(self.roots)
        for i, group in enumerate(groups):
            _render_group(group, "", i == len(groups) - 1, None, lines,
                          show_timers, show_counters)
        return "\n".join(lines)

    def chrome_trace(self, manifest: Optional[dict] = None) -> dict:
        """The trace in Chrome/Perfetto ``trace_event`` format.

        ``manifest`` (a :func:`repro.obs.manifest.run_manifest` dict) rides
        in ``otherData`` so the provenance travels with the trace file."""
        events: List[dict] = []
        for root in self.roots:
            _emit_events(root, events)
        other: Dict[str, object] = {"source": "repro.obs.trace"}
        if manifest is not None:
            other["manifest"] = manifest
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": other,
        }

    def dump_chrome_trace(self, path: str, manifest: Optional[dict] = None) -> None:
        import json

        from repro.util.atomicio import atomic_write

        with atomic_write(path) as handle:
            json.dump(self.chrome_trace(manifest), handle, indent=1, sort_keys=True)
            handle.write("\n")

    def total_s(self) -> float:
        """Summed duration of the root spans (≈ traced wall-clock)."""
        return sum(root.dur_s for root in self.roots)


def _set_track(span: Span, track: int) -> None:
    span.track = track
    for child in span.children:
        _set_track(child, track)


def _emit_events(span: Span, events: List[dict]) -> None:
    args: Dict[str, object] = {str(k): v for k, v in span.tags.items()}
    for name, value in sorted(span.counters.items()):
        args[name] = value
    for name, (calls, total) in sorted(span.timers.items()):
        args[f"{name}.calls"] = calls
        args[f"{name}.total_ms"] = round(total * 1e3, 3)
    events.append({
        "name": span.name,
        "ph": "X",
        "ts": round(span.ts_us, 1),
        "dur": round(span.dur_s * 1e6, 1),
        "pid": 0,
        "tid": span.track,
        "cat": "repro",
        "args": args,
    })
    for child in span.children:
        _emit_events(child, events)


class _Group:
    """Same-named sibling spans merged for the text rendering."""

    __slots__ = ("name", "count", "dur_s", "children", "timers", "counters", "tags")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.dur_s = 0.0
        self.children: List[Span] = []
        self.timers: Dict[str, Tuple[int, float]] = {}
        self.counters: Dict[str, int] = {}
        #: Tag summary: first span's tags (day ranges collapse to first..last).
        self.tags: Dict[str, object] = {}


def _aggregate(spans: List[Span]) -> List["_Group"]:
    groups: Dict[str, _Group] = {}
    order: List[str] = []
    for span in spans:
        group = groups.get(span.name)
        if group is None:
            group = groups[span.name] = _Group(span.name)
            order.append(span.name)
            group.tags = dict(span.tags)
        group.count += 1
        group.dur_s += span.dur_s
        group.children.extend(span.children)
        for name, (calls, total) in span.exclusive_timers().items():
            calls0, total0 = group.timers.get(name, (0, 0.0))
            group.timers[name] = (calls0 + calls, total0 + total)
        for name, value in span.counters.items():
            group.counters[name] = group.counters.get(name, 0) + value
    return [groups[name] for name in order]


def _render_group(
    group: "_Group",
    prefix: str,
    last: bool,
    parent_dur: Optional[float],
    lines: List[str],
    show_timers: bool,
    show_counters: bool,
) -> None:
    if parent_dur is None:
        connector = ""
        child_prefix = prefix
    else:
        connector = "└─ " if last else "├─ "
        child_prefix = prefix + ("   " if last else "│  ")
    label = group.name if group.count == 1 else f"{group.name} ×{group.count}"
    share = ""
    if parent_dur and parent_dur > 0:
        share = f"  {group.dur_s / parent_dur:6.1%}"
    tag_text = ""
    if group.count == 1 and group.tags:
        tag_text = "  [" + ", ".join(
            f"{k}={v}" for k, v in sorted(group.tags.items())) + "]"
    lines.append(
        f"{prefix}{connector}{label:<{max(1, 36 - len(prefix) - len(connector))}}"
        f"{group.dur_s:9.3f}s{share}{tag_text}"
    )
    child_groups = _aggregate(group.children)
    extras: List[str] = []
    if show_timers:
        for name, (calls, total) in sorted(
                group.timers.items(), key=lambda kv: -kv[1][1]):
            extras.append(
                f"{child_prefix}· {name:<{max(1, 34 - len(child_prefix))}}"
                f"{total:9.3f}s  ({calls:,} calls)"
            )
    if show_counters:
        for name, value in sorted(group.counters.items()):
            extras.append(f"{child_prefix}· {name} = {value:,}")
    lines.extend(extras)
    for i, child in enumerate(child_groups):
        _render_group(child, child_prefix, i == len(child_groups) - 1,
                      group.dur_s, lines, show_timers, show_counters)


#: The process-global tracer every instrumented path reports into.
TRACER = Tracer()


def tracing_enabled() -> bool:
    return TRACER.enabled


def set_tracing_enabled(on: bool) -> bool:
    """Module-level convenience mirroring :func:`repro.perf.cache.set_caches_enabled`."""
    return TRACER.set_enabled(on)
