"""Per-sim-day metrics: the study's own time series, recorded as it runs.

The paper's conclusions are time-series claims (PSR share per day,
campaign lifetimes, intervention response lag), so the pipeline records
its own per-day series while it runs: a :class:`MetricsRecorder` rides as
the *last* simulator observer (after the crawler and orderer have seen
the day) and samples once per simulated day:

* crawl output — new PSRs, active/cumulative doorway domains, stores;
* intervention state — labeled and penalized hosts in the engine;
* hot-path health — SERPs served and content-addressed cache hit rate.

The samples split into two files with different determinism contracts:

* ``metrics.jsonl`` (:data:`METRICS_COLUMNS`) — **deterministic**: every
  column derives from simulation state or exact counter deltas, so the
  file is byte-identical for a seed at any ``--jobs`` level, cached or
  not (pinned in ``tests/test_shardpool.py`` with no column masking).
* ``telemetry.jsonl`` (:data:`TELEMETRY_COLUMNS`) — **timing/host
  gauges**: mean SERP serve µs, shard-pool task/steal/fallback gauges,
  disk-tier hit rate.  These legitimately vary run to run and live in a
  sidecar so they can never contaminate the deterministic artifact.

Storage is columnar (one list per column) so sampling is O(counters) per
day and a column feeds :func:`repro.reporting.sparkline.sparkline_row`
directly.  Both writers emit one JSON row per simulated day with an
optional leading provenance row carrying the run manifest (consumers
skip rows whose ``_type`` is not ``sample``; :meth:`load_jsonl` does).

Recording reads simulation state and never writes it: studies run with a
recorder attached produce byte-identical outputs (``tests/test_obs.py``).
"""

from __future__ import annotations

import json
import warnings
from typing import Dict, List, Optional, Tuple

from repro.util.atomicio import atomic_write
from repro.util.perf import PERF

#: Column order of one metrics row (the JSONL schema, golden-tested).
#: Every column is deterministic for a seed — timing gauges live in
#: :data:`TELEMETRY_COLUMNS` instead.
METRICS_COLUMNS: Tuple[str, ...] = (
    "day",              # ISO sim-date
    "day_index",        # 0-based offset in the study window
    "psrs",             # PSR records added this day
    "psrs_total",       # cumulative PSR records
    "active_doorways",  # distinct doorway hosts in this day's PSRs
    "doorways_seen",    # cumulative distinct doorway hosts
    "stores_seen",      # cumulative distinct landing stores
    "serps_served",     # engine.serp timer calls this day
    "labels_active",    # hosts carrying a SERP warning label
    "penalties_active", # hosts under a ranking penalty
    "cache_hit_rate",   # content-addressed cache hits/(hits+misses) this day
    "faults_injected",  # faults.injected.* counter deltas this day
    "faults_retried",   # fetch attempts retried after a transient fault
    "faults_degraded",  # records dropped/deferred because inputs were damaged
)

#: Column order of one telemetry row: wall-clock and host-dependent
#: gauges, segregated so ``metrics.jsonl`` stays byte-identical across
#: jobs/cache variants.
TELEMETRY_COLUMNS: Tuple[str, ...] = (
    "day",              # ISO sim-date
    "day_index",        # 0-based offset in the study window
    "serp_serve_us",    # mean engine.serp µs this day (0 when memoized away)
    "shard_tasks",      # crawl tasks enqueued to the shard pool this day
    "shard_steals",     # work-stealing moves this day
    "shard_fallback",   # 1 when the day fell back to the sequential path
    "disk_hit_rate",    # disk-tier hits/(hits+misses) this day
)


class MetricsRecorder:
    """Simulator observer sampling the per-day study time series."""

    def __init__(self, crawler=None):
        #: The measurement crawler whose dataset is sampled (optional: a
        #: recorder without one still tracks engine/cache/serve columns).
        self.crawler = crawler
        self.columns: Dict[str, List] = {name: [] for name in METRICS_COLUMNS}
        #: Telemetry sidecar columns (timing/host gauges).
        self.telemetry: Dict[str, List] = {
            name: [] for name in TELEMETRY_COLUMNS}
        self._day_index = 0
        self._records_seen = 0
        self._store_hosts: set = set()
        #: Shard-pool ``day_stats`` rows already folded into telemetry.
        self._shard_rows_seen = 0
        # Deltas count from construction, not process start: the PERF
        # registry is process-global and may already carry earlier runs.
        self._serp_base = self._serp_totals()
        self._cache_base = self._cache_totals()
        self._fault_base = self._fault_totals()
        self._disk_base = self._disk_totals()

    def rebase(self) -> None:
        """Re-anchor PERF-delta baselines to the *current* registry totals.

        Called after a checkpoint resume: the recorder's pickled baselines
        refer to the crashed process's counter values, which the fresh
        process never accumulated.  Without rebasing, the first resumed
        day would report huge negative deltas.
        """
        self._serp_base = self._serp_totals()
        self._cache_base = self._cache_totals()
        self._fault_base = self._fault_totals()
        self._disk_base = self._disk_totals()
        # The resumed process's executor starts with an empty day_stats
        # list; stale row counts would make the first delta negative.
        self._shard_rows_seen = 0

    # ------------------------------------------------------------------ #
    # Observer interface
    # ------------------------------------------------------------------ #

    def on_day(self, world, context) -> None:
        day = context.day
        serp_calls, serp_s = self._serp_delta()
        hits, misses = self._cache_delta()
        looked_up = hits + misses
        injected, retried, degraded = self._fault_delta()
        disk_hits, disk_misses = self._disk_delta()
        disk_looked_up = disk_hits + disk_misses
        shard_tasks, shard_steals, shard_fallback = self._shard_delta()

        psrs_today = 0
        active_doorways = 0
        doorways_seen = 0
        stores_seen = 0
        psrs_total = 0
        if self.crawler is not None:
            dataset = self.crawler.dataset
            new_records = dataset.records[self._records_seen:]
            self._records_seen = len(dataset.records)
            psrs_today = len(new_records)
            psrs_total = len(dataset.records)
            active_doorways = len({r.host for r in new_records})
            doorways_seen = dataset.host_count()
            for record in new_records:
                if record.is_store:
                    self._store_hosts.add(record.landing_host)
            stores_seen = len(self._store_hosts)

        row = {
            "day": day.isoformat(),
            "day_index": self._day_index,
            "psrs": psrs_today,
            "psrs_total": psrs_total,
            "active_doorways": active_doorways,
            "doorways_seen": doorways_seen,
            "stores_seen": stores_seen,
            "serps_served": serp_calls,
            "labels_active": len(world.engine.labeled_hosts()),
            "penalties_active": len(world.engine.penalized_hosts()),
            "cache_hit_rate": (hits / looked_up) if looked_up else 0.0,
            "faults_injected": injected,
            "faults_retried": retried,
            "faults_degraded": degraded,
        }
        for name in METRICS_COLUMNS:
            self.columns[name].append(row[name])
        gauges = {
            "day": day.isoformat(),
            "day_index": self._day_index,
            "serp_serve_us": (serp_s / serp_calls * 1e6) if serp_calls else 0.0,
            "shard_tasks": shard_tasks,
            "shard_steals": shard_steals,
            "shard_fallback": shard_fallback,
            "disk_hit_rate": (
                disk_hits / disk_looked_up) if disk_looked_up else 0.0,
        }
        for name in TELEMETRY_COLUMNS:
            self.telemetry[name].append(gauges[name])
        self._day_index += 1

    @staticmethod
    def _serp_totals() -> Tuple[int, float]:
        stat = PERF.timers().get("engine.serp")
        return (stat.calls, stat.total) if stat is not None else (0, 0.0)

    def _serp_delta(self) -> Tuple[int, float]:
        calls, total = self._serp_totals()
        calls0, total0 = self._serp_base
        self._serp_base = (calls, total)
        return calls - calls0, total - total0

    @staticmethod
    def _cache_totals() -> Tuple[int, int]:
        hits = 0
        misses = 0
        for name, value in PERF.counters().items():
            if not name.startswith("cache."):
                continue
            if name.endswith(".hit"):
                hits += value
            elif name.endswith(".miss"):
                misses += value
        return hits, misses

    def _cache_delta(self) -> Tuple[int, int]:
        hits, misses = self._cache_totals()
        hits0, misses0 = self._cache_base
        self._cache_base = (hits, misses)
        return hits - hits0, misses - misses0

    @staticmethod
    def _disk_totals() -> Tuple[int, int]:
        hits = 0
        misses = 0
        for name, value in PERF.counters().items():
            if not name.startswith("cache."):
                continue
            if name.endswith(".disk_hit"):
                hits += value
            elif name.endswith(".disk_miss"):
                misses += value
        return hits, misses

    def _disk_delta(self) -> Tuple[int, int]:
        hits, misses = self._disk_totals()
        hits0, misses0 = self._disk_base
        self._disk_base = (hits, misses)
        return hits - hits0, misses - misses0

    def _shard_delta(self) -> Tuple[int, int, int]:
        """(tasks, steals, fallback-days) from executor day_stats rows
        added since the last sample.  Zeroes on non-crawl days or when no
        executor is attached (analysis-only recorders)."""
        executor = getattr(self.crawler, "_executor", None)
        if executor is None:
            return 0, 0, 0
        rows = executor.day_stats[self._shard_rows_seen:]
        self._shard_rows_seen = len(executor.day_stats)
        tasks = sum(r["tasks"] for r in rows)
        steals = sum(r["steals"] for r in rows)
        fallback = sum(1 for r in rows if r["fallback"])
        return tasks, steals, fallback

    @staticmethod
    def _fault_totals() -> Tuple[int, int, int]:
        injected = 0
        retried = 0
        degraded = 0
        for name, value in PERF.counters().items():
            if name.startswith("faults.injected."):
                injected += value
            elif name == "faults.retried":
                retried += value
            elif name.startswith("faults.degraded."):
                degraded += value
        return injected, retried, degraded

    def _fault_delta(self) -> Tuple[int, int, int]:
        totals = self._fault_totals()
        base = self._fault_base
        self._fault_base = totals
        return tuple(now - then for now, then in zip(totals, base))

    # ------------------------------------------------------------------ #
    # Access / serialization
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self.columns["day"])

    def series(self, name: str) -> List:
        """One column as a list (sparkline-ready); telemetry names work
        too — the column sets are disjoint apart from the day keys."""
        if name in self.columns:
            return list(self.columns[name])
        return list(self.telemetry[name])

    def rows(self) -> List[dict]:
        return [
            {name: self.columns[name][i] for name in METRICS_COLUMNS}
            for i in range(len(self))
        ]

    def telemetry_rows(self) -> List[dict]:
        return [
            {name: self.telemetry[name][i] for name in TELEMETRY_COLUMNS}
            for i in range(len(self.telemetry["day"]))
        ]

    def write_jsonl(self, path: str, manifest: Optional[dict] = None) -> None:
        """One JSON row per simulated day; optional manifest header row."""
        self._write_rows(path, self.rows(), manifest)

    def write_telemetry_jsonl(self, path: str,
                              manifest: Optional[dict] = None) -> None:
        """The timing-gauge sidecar (``telemetry.jsonl``)."""
        self._write_rows(path, self.telemetry_rows(), manifest)

    @staticmethod
    def _write_rows(path: str, rows: List[dict],
                    manifest: Optional[dict]) -> None:
        with atomic_write(path) as handle:
            if manifest is not None:
                handle.write(json.dumps(
                    {"_type": "manifest", **manifest}, sort_keys=True))
                handle.write("\n")
            for row in rows:
                handle.write(json.dumps({"_type": "sample", **row},
                                        sort_keys=True))
                handle.write("\n")

    @staticmethod
    def load_jsonl(path: str) -> Tuple[Optional[dict], List[dict]]:
        """(manifest or None, sample rows) from a metrics/telemetry file."""
        manifest: Optional[dict] = None
        rows: List[dict] = []
        with open(path) as handle:
            lines = handle.readlines()
        for lineno, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                if lineno == len(lines) - 1:
                    # A crash mid-write leaves at most one torn final line;
                    # tolerate it rather than losing the whole series.
                    warnings.warn(
                        f"{path}: skipping torn final line ({len(line)} bytes)",
                        RuntimeWarning, stacklevel=2,
                    )
                    break
                raise
            kind = payload.pop("_type", "sample")
            if kind == "manifest":
                manifest = payload
            elif kind == "sample":
                rows.append(payload)
        return manifest, rows

    def render_sparklines(self, width: int = 60) -> str:
        """The key deterministic series as terminal sparklines."""
        from repro.reporting.sparkline import sparkline_row

        lines = [f"Per-sim-day metrics ({len(self)} days)"]
        for name in ("psrs", "active_doorways", "labels_active",
                     "penalties_active", "serps_served"):
            lines.append(sparkline_row(
                name, [float(v) for v in self.columns[name]],
                width=width, as_percent=False,
            ))
        lines.append(sparkline_row(
            "cache_hit_rate", [float(v) for v in self.columns["cache_hit_rate"]],
            width=width, as_percent=True,
        ))
        return "\n".join(lines)

    def render_telemetry_sparklines(self, width: int = 60) -> str:
        """The timing/shard/disk gauges as terminal sparklines."""
        from repro.reporting.sparkline import sparkline_row

        days = len(self.telemetry["day"])
        lines = [f"Per-sim-day telemetry ({days} days)"]
        for name in ("serp_serve_us", "shard_tasks", "shard_steals",
                     "shard_fallback"):
            lines.append(sparkline_row(
                name, [float(v) for v in self.telemetry[name]],
                width=width, as_percent=False,
            ))
        lines.append(sparkline_row(
            "disk_hit_rate",
            [float(v) for v in self.telemetry["disk_hit_rate"]],
            width=width, as_percent=True,
        ))
        return "\n".join(lines)
