"""Per-sim-day metrics: the study's own time series, recorded as it runs.

The paper's conclusions are time-series claims (PSR share per day,
campaign lifetimes, intervention response lag), so the pipeline records
its own per-day series while it runs: a :class:`MetricsRecorder` rides as
the *last* simulator observer (after the crawler and orderer have seen
the day) and samples once per simulated day:

* crawl output — new PSRs, active/cumulative doorway domains, stores;
* intervention state — labeled and penalized hosts in the engine;
* hot-path health — SERPs served and mean serve µs (from the always-on
  PERF timer deltas), content-addressed cache hit rate.

Storage is columnar (one list per column) so sampling is O(counters) per
day and a column feeds :func:`repro.reporting.sparkline.sparkline_row`
directly.  ``write_jsonl`` emits one JSON row per simulated day —
``metrics.jsonl`` next to the study artifacts — with an optional leading
provenance row carrying the run manifest (consumers skip rows whose
``_type`` is not ``sample``; :meth:`load_jsonl` does).

Timing-valued columns (``serp_serve_us``) vary run to run; everything
else is deterministic for a seed.  Recording reads simulation state and
never writes it: studies run with a recorder attached produce
byte-identical outputs (pinned in ``tests/test_obs.py``).
"""

from __future__ import annotations

import json
import warnings
from typing import Dict, List, Optional, Tuple

from repro.util.atomicio import atomic_write
from repro.util.perf import PERF

#: Column order of one metrics row (the JSONL schema, golden-tested).
METRICS_COLUMNS: Tuple[str, ...] = (
    "day",              # ISO sim-date
    "day_index",        # 0-based offset in the study window
    "psrs",             # PSR records added this day
    "psrs_total",       # cumulative PSR records
    "active_doorways",  # distinct doorway hosts in this day's PSRs
    "doorways_seen",    # cumulative distinct doorway hosts
    "stores_seen",      # cumulative distinct landing stores
    "serps_served",     # engine.serp timer calls this day
    "serp_serve_us",    # mean engine.serp µs this day (0 when memoized away)
    "labels_active",    # hosts carrying a SERP warning label
    "penalties_active", # hosts under a ranking penalty
    "cache_hit_rate",   # content-addressed cache hits/(hits+misses) this day
    "faults_injected",  # faults.injected.* counter deltas this day
    "faults_retried",   # fetch attempts retried after a transient fault
    "faults_degraded",  # records dropped/deferred because inputs were damaged
)


class MetricsRecorder:
    """Simulator observer sampling the per-day study time series."""

    def __init__(self, crawler=None):
        #: The measurement crawler whose dataset is sampled (optional: a
        #: recorder without one still tracks engine/cache/serve columns).
        self.crawler = crawler
        self.columns: Dict[str, List] = {name: [] for name in METRICS_COLUMNS}
        self._day_index = 0
        self._records_seen = 0
        self._store_hosts: set = set()
        # Deltas count from construction, not process start: the PERF
        # registry is process-global and may already carry earlier runs.
        self._serp_base = self._serp_totals()
        self._cache_base = self._cache_totals()
        self._fault_base = self._fault_totals()

    def rebase(self) -> None:
        """Re-anchor PERF-delta baselines to the *current* registry totals.

        Called after a checkpoint resume: the recorder's pickled baselines
        refer to the crashed process's counter values, which the fresh
        process never accumulated.  Without rebasing, the first resumed
        day would report huge negative deltas.
        """
        self._serp_base = self._serp_totals()
        self._cache_base = self._cache_totals()
        self._fault_base = self._fault_totals()

    # ------------------------------------------------------------------ #
    # Observer interface
    # ------------------------------------------------------------------ #

    def on_day(self, world, context) -> None:
        day = context.day
        serp_calls, serp_s = self._serp_delta()
        hits, misses = self._cache_delta()
        looked_up = hits + misses
        injected, retried, degraded = self._fault_delta()

        psrs_today = 0
        active_doorways = 0
        doorways_seen = 0
        stores_seen = 0
        psrs_total = 0
        if self.crawler is not None:
            dataset = self.crawler.dataset
            new_records = dataset.records[self._records_seen:]
            self._records_seen = len(dataset.records)
            psrs_today = len(new_records)
            psrs_total = len(dataset.records)
            active_doorways = len({r.host for r in new_records})
            doorways_seen = dataset.host_count()
            for record in new_records:
                if record.is_store:
                    self._store_hosts.add(record.landing_host)
            stores_seen = len(self._store_hosts)

        row = {
            "day": day.isoformat(),
            "day_index": self._day_index,
            "psrs": psrs_today,
            "psrs_total": psrs_total,
            "active_doorways": active_doorways,
            "doorways_seen": doorways_seen,
            "stores_seen": stores_seen,
            "serps_served": serp_calls,
            "serp_serve_us": (serp_s / serp_calls * 1e6) if serp_calls else 0.0,
            "labels_active": len(world.engine.labeled_hosts()),
            "penalties_active": len(world.engine.penalized_hosts()),
            "cache_hit_rate": (hits / looked_up) if looked_up else 0.0,
            "faults_injected": injected,
            "faults_retried": retried,
            "faults_degraded": degraded,
        }
        for name in METRICS_COLUMNS:
            self.columns[name].append(row[name])
        self._day_index += 1

    @staticmethod
    def _serp_totals() -> Tuple[int, float]:
        stat = PERF.timers().get("engine.serp")
        return (stat.calls, stat.total) if stat is not None else (0, 0.0)

    def _serp_delta(self) -> Tuple[int, float]:
        calls, total = self._serp_totals()
        calls0, total0 = self._serp_base
        self._serp_base = (calls, total)
        return calls - calls0, total - total0

    @staticmethod
    def _cache_totals() -> Tuple[int, int]:
        hits = 0
        misses = 0
        for name, value in PERF.counters().items():
            if not name.startswith("cache."):
                continue
            if name.endswith(".hit"):
                hits += value
            elif name.endswith(".miss"):
                misses += value
        return hits, misses

    def _cache_delta(self) -> Tuple[int, int]:
        hits, misses = self._cache_totals()
        hits0, misses0 = self._cache_base
        self._cache_base = (hits, misses)
        return hits - hits0, misses - misses0

    @staticmethod
    def _fault_totals() -> Tuple[int, int, int]:
        injected = 0
        retried = 0
        degraded = 0
        for name, value in PERF.counters().items():
            if name.startswith("faults.injected."):
                injected += value
            elif name == "faults.retried":
                retried += value
            elif name.startswith("faults.degraded."):
                degraded += value
        return injected, retried, degraded

    def _fault_delta(self) -> Tuple[int, int, int]:
        totals = self._fault_totals()
        base = self._fault_base
        self._fault_base = totals
        return tuple(now - then for now, then in zip(totals, base))

    # ------------------------------------------------------------------ #
    # Access / serialization
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self.columns["day"])

    def series(self, name: str) -> List:
        """One column as a list (sparkline-ready)."""
        return list(self.columns[name])

    def rows(self) -> List[dict]:
        return [
            {name: self.columns[name][i] for name in METRICS_COLUMNS}
            for i in range(len(self))
        ]

    def write_jsonl(self, path: str, manifest: Optional[dict] = None) -> None:
        """One JSON row per simulated day; optional manifest header row."""
        with atomic_write(path) as handle:
            if manifest is not None:
                handle.write(json.dumps(
                    {"_type": "manifest", **manifest}, sort_keys=True))
                handle.write("\n")
            for row in self.rows():
                handle.write(json.dumps({"_type": "sample", **row},
                                        sort_keys=True))
                handle.write("\n")

    @staticmethod
    def load_jsonl(path: str) -> Tuple[Optional[dict], List[dict]]:
        """(manifest or None, sample rows) from a metrics.jsonl file."""
        manifest: Optional[dict] = None
        rows: List[dict] = []
        with open(path) as handle:
            lines = handle.readlines()
        for lineno, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                if lineno == len(lines) - 1:
                    # A crash mid-write leaves at most one torn final line;
                    # tolerate it rather than losing the whole series.
                    warnings.warn(
                        f"{path}: skipping torn final line ({len(line)} bytes)",
                        RuntimeWarning, stacklevel=2,
                    )
                    break
                raise
            kind = payload.pop("_type", "sample")
            if kind == "manifest":
                manifest = payload
            elif kind == "sample":
                rows.append(payload)
        return manifest, rows

    def render_sparklines(self, width: int = 60) -> str:
        """The key series as terminal sparklines (Figure-3 style)."""
        from repro.reporting.sparkline import sparkline_row

        lines = [f"Per-sim-day metrics ({len(self)} days)"]
        for name in ("psrs", "active_doorways", "labels_active",
                     "penalties_active", "serps_served", "serp_serve_us"):
            lines.append(sparkline_row(
                name, [float(v) for v in self.columns[name]],
                width=width, as_percent=False,
            ))
        lines.append(sparkline_row(
            "cache_hit_rate", [float(v) for v in self.columns["cache_hit_rate"]],
            width=width, as_percent=True,
        ))
        return "\n".join(lines)
