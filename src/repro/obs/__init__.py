"""Observability for the study pipeline.

Three layers, built on top of the always-on :data:`repro.util.perf.PERF`
registry:

* :mod:`repro.obs.trace` — a hierarchical span tracer.  When enabled it
  records nested spans over the whole pipeline (``study → simulate →
  day[d] → {campaigns, interventions, serps, traffic, crawl, orders}``,
  ``classify → {features, fit, refine, attribute}``, ``analysis``), each
  carrying wall-clock, sim-day tags, and the PERF counter/timer deltas
  that accrued inside it.  Renders as a text tree (``python -m repro
  trace``) and exports Chrome/Perfetto ``trace_event`` JSON.
* :mod:`repro.obs.metrics` — a per-sim-day metrics recorder.  Plugged in
  as the last simulator observer, it samples the study's time series once
  per simulated day (PSRs observed, doorways/stores seen, cache hit
  rates, SERP serve µs, labels/penalties) into columnar storage written
  as ``metrics.jsonl`` and renderable with the reporting sparklines.
* :mod:`repro.obs.manifest` — run provenance.  One dict (config digest,
  seed, git SHA, host, versions, cache/trace switches) embedded in every
  emitted artifact so benchmark trajectories are comparable across runs.
* :mod:`repro.obs.ledger` — the longitudinal run ledger.  Every study,
  chaos drill, and benchmark appends one keyed JSONL record (manifest,
  switches, wall time, PERF snapshot, headline metrics) to an append-only
  file, turning one-shot artifacts into a time series.
* :mod:`repro.obs.gate` — tolerance bands over ledger records.  ``repro
  gate`` compares the latest record against a committed baseline with
  per-table abs/rel bands (metric kind: deterministic, value-rendered;
  perf kind: host-fingerprint-gated) and fails CI on drift.

Tracing is off by default and never touches simulation state: a traced
run's study outputs are byte-identical to an untraced run's
(``tests/test_obs.py`` pins this).
"""

from repro.obs.manifest import config_digest, git_sha, run_manifest
from repro.obs.metrics import (
    METRICS_COLUMNS,
    TELEMETRY_COLUMNS,
    MetricsRecorder,
)
from repro.obs.trace import TRACER, set_tracing_enabled, tracing_enabled
from repro.obs.ledger import (
    RunLedger,
    build_bench_record,
    build_study_record,
    record_metrics,
)
from repro.obs.gate import (
    Band,
    BandCheck,
    DEFAULT_BANDS,
    GateResult,
    check_bands,
    run_gate,
)

__all__ = [
    "TRACER",
    "set_tracing_enabled",
    "tracing_enabled",
    "MetricsRecorder",
    "METRICS_COLUMNS",
    "TELEMETRY_COLUMNS",
    "run_manifest",
    "config_digest",
    "git_sha",
    "RunLedger",
    "build_study_record",
    "build_bench_record",
    "record_metrics",
    "Band",
    "BandCheck",
    "DEFAULT_BANDS",
    "GateResult",
    "check_bands",
    "run_gate",
]
