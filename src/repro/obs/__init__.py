"""Observability for the study pipeline.

Three layers, built on top of the always-on :data:`repro.util.perf.PERF`
registry:

* :mod:`repro.obs.trace` — a hierarchical span tracer.  When enabled it
  records nested spans over the whole pipeline (``study → simulate →
  day[d] → {campaigns, interventions, serps, traffic, crawl, orders}``,
  ``classify → {features, fit, refine, attribute}``, ``analysis``), each
  carrying wall-clock, sim-day tags, and the PERF counter/timer deltas
  that accrued inside it.  Renders as a text tree (``python -m repro
  trace``) and exports Chrome/Perfetto ``trace_event`` JSON.
* :mod:`repro.obs.metrics` — a per-sim-day metrics recorder.  Plugged in
  as the last simulator observer, it samples the study's time series once
  per simulated day (PSRs observed, doorways/stores seen, cache hit
  rates, SERP serve µs, labels/penalties) into columnar storage written
  as ``metrics.jsonl`` and renderable with the reporting sparklines.
* :mod:`repro.obs.manifest` — run provenance.  One dict (config digest,
  seed, git SHA, host, versions, cache/trace switches) embedded in every
  emitted artifact so benchmark trajectories are comparable across runs.

Tracing is off by default and never touches simulation state: a traced
run's study outputs are byte-identical to an untraced run's
(``tests/test_obs.py`` pins this).
"""

from repro.obs.manifest import config_digest, git_sha, run_manifest
from repro.obs.metrics import METRICS_COLUMNS, MetricsRecorder
from repro.obs.trace import TRACER, set_tracing_enabled, tracing_enabled

__all__ = [
    "TRACER",
    "set_tracing_enabled",
    "tracing_enabled",
    "MetricsRecorder",
    "METRICS_COLUMNS",
    "run_manifest",
    "config_digest",
    "git_sha",
]
