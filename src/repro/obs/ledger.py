"""The run ledger: the system's longitudinal memory.

Every study-shaped run — ``repro run``, ``repro chaos``, each benchmark's
``benchlib.write_bench_json`` — appends one JSON record to an append-only
JSONL **ledger**.  A record captures everything needed to compare the run
against any other run of the same scenario:

* the full run manifest (config digest, git SHA, seed/window/scale, host);
* the switches that must *not* change results (``--jobs``, crawl stride,
  cache/disk-cache) — artifacts are byte-identical across them, so records
  stay comparable and any difference between two same-``key`` records is a
  code change, not a knob;
* wall time and the PERF registry snapshot (timers + counters);
* the **headline metrics** — :meth:`repro.study.StudyResults.headline`:
  PSR/doorway/store counts, Table 1–3 cells keyed by row, the PSR curve
  quantiles, store-lifetime quantiles;
* shard, checkpoint, and disk-store accounting when those subsystems ran.

Records are keyed (``<config digest>/stride<N>`` for studies,
``bench:<name>`` for benchmarks) so :mod:`repro.obs.gate` can band the
latest record against a committed baseline, ``repro history`` can render a
metric's trajectory across commits, and ``repro compare`` can diff any two
records.

Appends go through :func:`repro.util.atomicio.append_line` (single-write
``O_APPEND``); the loader tolerates torn or garbled lines anywhere in the
file — an append-only log buries a crash's torn tail under later appends,
so unlike the artifact loaders, mid-file noise is skipped (with a
``RuntimeWarning``), never fatal.
"""

from __future__ import annotations

import json
import os
import warnings
from hashlib import blake2b
from time import perf_counter
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence

from repro.util.atomicio import append_line

#: Ledger record schema, bumped on field changes.
LEDGER_SCHEMA = 1

#: Environment variable naming the default ledger file.
LEDGER_ENV = "REPRO_LEDGER"


def flatten(tree: dict, prefix: str = "") -> Dict[str, float]:
    """Flatten a nested metric tree into sorted ``a.b.c -> number`` paths.

    Only numeric leaves survive (bools excluded); strings and lists are
    provenance, not metrics."""
    flat: Dict[str, float] = {}
    for key in sorted(tree):
        value = tree[key]
        path = f"{prefix}{key}"
        if isinstance(value, dict):
            flat.update(flatten(value, path + "."))
        elif isinstance(value, bool):
            continue
        elif isinstance(value, (int, float)):
            flat[path] = value
    return flat


def record_metrics(record: dict) -> Dict[str, float]:
    """One record's deterministic, gate-visible metrics, flattened.

    The headline tree plus the disk-store health block; wall times and
    PERF timers are *not* here — they are timing, handled separately by
    the gate's perf bands."""
    tree = dict(record.get("headline") or {})
    if record.get("disk_store"):
        tree["disk_store"] = record["disk_store"]
    return flatten(tree)


def record_id(record: dict) -> str:
    """12-hex-char content digest of a record (minus any existing id)."""
    stripped = {k: v for k, v in record.items() if k != "run_id"}
    blob = json.dumps(stripped, sort_keys=True, default=str).encode("utf-8")
    return blake2b(blob, digest_size=6).hexdigest()


@contextmanager
def timed() -> Iterator[dict]:
    """Measure one run leg's wall-clock for its ledger record.

    Sanctioned wall-clock use (``repro/obs``): the reading lands in
    provenance/ledger data, never in simulation state."""
    box: dict = {}
    start = perf_counter()
    try:
        yield box
    finally:
        box["wall_s"] = round(perf_counter() - start, 6)


class RunLedger:
    """Append-only JSONL store of run records."""

    def __init__(self, path: str):
        self.path = path
        #: Unparseable lines skipped by the last :meth:`records` call.
        self.skipped = 0

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #

    def append(self, record: dict) -> dict:
        """Append one record; returns it with ``_type``/``schema``/
        ``run_id`` filled in."""
        payload = {"_type": "run", "schema": LEDGER_SCHEMA, **record}
        payload.setdefault("run_id", record_id(payload))
        append_line(self.path, json.dumps(payload, sort_keys=True))
        return payload

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #

    def records(self, kind: Optional[str] = None,
                key: Optional[str] = None) -> List[dict]:
        """All parseable run records, oldest first, optionally filtered."""
        if not os.path.exists(self.path):
            self.skipped = 0
            return []
        rows: List[dict] = []
        skipped = 0
        with open(self.path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError:
                    # Append-only log: a torn tail gets buried by later
                    # appends, so corrupt lines are recoverable noise
                    # anywhere in the file — skip, never raise.
                    skipped += 1
                    continue
                if payload.get("_type") != "run":
                    continue
                if kind is not None and payload.get("kind") != kind:
                    continue
                if key is not None and payload.get("key") != key:
                    continue
                rows.append(payload)
        self.skipped = skipped
        if skipped:
            warnings.warn(
                f"{self.path}: skipped {skipped} unparseable ledger "
                f"line{'s' if skipped != 1 else ''}",
                RuntimeWarning, stacklevel=2,
            )
        return rows

    def latest(self, kind: Optional[str] = None,
               key: Optional[str] = None) -> Optional[dict]:
        rows = self.records(kind=kind, key=key)
        return rows[-1] if rows else None

    def find(self, ref: str, kind: Optional[str] = None) -> dict:
        """Resolve a record reference: an integer index (``-1`` = latest,
        ``0`` = oldest) or a unique ``run_id`` prefix."""
        rows = self.records(kind=kind)
        if not rows:
            raise LookupError(f"{self.path}: ledger has no run records")
        try:
            index = int(ref)
        except ValueError:
            matches = [r for r in rows if r.get("run_id", "").startswith(ref)]
            if not matches:
                raise LookupError(f"no ledger record matches run id {ref!r}")
            if len(matches) > 1:
                ids = ", ".join(m["run_id"] for m in matches)
                raise LookupError(f"run id {ref!r} is ambiguous: {ids}")
            return matches[0]
        try:
            return rows[index]
        except IndexError:
            raise LookupError(
                f"ledger index {index} out of range "
                f"({len(rows)} record{'s' if len(rows) != 1 else ''})"
            )

    def history(self, paths: Sequence[str], kind: Optional[str] = None,
                key: Optional[str] = None) -> Dict[str, List[float]]:
        """Each metric path's value across matching records, oldest first.

        Records missing a path contribute nothing to that path's series
        (schema evolution must not zero-spike a sparkline)."""
        series: Dict[str, List[float]] = {path: [] for path in paths}
        for record in self.records(kind=kind, key=key):
            flat = record_metrics(record)
            if record.get("wall_s") is not None:
                flat["wall_s"] = record["wall_s"]
            for path in paths:
                value = flat.get(path)
                if value is not None:
                    series[path].append(value)
        return series


# ---------------------------------------------------------------------- #
# Record builders
# ---------------------------------------------------------------------- #

def build_study_record(
    config,
    results,
    *,
    wall_s: float,
    stride: int,
    jobs: int = 1,
    kind: str = "study",
    preset: Optional[str] = None,
    profile: Optional[str] = None,
    fault_seed: Optional[int] = None,
) -> dict:
    """One ledger record for a completed study (or chaos) run.

    ``key`` is the comparability anchor: the scenario config digest plus
    the crawl stride (the one run knob outside the config that changes
    results).  Jobs/cache/disk switches ride in ``switches`` — they are
    byte-identity-preserving, so records differing only there are still
    directly comparable.
    """
    from repro.obs.manifest import run_manifest
    from repro.perf.cache import caches_enabled, disk_cache, disk_cache_path
    from repro.util.perf import PERF

    extra = {}
    if preset is not None:
        extra["preset"] = preset
    manifest = run_manifest(config, **extra)
    record = {
        "kind": kind,
        "key": f"{manifest['config']['digest']}/stride{stride}",
        "manifest": manifest,
        "switches": {
            "jobs": jobs,
            "stride": stride,
            "cache": caches_enabled(),
            "disk_cache": disk_cache_path() is not None,
            "profile": profile,
            "fault_seed": fault_seed if profile else None,
        },
        "wall_s": round(wall_s, 6),
        "headline": results.headline(),
        "perf": PERF.report(),
    }
    if results.shard_stats is not None:
        record["shard"] = results.shard_stats
    disk = disk_cache()
    if disk is not None:
        stats = disk.stats()
        record["disk_store"] = {
            "entries": stats["entries"],
            "total_bytes": stats["total_bytes"],
            "max_bytes": stats["max_bytes"],
            "utilization": stats["utilization"],
            "quarantined": stats["quarantined"],
        }
    return record


def build_bench_record(name: str, metrics: Dict[str, float],
                       manifest: Optional[dict] = None) -> dict:
    """One ledger record for a benchmark's curated headline metrics."""
    from repro.obs.manifest import run_manifest

    return {
        "kind": f"bench:{name}",
        "key": f"bench:{name}",
        "manifest": manifest if manifest is not None else run_manifest(),
        "headline": dict(sorted(metrics.items())),
    }
