"""The day-stepped ecosystem simulator.

Each simulated day:

1. campaigns act (doorway creation, seizure reactions, domain rotations);
2. the search quality team sweeps (labels, demotions);
3. brand-protection firms file and execute court cases;
4. the engine serves every monitored term's SERP once, and the traffic pass
   turns PSR visibility into store visits, order creations, and supplier
   shipments;
5. registered observers (the measurement crawler) see the same SERPs.

SERPs are computed exactly once per (term, day) and shared between the
traffic pass and observers, so measurement and ground truth never diverge.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Optional, Sequence

from repro.obs.trace import TRACER
from repro.util.perf import PERF
from repro.util.randmath import binomial, poisson
from repro.util.rng import RandomStreams
from repro.util.simtime import SimDate
from repro.web.hosting import Web
from repro.web.population import BackgroundWebBuilder
from repro.search.ctr import ClickModel
from repro.search.engine import SearchEngine
from repro.search.index import SearchIndex
from repro.search.query import QueryVolumeModel, Vertical, make_vertical
from repro.search.serp import Serp
from repro.market.brands import default_brand_catalog
from repro.market.payments import default_payment_network
from repro.market.supplier import Supplier
from repro.market.traffic import GeoModel, REFERRER_RETENTION
from repro.seo.campaign import Campaign
from repro.interventions.search_ops import SearchQualityTeam
from repro.interventions.seizure import BrandProtectionFirm, SeizureAuthority
from repro.interventions.payments import PaymentInterventionTeam
from repro.ecosystem.config import ScenarioConfig
from repro.ecosystem.events import EventLog
from repro.ecosystem.world import World

#: Supplier partner id used for untracked wholesale volume.
WHOLESALE_PARTNER = "WHOLESALE.MISC"


@dataclass
class DayContext:
    """What observers receive each simulated day."""

    day: SimDate
    #: term -> SERP for every monitored term.
    serps: Dict[str, Serp]
    #: term -> vertical name.
    vertical_of_term: Dict[str, str]


class Simulator:
    """Builds a world from a config and runs the study window."""

    def __init__(self, config: ScenarioConfig):
        self.config = config
        self.streams = RandomStreams(config.seed)
        self.world = self._build_world()
        self.campaigns: List[Campaign] = []
        self.search_team: Optional[SearchQualityTeam] = None
        self.firms: List[BrandProtectionFirm] = []
        self.payment_team: Optional[PaymentInterventionTeam] = None
        self.supplier: Optional[Supplier] = None
        self._click_carry: Dict[str, float] = {}
        self._click_model = ClickModel()
        self._geo = GeoModel(self.streams)
        self._traffic_rng = self.streams.get("traffic")
        self._built = False

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def _build_world(self) -> World:
        config = self.config
        web = Web()
        index = SearchIndex()
        engine = SearchEngine(
            index,
            self.streams,
            serp_size=config.serp_size,
            label_root_only=config.search_policy.label_root_only,
        )
        verticals: Dict[str, Vertical] = {}
        for spec in config.verticals:
            verticals[spec.name] = make_vertical(
                spec.name, spec.brands, config.terms_per_vertical,
                self.streams, composite=spec.composite,
                universe_factor=config.term_universe_factor,
            )
        world = World(
            streams=self.streams,
            window=config.window,
            web=web,
            index=index,
            engine=engine,
            verticals=verticals,
            brand_catalog=default_brand_catalog(),
            payment_network=default_payment_network(),
            query_volume=QueryVolumeModel(self.streams),
            events=EventLog(),
        )
        return world

    def build(self) -> World:
        """Populate the world: background web, campaigns, interventions."""
        if self._built:
            return self.world
        config = self.config
        world = self.world
        epoch = config.window.start - 365
        builder = BackgroundWebBuilder(world.web, self.streams, world.forge, epoch)
        for name, vertical in world.verticals.items():
            pages = builder.build_competitors(
                name, vertical.universe,
                config.competitor_sites_per_vertical,
                config.legit_candidates_per_term,
            )
            for spec in pages:
                for term, relevance in spec.relevances.items():
                    world.index.add_page(term, spec.site, spec.path, relevance)
        world.set_compromise_pool(builder.build_compromise_pool(config.compromise_pool_size))

        for spec in config.all_campaign_specs():
            campaign = Campaign(spec, self.streams)
            campaign.setup(world)
            world.add_campaign(campaign)
            self.campaigns.append(campaign)

        self.search_team = SearchQualityTeam(
            config.search_policy, self.streams, config.scripted_demotions
        )
        authority = SeizureAuthority(world.web)
        for firm_spec in config.firms:
            self.firms.append(
                BrandProtectionFirm(
                    name=firm_spec.name,
                    clients=firm_spec.clients,
                    policy=firm_spec.policy,
                    streams=self.streams,
                    authority=authority,
                )
            )
        if config.supplier_partners:
            partners = list(config.supplier_partners) + [WHOLESALE_PARTNER]
            self.supplier = Supplier("lux-fulfill", self.streams, partners)
            world.suppliers.append(self.supplier)
        if config.payment_policy is not None and config.payment_policy.start_day is not None:
            self.payment_team = PaymentInterventionTeam(config.payment_policy, self.streams)
        self._built = True
        return world

    # ------------------------------------------------------------------ #
    # Running
    # ------------------------------------------------------------------ #

    def run(
        self,
        observers: Sequence[object] = (),
        start_index: int = 0,
        checkpointer=None,
    ) -> World:
        """Run the window; observers get a DayContext every day.

        ``start_index`` skips already-simulated days when resuming from a
        checkpoint (the checkpointed state already contains their
        effects).  ``checkpointer`` (a
        :class:`repro.faults.checkpoint.Checkpointer`) is called after
        every completed day; it may raise
        :class:`~repro.faults.checkpoint.SimulatedCrash`.
        """
        self.build()
        world = self.world
        vertical_of_term = self.vertical_of_term_map()
        day_timer = PERF.handle("simulator.day")
        with TRACER.span("simulate", days=len(world.window) - start_index):
            for day_index, day in enumerate(world.window):
                if day_index < start_index:
                    continue
                day_start = perf_counter()
                with TRACER.span("day", sim_day=day.isoformat()):
                    context = self.step_day(day, vertical_of_term)
                    for observer in observers:
                        observer.on_day(world, context)
                day_timer.add(perf_counter() - day_start)
                if checkpointer is not None:
                    checkpointer.on_day_complete(self, observers, day_index, day)
        return world

    def vertical_of_term_map(self) -> Dict[str, str]:
        """term -> vertical name, for every monitored term."""
        vertical_of_term: Dict[str, str] = {}
        for name, vertical in self.world.verticals.items():
            for term in vertical.terms:
                vertical_of_term[term] = name
        return vertical_of_term

    def step_day(
        self, day: SimDate, vertical_of_term: Optional[Dict[str, str]] = None
    ) -> DayContext:
        """Advance the world through one simulated day — campaigns,
        interventions, SERP serving, and the traffic pass — and return the
        :class:`DayContext` observers would receive.

        This is everything :meth:`run` does per day *except* notifying
        observers and checkpointing.  Crawl-shard worker processes
        (:mod:`repro.perf.shardpool`) call it directly to keep their
        forked replica worlds in lockstep with the parent simulator; every
        draw comes from this simulator's own named streams, so stepping a
        replica produces bit-identical world state to the parent.
        """
        world = self.world
        world.today = day
        if vertical_of_term is None:
            vertical_of_term = self.vertical_of_term_map()
        with TRACER.span("campaigns"):
            self._campaign_pass(world, day)
        assert self.search_team is not None
        with TRACER.span("interventions"):
            self.search_team.on_day(world, day)
            for firm in self.firms:
                firm.on_day(world, day)
            if self.payment_team is not None:
                self.payment_team.on_day(world, day)
        with TRACER.span("serps"):
            serps = {
                term: world.engine.serp(term, day)
                for term in vertical_of_term
            }
        with TRACER.span("traffic"):
            self._traffic_pass(day, serps)
        return DayContext(day=day, serps=serps, vertical_of_term=vertical_of_term)

    def _campaign_pass(self, world, day: SimDate) -> None:
        """Run every campaign's day, skipping provable no-ops.

        Most campaigns most days have no due doorways, no seized stores,
        and no pending rotations; :meth:`Campaign.day_has_work` detects
        that exactly (a skipped campaign would have drawn no randomness
        and mutated no state), so the pass only pays for campaigns with
        actual work.  Campaign order is preserved for the ones that run —
        shared-world mutations (domain registration, compromise-target
        assignment) stay in the sequential order.
        """
        blacklist_active = bool(world.payment_network.blacklisted())
        for campaign in self.campaigns:
            if campaign.day_has_work(world, day, blacklist_active):
                campaign.on_day(world, day)

    # ------------------------------------------------------------------ #
    # Traffic: PSR visibility -> visits -> orders -> shipments
    # ------------------------------------------------------------------ #

    def _traffic_pass(self, day: SimDate, serps: Dict[str, Serp]) -> None:
        world = self.world
        clicks: Dict[str, float] = {}
        referrers: Dict[str, Counter] = {}
        for term, serp in serps.items():
            volume = world.query_volume.volume(term, day)
            for result in serp.results:
                pair = world.doorway_at(result.host)
                if pair is None:
                    continue
                doorway_domain = world.web.domains.get(result.host)
                if doorway_domain is not None and doorway_domain.seized_as_of(day):
                    # A seized doorway serves the notice page: the click is
                    # lost before it ever reaches the store.
                    continue
                store = world.landing_store_of(result.host)
                if store is None:
                    continue
                host_now = store.host_on(day)
                if host_now is None:
                    continue
                domain = world.web.domains.get(host_now)
                if domain is not None and domain.seized_as_of(day):
                    # Doorways still forward, but users land on the seizure
                    # notice: no store visit, no order.
                    continue
                expected = self._click_model.expected_clicks(result, volume)
                if expected <= 0.0:
                    continue
                clicks[store.store_id] = clicks.get(store.store_id, 0.0) + expected
                referrers.setdefault(store.store_id, Counter())[result.host] += max(
                    1, int(expected)
                )
        self._settle_stores(day, clicks, referrers)

    def _settle_stores(
        self, day: SimDate, clicks: Dict[str, float], referrers: Dict[str, Counter]
    ) -> None:
        world = self.world
        config = self.config
        rng = self._traffic_rng
        for store in world.stores():
            store_id = store.store_id
            host_now = store.host_on(day)
            if host_now is None:
                continue
            domain = world.web.domains.get(host_now)
            seized = domain is not None and domain.seized_as_of(day)
            carry = self._click_carry.get(store_id, 0.0)
            total = carry + clicks.get(store_id, 0.0)
            search_visits = int(total)
            self._click_carry[store_id] = total - search_visits
            direct_visits = poisson(rng, config.direct_visits_per_day)
            visits = search_visits + direct_visits
            if seized:
                continue
            if visits == 0:
                continue
            if search_visits > 0:
                world.note_store_sighting(store, day)
            pages = max(
                visits,
                int(round(visits * rng.gauss(config.pages_per_visit, 0.5))),
            )
            referred = min(search_visits, int(round(search_visits * REFERRER_RETENTION)))
            referrer_counts = self._scale_referrers(
                referrers.get(store_id, Counter()), referred
            )
            countries = self._geo.sample_countries(store_id, visits)
            store.visits.record(
                day, visits, pages, host_now,
                referrer_hosts=referrer_counts, countries=countries,
            )
            creation_rate = store.order_creation_rate * store.conversion_ramp(day)
            created = binomial(rng, visits, creation_rate)
            if created:
                store.record_orders(day, created)
                # A terminated processor cannot clear payments: order numbers
                # still get allocated (users reach checkout) but nothing
                # completes until the campaign re-signs elsewhere.
                if world.payment_network.is_blacklisted(store.processor.name):
                    completed = 0
                else:
                    completed = binomial(rng, created, store.completion_rate)
                if completed:
                    store.record_completed_sales(day, completed)
                if completed and self.supplier is not None:
                    campaign_name = world.campaign_of_store(store_id)
                    if campaign_name in self.supplier.partner_campaigns:
                        self.supplier.fulfill_orders(campaign_name, day, completed)
        if self.supplier is not None and config.supplier_background_orders_per_day > 0:
            background = poisson(rng, config.supplier_background_orders_per_day)
            if background:
                self.supplier.fulfill_orders(WHOLESALE_PARTNER, day, background)

    @staticmethod
    def _scale_referrers(raw: Counter, target_total: int) -> Counter:
        """Scale referrer click counts down to the retained-referrer total."""
        if target_total <= 0 or not raw:
            return Counter()
        raw_total = sum(raw.values())
        scaled: Counter = Counter()
        for host, count in raw.items():
            share = int(round(count / raw_total * target_total))
            if share > 0:
                scaled[host] = share
        return scaled
