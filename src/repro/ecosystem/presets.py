"""Scenario presets.

:func:`paper_preset` encodes the paper's published inventory: the sixteen
verticals of Table 1 and the campaigns of Table 2 (doorway/store/brand
counts and peak durations), the KEY campaign's 13-vertical targeting, the
scripted mid-December KEY penalization, MSVALIDATE's supplier partnership,
BIGLOVE's proactive domain rotation, and the two brand-protection firms of
Table 3.  Counts scale by ``scale`` so the whole eight-month ecosystem runs
on a laptop; shapes are preserved, not absolute magnitudes.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.util.simtime import DateRange, SimDate, STUDY_END, STUDY_START
from repro.seo.campaign import CampaignSpec
from repro.seo.cloaking import CloakingType
from repro.interventions.search_ops import ScriptedDemotion, SearchOpsPolicy
from repro.interventions.seizure import SeizurePolicy
from repro.ecosystem.config import FirmSpec, ScenarioConfig, VerticalSpec

#: Table 1's verticals; '*' rows (Ed Hardy, Louis Vuitton, Uggs) are the
#: ones the KEY campaign does NOT target.
VERTICAL_TABLE: Tuple[Tuple[str, Tuple[str, ...], bool], ...] = (
    ("Abercrombie", ("Abercrombie",), False),
    ("Adidas", ("Adidas",), False),
    ("Beats By Dre", ("Beats By Dre",), False),
    ("Clarisonic", ("Clarisonic",), False),
    ("Ed Hardy", ("Ed Hardy",), False),
    ("Golf", ("TaylorMade", "Callaway", "Titleist"), True),
    ("Isabel Marant", ("Isabel Marant",), False),
    ("Louis Vuitton", ("Louis Vuitton",), False),
    ("Moncler", ("Moncler",), False),
    ("Nike", ("Nike",), False),
    ("Ralph Lauren", ("Ralph Lauren",), False),
    ("Sunglasses", ("Oakley", "Ray-Ban", "Christian Dior"), True),
    ("Tiffany", ("Tiffany",), False),
    ("Uggs", ("Uggs",), False),
    ("Watches", ("Rolex", "Omega", "Breitling"), True),
    ("Woolrich", ("Woolrich",), False),
)

NON_KEY_VERTICALS = ("Ed Hardy", "Louis Vuitton", "Uggs")

#: Table 2: (name, doorways, stores, brands, peak days).
CAMPAIGN_TABLE: Tuple[Tuple[str, int, int, int, int], ...] = (
    ("171760", 30, 14, 7, 44),
    ("ADFLYID", 100, 18, 4, 66),
    ("BIGLOVE", 767, 92, 30, 92),
    ("BITLY", 190, 40, 15, 89),
    ("CAMPAIGN.02", 26, 4, 3, 61),
    ("CAMPAIGN.10", 94, 18, 5, 99),
    ("CAMPAIGN.12", 118, 5, 1, 59),
    ("CAMPAIGN.14", 39, 8, 2, 67),
    ("CAMPAIGN.15", 364, 10, 10, 8),
    ("CAMPAIGN.17", 61, 8, 3, 44),
    ("CHANEL.1", 50, 10, 4, 24),
    ("G2GMART", 916, 28, 3, 53),
    ("HACKEDLIVEZILLA", 43, 49, 9, 56),
    ("IFRAMEINJS", 200, 2, 1, 39),
    ("JAROKRAFKA", 266, 55, 3, 87),
    ("JSUS", 439, 59, 27, 68),
    ("KEY", 1980, 97, 28, 65),
    ("LIVEZILLA", 420, 33, 16, 70),
    ("LV.0", 42, 3, 1, 62),
    ("LV.1", 270, 12, 9, 90),
    ("M10", 581, 35, 8, 30),
    ("MOKLELE", 982, 15, 4, 36),
    ("MOONKIS", 95, 7, 4, 99),
    ("MSVALIDATE", 530, 98, 6, 52),
    ("NEWSORG", 926, 7, 5, 24),
    ("NORTHFACEC", 432, 2, 1, 60),
    ("NYY", 29, 14, 5, 40),
    ("PAGERAND", 122, 7, 4, 43),
    ("PARTNER", 62, 9, 5, 33),
    ("PAULSIMON", 328, 33, 12, 128),
    ("PHP?P=", 255, 55, 24, 96),
    ("ROBERTPENNER", 56, 7, 12, 50),
    ("SCHEMA.ORG", 46, 17, 7, 54),
    ("SNOWFLASH", 271, 14, 1, 48),
    ("STYLESHEET", 222, 9, 6, 63),
    ("TIFFANY.0", 26, 1, 1, 4),
    ("UGGS.0", 428, 6, 5, 30),
    ("VERA", 155, 38, 12, 156),
)

#: The paper identifies 52 campaigns; Table 2 lists only those with 25+
#: doorways, so 14 small ones round out the census.
SMALL_CAMPAIGN_COUNT = 52 - len(CAMPAIGN_TABLE)

#: Hand-pinned vertical targeting for the campaigns the figures feature.
PINNED_VERTICALS: Dict[str, Tuple[str, ...]] = {
    "KEY": tuple(n for n, _, _ in VERTICAL_TABLE if n not in NON_KEY_VERTICALS),
    "MOONKIS": ("Beats By Dre",),
    "NEWSORG": ("Beats By Dre", "Nike", "Adidas"),
    "JSUS": ("Beats By Dre", "Uggs", "Moncler", "Nike", "Isabel Marant", "Abercrombie"),
    "PAULSIMON": ("Beats By Dre", "Moncler", "Watches", "Sunglasses"),
    "MSVALIDATE": ("Louis Vuitton", "Uggs", "Moncler"),
    "BIGLOVE": ("Louis Vuitton", "Uggs", "Moncler", "Isabel Marant", "Sunglasses",
                "Watches", "Tiffany", "Nike"),
    "MOKLELE": ("Louis Vuitton", "Moncler"),
    "NORTHFACEC": ("Louis Vuitton",),
    "LV.0": ("Louis Vuitton",),
    "LV.1": ("Louis Vuitton", "Tiffany"),
    "UGGS.0": ("Uggs",),
    "PHP?P=": ("Abercrombie", "Woolrich", "Moncler", "Ralph Lauren", "Adidas"),
    "VERA": ("Beats By Dre", "Moncler", "Uggs", "Watches"),
    "TIFFANY.0": ("Tiffany",),
    "CHANEL.1": ("Sunglasses", "Watches"),
}

#: Campaigns forced to carry specific extra brands (the BIGLOVE Chanel
#: storefront of Figure 5; PHP?P='s Hollister store of Figure 6).
PINNED_EXTRA_BRANDS: Dict[str, Tuple[str, ...]] = {
    "BIGLOVE": ("Chanel",),
    "PHP?P=": ("Hollister",),
    "NORTHFACEC": ("The North Face",),
}

GBC_CLIENTS = (
    "Uggs", "Louis Vuitton", "Moncler", "Abercrombie", "Nike", "Tiffany",
    "Isabel Marant", "Oakley", "Ralph Lauren", "Woolrich", "Rolex",
    "Christian Dior", "Adidas", "Beats By Dre", "Burberry", "Gucci", "Hermes",
)
SMGPA_CLIENTS = (
    "Chanel", "Ed Hardy", "Clarisonic", "Ray-Ban", "TaylorMade", "Omega",
    "Prada", "Michael Kors", "The North Face", "Callaway", "Titleist",
)


def _scaled(value: int, scale: float, minimum: int) -> int:
    return max(minimum, round(value * scale))


def _pick_verticals(name: str, brand_count: int, rng: random.Random,
                    all_names: List[str]) -> List[str]:
    pinned = PINNED_VERTICALS.get(name)
    if pinned is not None:
        return list(pinned)
    count = max(1, min(len(all_names), round(brand_count * 0.6) + rng.randint(0, 2)))
    return sorted(rng.sample(all_names, count))


def _cloaking_for(name: str, rng: random.Random) -> CloakingType:
    if name == "IFRAMEINJS":
        return CloakingType.IFRAME
    if name in ("KEY", "NEWSORG"):
        return CloakingType.REDIRECT
    # Iframe cloaking is pervasive in this niche (Section 3.1.1).
    return CloakingType.IFRAME if rng.random() < 0.65 else CloakingType.REDIRECT


def paper_preset(
    scale: float = 0.12,
    terms_per_vertical: int = 12,
    seed: int = 20141105,
    window: Optional[DateRange] = None,
) -> ScenarioConfig:
    """The full 16-vertical, 52-campaign scenario, scaled by ``scale``."""
    if not 0.0 < scale <= 1.0:
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    # repro: allow-D001 seeded from the scenario seed (xor-tagged); runs before the world exists, so no RandomStreams tree to draw from yet
    rng = random.Random(seed ^ 0x5E0CAFE)
    window = window or DateRange(STUDY_START, STUDY_END)
    verticals = [
        VerticalSpec(name=name, brands=list(brands), composite=composite)
        for name, brands, composite in VERTICAL_TABLE
    ]
    names = [v.name for v in verticals]

    campaigns: List[CampaignSpec] = []
    for name, doorways, stores, brands, peak in CAMPAIGN_TABLE:
        spec = CampaignSpec(
            name=name,
            verticals=_pick_verticals(name, brands, rng, names),
            doorways=_scaled(doorways, scale, 2),
            stores=_scaled(stores, scale, 1),
            brands=brands,
            peak_days=peak,
            cloaking=_cloaking_for(name, rng),
            peak_level=rng.uniform(0.62, 0.88),
            proactive_rotation_days=45 if name == "BIGLOVE" else None,
            reaction_delay_mean=3.0 if name == "PHP?P=" else rng.uniform(4.0, 12.0),
            main_burst_start_offset=0 if name == "KEY" else None,
        )
        campaigns.append(spec)
    for i in range(SMALL_CAMPAIGN_COUNT):
        doorways = rng.randint(8, 24)
        campaigns.append(
            CampaignSpec(
                name=f"SMALL.{i + 1:02d}",
                verticals=sorted(rng.sample(names, rng.randint(1, 3))),
                doorways=_scaled(doorways, max(scale, 0.25), 2),
                stores=rng.randint(1, 3),
                brands=rng.randint(1, 4),
                peak_days=rng.randint(10, 70),
                cloaking=_cloaking_for(f"SMALL.{i}", rng),
                peak_level=rng.uniform(0.5, 0.75),
            )
        )

    background: List[CampaignSpec] = []
    for i in range(round(26 * max(scale * 4, 0.5))):
        background.append(
            CampaignSpec(
                name=f"BG.{i + 1:02d}",
                verticals=sorted(rng.sample(names, rng.randint(2, 6))),
                doorways=_scaled(rng.randint(40, 400), scale, 2),
                stores=_scaled(rng.randint(4, 40), scale, 1),
                brands=rng.randint(2, 8),
                peak_days=rng.randint(15, 100),
                cloaking=_cloaking_for(f"BG.{i}", rng),
                peak_level=rng.uniform(0.55, 0.8),
            )
        )

    for spec in campaigns:
        extras = PINNED_EXTRA_BRANDS.get(spec.name)
        if extras:
            # Extra brands ride along via the brand pool; see Campaign.
            spec.extra_brands = list(extras)  # type: ignore[attr-defined]

    firms = [
        FirmSpec(
            name="GBC",
            clients=list(GBC_CLIENTS),
            policy=SeizurePolicy(
                case_interval_days=75,
                brand_interval_overrides={"Uggs": 14, "Oakley": 30},
                batch_size=1,
                external_domains_per_case=max(4, round(450 * scale)),
                enforcement_probability=0.5,
                legal_delay_days=14,
                min_observed_age_days=40,
            ),
        ),
        FirmSpec(
            name="SMGPA",
            clients=list(SMGPA_CLIENTS),
            policy=SeizurePolicy(
                case_interval_days=80,
                brand_interval_overrides={"Chanel": 14},
                batch_size=1,
                external_domains_per_case=max(3, round(170 * scale)),
                enforcement_probability=0.5,
                legal_delay_days=12,
                min_observed_age_days=32,
            ),
        ),
    ]

    scripted = [
        # The KEY campaign's PSR collapse in mid-December 2013 (§5.2.1).
        ScriptedDemotion(campaign="KEY", day=SimDate("2013-12-12"), amount=2.6, also_label=True),
    ]

    return ScenarioConfig(
        seed=seed,
        window=window,
        terms_per_vertical=terms_per_vertical,
        competitor_sites_per_vertical=90,
        legit_candidates_per_term=140,
        compromise_pool_size=_scaled(21000, scale, 200),
        verticals=verticals,
        campaigns=campaigns,
        background_campaigns=background,
        search_policy=SearchOpsPolicy(),
        scripted_demotions=scripted,
        firms=firms,
        supplier_partners=["MSVALIDATE"],
        supplier_background_orders_per_day=1030.0 * scale,
    )


def small_preset(seed: int = 7, days: int = 70) -> ScenarioConfig:
    """A tiny scenario for tests: 3 verticals, 5 campaigns, ~10 weeks."""
    window = DateRange(STUDY_START, STUDY_START + (days - 1))
    verticals = [
        VerticalSpec("Louis Vuitton", ["Louis Vuitton"]),
        VerticalSpec("Uggs", ["Uggs"]),
        VerticalSpec("Beats By Dre", ["Beats By Dre"]),
    ]
    campaigns = [
        CampaignSpec(
            name="MSVALIDATE", verticals=["Louis Vuitton", "Uggs"], doorways=14,
            stores=4, brands=4, peak_days=35, cloaking=CloakingType.IFRAME,
            peak_level=0.8, theme_family="zc-classic",
        ),
        CampaignSpec(
            name="KEY", verticals=["Beats By Dre"], doorways=12, stores=3,
            brands=3, peak_days=30, cloaking=CloakingType.REDIRECT, peak_level=0.8,
            main_burst_start_offset=0, theme_family="mg-lux",
        ),
        CampaignSpec(
            name="BIGLOVE", verticals=["Uggs", "Louis Vuitton"], doorways=10,
            stores=3, brands=4, peak_days=40, cloaking=CloakingType.IFRAME,
            peak_level=0.75, proactive_rotation_days=25, theme_family="zc-luxe",
        ),
        CampaignSpec(
            name="MOONKIS", verticals=["Beats By Dre"], doorways=8, stores=2,
            brands=2, peak_days=25, cloaking=CloakingType.IFRAME, peak_level=0.85,
            theme_family="mg-mall",
        ),
        CampaignSpec(
            name="PHP?P=", verticals=["Uggs"], doorways=8, stores=3, brands=3,
            peak_days=30, cloaking=CloakingType.REDIRECT, peak_level=0.7,
            reaction_delay_mean=2.0, theme_family="zc-outlet",
        ),
    ]
    background = [
        CampaignSpec(
            name="BG.01", verticals=["Louis Vuitton", "Beats By Dre"], doorways=6,
            stores=2, brands=2, peak_days=30, cloaking=CloakingType.IFRAME,
            theme_family="mg-fashion",
        ),
    ]
    firms = [
        FirmSpec(
            name="GBC",
            clients=["Louis Vuitton", "Uggs", "Beats By Dre"],
            policy=SeizurePolicy(
                case_interval_days=21, brand_interval_overrides={"Uggs": 14},
                batch_size=6, external_domains_per_case=3,
                legal_delay_days=7, min_observed_age_days=12,
            ),
        ),
    ]
    return ScenarioConfig(
        seed=seed,
        window=window,
        terms_per_vertical=6,
        # The tiny scenario monitors its whole term universe: statistics are
        # too sparse otherwise.  The paper preset keeps the 2x universe that
        # the Section 4.1.1 bias experiment needs.
        term_universe_factor=1.0,
        # Keep the SERP smaller than the candidate pool so ranking (and
        # demotion) actually gates visibility in the tiny scenario.
        serp_size=30,
        competitor_sites_per_vertical=30,
        legit_candidates_per_term=45,
        compromise_pool_size=120,
        verticals=verticals,
        campaigns=campaigns,
        background_campaigns=background,
        scripted_demotions=[
            ScriptedDemotion(campaign="KEY", day=window.start + 30, amount=2.6)
        ],
        firms=firms,
        supplier_partners=["MSVALIDATE"],
        supplier_background_orders_per_day=40.0,
    )
