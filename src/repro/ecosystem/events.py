"""Simulation event log.

Ground-truth record of every notable action: seizure cases executed,
campaign domain rotations, scripted demotions, labels.  The analysis layer
uses it only in validation tests — the measurement pipeline works from
crawled data alone, as the paper's did.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List

from repro.util.simtime import SimDate


@dataclass(frozen=True)
class Event:
    kind: str
    day: SimDate
    payload: Dict[str, Any] = field(default_factory=dict)


class EventLog:
    """Append-only, queryable by kind."""

    ROTATION = "store_rotation"
    SEIZURE_CASE = "seizure_case"
    DEMOTION = "campaign_demotion"
    LABEL = "hacked_label"

    def __init__(self):
        self._events: List[Event] = []
        self._by_kind: Dict[str, List[Event]] = {}

    def record(self, kind: str, day: SimDate, **payload: Any) -> Event:
        event = Event(kind=kind, day=day, payload=dict(payload))
        self._events.append(event)
        self._by_kind.setdefault(kind, []).append(event)
        return event

    def of_kind(self, kind: str) -> List[Event]:
        return list(self._by_kind.get(kind, []))

    def all(self) -> List[Event]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)
