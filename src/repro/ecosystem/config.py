"""Scenario configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.util.simtime import DateRange, STUDY_END, STUDY_START
from repro.seo.campaign import CampaignSpec
from repro.interventions.search_ops import ScriptedDemotion, SearchOpsPolicy
from repro.interventions.seizure import SeizurePolicy
from repro.interventions.payments import PaymentPolicy


@dataclass
class VerticalSpec:
    """One monitored vertical: name + brands (composites list several)."""

    name: str
    brands: List[str]
    composite: bool = False


@dataclass
class FirmSpec:
    """One brand-protection firm and its client brands."""

    name: str
    clients: List[str]
    policy: SeizurePolicy = field(default_factory=SeizurePolicy)


@dataclass
class ScenarioConfig:
    """Everything needed to build and run one scenario."""

    seed: int = 20141105  # IMC'14 opening day
    window: DateRange = field(default_factory=lambda: DateRange(STUDY_START, STUDY_END))
    #: Search terms monitored per vertical (paper: 100).
    terms_per_vertical: int = 12
    #: Campaigns target a term universe this many times larger than the
    #: monitored set (the paper's crawl covered a subset of the query
    #: space; Section 4.1.1's bias check depends on this).
    term_universe_factor: float = 2.0
    #: How many results per SERP (paper crawls the top 100).
    serp_size: int = 100
    #: Legitimate competitor sites per vertical and index candidates/term.
    competitor_sites_per_vertical: int = 90
    legit_candidates_per_term: int = 140
    #: Hackable legitimate sites available for doorway compromise.
    compromise_pool_size: int = 2500
    verticals: List[VerticalSpec] = field(default_factory=list)
    campaigns: List[CampaignSpec] = field(default_factory=list)
    #: Campaigns outside the classifier's labeled universe (their PSRs end
    #: up in the "unknown" band of Figure 2).
    background_campaigns: List[CampaignSpec] = field(default_factory=list)
    search_policy: SearchOpsPolicy = field(default_factory=SearchOpsPolicy)
    scripted_demotions: List[ScriptedDemotion] = field(default_factory=list)
    firms: List[FirmSpec] = field(default_factory=list)
    #: Payment intervention (Section 4.3.2's 'future work'); None = not run,
    #: matching the paper's observed world.
    payment_policy: Optional[PaymentPolicy] = None
    #: Campaigns whose completed orders route through the tracked supplier.
    supplier_partners: List[str] = field(default_factory=list)
    #: Baseline wholesale orders/day at the supplier from untracked clients.
    supplier_background_orders_per_day: float = 120.0
    #: Mean pages fetched per storefront visit (paper measures 5.6).
    pages_per_visit: float = 5.6
    #: Direct (non-search) visits per store per day.
    direct_visits_per_day: float = 1.0

    def __post_init__(self):
        if not self.verticals:
            return
        names = [v.name for v in self.verticals]
        if len(names) != len(set(names)):
            raise ValueError("duplicate vertical names")
        known = set(names)
        for spec in list(self.campaigns) + list(self.background_campaigns):
            for vertical in spec.verticals:
                if vertical not in known:
                    raise ValueError(
                        f"campaign {spec.name!r} targets unknown vertical {vertical!r}"
                    )

    def vertical_names(self) -> List[str]:
        return [v.name for v in self.verticals]

    def all_campaign_specs(self) -> List[CampaignSpec]:
        return list(self.campaigns) + list(self.background_campaigns)
