"""Shared simulation state: the ``world`` object handed to every actor.

Campaigns, intervention teams, and the simulator's traffic pass all operate
on this; it owns the ground-truth registries (doorway->campaign,
store->campaign, store sightings) used for traffic accounting, seizure
discovery, and validation tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.util.rng import RandomStreams
from repro.util.simtime import DateRange, SimDate
from repro.web.domains import Domain
from repro.web.hosting import Web
from repro.web.naming import NameForge
from repro.web.sites import Site
from repro.search.engine import SearchEngine
from repro.search.index import SearchIndex
from repro.search.query import QueryVolumeModel, Vertical
from repro.market.brands import BrandCatalog
from repro.market.payments import PaymentNetwork
from repro.market.stores import Store
from repro.market.supplier import Supplier


@dataclass
class StoreSighting:
    """A storefront host observed receiving search traffic for a brand."""

    host: str
    store_id: str
    brand: str
    first_seen: SimDate
    last_seen: SimDate


class World:
    """All shared simulation state."""

    def __init__(
        self,
        streams: RandomStreams,
        window: DateRange,
        web: Web,
        index: SearchIndex,
        engine: SearchEngine,
        verticals: Dict[str, Vertical],
        brand_catalog: BrandCatalog,
        payment_network: PaymentNetwork,
        query_volume: QueryVolumeModel,
        events,
    ):
        self.streams = streams
        self.window = window
        self.web = web
        self.index = index
        self.engine = engine
        self.verticals = verticals
        self.brand_catalog = brand_catalog
        self.payment_network = payment_network
        self.query_volume = query_volume
        self.events = events
        self.forge = NameForge(streams, web.domains)
        self.today: SimDate = window.start
        self.suppliers: List[Supplier] = []
        self._campaigns: Dict[str, object] = {}
        self._compromise_pool: List[Site] = []
        #: host -> (campaign, doorway); includes every doorway ever created.
        self._doorway_by_host: Dict[str, Tuple[object, object]] = {}
        #: doorway host -> landing Store.
        self._landing_by_host: Dict[str, Store] = {}
        #: store host -> Store (all tenures).
        self._store_by_host: Dict[str, Store] = {}
        self._stores: Dict[str, Store] = {}
        self._store_campaign: Dict[str, str] = {}
        #: (brand -> host -> StoreSighting)
        self._sightings: Dict[str, Dict[str, StoreSighting]] = {}

    # ------------------------------------------------------------------ #
    # Registration / ground-truth tracking
    # ------------------------------------------------------------------ #

    def register_domain(self, name: str, day: SimDate) -> Domain:
        return self.web.domains.register(name, day)

    def set_compromise_pool(self, sites: List[Site]) -> None:
        self._compromise_pool = list(sites)

    def take_compromise_target(self) -> Optional[Site]:
        if not self._compromise_pool:
            return None
        return self._compromise_pool.pop()

    def compromise_pool_remaining(self) -> int:
        return len(self._compromise_pool)

    def add_campaign(self, campaign) -> None:
        self._campaigns[campaign.name] = campaign

    def campaigns(self) -> List[object]:
        # repro: allow-D005 build order is fixed by the scenario config; the simulator iterates this and reordering would shift RNG draws
        return list(self._campaigns.values())

    def campaign_by_name(self, name: str):
        return self._campaigns.get(name)

    def track_store(self, campaign, store: Store) -> None:
        self._stores[store.store_id] = store
        self._store_campaign[store.store_id] = campaign.name
        self._store_by_host[store.current_domain.name] = store

    def track_store_host(self, store: Store, host: str) -> None:
        """Register an additional (rotated-to) host for a store."""
        self._store_by_host[host] = store

    def track_doorway(self, campaign, doorway, landing_store: Optional[Store] = None) -> None:
        self._doorway_by_host[doorway.host] = (campaign, doorway)
        if landing_store is not None:
            self._landing_by_host[doorway.host] = landing_store

    def doorway_at(self, host: str) -> Optional[Tuple[object, object]]:
        return self._doorway_by_host.get(host)

    def landing_store_of(self, doorway_host: str) -> Optional[Store]:
        return self._landing_by_host.get(doorway_host)

    def store_at(self, host: str) -> Optional[Store]:
        return self._store_by_host.get(host)

    def store_by_id(self, store_id: str) -> Optional[Store]:
        return self._stores.get(store_id)

    def stores(self) -> List[Store]:
        # repro: allow-D005 insertion order is deterministic store-creation order; actors iterate this, so reordering would shift RNG draws
        return list(self._stores.values())

    def campaign_of_store(self, store_id: str) -> Optional[str]:
        return self._store_campaign.get(store_id)

    def active_doorways(self) -> Iterator[Tuple[object, object]]:
        # repro: allow-D005 insertion order is deterministic doorway-rollout order; the traffic pass iterates this, so reordering would shift RNG draws
        return iter(self._doorway_by_host.values())

    # ------------------------------------------------------------------ #
    # Sightings (what brand investigators can observe)
    # ------------------------------------------------------------------ #

    def note_store_sighting(self, store: Store, day: SimDate) -> None:
        host = store.host_on(day) or store.current_domain.name
        for brand in store.brands:
            per_brand = self._sightings.setdefault(brand, {})
            sighting = per_brand.get(host)
            if sighting is None:
                per_brand[host] = StoreSighting(
                    host=host, store_id=store.store_id, brand=brand,
                    first_seen=day, last_seen=day,
                )
            else:
                sighting.last_seen = day

    def store_sightings(self, brand: str) -> List[StoreSighting]:
        # repro: allow-D005 insertion order is deterministic first-observation order; firms build cases from it, so reordering would shift case composition
        return list(self._sightings.get(brand, {}).values())

    # ------------------------------------------------------------------ #
    # Event recording hooks (called by actors)
    # ------------------------------------------------------------------ #

    def record_rotation(self, campaign, store: Store, old_host: str, new_host: str,
                        day: SimDate, reason: str) -> None:
        self.track_store_host(store, new_host)
        self.events.record(
            self.events.ROTATION, day,
            campaign=campaign.name, store_id=store.store_id,
            old_host=old_host, new_host=new_host, reason=reason,
        )

    def record_demotion(self, campaign_name: str, day: SimDate, amount: float) -> None:
        self.events.record(self.events.DEMOTION, day, campaign=campaign_name, amount=amount)

    def record_seizure_case(self, firm, case, seized_hosts: List[str], day: SimDate) -> None:
        self.events.record(
            self.events.SEIZURE_CASE, day,
            firm=firm.name, case_id=case.case_id, brand=case.brand,
            domains=list(case.domains), seized=list(seized_hosts),
        )
