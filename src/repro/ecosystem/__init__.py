"""Scenario orchestration: configuration, presets, world state, simulator."""

from repro.ecosystem.events import Event, EventLog
from repro.ecosystem.world import World, StoreSighting
from repro.ecosystem.config import ScenarioConfig, VerticalSpec, FirmSpec
from repro.ecosystem.presets import paper_preset, small_preset
from repro.ecosystem.simulator import Simulator, DayContext

__all__ = [
    "Event",
    "EventLog",
    "World",
    "StoreSighting",
    "ScenarioConfig",
    "VerticalSpec",
    "FirmSpec",
    "paper_preset",
    "small_preset",
    "Simulator",
    "DayContext",
]
