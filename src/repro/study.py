"""End-to-end study runner: the library's main entry point.

Reproduces the paper's full methodology in one call:

1. build and run the ecosystem simulation (the stand-in for the live web);
2. crawl daily SERPs with Dagger + VanGogh, building the PSR dataset;
3. create weekly test orders on discovered stores (purchase pairs);
4. hand-label a seed set, train the L1 campaign classifier, refine it, and
   attribute every PSR to a campaign;
5. hand the results to the analysis layer.

    >>> from repro import StudyRun
    >>> from repro.ecosystem import small_preset
    >>> results = StudyRun(small_preset()).execute()   # doctest: +SKIP
    >>> len(results.dataset)                           # doctest: +SKIP
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ecosystem.config import ScenarioConfig
from repro.ecosystem.simulator import Simulator
from repro.ecosystem.world import World
from repro.crawler.records import PageArchive, PsrDataset
from repro.crawler.serp_crawler import CrawlPolicy, SearchCrawler
from repro.faults.checkpoint import Checkpointer, load_checkpoint
from repro.faults.injector import FaultInjector
from repro.faults.profiles import FaultProfile
from repro.faults.retry import RetryPolicy
from repro.orders.purchase_pair import OrderPolicy, TestOrderer
from repro.classify.labeling import (
    GroundTruthOracle,
    LabeledPage,
    RefinementLoop,
    build_seed_labels,
)
from repro.classify.pipeline import AttributionResult, CampaignClassifier
from repro.obs.metrics import MetricsRecorder
from repro.obs.trace import TRACER
from repro.perf.cache import disk_cache
from repro.perf.gctune import low_pause_gc
from repro.perf.shardpool import CrawlExecutor


@dataclass
class StudyResults:
    """Everything the analysis layer consumes."""

    world: World
    simulator: Simulator
    crawler: SearchCrawler
    orderer: TestOrderer
    dataset: PsrDataset
    archive: PageArchive
    oracle: GroundTruthOracle
    classifier: Optional[CampaignClassifier]
    attribution: Optional[AttributionResult]
    labeled_pages: List[LabeledPage] = field(default_factory=list)
    #: Per-sim-day time series sampled while the simulation ran.
    metrics: Optional[MetricsRecorder] = None
    #: Shard-pool accounting from the crawl executor (jobs, cpus, steals,
    #: per-shard busy seconds) — see ``CrawlExecutor.stats()``.
    shard_stats: Optional[dict] = None

    @property
    def supplier(self):
        return self.simulator.supplier

    def headline(self) -> dict:
        """The run's headline metrics as one nested, JSON-serializable dict.

        This is the shared vocabulary of the gate, the chaos drill, and the
        benchmarks: PSR/doorway/store counts, every Table 1–3 cell keyed by
        row, PSR-curve quantiles per vertical, and seized-store lifetime
        brackets per firm.  Values are derived purely from the deterministic
        study artifacts, so two runs of the same scenario produce equal
        trees at any ``--jobs`` level, cached or not.
        """
        # Local imports: the analysis layer's ablation runner imports
        # StudyRun, so importing analysis at module level would cycle.
        from repro.analysis import (
            DailyAggregates,
            campaign_table,
            label_coverage,
            poisoning_series,
            seized_store_lifetimes,
            seizure_table,
            vertical_table,
        )
        from repro.util.stats import percentile

        dataset = self.dataset
        aggregates = DailyAggregates(dataset)
        tree: dict = {
            "psr": {
                "total": len(dataset),
                "doorways": len(dataset.doorway_hosts()),
                "stores": len(dataset.store_hosts()),
            },
            "labels": {"coverage": label_coverage(dataset).coverage},
        }
        if self.attribution is not None:
            tree["attribution"] = {
                "rate": self.attribution.attribution_rate,
                "campaigns": len(self.attribution.campaigns),
            }
        tree["table1"] = {
            r.vertical: {
                "psrs": r.psrs,
                "doorways": r.doorways,
                "stores": r.stores,
                "campaigns": r.campaigns,
            }
            for r in vertical_table(dataset, aggregates)
        }
        brand_names = [b.name for b in self.world.brand_catalog.all()]
        tree["table2"] = {
            r.campaign: {
                "doorways": r.doorways,
                "stores": r.stores,
                "brands": r.brands,
                "peak_days": r.peak_days,
            }
            for r in campaign_table(dataset, self.archive, brand_names,
                                    aggregates=aggregates)
        }
        tree["table3"] = {
            r.firm: {
                "cases": r.cases,
                "brands": r.brands,
                "seized_domains": r.seized_domains,
                "observed_stores": r.observed_stores,
                "classified_stores": r.classified_stores,
                "campaigns": r.campaigns,
            }
            for r in seizure_table(dataset, self.crawler)
        }
        curve: dict = {}
        for vertical in dataset.verticals():
            values = [v for _, v in
                      poisoning_series(dataset, vertical, 100, aggregates)]
            if not values:
                continue
            curve[vertical] = {
                "min": min(values),
                "p50": percentile(values, 50),
                "p90": percentile(values, 90),
                "max": max(values),
            }
        tree["psr_curve"] = curve
        tree["lifetimes"] = {
            s.firm: {
                "measured": s.measured,
                "mean_lower_days": s.mean_lower_days,
                "mean_upper_days": s.mean_upper_days,
            }
            for s in seized_store_lifetimes(dataset)
        }
        return tree


class StudyRun:
    """Configurable pipeline from scenario to attributed PSR dataset."""

    def __init__(
        self,
        config: ScenarioConfig,
        crawl_policy: Optional[CrawlPolicy] = None,
        order_policy: Optional[OrderPolicy] = None,
        seed_label_count: int = 491,
        refinement_rounds: int = 2,
        classifier_lam: float = 1e-3,
        confidence_threshold: float = 0.5,
        classify: bool = True,
        n_jobs: int = 1,
        jobs: int = 1,
        fault_profile: Optional[FaultProfile] = None,
        fault_seed: int = 0,
        retry_policy: Optional[RetryPolicy] = None,
        checkpoint_path: Optional[str] = None,
        checkpoint_every_days: int = 1,
        resume: bool = False,
        die_after_day: Optional[int] = None,
    ):
        self.config = config
        self.crawl_policy = crawl_policy or CrawlPolicy(stride_days=2)
        self.order_policy = order_policy or OrderPolicy()
        self.seed_label_count = seed_label_count
        self.refinement_rounds = refinement_rounds
        self.classifier_lam = classifier_lam
        self.confidence_threshold = confidence_threshold
        self.classify = classify
        #: Thread count for classifier fits; attribution results are
        #: identical for any value (the per-class fits are independent and
        #: deterministic) — see ``tests/test_serp_determinism.py``.
        self.n_jobs = n_jobs
        #: Crawl shard processes.  Artifacts are byte-identical for any
        #: value — the shard pool merges worker results in canonical order
        #: (see repro.perf.shardpool; pinned in tests/test_shardpool.py).
        self.jobs = jobs
        #: Set by :meth:`execute`: ``CrawlExecutor.stats()`` of the run.
        self.shard_stats: Optional[dict] = None
        #: Set by :meth:`execute` when checkpointing was on:
        #: ``Checkpointer.stats()`` (delta-store byte accounting).
        self.checkpoint_stats: Optional[dict] = None
        #: Chaos knobs: a fault profile makes the measurement crawl run
        #: against injected failures (ground truth is never perturbed).
        self.fault_profile = fault_profile
        self.fault_seed = fault_seed
        self.retry_policy = retry_policy
        #: Crash-safety knobs: with a checkpoint path the run persists
        #: per-sim-day state; ``resume=True`` continues from it.
        self.checkpoint_path = checkpoint_path
        self.checkpoint_every_days = checkpoint_every_days
        self.resume = resume
        self.die_after_day = die_after_day
        #: Set by :meth:`execute`: the day index the run resumed from
        #: (None when it started fresh).
        self.resumed_from_day: Optional[int] = None

    def execute(self) -> StudyResults:
        # Raised GC thresholds for the duration of the run: with the
        # content-addressed caches resident, default full collections walk
        # the whole cache on the hot path (see repro.perf.gctune).
        with low_pause_gc():
            with TRACER.span("study", seed=self.config.seed,
                             days=len(self.config.window)):
                return self._execute()

    def _execute(self) -> StudyResults:
        simulator, observers, start_index = self._simulation_state()
        crawler, orderer, recorder = observers
        checkpointer = None
        if self.checkpoint_path is not None:
            checkpointer = Checkpointer(
                self.checkpoint_path, self.config,
                every_days=self.checkpoint_every_days,
                die_after_day=self.die_after_day,
            )
        # One executor per run, reattached after resume at whatever --jobs
        # level this invocation asked for (artifacts are identical either
        # way, so cross-jobs resume is legal; the checkpoint drill does it).
        executor = CrawlExecutor(
            simulator, jobs=self.jobs,
            retry_policy=crawler.fetcher.policy,
            crawl_policy=crawler.policy,
        )
        crawler.attach_executor(executor)
        try:
            world = simulator.run(
                observers=observers, start_index=start_index,
                checkpointer=checkpointer,
            )
        finally:
            self.shard_stats = executor.stats()
            if checkpointer is not None:
                self.checkpoint_stats = checkpointer.stats()
            crawler.detach_executor()
            executor.shutdown()
            disk = disk_cache()
            if disk is not None:
                # Persist lifetime hit/miss accounting; a warm run stores
                # little, so the store-driven flush may never have fired.
                disk.flush()
        if checkpointer is not None:
            # The run completed: a stale checkpoint would otherwise make a
            # later --resume replay the tail of this finished window.
            checkpointer.clear()

        oracle = GroundTruthOracle(world)
        classifier: Optional[CampaignClassifier] = None
        attribution: Optional[AttributionResult] = None
        labeled: List[LabeledPage] = []
        if self.classify and (crawler.archive.stores or crawler.archive.doorways):
            with TRACER.span("classify"):
                labeled, classifier, attribution = self._classify(
                    crawler, oracle)
        # Test-order campaign hints follow attribution (the paper likewise
        # grouped its order data after classifying stores).
        if attribution is not None:
            for tracked in orderer.tracked.values():
                prediction = attribution.host_predictions.get(tracked.key)
                if prediction is not None and prediction[1] >= self.confidence_threshold:
                    tracked.campaign_hint = prediction[0]
        return StudyResults(
            world=world,
            simulator=simulator,
            crawler=crawler,
            orderer=orderer,
            dataset=crawler.dataset,
            archive=crawler.archive,
            oracle=oracle,
            classifier=classifier,
            attribution=attribution,
            labeled_pages=labeled,
            metrics=recorder,
            shard_stats=self.shard_stats,
        )

    def _simulation_state(self) -> Tuple[Simulator, List[object], int]:
        """Build (or reload) the simulator and its observers.

        Resuming unpickles the whole object graph from the checkpoint —
        simulator, crawler, orderer, and recorder share live references
        (``crawler.web is simulator.world.web``), so they come back as one
        payload rather than being reconstructed piecemeal.
        """
        if (
            self.resume
            and self.checkpoint_path is not None
            and os.path.exists(self.checkpoint_path)
        ):
            simulator, observers, start_index, _manifest = load_checkpoint(
                self.checkpoint_path, self.config
            )
            self.resumed_from_day = start_index
            return simulator, list(observers), start_index
        simulator = Simulator(self.config)
        world = simulator.build()
        if self.fault_profile is not None and self.fault_profile.active():
            world.web.fault_injector = FaultInjector(
                self.fault_profile, seed=self.fault_seed
            )
        crawler = SearchCrawler(
            world.web, self.crawl_policy, retry_policy=self.retry_policy
        )
        orderer = TestOrderer(world.web, crawler, self.order_policy)
        # The metrics recorder observes last, after the crawler and orderer
        # have produced the day's records it samples.
        recorder = MetricsRecorder(crawler)
        return simulator, [crawler, orderer, recorder], 0

    def _classify(self, crawler, oracle):
        """Seed-label, refine, and attribute; returns (labeled, classifier,
        attribution) — the latter two ``None`` when too few campaigns seed."""
        classifier: Optional[CampaignClassifier] = None
        attribution: Optional[AttributionResult] = None
        with TRACER.span("seed-labels"):
            labeled = build_seed_labels(
                crawler.archive, oracle, target_size=self.seed_label_count,
                seed=self.config.seed,
            )
        if len({p.campaign for p in labeled}) >= 2:
            seeded_hosts = {p.host for p in labeled}
            unlabeled: Dict[str, tuple] = {}
            for host, html in crawler.archive.stores.items():
                if host not in seeded_hosts:
                    unlabeled[host] = (html, "store")
            for host, html in crawler.archive.doorways.items():
                if host not in seeded_hosts and host not in unlabeled:
                    unlabeled[host] = (html, "doorway")
            with TRACER.span("refine", rounds=self.refinement_rounds):
                loop = RefinementLoop(oracle)
                labeled, classifier = loop.run(
                    classifier_factory=lambda: CampaignClassifier(
                        lam=self.classifier_lam,
                        confidence_threshold=self.confidence_threshold,
                        n_jobs=self.n_jobs,
                    ),
                    labeled=labeled,
                    unlabeled=unlabeled,
                    rounds=self.refinement_rounds,
                )
            with TRACER.span("attribute"):
                attribution = classifier.attribute(
                    crawler.dataset, crawler.archive)
        return labeled, classifier, attribution
