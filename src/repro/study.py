"""End-to-end study runner: the library's main entry point.

Reproduces the paper's full methodology in one call:

1. build and run the ecosystem simulation (the stand-in for the live web);
2. crawl daily SERPs with Dagger + VanGogh, building the PSR dataset;
3. create weekly test orders on discovered stores (purchase pairs);
4. hand-label a seed set, train the L1 campaign classifier, refine it, and
   attribute every PSR to a campaign;
5. hand the results to the analysis layer.

    >>> from repro import StudyRun
    >>> from repro.ecosystem import small_preset
    >>> results = StudyRun(small_preset()).execute()   # doctest: +SKIP
    >>> len(results.dataset)                           # doctest: +SKIP
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.ecosystem.config import ScenarioConfig
from repro.ecosystem.simulator import Simulator
from repro.ecosystem.world import World
from repro.crawler.records import PageArchive, PsrDataset
from repro.crawler.serp_crawler import CrawlPolicy, SearchCrawler
from repro.orders.purchase_pair import OrderPolicy, TestOrderer
from repro.classify.labeling import (
    GroundTruthOracle,
    LabeledPage,
    RefinementLoop,
    build_seed_labels,
)
from repro.classify.pipeline import AttributionResult, CampaignClassifier
from repro.obs.metrics import MetricsRecorder
from repro.obs.trace import TRACER
from repro.perf.gctune import low_pause_gc


@dataclass
class StudyResults:
    """Everything the analysis layer consumes."""

    world: World
    simulator: Simulator
    crawler: SearchCrawler
    orderer: TestOrderer
    dataset: PsrDataset
    archive: PageArchive
    oracle: GroundTruthOracle
    classifier: Optional[CampaignClassifier]
    attribution: Optional[AttributionResult]
    labeled_pages: List[LabeledPage] = field(default_factory=list)
    #: Per-sim-day time series sampled while the simulation ran.
    metrics: Optional[MetricsRecorder] = None

    @property
    def supplier(self):
        return self.simulator.supplier


class StudyRun:
    """Configurable pipeline from scenario to attributed PSR dataset."""

    def __init__(
        self,
        config: ScenarioConfig,
        crawl_policy: Optional[CrawlPolicy] = None,
        order_policy: Optional[OrderPolicy] = None,
        seed_label_count: int = 491,
        refinement_rounds: int = 2,
        classifier_lam: float = 1e-3,
        confidence_threshold: float = 0.5,
        classify: bool = True,
        n_jobs: int = 1,
    ):
        self.config = config
        self.crawl_policy = crawl_policy or CrawlPolicy(stride_days=2)
        self.order_policy = order_policy or OrderPolicy()
        self.seed_label_count = seed_label_count
        self.refinement_rounds = refinement_rounds
        self.classifier_lam = classifier_lam
        self.confidence_threshold = confidence_threshold
        self.classify = classify
        #: Thread count for classifier fits; attribution results are
        #: identical for any value (the per-class fits are independent and
        #: deterministic) — see ``tests/test_serp_determinism.py``.
        self.n_jobs = n_jobs

    def execute(self) -> StudyResults:
        # Raised GC thresholds for the duration of the run: with the
        # content-addressed caches resident, default full collections walk
        # the whole cache on the hot path (see repro.perf.gctune).
        with low_pause_gc():
            with TRACER.span("study", seed=self.config.seed,
                             days=len(self.config.window)):
                return self._execute()

    def _execute(self) -> StudyResults:
        simulator = Simulator(self.config)
        world = simulator.build()
        crawler = SearchCrawler(world.web, self.crawl_policy)
        orderer = TestOrderer(world.web, crawler, self.order_policy)
        # The metrics recorder observes last, after the crawler and orderer
        # have produced the day's records it samples.
        recorder = MetricsRecorder(crawler)
        simulator.run(observers=[crawler, orderer, recorder])

        oracle = GroundTruthOracle(world)
        classifier: Optional[CampaignClassifier] = None
        attribution: Optional[AttributionResult] = None
        labeled: List[LabeledPage] = []
        if self.classify and (crawler.archive.stores or crawler.archive.doorways):
            with TRACER.span("classify"):
                labeled, classifier, attribution = self._classify(
                    crawler, oracle)
        # Test-order campaign hints follow attribution (the paper likewise
        # grouped its order data after classifying stores).
        if attribution is not None:
            for tracked in orderer.tracked.values():
                prediction = attribution.host_predictions.get(tracked.key)
                if prediction is not None and prediction[1] >= self.confidence_threshold:
                    tracked.campaign_hint = prediction[0]
        return StudyResults(
            world=world,
            simulator=simulator,
            crawler=crawler,
            orderer=orderer,
            dataset=crawler.dataset,
            archive=crawler.archive,
            oracle=oracle,
            classifier=classifier,
            attribution=attribution,
            labeled_pages=labeled,
            metrics=recorder,
        )

    def _classify(self, crawler, oracle):
        """Seed-label, refine, and attribute; returns (labeled, classifier,
        attribution) — the latter two ``None`` when too few campaigns seed."""
        classifier: Optional[CampaignClassifier] = None
        attribution: Optional[AttributionResult] = None
        with TRACER.span("seed-labels"):
            labeled = build_seed_labels(
                crawler.archive, oracle, target_size=self.seed_label_count,
                seed=self.config.seed,
            )
        if len({p.campaign for p in labeled}) >= 2:
            seeded_hosts = {p.host for p in labeled}
            unlabeled: Dict[str, tuple] = {}
            for host, html in crawler.archive.stores.items():
                if host not in seeded_hosts:
                    unlabeled[host] = (html, "store")
            for host, html in crawler.archive.doorways.items():
                if host not in seeded_hosts and host not in unlabeled:
                    unlabeled[host] = (html, "doorway")
            with TRACER.span("refine", rounds=self.refinement_rounds):
                loop = RefinementLoop(oracle)
                labeled, classifier = loop.run(
                    classifier_factory=lambda: CampaignClassifier(
                        lam=self.classifier_lam,
                        confidence_threshold=self.confidence_threshold,
                        n_jobs=self.n_jobs,
                    ),
                    labeled=labeled,
                    unlabeled=unlabeled,
                    rounds=self.refinement_rounds,
                )
            with TRACER.span("attribute"):
                attribution = classifier.attribute(
                    crawler.dataset, crawler.archive)
        return labeled, classifier, attribution
