"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run`` — execute the full study pipeline and write the measurement
  artifacts (PSR dataset, tables, sparklines, summary) to a directory;
* ``ablations`` — run the intervention-policy counterfactuals and print
  the comparison table;
* ``perf`` — run a study and print the hot-path timing breakdown from the
  always-on :data:`repro.util.perf.PERF` registry;
* ``trace`` — run a study with span tracing on and print the hierarchical
  phase tree (:mod:`repro.obs.trace`); ``--json`` exports Chrome/Perfetto
  ``trace_event`` JSON, ``--metrics`` the per-sim-day series;
* ``chaos`` — run the same scenario clean and under a named fault profile
  (:mod:`repro.faults`), report injected/retried/degraded counters, and
  assert the resilience invariants (determinism, headline tolerance);
* ``cache`` — inspect, validate, or clear the persistent disk cache tier
  (:mod:`repro.perf.diskcache`) that ``--disk-cache DIR`` /
  ``REPRO_DISK_CACHE`` point study runs at;
* ``gate`` — compare the latest run-ledger record against the committed
  baseline (``baselines/gate.json``) with per-table tolerance bands
  (:mod:`repro.obs.gate`); exit 1 on drift, 2 on missing inputs;
* ``history`` — render the ledger's record list and per-metric
  trajectories as sparklines;
* ``compare`` — diff two ledger records metric by metric;
* ``lint`` — run the determinism/concurrency static analyzer
  (:mod:`repro.lint`) over the given paths; exits non-zero on findings.

``run`` and ``chaos`` append one record per completed run to the ledger
named by ``--ledger`` / ``REPRO_LEDGER`` (no ledger → no append), which
is what ``gate``/``history``/``compare`` read.

``run`` also carries the crash-safety knobs: ``--checkpoint`` persists
per-sim-day state, ``--resume`` continues a killed run from it, and
``--die-after-day`` simulates the kill (checkpoint, then exit code 3).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import asdict
from time import perf_counter
from typing import List, Optional

from repro.study import StudyRun
from repro.crawler import CrawlPolicy
from repro.ecosystem import paper_preset, small_preset
from repro.faults import PROFILES, SimulatedCrash, profile_named
from repro.analysis import (
    DailyAggregates,
    campaign_table,
    label_coverage,
    rotation_reactions,
    run_intervention_ablations,
    seizure_table,
    sparkline_extremes,
    supplier_summary,
    vertical_table,
)
from repro.lint import (
    format_json,
    format_text,
    lint_paths,
    select_rules,
    write_summary,
)
from repro.obs.gate import (
    gate_history,
    gate_metrics,
    load_baseline,
    run_gate,
    write_baseline,
)
from repro.obs.ledger import (
    LEDGER_ENV,
    RunLedger,
    build_study_record,
    timed,
)
from repro.obs.manifest import run_manifest
from repro.obs.trace import TRACER, set_tracing_enabled
from repro.perf.cache import set_caches_enabled, set_disk_cache
from repro.perf.diskcache import DiskCache
from repro.reporting import (
    render_drift_table,
    render_history,
    render_record_diff,
    render_table,
    sparkline_row,
)
from repro.util.atomicio import atomic_write
from repro.util.perf import PERF


def _add_study_args(parser: argparse.ArgumentParser) -> None:
    """The scenario/knob options shared by run / perf / trace."""
    parser.add_argument("--preset", choices=("small", "paper"), default="small")
    parser.add_argument("--scale", type=float, default=0.05,
                        help="paper-preset census scale (ignored for small)")
    parser.add_argument("--terms", type=int, default=8,
                        help="monitored terms per vertical (paper preset)")
    parser.add_argument("--stride", type=int, default=3,
                        help="crawl stride, days")
    parser.add_argument("--seed", type=int, default=None, help="scenario seed")
    parser.add_argument("--jobs", type=int, default=1,
                        help="crawl shard processes + classifier fit threads "
                             "(byte-identical artifacts, any value)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the content-addressed caches "
                             "(bit-identical, slower)")
    parser.add_argument("--disk-cache", default=None, metavar="DIR",
                        help="persist cache entries under DIR so later runs "
                             "warm-start (bit-identical; also honours the "
                             "REPRO_DISK_CACHE environment variable)")
    parser.add_argument("--no-disk-cache", action="store_true",
                        help="ignore REPRO_DISK_CACHE and run memory-only")


def _add_ledger_args(parser: argparse.ArgumentParser,
                     writes: bool = False) -> None:
    hint = ("append a run record to" if writes else "read records from")
    parser.add_argument("--ledger", default=None, metavar="PATH",
                        help=f"{hint} this JSONL run ledger "
                             f"(default: ${LEDGER_ENV}"
                             + ("; no ledger, no append)" if writes else ")"))


def _ledger_path(args) -> Optional[str]:
    return args.ledger or os.environ.get(LEDGER_ENV) or None


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Search + Seizure' (IMC 2014)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run the study pipeline and write artifacts")
    _add_study_args(run)
    run.add_argument("--trace", action="store_true",
                     help="record span traces; writes trace.json + manifest.json "
                          "next to the artifacts and prints the phase tree")
    run.add_argument("--out", default="study-output", help="output directory")
    run.add_argument("--profile", choices=sorted(PROFILES), default=None,
                     help="inject faults from a named profile into the "
                          "measurement crawl")
    run.add_argument("--fault-seed", type=int, default=0,
                     help="fault-injection seed (independent of the "
                          "scenario seed)")
    run.add_argument("--checkpoint", default=None, metavar="PATH",
                     help="persist a per-sim-day checkpoint to PATH")
    run.add_argument("--checkpoint-every", type=int, default=1, metavar="N",
                     help="checkpoint every N simulated days")
    run.add_argument("--resume", action="store_true",
                     help="continue from the --checkpoint file when present")
    run.add_argument("--die-after-day", type=int, default=None, metavar="N",
                     help="crash drill: checkpoint after sim-day index N, "
                          "then exit with code 3")
    _add_ledger_args(run, writes=True)

    ablations = sub.add_parser("ablations", help="run intervention counterfactuals")
    ablations.add_argument("--days", type=int, default=70, help="window length")
    ablations.add_argument("--jobs", type=int, default=1,
                           help="worker processes, one variant each "
                                "(same outcomes, same order, any value)")
    ablations.add_argument("--no-cache", action="store_true",
                           help="disable the content-addressed caches")
    ablations.add_argument("--json", default=None, metavar="PATH",
                           help="write outcomes + run manifest as JSON")

    perf = sub.add_parser(
        "perf", help="run a study and print the hot-path perf breakdown"
    )
    _add_study_args(perf)
    perf.add_argument("--json", default=None, metavar="PATH",
                      help="also dump the registry snapshot as JSON")
    perf.add_argument("--top", type=int, default=None, metavar="N",
                      help="show only the N widest timers")

    trace = sub.add_parser(
        "trace", help="run a traced study and print the span tree"
    )
    _add_study_args(trace)
    trace.add_argument("--json", default=None, metavar="PATH",
                       help="write Chrome/Perfetto trace_event JSON "
                            "(open in chrome://tracing or ui.perfetto.dev)")
    trace.add_argument("--metrics", default=None, metavar="PATH",
                       help="write the per-sim-day metrics.jsonl series")
    trace.add_argument("--telemetry", default=None, metavar="PATH",
                       help="write the per-sim-day telemetry.jsonl sidecar "
                            "(serve µs, shard + disk gauges)")
    trace.add_argument("--counters", action="store_true",
                       help="also show PERF counter deltas per span")
    trace.add_argument("--sparklines", action="store_true",
                       help="also print the per-sim-day series as sparklines")

    chaos = sub.add_parser(
        "chaos", help="run clean + fault-injected studies and compare"
    )
    _add_study_args(chaos)
    chaos.add_argument("--profile", choices=sorted(PROFILES),
                       default="monsoon", help="fault profile to inject")
    chaos.add_argument("--fault-seed", type=int, default=0,
                       help="fault-injection seed")
    chaos.add_argument("--out", default="chaos-output",
                       help="output directory")
    chaos.add_argument("--tolerance", type=float, default=0.5, metavar="T",
                       help="max allowed relative PSR-count deviation of the "
                            "chaos run from the clean run")
    chaos.add_argument("--skip-verify", action="store_true",
                       help="skip the repeat chaos run that proves "
                            "same-fault-seed determinism")
    _add_ledger_args(chaos, writes=True)

    gate = sub.add_parser(
        "gate", help="band the latest ledger record against the baseline"
    )
    _add_ledger_args(gate)
    gate.add_argument("--baseline", default="baselines/gate.json",
                      metavar="PATH", help="committed baseline file")
    gate.add_argument("--key", default=None,
                      help="gate the latest record with this key "
                           "(default: the ledger's latest record)")
    gate.add_argument("--kind", default=None,
                      help="restrict record selection to this kind "
                           "(e.g. study, bench:study)")
    gate.add_argument("--update", action="store_true",
                      help="write/refresh the baseline entry from the "
                           "selected record instead of gating")
    gate.add_argument("--verdict", default=None, metavar="PATH",
                      help="also write the deterministic verdict lines "
                           "(byte-identical across jobs/cache variants "
                           "on a clean run)")
    gate.add_argument("--report", default=None, metavar="PATH",
                      help="also write the full drift report "
                           "(values + ledger-history sparklines)")

    history = sub.add_parser(
        "history", help="render ledger record list + metric trajectories"
    )
    _add_ledger_args(history)
    history.add_argument("paths", nargs="*",
                         default=["psr.total", "psr.doorways", "psr.stores",
                                  "wall_s"],
                         help="metric dot-paths to sparkline "
                              "(default: headline counts + wall time)")
    history.add_argument("--kind", default=None,
                         help="filter records by kind")
    history.add_argument("--key", default=None,
                         help="filter records by comparability key")
    history.add_argument("--limit", type=int, default=32, metavar="N",
                         help="show at most the last N records")

    compare = sub.add_parser(
        "compare", help="diff two ledger records metric by metric"
    )
    _add_ledger_args(compare)
    compare.add_argument("ref_a", help="record: index (-1 = latest) or "
                                       "run-id prefix")
    compare.add_argument("ref_b", help="record: index or run-id prefix")

    cache = sub.add_parser(
        "cache", help="inspect, validate, or clear the persistent disk cache"
    )
    cache.add_argument("--dir", default=None, metavar="DIR",
                       help="cache directory (default: $REPRO_DISK_CACHE)")
    cache.add_argument("--validate", action="store_true",
                       help="digest-check every entry; quarantine failures "
                            "(exit 1 when any entry was bad)")
    cache.add_argument("--clear", action="store_true",
                       help="remove every cached entry and the quarantine")
    cache.add_argument("--json", action="store_true",
                       help="print machine-readable stats")

    lint = sub.add_parser(
        "lint", help="run the determinism/concurrency static analyzer"
    )
    lint.add_argument("paths", nargs="*", default=["src"],
                      help="files or directories to lint (default: src)")
    lint.add_argument("--select", default=None, metavar="CODES",
                      help="comma-separated rule codes to run (default: all)")
    lint.add_argument("--format", choices=("text", "json", "sarif"),
                      default="text", dest="fmt", help="output format")
    lint.add_argument("--summary", default=None, metavar="PATH",
                      help="write BENCH_lint.json-style summary counts")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule table and exit")
    lint.add_argument("--deep", action="store_true",
                      help="also run the interprocedural flow analyzer "
                           "(D101-D105)")
    lint.add_argument("--graph", choices=("json",), default=None,
                      help="with --deep: dump the import/call graph instead "
                           "of findings")
    lint.add_argument("--flow-cache", default=None, metavar="DIR",
                      help="per-module summary cache directory for --deep "
                           "(default: .repro_flow_cache)")
    lint.add_argument("--no-flow-cache", action="store_true",
                      help="disable the --deep summary cache")
    return parser


def _apply_disk_args(args) -> None:
    """Resolve the persistent-tier knobs before any cache is touched."""
    if getattr(args, "no_disk_cache", False):
        set_disk_cache(None)
    elif getattr(args, "disk_cache", None):
        set_disk_cache(args.disk_cache)


def _config_for(args):
    if args.preset == "paper":
        kwargs = {"scale": args.scale, "terms_per_vertical": args.terms}
        if args.seed is not None:
            kwargs["seed"] = args.seed
        return paper_preset(**kwargs)
    if args.seed is not None:
        return small_preset(seed=args.seed)
    return small_preset()


def command_run(args) -> int:
    if args.no_cache:
        set_caches_enabled(False)
    _apply_disk_args(args)
    if args.trace:
        set_tracing_enabled(True)
    if args.die_after_day is not None and args.checkpoint is None:
        print("repro run: --die-after-day requires --checkpoint",
              file=sys.stderr)
        return 2
    config = _config_for(args)
    print(f"Running {args.preset} preset "
          f"({len(config.verticals)} verticals, "
          f"{len(config.all_campaign_specs())} campaigns, "
          f"{len(config.window)} days"
          + (f", faults={args.profile}" if args.profile else "")
          + ")...", flush=True)
    study = StudyRun(
        config, crawl_policy=CrawlPolicy(stride_days=args.stride),
        n_jobs=args.jobs,
        jobs=args.jobs,
        fault_profile=profile_named(args.profile) if args.profile else None,
        fault_seed=args.fault_seed,
        checkpoint_path=args.checkpoint,
        checkpoint_every_days=args.checkpoint_every,
        resume=args.resume,
        die_after_day=args.die_after_day,
    )
    try:
        with timed() as clock:
            results = study.execute()
    except SimulatedCrash:
        print(f"simulated crash after day index {args.die_after_day}; "
              f"checkpoint saved to {args.checkpoint} "
              f"(continue with --resume)")
        return SimulatedCrash.exit_code
    if study.resumed_from_day is not None:
        print(f"resumed from checkpoint at day index "
              f"{study.resumed_from_day}")
    dataset = results.dataset
    manifest = run_manifest(config)
    os.makedirs(args.out, exist_ok=True)

    dataset.dump_jsonl(os.path.join(args.out, "psrs.jsonl"),
                       manifest=manifest if args.trace else None)
    # metrics.jsonl rides with --trace only; its rows are deterministic
    # (timing gauges live in telemetry.jsonl), but its manifest header is
    # provenance, and plain runs keep the documented guarantee that
    # same-seed artifacts diff byte-identical.
    if args.trace and results.metrics is not None:
        results.metrics.write_jsonl(os.path.join(args.out, "metrics.jsonl"),
                                    manifest=manifest)
        results.metrics.write_telemetry_jsonl(
            os.path.join(args.out, "telemetry.jsonl"), manifest=manifest)

    with TRACER.span("analysis"):
        artifacts = _analysis_artifacts(args, results)
    for name, content in artifacts.items():
        with atomic_write(os.path.join(args.out, name)) as handle:
            handle.write(content + "\n")
    if args.trace:
        TRACER.dump_chrome_trace(os.path.join(args.out, "trace.json"),
                                 manifest=manifest)
        with atomic_write(os.path.join(args.out, "manifest.json")) as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(TRACER.render())
    print(artifacts["summary.txt"])
    extras = "psrs.jsonl" if not args.trace else \
        "psrs.jsonl, metrics.jsonl, telemetry.jsonl, trace.json, manifest.json"
    print(f"\nArtifacts written to {args.out}/ "
          f"({', '.join(sorted(artifacts))} + {extras})")
    ledger_path = _ledger_path(args)
    if ledger_path:
        record = RunLedger(ledger_path).append(build_study_record(
            config, results, wall_s=clock["wall_s"], stride=args.stride,
            jobs=args.jobs, preset=args.preset, profile=args.profile,
            fault_seed=args.fault_seed,
            # Fault-injected runs are their own kind: their headline
            # numbers must never blend into the clean study history.
            kind="study" if args.profile is None else "faulted",
        ))
        print(f"Ledger record {record['run_id']} appended to {ledger_path}")
    return 0


def _analysis_artifacts(args, results) -> dict:
    """Tables, figure, and summary for one completed study run."""
    dataset = results.dataset
    aggregates = DailyAggregates(dataset)

    table1_rows = vertical_table(dataset, aggregates)
    table1 = render_table(
        ["Vertical", "# PSRs", "# Doorways", "# Stores", "# Campaigns"],
        [[r.vertical, r.psrs, r.doorways, r.stores, r.campaigns] for r in table1_rows],
        title="Table 1",
    )
    brand_names = [b.name for b in results.world.brand_catalog.all()]
    table2_rows = campaign_table(dataset, results.archive, brand_names,
                                 aggregates=aggregates)
    table2_rows.sort(key=lambda r: -r.doorways)
    table2 = render_table(
        ["Campaign", "# Doorways", "# Stores", "# Brands", "Peak (days)"],
        [[r.campaign, r.doorways, r.stores, r.brands, r.peak_days] for r in table2_rows],
        title="Table 2",
    )
    table3_rows = seizure_table(dataset, results.crawler)
    table3 = render_table(
        ["Firm", "# Cases", "# Brands", "# Seized", "# Stores", "# Classified",
         "# Campaigns"],
        [[r.firm, r.cases, r.brands, r.seized_domains, r.observed_stores,
          r.classified_stores, r.campaigns] for r in table3_rows],
        title="Table 3",
    )
    fig3_lines = ["Figure 3 — % results poisoned (top-100)"]
    for vertical in dataset.verticals():
        extremes = sparkline_extremes(dataset, vertical, 100, aggregates)
        fig3_lines.append(
            sparkline_row(vertical, [v for _, v in extremes.series], width=40)
        )

    coverage = label_coverage(dataset)
    summary_lines = [
        f"PSRs: {len(dataset):,}",
        f"doorway domains: {len(dataset.doorway_hosts()):,}",
        f"stores: {len(dataset.store_hosts()):,}",
        f"'hacked' label coverage: {coverage.coverage:.2%}",
    ]
    if results.attribution is not None:
        summary_lines.append(
            f"attribution rate: {results.attribution.attribution_rate:.1%} "
            f"over {len(results.attribution.campaigns)} campaigns"
        )
    for stats in rotation_reactions(dataset):
        summary_lines.append(
            f"{stats.firm}: {stats.redirected_stores}/{stats.seized_stores} seized "
            f"stores redirected, {stats.mean_reaction_days:.0f}d mean reaction"
        )
    if results.supplier is not None:
        shipped = supplier_summary(results.supplier.scrape_all())
        summary_lines.append(
            f"supplier: {shipped.total_records:,} shipments, "
            f"{shipped.delivery_rate:.0%} delivered"
        )

    return {
        "table1.txt": table1,
        "table2.txt": table2,
        "table3.txt": table3,
        "figure3.txt": "\n".join(fig3_lines),
        "summary.txt": "\n".join(summary_lines),
    }


def command_ablations(args) -> int:
    if args.no_cache:
        set_caches_enabled(False)
    print(f"Running intervention ablations over a {args.days}-day window "
          f"(jobs={args.jobs})...", flush=True)
    outcomes = run_intervention_ablations(
        lambda: small_preset(days=args.days), jobs=args.jobs
    )
    baseline = outcomes[0]
    print(render_table(
        ["Policy", "Orders", "vs base", "Sales", "vs base", "PSRs", "Seized"],
        [[o.name, o.total_orders, f"{o.orders_vs(baseline):.2f}x",
          o.completed_sales, f"{o.sales_vs(baseline):.2f}x",
          o.psr_count, o.seized_domains] for o in outcomes],
    ))
    if args.json:
        payload = {
            "manifest": run_manifest(small_preset(days=args.days),
                                     jobs=args.jobs),
            "outcomes": [asdict(o) for o in outcomes],
        }
        with atomic_write(args.json) as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"\nOutcomes + manifest written to {args.json}")
    return 0


def command_perf(args) -> int:
    if args.no_cache:
        set_caches_enabled(False)
    _apply_disk_args(args)
    config = _config_for(args)
    print(f"Profiling {args.preset} preset "
          f"({len(config.verticals)} verticals, {len(config.window)} days, "
          f"jobs={args.jobs}, cache={'off' if args.no_cache else 'on'})...",
          flush=True)
    PERF.reset()
    StudyRun(
        config, crawl_policy=CrawlPolicy(stride_days=args.stride),
        n_jobs=args.jobs,
        jobs=args.jobs,
    ).execute()
    print(PERF.format_table(top=args.top))
    if args.json:
        PERF.dump_json(args.json, extra={"manifest": run_manifest(config)})
        print(f"\nPerf snapshot written to {args.json}")
    return 0


def command_trace(args) -> int:
    if args.no_cache:
        set_caches_enabled(False)
    _apply_disk_args(args)
    set_tracing_enabled(True)
    config = _config_for(args)
    print(f"Tracing {args.preset} preset "
          f"({len(config.verticals)} verticals, {len(config.window)} days, "
          f"cache={'off' if args.no_cache else 'on'})...", flush=True)
    start = perf_counter()
    results = StudyRun(
        config, crawl_policy=CrawlPolicy(stride_days=args.stride),
        n_jobs=args.jobs,
        jobs=args.jobs,
    ).execute()
    wall_s = perf_counter() - start
    manifest = run_manifest(config)
    print(TRACER.render(show_counters=args.counters))
    traced_s = TRACER.total_s()
    print(f"\ntraced {traced_s:.3f}s of {wall_s:.3f}s wall-clock "
          f"({traced_s / wall_s:.1%} coverage)")
    if args.sparklines and results.metrics is not None:
        print()
        print(results.metrics.render_sparklines())
        print()
        print(results.metrics.render_telemetry_sparklines())
    if args.json:
        TRACER.dump_chrome_trace(args.json, manifest=manifest)
        print(f"\nChrome trace written to {args.json} "
              f"(open in chrome://tracing or ui.perfetto.dev)")
    if args.metrics and results.metrics is not None:
        results.metrics.write_jsonl(args.metrics, manifest=manifest)
        print(f"Per-sim-day metrics written to {args.metrics}")
    if args.telemetry and results.metrics is not None:
        results.metrics.write_telemetry_jsonl(args.telemetry,
                                              manifest=manifest)
        print(f"Per-sim-day telemetry written to {args.telemetry}")
    return 0


def command_chaos(args) -> int:
    """Clean run vs fault-injected run of the same scenario.

    Asserts the resilience invariants the fault layer guarantees: the
    chaos run completes (no crash), the same fault seed reproduces
    byte-identical output, and the headline counts stay within
    ``--tolerance`` of the clean run — checked with the same band
    machinery the release gate uses (:func:`repro.obs.gate.check_bands`),
    the clean run acting as the baseline.  Exit 1 on any violation.
    """
    from repro.obs.gate import Band, check_bands
    from repro.obs.ledger import flatten

    if args.no_cache:
        set_caches_enabled(False)
    _apply_disk_args(args)
    profile = profile_named(args.profile)
    os.makedirs(args.out, exist_ok=True)

    def run_study(fault_profile=None):
        return StudyRun(
            _config_for(args),
            crawl_policy=CrawlPolicy(stride_days=args.stride),
            n_jobs=args.jobs,
            jobs=args.jobs,
            fault_profile=fault_profile,
            fault_seed=args.fault_seed,
        ).execute()

    config = _config_for(args)
    print(f"Chaos drill: {args.preset} preset, profile '{profile.name}' "
          f"(fault seed {args.fault_seed}, {len(config.window)} days)...",
          flush=True)
    with timed() as clean_clock:
        clean = run_study()
    counter_base = dict(PERF.counters())
    with timed() as chaos_clock:
        chaos = run_study(profile)
    fault_counters = {
        name: value - counter_base.get(name, 0)
        for name, value in sorted(PERF.counters().items())
        if name.startswith("faults.") and value != counter_base.get(name, 0)
    }

    clean.dataset.dump_jsonl(os.path.join(args.out, "psrs-clean.jsonl"))
    chaos.dataset.dump_jsonl(os.path.join(args.out, "psrs.jsonl"))
    if chaos.metrics is not None:
        chaos_manifest = run_manifest(config, fault_profile=profile.name,
                                      fault_seed=args.fault_seed)
        chaos.metrics.write_jsonl(
            os.path.join(args.out, "metrics.jsonl"), manifest=chaos_manifest)
        chaos.metrics.write_telemetry_jsonl(
            os.path.join(args.out, "telemetry.jsonl"),
            manifest=chaos_manifest)

    # The clean run is the baseline; the chaos run must stay inside the
    # tolerance bands.  Only the banded paths are enforced — the rest of
    # the headline tree rides along for the report.
    bands = [
        Band("psr.total", rel_tol=args.tolerance, abs_tol=2),
        Band("psr.doorways", rel_tol=args.tolerance, abs_tol=2),
        Band("psr.stores", rel_tol=args.tolerance, abs_tol=2),
    ]
    checks = check_bands(flatten(chaos.headline()),
                         flatten(clean.headline()), bands)
    print(render_drift_table(
        checks,
        title=f"Clean vs '{profile.name}' "
              f"(tolerance {args.tolerance:.0%})",
    ))
    print("\nFault counters (chaos run):")
    if fault_counters:
        for name, value in fault_counters.items():
            print(f"  {name:40s} {value:>8,}")
    else:
        print("  (none injected)")

    failures = []
    for check in checks:
        if check.status == "drift":
            failures.append(
                f"{check.path} deviates beyond tolerance: clean "
                f"{check.baseline:g}, chaos {check.current:g} "
                f"(allowed ±{check.allowed:g})"
            )
        elif check.status == "missing":
            failures.append(f"{check.path} missing from the chaos run")
    if not args.skip_verify:
        print("\nVerifying same-fault-seed determinism (repeat chaos run)...",
              flush=True)
        repeat = run_study(profile)
        repeat_path = os.path.join(args.out, "psrs-repeat.jsonl")
        repeat.dataset.dump_jsonl(repeat_path)
        with open(os.path.join(args.out, "psrs.jsonl"), "rb") as first:
            first_bytes = first.read()
        with open(repeat_path, "rb") as second:
            identical = second.read() == first_bytes
        os.unlink(repeat_path)
        if identical:
            print("  identical output: yes")
        else:
            failures.append("repeat chaos run with the same fault seed "
                            "produced different output")

    ledger_path = _ledger_path(args)
    if ledger_path:
        ledger = RunLedger(ledger_path)
        ledger.append(build_study_record(
            config, clean, wall_s=clean_clock["wall_s"], stride=args.stride,
            jobs=args.jobs, preset=args.preset, kind="study",
        ))
        record = ledger.append(build_study_record(
            config, chaos, wall_s=chaos_clock["wall_s"], stride=args.stride,
            jobs=args.jobs, preset=args.preset, kind="chaos",
            profile=profile.name, fault_seed=args.fault_seed,
        ))
        print(f"\nLedger records (clean + chaos, latest {record['run_id']}) "
              f"appended to {ledger_path}")

    if failures:
        for failure in failures:
            print(f"\nINVARIANT VIOLATED: {failure}")
        return 1
    print(f"\nAll resilience invariants hold; artifacts in {args.out}/")
    return 0


def command_gate(args) -> int:
    """Band the latest ledger record against the committed baseline.

    Exit 0 when every banded metric holds, 1 on drift (or a banded
    baseline metric the run lost), 2 on missing inputs (no ledger, no
    matching record, no baseline entry for the record's key).
    """
    ledger_path = _ledger_path(args)
    if not ledger_path:
        print(f"repro gate: no ledger (pass --ledger or set ${LEDGER_ENV})",
              file=sys.stderr)
        return 2
    ledger = RunLedger(ledger_path)
    record = ledger.latest(kind=args.kind, key=args.key)
    if record is None:
        print(f"repro gate: {ledger_path}: no matching run record",
              file=sys.stderr)
        return 2

    if args.update:
        existing = None
        if os.path.exists(args.baseline):
            existing = load_baseline(args.baseline)
        write_baseline(args.baseline, [record], existing=existing)
        print(f"baseline entry for {record['key']} "
              f"(run {record['run_id']}) written to {args.baseline}")
        return 0

    try:
        baseline = load_baseline(args.baseline)
    except FileNotFoundError:
        print(f"repro gate: {args.baseline}: no baseline file "
              f"(create one with --update)", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"repro gate: {exc}", file=sys.stderr)
        return 2
    result = run_gate(record, baseline)
    if result is None:
        print(f"repro gate: {args.baseline}: no baseline entry for key "
              f"{record['key']} (add one with --update)", file=sys.stderr)
        return 2

    verdict = "\n".join(result.verdict_lines())
    print(verdict)
    if args.verdict:
        with atomic_write(args.verdict) as handle:
            handle.write(verdict + "\n")

    report_parts = [render_drift_table(
        result.checks, title=f"Drift report for {record['key']} "
                             f"(run {record['run_id']})")]
    series = gate_history(ledger, result.checks, key=record["key"],
                          kind=record.get("kind"))
    report_parts.append(render_history(series))
    report = "\n\n".join(report_parts)
    if args.report:
        with atomic_write(args.report) as handle:
            handle.write(report + "\n")
        print(f"\nDrift report written to {args.report}")
    if not result.ok:
        print()
        print(report)
        return 1
    return 0


def command_history(args) -> int:
    """Ledger record list + per-metric trajectories."""
    ledger_path = _ledger_path(args)
    if not ledger_path:
        print(f"repro history: no ledger "
              f"(pass --ledger or set ${LEDGER_ENV})", file=sys.stderr)
        return 2
    ledger = RunLedger(ledger_path)
    records = ledger.records(kind=args.kind, key=args.key)
    if not records:
        print(f"repro history: {ledger_path}: no matching run records",
              file=sys.stderr)
        return 2
    shown = records[-args.limit:]
    rows = []
    for record in shown:
        manifest = record.get("manifest") or {}
        rows.append([
            record.get("run_id", "?"),
            record.get("kind", "?"),
            str(record.get("key", "?"))[:24],
            str(manifest.get("git_sha"))[:12],
            f"{record['wall_s']:.1f}s" if record.get("wall_s") else "-",
            manifest.get("created_at", "-"),
        ])
    print(render_table(
        ["Run", "Kind", "Key", "Git", "Wall", "Created"],
        rows, title=f"Ledger {ledger_path} "
                    f"({len(shown)} of {len(records)} records)",
    ))
    series = ledger.history(args.paths, kind=args.kind, key=args.key)
    series = {path: values[-args.limit:]
              for path, values in sorted(series.items()) if values}
    if series:
        print()
        print(render_history(series))
    return 0


def command_compare(args) -> int:
    """Metric-by-metric diff of two ledger records."""
    ledger_path = _ledger_path(args)
    if not ledger_path:
        print(f"repro compare: no ledger "
              f"(pass --ledger or set ${LEDGER_ENV})", file=sys.stderr)
        return 2
    ledger = RunLedger(ledger_path)
    try:
        record_a = ledger.find(args.ref_a)
        record_b = ledger.find(args.ref_b)
    except LookupError as exc:
        print(f"repro compare: {exc}", file=sys.stderr)
        return 2
    print(render_record_diff(record_a, record_b,
                             gate_metrics(record_a), gate_metrics(record_b)))
    return 0


def command_cache(args) -> int:
    """Stats / integrity check / clear for the persistent disk tier."""
    path = args.dir or os.environ.get("REPRO_DISK_CACHE")
    if not path:
        print("repro cache: no cache directory "
              "(pass --dir or set REPRO_DISK_CACHE)", file=sys.stderr)
        return 2
    if not os.path.isdir(path) and not args.clear:
        print(f"repro cache: {path}: no such directory", file=sys.stderr)
        return 2
    disk = DiskCache(path)
    if args.clear:
        removed = disk.clear()
        print(f"cleared {removed} entr{'y' if removed == 1 else 'ies'} "
              f"from {path}")
        return 0
    validation = None
    if args.validate:
        validation = disk.validate()
    stats = disk.stats()
    if args.json:
        payload = dict(stats)
        if validation is not None:
            payload["validation"] = validation
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        rows = [
            [name, c["entries"], f"{c['bytes'] / 1024:.0f} KiB",
             c["hits"], c["misses"],
             "-" if c["hit_rate"] is None else f"{c['hit_rate']:.0%}"]
            for name, c in sorted(stats["caches"].items())
        ]
        print(render_table(
            ["Cache", "Entries", "Size", "Hits", "Misses", "Hit rate"],
            rows, title=f"Disk cache at {stats['path']}",
        ))
        print(f"\ntotal: {stats['entries']} entries, "
              f"{stats['total_bytes'] / 1024 / 1024:.1f} MiB "
              f"(cap {stats['max_bytes'] / 1024 / 1024 / 1024:.1f} GiB), "
              f"{stats['quarantined']} quarantined")
        if validation is not None:
            print(f"validate: {validation['checked']} checked, "
                  f"{validation['ok']} ok, "
                  f"{validation['quarantined']} quarantined")
    if validation is not None and validation["quarantined"]:
        return 1
    return 0


def command_lint(args) -> int:
    from repro.lint.flow import all_flow_rules, deep_lint, flow_rule_codes, graph_dump
    from repro.lint.sarif import format_sarif

    flow_codes = set(flow_rule_codes())
    selected = args.select.split(",") if args.select else None
    deep_selected = None
    if selected is not None:
        selected = [code.strip() for code in selected if code.strip()]
        deep_selected = [code for code in selected if code in flow_codes]
        selected = [code for code in selected if code not in flow_codes]
        if deep_selected and not args.deep:
            print(
                f"repro lint: {','.join(deep_selected)} are interprocedural "
                "rules; add --deep to run them",
                file=sys.stderr,
            )
            return 2
    if args.graph and not args.deep:
        print("repro lint: --graph requires --deep", file=sys.stderr)
        return 2
    try:
        # select_rules treats an empty selection as "all rules", so when
        # the user picked only deep codes, bypass it with an empty list.
        if selected is not None and not selected and deep_selected:
            rules = []
        else:
            rules = select_rules(selected)
    except ValueError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    flow_rules = []
    if args.deep:
        flow_rules = list(all_flow_rules())
        if deep_selected is not None:
            flow_rules = [r for r in flow_rules if r.code in deep_selected]
    if args.list_rules:
        for rule in list(rules) + list(flow_rules):
            print(f"{rule.code}  {rule.name:24s} {rule.hint}")
        return 0
    try:
        report = lint_paths(args.paths, rules)
    except FileNotFoundError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    deep = None
    if args.deep:
        cache_dir = None if args.no_flow_cache else (
            args.flow_cache or ".repro_flow_cache"
        )
        try:
            deep = deep_lint(args.paths, cache_dir=cache_dir, rules=flow_rules)
        except FileNotFoundError as exc:
            print(f"repro lint: {exc}", file=sys.stderr)
            return 2
    ok = report.ok and (deep is None or deep.ok)
    if args.graph:
        print(json.dumps(graph_dump(deep.program, deep.stats), indent=2))
    elif args.fmt == "sarif":
        findings = list(report.findings) + (list(deep.findings) if deep else [])
        print(format_sarif(findings, list(rules) + list(flow_rules)))
    elif args.fmt == "json":
        print(format_json(report, deep))
    else:
        print(format_text(report, deep))
    if args.summary:
        write_summary(report, args.summary, deep)
    return 0 if ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return command_run(args)
    if args.command == "ablations":
        return command_ablations(args)
    if args.command == "perf":
        return command_perf(args)
    if args.command == "trace":
        return command_trace(args)
    if args.command == "chaos":
        return command_chaos(args)
    if args.command == "gate":
        return command_gate(args)
    if args.command == "history":
        return command_history(args)
    if args.command == "compare":
        return command_compare(args)
    if args.command == "cache":
        return command_cache(args)
    if args.command == "lint":
        return command_lint(args)
    return 2


if __name__ == "__main__":
    sys.exit(main())
