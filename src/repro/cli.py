"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run`` — execute the full study pipeline and write the measurement
  artifacts (PSR dataset, tables, sparklines, summary) to a directory;
* ``ablations`` — run the intervention-policy counterfactuals and print
  the comparison table;
* ``perf`` — run a study and print the hot-path timing breakdown from the
  always-on :data:`repro.util.perf.PERF` registry;
* ``trace`` — run a study with span tracing on and print the hierarchical
  phase tree (:mod:`repro.obs.trace`); ``--json`` exports Chrome/Perfetto
  ``trace_event`` JSON, ``--metrics`` the per-sim-day series;
* ``lint`` — run the determinism/concurrency static analyzer
  (:mod:`repro.lint`) over the given paths; exits non-zero on findings.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import asdict
from time import perf_counter
from typing import List, Optional

from repro.study import StudyRun
from repro.crawler import CrawlPolicy
from repro.ecosystem import paper_preset, small_preset
from repro.analysis import (
    DailyAggregates,
    campaign_table,
    label_coverage,
    rotation_reactions,
    run_intervention_ablations,
    seizure_table,
    sparkline_extremes,
    supplier_summary,
    vertical_table,
)
from repro.lint import (
    format_json,
    format_text,
    lint_paths,
    select_rules,
    write_summary,
)
from repro.obs.manifest import run_manifest
from repro.obs.trace import TRACER, set_tracing_enabled
from repro.perf.cache import set_caches_enabled
from repro.reporting import render_table, sparkline_row
from repro.util.perf import PERF


def _add_study_args(parser: argparse.ArgumentParser) -> None:
    """The scenario/knob options shared by run / perf / trace."""
    parser.add_argument("--preset", choices=("small", "paper"), default="small")
    parser.add_argument("--scale", type=float, default=0.05,
                        help="paper-preset census scale (ignored for small)")
    parser.add_argument("--terms", type=int, default=8,
                        help="monitored terms per vertical (paper preset)")
    parser.add_argument("--stride", type=int, default=3,
                        help="crawl stride, days")
    parser.add_argument("--seed", type=int, default=None, help="scenario seed")
    parser.add_argument("--jobs", type=int, default=1,
                        help="threads for classifier fits (same results any value)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the content-addressed caches "
                             "(bit-identical, slower)")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Search + Seizure' (IMC 2014)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run the study pipeline and write artifacts")
    _add_study_args(run)
    run.add_argument("--trace", action="store_true",
                     help="record span traces; writes trace.json + manifest.json "
                          "next to the artifacts and prints the phase tree")
    run.add_argument("--out", default="study-output", help="output directory")

    ablations = sub.add_parser("ablations", help="run intervention counterfactuals")
    ablations.add_argument("--days", type=int, default=70, help="window length")
    ablations.add_argument("--jobs", type=int, default=1,
                           help="worker processes, one variant each "
                                "(same outcomes, same order, any value)")
    ablations.add_argument("--no-cache", action="store_true",
                           help="disable the content-addressed caches")
    ablations.add_argument("--json", default=None, metavar="PATH",
                           help="write outcomes + run manifest as JSON")

    perf = sub.add_parser(
        "perf", help="run a study and print the hot-path perf breakdown"
    )
    _add_study_args(perf)
    perf.add_argument("--json", default=None, metavar="PATH",
                      help="also dump the registry snapshot as JSON")
    perf.add_argument("--top", type=int, default=None, metavar="N",
                      help="show only the N widest timers")

    trace = sub.add_parser(
        "trace", help="run a traced study and print the span tree"
    )
    _add_study_args(trace)
    trace.add_argument("--json", default=None, metavar="PATH",
                       help="write Chrome/Perfetto trace_event JSON "
                            "(open in chrome://tracing or ui.perfetto.dev)")
    trace.add_argument("--metrics", default=None, metavar="PATH",
                       help="write the per-sim-day metrics.jsonl series")
    trace.add_argument("--counters", action="store_true",
                       help="also show PERF counter deltas per span")
    trace.add_argument("--sparklines", action="store_true",
                       help="also print the per-sim-day series as sparklines")

    lint = sub.add_parser(
        "lint", help="run the determinism/concurrency static analyzer"
    )
    lint.add_argument("paths", nargs="*", default=["src"],
                      help="files or directories to lint (default: src)")
    lint.add_argument("--select", default=None, metavar="CODES",
                      help="comma-separated rule codes to run (default: all)")
    lint.add_argument("--format", choices=("text", "json"), default="text",
                      dest="fmt", help="output format")
    lint.add_argument("--summary", default=None, metavar="PATH",
                      help="write BENCH_lint.json-style summary counts")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule table and exit")
    return parser


def _config_for(args):
    if args.preset == "paper":
        kwargs = {"scale": args.scale, "terms_per_vertical": args.terms}
        if args.seed is not None:
            kwargs["seed"] = args.seed
        return paper_preset(**kwargs)
    if args.seed is not None:
        return small_preset(seed=args.seed)
    return small_preset()


def command_run(args) -> int:
    if args.no_cache:
        set_caches_enabled(False)
    if args.trace:
        set_tracing_enabled(True)
    config = _config_for(args)
    print(f"Running {args.preset} preset "
          f"({len(config.verticals)} verticals, "
          f"{len(config.all_campaign_specs())} campaigns, "
          f"{len(config.window)} days)...", flush=True)
    results = StudyRun(
        config, crawl_policy=CrawlPolicy(stride_days=args.stride),
        n_jobs=args.jobs,
    ).execute()
    dataset = results.dataset
    manifest = run_manifest(config)
    os.makedirs(args.out, exist_ok=True)

    dataset.dump_jsonl(os.path.join(args.out, "psrs.jsonl"),
                       manifest=manifest if args.trace else None)
    # metrics.jsonl rides with --trace only: its serve-µs column and
    # manifest header are timing/provenance data, and plain runs keep the
    # documented guarantee that same-seed artifacts diff byte-identical.
    if args.trace and results.metrics is not None:
        results.metrics.write_jsonl(os.path.join(args.out, "metrics.jsonl"),
                                    manifest=manifest)

    with TRACER.span("analysis"):
        artifacts = _analysis_artifacts(args, results)
    for name, content in artifacts.items():
        with open(os.path.join(args.out, name), "w") as handle:
            handle.write(content + "\n")
    if args.trace:
        TRACER.dump_chrome_trace(os.path.join(args.out, "trace.json"),
                                 manifest=manifest)
        with open(os.path.join(args.out, "manifest.json"), "w") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(TRACER.render())
    print(artifacts["summary.txt"])
    extras = "psrs.jsonl" if not args.trace else \
        "psrs.jsonl, metrics.jsonl, trace.json, manifest.json"
    print(f"\nArtifacts written to {args.out}/ "
          f"({', '.join(sorted(artifacts))} + {extras})")
    return 0


def _analysis_artifacts(args, results) -> dict:
    """Tables, figure, and summary for one completed study run."""
    dataset = results.dataset
    aggregates = DailyAggregates(dataset)

    table1_rows = vertical_table(dataset, aggregates)
    table1 = render_table(
        ["Vertical", "# PSRs", "# Doorways", "# Stores", "# Campaigns"],
        [[r.vertical, r.psrs, r.doorways, r.stores, r.campaigns] for r in table1_rows],
        title="Table 1",
    )
    brand_names = [b.name for b in results.world.brand_catalog.all()]
    table2_rows = campaign_table(dataset, results.archive, brand_names,
                                 aggregates=aggregates)
    table2_rows.sort(key=lambda r: -r.doorways)
    table2 = render_table(
        ["Campaign", "# Doorways", "# Stores", "# Brands", "Peak (days)"],
        [[r.campaign, r.doorways, r.stores, r.brands, r.peak_days] for r in table2_rows],
        title="Table 2",
    )
    table3_rows = seizure_table(dataset, results.crawler)
    table3 = render_table(
        ["Firm", "# Cases", "# Brands", "# Seized", "# Stores", "# Classified",
         "# Campaigns"],
        [[r.firm, r.cases, r.brands, r.seized_domains, r.observed_stores,
          r.classified_stores, r.campaigns] for r in table3_rows],
        title="Table 3",
    )
    fig3_lines = ["Figure 3 — % results poisoned (top-100)"]
    for vertical in dataset.verticals():
        extremes = sparkline_extremes(dataset, vertical, 100, aggregates)
        fig3_lines.append(
            sparkline_row(vertical, [v for _, v in extremes.series], width=40)
        )

    coverage = label_coverage(dataset)
    summary_lines = [
        f"PSRs: {len(dataset):,}",
        f"doorway domains: {len(dataset.doorway_hosts()):,}",
        f"stores: {len(dataset.store_hosts()):,}",
        f"'hacked' label coverage: {coverage.coverage:.2%}",
    ]
    if results.attribution is not None:
        summary_lines.append(
            f"attribution rate: {results.attribution.attribution_rate:.1%} "
            f"over {len(results.attribution.campaigns)} campaigns"
        )
    for stats in rotation_reactions(dataset):
        summary_lines.append(
            f"{stats.firm}: {stats.redirected_stores}/{stats.seized_stores} seized "
            f"stores redirected, {stats.mean_reaction_days:.0f}d mean reaction"
        )
    if results.supplier is not None:
        shipped = supplier_summary(results.supplier.scrape_all())
        summary_lines.append(
            f"supplier: {shipped.total_records:,} shipments, "
            f"{shipped.delivery_rate:.0%} delivered"
        )

    return {
        "table1.txt": table1,
        "table2.txt": table2,
        "table3.txt": table3,
        "figure3.txt": "\n".join(fig3_lines),
        "summary.txt": "\n".join(summary_lines),
    }


def command_ablations(args) -> int:
    if args.no_cache:
        set_caches_enabled(False)
    print(f"Running intervention ablations over a {args.days}-day window "
          f"(jobs={args.jobs})...", flush=True)
    outcomes = run_intervention_ablations(
        lambda: small_preset(days=args.days), jobs=args.jobs
    )
    baseline = outcomes[0]
    print(render_table(
        ["Policy", "Orders", "vs base", "Sales", "vs base", "PSRs", "Seized"],
        [[o.name, o.total_orders, f"{o.orders_vs(baseline):.2f}x",
          o.completed_sales, f"{o.sales_vs(baseline):.2f}x",
          o.psr_count, o.seized_domains] for o in outcomes],
    ))
    if args.json:
        payload = {
            "manifest": run_manifest(small_preset(days=args.days),
                                     jobs=args.jobs),
            "outcomes": [asdict(o) for o in outcomes],
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"\nOutcomes + manifest written to {args.json}")
    return 0


def command_perf(args) -> int:
    if args.no_cache:
        set_caches_enabled(False)
    config = _config_for(args)
    print(f"Profiling {args.preset} preset "
          f"({len(config.verticals)} verticals, {len(config.window)} days, "
          f"jobs={args.jobs}, cache={'off' if args.no_cache else 'on'})...",
          flush=True)
    PERF.reset()
    StudyRun(
        config, crawl_policy=CrawlPolicy(stride_days=args.stride),
        n_jobs=args.jobs,
    ).execute()
    print(PERF.format_table(top=args.top))
    if args.json:
        PERF.dump_json(args.json, extra={"manifest": run_manifest(config)})
        print(f"\nPerf snapshot written to {args.json}")
    return 0


def command_trace(args) -> int:
    if args.no_cache:
        set_caches_enabled(False)
    set_tracing_enabled(True)
    config = _config_for(args)
    print(f"Tracing {args.preset} preset "
          f"({len(config.verticals)} verticals, {len(config.window)} days, "
          f"cache={'off' if args.no_cache else 'on'})...", flush=True)
    start = perf_counter()
    results = StudyRun(
        config, crawl_policy=CrawlPolicy(stride_days=args.stride),
        n_jobs=args.jobs,
    ).execute()
    wall_s = perf_counter() - start
    manifest = run_manifest(config)
    print(TRACER.render(show_counters=args.counters))
    traced_s = TRACER.total_s()
    print(f"\ntraced {traced_s:.3f}s of {wall_s:.3f}s wall-clock "
          f"({traced_s / wall_s:.1%} coverage)")
    if args.sparklines and results.metrics is not None:
        print()
        print(results.metrics.render_sparklines())
    if args.json:
        TRACER.dump_chrome_trace(args.json, manifest=manifest)
        print(f"\nChrome trace written to {args.json} "
              f"(open in chrome://tracing or ui.perfetto.dev)")
    if args.metrics and results.metrics is not None:
        results.metrics.write_jsonl(args.metrics, manifest=manifest)
        print(f"Per-sim-day metrics written to {args.metrics}")
    return 0


def command_lint(args) -> int:
    try:
        rules = select_rules(args.select.split(",") if args.select else None)
    except ValueError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    if args.list_rules:
        for rule in rules:
            print(f"{rule.code}  {rule.name:24s} {rule.hint}")
        return 0
    try:
        report = lint_paths(args.paths, rules)
    except FileNotFoundError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    if args.fmt == "json":
        print(format_json(report))
    else:
        print(format_text(report))
    if args.summary:
        write_summary(report, args.summary)
    return 0 if report.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return command_run(args)
    if args.command == "ablations":
        return command_ablations(args)
    if args.command == "perf":
        return command_perf(args)
    if args.command == "trace":
        return command_trace(args)
    if args.command == "lint":
        return command_lint(args)
    return 2


if __name__ == "__main__":
    sys.exit(main())
