"""Crash-safe per-sim-day checkpoints of the whole study state.

The simulator, its observers (crawler, orderer, metrics recorder), and
everything they reference — the world, the engine caches, the RNG streams
— form one object graph; pickling them together in a single payload
preserves every shared reference, so a resumed run is the *same* program
state, not a reconstruction.  Checkpoints are written through
:func:`repro.util.atomicio.atomic_write`: a kill mid-save leaves the
previous complete checkpoint.

``repro run --resume`` (and :class:`repro.study.StudyRun` with
``resume=True``) loads the newest checkpoint, verifies the scenario
config digest and a recomputed state digest, and continues the day loop —
producing final artifacts byte-identical to an uninterrupted run
(pinned in ``tests/test_faults.py``).

:class:`SimulatedCrash` gives tests and CI a deterministic kill: the
checkpointer raises it right after persisting the configured day, which
sidesteps flaky subprocess-kill timing entirely.
"""

from __future__ import annotations

import os
import pickle
from hashlib import blake2b
from typing import List, Optional, Sequence, Tuple

from repro.obs.manifest import config_digest, run_manifest
from repro.util.atomicio import atomic_write
from repro.util.perf import PERF

#: Checkpoint payload schema, bumped on layout changes.
CHECKPOINT_SCHEMA = 1


class CheckpointError(RuntimeError):
    """A checkpoint exists but cannot be resumed from."""


class SimulatedCrash(RuntimeError):
    """Deterministic kill raised after checkpointing ``--die-after-day``."""

    #: Process exit code the CLI maps this to.
    exit_code = 3


def state_digest(simulator, observers: Sequence[object]) -> str:
    """A cheap fingerprint of resumable study state.

    Covers the simulation clock, the traffic RNG's full state, and each
    observer's progress counters.  Recomputed after load and compared to
    the value recorded at save time, it catches state that silently fails
    to round-trip through pickle (a ``__getstate__`` that drops a field).
    """
    parts: List[str] = []
    today = getattr(simulator.world, "today", None)
    parts.append(today.isoformat() if today is not None else "")
    parts.append(str(simulator._traffic_rng.getstate()))
    for observer in observers:
        parts.append(type(observer).__name__)
        dataset = getattr(observer, "dataset", None)
        records = getattr(dataset, "records", None)
        if records is not None:
            parts.append(str(len(records)))
            if records:
                parts.append(records[-1].to_json())
        total = getattr(observer, "total_orders_created", None)
        if total is not None:
            parts.append(str(total))
    digest = blake2b(digest_size=8)
    for part in parts:
        digest.update(part.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


class Checkpointer:
    """Persists the (simulator, observers) graph at day boundaries."""

    def __init__(
        self,
        path: str,
        config,
        every_days: int = 1,
        die_after_day: Optional[int] = None,
    ):
        self.path = path
        self.config = config
        self.config_digest = config_digest(config)
        self.every_days = max(1, every_days)
        #: When set, raise :class:`SimulatedCrash` after checkpointing this
        #: 0-based day index (testing/CI hook).
        self.die_after_day = die_after_day
        self.saves = 0
        self.last_digest: Optional[str] = None

    def on_day_complete(self, simulator, observers, day_index: int, day) -> None:
        """Called by the simulator after every completed sim day."""
        dying = self.die_after_day is not None and day_index >= self.die_after_day
        total_days = len(simulator.world.window)
        due = (day_index + 1) % self.every_days == 0
        if due or dying or day_index == total_days - 1:
            self.save(simulator, observers, day_index, day)
        if dying:
            raise SimulatedCrash(
                f"simulated crash after sim day {day_index} ({day.isoformat()})"
            )

    def save(self, simulator, observers, day_index: int, day) -> None:
        digest = state_digest(simulator, observers)
        payload = {
            "schema": CHECKPOINT_SCHEMA,
            "config_digest": self.config_digest,
            "day_index": day_index,
            "day": day.isoformat(),
            "state_digest": digest,
            # The standard provenance block, extended with where and what
            # this checkpoint captured.
            "manifest": run_manifest(
                self.config, checkpoint_day_index=day_index, state_digest=digest
            ),
            "simulator": simulator,
            "observers": list(observers),
        }
        with atomic_write(self.path, "wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        self.saves += 1
        self.last_digest = digest
        PERF.count("faults.checkpoint.saved")

    def clear(self) -> None:
        """Remove the checkpoint after a successful complete run."""
        if os.path.exists(self.path):
            os.unlink(self.path)


def load_checkpoint(path: str, config) -> Tuple[object, List[object], int, dict]:
    """Load and verify a checkpoint.

    Returns ``(simulator, observers, next_day_index, manifest)``.  Raises
    :class:`CheckpointError` when the file belongs to a different scenario
    config, uses a different schema, or its state fails digest verification
    after unpickling.
    """
    with open(path, "rb") as handle:
        payload = pickle.load(handle)
    schema = payload.get("schema")
    if schema != CHECKPOINT_SCHEMA:
        raise CheckpointError(
            f"checkpoint schema {schema!r} != supported {CHECKPOINT_SCHEMA}"
        )
    expected = config_digest(config)
    if payload["config_digest"] != expected:
        raise CheckpointError(
            f"checkpoint was written for config {payload['config_digest']}, "
            f"not {expected} — refusing to resume a different scenario"
        )
    simulator = payload["simulator"]
    observers = payload["observers"]
    recomputed = state_digest(simulator, observers)
    if recomputed != payload["state_digest"]:
        raise CheckpointError(
            f"state digest mismatch after load: saved {payload['state_digest']}, "
            f"recomputed {recomputed} — checkpointed state did not round-trip"
        )
    for observer in observers:
        rebase = getattr(observer, "rebase", None)
        if callable(rebase):
            # e.g. MetricsRecorder: PERF deltas must restart from the new
            # process's registry, not the dead process's totals.
            rebase()
    PERF.count("faults.checkpoint.loaded")
    return simulator, observers, payload["day_index"] + 1, payload["manifest"]
