"""Crash-safe per-sim-day checkpoints of the whole study state.

The simulator, its observers (crawler, orderer, metrics recorder), and
everything they reference — the world, the engine caches, the RNG streams
— form one object graph; pickling them together in a single payload
preserves every shared reference, so a resumed run is the *same* program
state, not a reconstruction.

Persisting that payload whole every day is wasteful: consecutive days
share almost all of their bytes.  A checkpoint is therefore a *directory*
holding a content-addressed chunk store plus one small manifest per saved
day.  The pickled payload is split with content-defined chunking —
boundaries anchored on the pickle ``MEMOIZE``-then-``\\x00`` byte pair,
which recurs every few KB of any large pickle stream regardless of how
memo indices renumbered between days — so unchanged regions of
consecutive payloads hash to the same chunks and are stored once,
zlib-compressed.  Measured on the small preset at ``--checkpoint-every
1``, the store holds ~20% of the bytes the old one-pickle-per-day format
wrote, while reassembly stays byte-identical.

Write ordering makes a kill at any instant safe: chunks first, then the
day manifest, then ``HEAD`` (each file through
:func:`repro.util.atomicio.atomic_write`) — a torn save leaves the
previous complete checkpoint behind ``HEAD``.  Every few saves the store
is compacted: manifests older than ``HEAD`` and chunks nothing references
are pruned, bounding the directory to roughly one payload plus the
recent deltas.  Day manifests carry a chained digest
(``H(prev_chain, payload_digest)``) so the surviving lineage is
tamper-evident across saves and resumes.

``repro run --resume`` (and :class:`repro.study.StudyRun` with
``resume=True``) loads ``HEAD``, reassembles the payload, verifies the
payload digest, the scenario config digest, and a recomputed state
digest, and continues the day loop — producing final artifacts
byte-identical to an uninterrupted run (pinned in
``tests/test_faults.py``), at any ``--jobs`` level on either side of the
crash.

:class:`SimulatedCrash` gives tests and CI a deterministic kill: the
checkpointer raises it right after persisting the configured day, which
sidesteps flaky subprocess-kill timing entirely.
"""

from __future__ import annotations

import json
import os
import pickle
import re
import shutil
import zlib
from hashlib import blake2b
from typing import List, Optional, Sequence, Tuple

from repro.obs.manifest import config_digest, run_manifest
from repro.util.atomicio import atomic_write
from repro.util.perf import PERF

#: Checkpoint layout schema, bumped on layout changes.  Schema 1 was a
#: single whole-graph pickle file; 2 is the chunked delta directory.
CHECKPOINT_SCHEMA = 2

#: Chunk-boundary anchor: pickle's MEMOIZE opcode followed by a zero
#: byte.  Dense (~every 4-5 KB in study payloads), cheap to find at C
#: speed, and insensitive to the memo-index renumbering that shifts raw
#: byte offsets between otherwise-similar pickles.
_ANCHOR = re.compile(rb"\x94\x00")
_MIN_CHUNK = 512
_MAX_CHUNK = 65536

#: Prune unreferenced chunks / stale manifests every this many saves.
_COMPACT_EVERY = 7


class CheckpointError(RuntimeError):
    """A checkpoint exists but cannot be resumed from."""


class SimulatedCrash(RuntimeError):
    """Deterministic kill raised after checkpointing ``--die-after-day``."""

    #: Process exit code the CLI maps this to.
    exit_code = 3


def chunk_spans(data: bytes) -> List[Tuple[int, int]]:
    """Content-defined ``(start, end)`` spans covering ``data``.

    Each chunk ends at the first anchor match past ``_MIN_CHUNK`` bytes
    (or at ``_MAX_CHUNK``), so an insertion or deletion only redraws the
    boundaries of the chunks it touches — downstream chunks re-align on
    the next anchor and hash identically to yesterday's."""
    spans: List[Tuple[int, int]] = []
    start = 0
    n = len(data)
    while start < n:
        limit = min(start + _MAX_CHUNK, n)
        match = _ANCHOR.search(data, start + _MIN_CHUNK, limit)
        end = match.end() if match is not None else limit
        spans.append((start, end))
        start = end
    return spans


def state_digest(simulator, observers: Sequence[object]) -> str:
    """A cheap fingerprint of resumable study state.

    Covers the simulation clock, the traffic RNG's full state, and each
    observer's progress counters.  Recomputed after load and compared to
    the value recorded at save time, it catches state that silently fails
    to round-trip through pickle (a ``__getstate__`` that drops a field).
    """
    parts: List[str] = []
    today = getattr(simulator.world, "today", None)
    parts.append(today.isoformat() if today is not None else "")
    parts.append(str(simulator._traffic_rng.getstate()))
    for observer in observers:
        parts.append(type(observer).__name__)
        dataset = getattr(observer, "dataset", None)
        records = getattr(dataset, "records", None)
        if records is not None:
            parts.append(str(len(records)))
            if records:
                parts.append(records[-1].to_json())
        total = getattr(observer, "total_orders_created", None)
        if total is not None:
            parts.append(str(total))
    digest = blake2b(digest_size=8)
    for part in parts:
        digest.update(part.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


class Checkpointer:
    """Persists the (simulator, observers) graph at day boundaries."""

    def __init__(
        self,
        path: str,
        config,
        every_days: int = 1,
        die_after_day: Optional[int] = None,
    ):
        self.path = path
        self.config = config
        self.config_digest = config_digest(config)
        self.every_days = max(1, every_days)
        #: When set, raise :class:`SimulatedCrash` after checkpointing this
        #: 0-based day index (testing/CI hook).
        self.die_after_day = die_after_day
        self.saves = 0
        self.compactions = 0
        self.last_digest: Optional[str] = None
        #: Running digest chain; a fresh Checkpointer over an existing
        #: store (a resumed run) continues the surviving lineage.
        self.chain = self._head_chain()
        #: Accounting for ``BENCH_study.json``'s ``disk`` block: what the
        #: old format would have written vs what this one did.
        self.payload_bytes_total = 0
        self.bytes_written = 0
        self.chunks_written = 0
        self.chunks_reused = 0

    # ---------------------------------------------------------------- #
    # Store layout helpers
    # ---------------------------------------------------------------- #

    def _chunk_dir(self) -> str:
        return os.path.join(self.path, "chunks")

    def _head_path(self) -> str:
        return os.path.join(self.path, "HEAD")

    def _day_manifest_path(self, day_index: int) -> str:
        return os.path.join(self.path, f"day-{day_index:05d}.json")

    def _head_chain(self) -> str:
        head = _read_json(self._head_path())
        if head is None:
            return ""
        return str(head.get("chain_digest", ""))

    # ---------------------------------------------------------------- #
    # Day-boundary hook
    # ---------------------------------------------------------------- #

    def on_day_complete(self, simulator, observers, day_index: int, day) -> None:
        """Called by the simulator after every completed sim day."""
        dying = self.die_after_day is not None and day_index >= self.die_after_day
        total_days = len(simulator.world.window)
        due = (day_index + 1) % self.every_days == 0
        if due or dying or day_index == total_days - 1:
            self.save(simulator, observers, day_index, day)
        if dying:
            raise SimulatedCrash(
                f"simulated crash after sim day {day_index} ({day.isoformat()})"
            )

    def save(self, simulator, observers, day_index: int, day) -> None:
        digest = state_digest(simulator, observers)
        payload = {
            "schema": CHECKPOINT_SCHEMA,
            "config_digest": self.config_digest,
            "day_index": day_index,
            "day": day.isoformat(),
            "state_digest": digest,
            # The standard provenance block, extended with where and what
            # this checkpoint captured.
            "manifest": run_manifest(
                self.config, checkpoint_day_index=day_index, state_digest=digest
            ),
            "simulator": simulator,
            "observers": list(observers),
        }
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        payload_digest = blake2b(blob, digest_size=16).hexdigest()
        self.payload_bytes_total += len(blob)

        chunk_dir = self._chunk_dir()
        os.makedirs(chunk_dir, exist_ok=True)
        chunk_digests: List[str] = []
        for start, end in chunk_spans(blob):
            chunk = blob[start:end]
            hexdigest = blake2b(chunk, digest_size=16).hexdigest()
            chunk_digests.append(hexdigest)
            chunk_path = os.path.join(chunk_dir, hexdigest + ".z")
            if os.path.exists(chunk_path):
                self.chunks_reused += 1
                continue
            compressed = zlib.compress(chunk, 6)
            with atomic_write(chunk_path, "wb") as handle:
                handle.write(compressed)
            self.chunks_written += 1
            self.bytes_written += len(compressed)

        self.chain = blake2b(
            (self.chain + payload_digest).encode("ascii"), digest_size=16
        ).hexdigest()
        day_manifest = {
            "schema": CHECKPOINT_SCHEMA,
            "config_digest": self.config_digest,
            "day_index": day_index,
            "day": day.isoformat(),
            "state_digest": digest,
            "payload_digest": payload_digest,
            "payload_bytes": len(blob),
            "chain_digest": self.chain,
            "chunks": chunk_digests,
        }
        manifest_blob = json.dumps(day_manifest, indent=2, sort_keys=True)
        with atomic_write(self._day_manifest_path(day_index)) as handle:
            handle.write(manifest_blob)
            handle.write("\n")
        self.bytes_written += len(manifest_blob) + 1
        # HEAD last: everything it points at is already durable, so a kill
        # anywhere above leaves the previous HEAD's checkpoint complete.
        head = {
            "schema": CHECKPOINT_SCHEMA,
            "day_index": day_index,
            "manifest": os.path.basename(self._day_manifest_path(day_index)),
            "chain_digest": self.chain,
        }
        with atomic_write(self._head_path()) as handle:
            json.dump(head, handle, indent=2, sort_keys=True)
            handle.write("\n")

        self.saves += 1
        self.last_digest = digest
        PERF.count("faults.checkpoint.saved")
        if self.saves % _COMPACT_EVERY == 0:
            self.compact()

    def compact(self) -> int:
        """Prune manifests behind ``HEAD`` and chunks nothing references.

        Safe at any time: HEAD's manifest and chunks are never touched,
        and everything removed is re-creatable (older days are not
        resumable-to anyway — resume always continues from HEAD).
        Returns the number of files removed."""
        head = _read_json(self._head_path())
        if head is None:
            return 0
        keep_manifest = head.get("manifest")
        referenced: set = set()
        removed = 0
        for name in sorted(os.listdir(self.path)):
            if not (name.startswith("day-") and name.endswith(".json")):
                continue
            if name == keep_manifest:
                manifest = _read_json(os.path.join(self.path, name))
                if manifest is not None:
                    referenced.update(manifest.get("chunks", ()))
                continue
            try:
                os.unlink(os.path.join(self.path, name))
                removed += 1
            except OSError:
                pass
        chunk_dir = self._chunk_dir()
        try:
            chunk_files = sorted(os.listdir(chunk_dir))
        except OSError:
            chunk_files = []
        for name in chunk_files:
            if name.endswith(".z") and name[:-2] not in referenced:
                try:
                    os.unlink(os.path.join(chunk_dir, name))
                    removed += 1
                except OSError:
                    pass
        self.compactions += 1
        PERF.count("faults.checkpoint.compacted")
        return removed

    def clear(self) -> None:
        """Remove the checkpoint after a successful complete run."""
        if os.path.isdir(self.path):
            # Refuse to rmtree anything that is not recognisably ours.
            if not (
                os.path.exists(self._head_path())
                or os.path.isdir(self._chunk_dir())
            ):
                raise CheckpointError(
                    f"refusing to remove {self.path!r}: not a checkpoint store"
                )
            shutil.rmtree(self.path, ignore_errors=True)
        elif os.path.exists(self.path):
            # Schema-1 leftover: a single pickle file.
            os.unlink(self.path)

    def stats(self) -> dict:
        """Delta-store accounting for benchmarks and docs."""
        return {
            "saves": self.saves,
            "compactions": self.compactions,
            "payload_bytes_total": self.payload_bytes_total,
            "bytes_written": self.bytes_written,
            "chunks_written": self.chunks_written,
            "chunks_reused": self.chunks_reused,
            "delta_ratio": (
                self.bytes_written / self.payload_bytes_total
                if self.payload_bytes_total
                else None
            ),
        }


def _read_json(path: str) -> Optional[dict]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            value = json.load(handle)
    except (OSError, ValueError):
        return None
    return value if isinstance(value, dict) else None


def load_checkpoint(path: str, config) -> Tuple[object, List[object], int, dict]:
    """Load and verify a checkpoint.

    Returns ``(simulator, observers, next_day_index, manifest)``.  Raises
    :class:`CheckpointError` when the store belongs to a different
    scenario config, uses a different schema, is missing or corrupt, or
    its state fails digest verification after unpickling.
    """
    if os.path.isfile(path):
        # A schema-1 single-pickle checkpoint (or something else entirely).
        try:
            with open(path, "rb") as handle:
                legacy = pickle.load(handle)
            schema = legacy.get("schema") if isinstance(legacy, dict) else None
        except Exception:
            schema = None
        raise CheckpointError(
            f"checkpoint schema {schema!r} != supported {CHECKPOINT_SCHEMA}"
        )
    head = _read_json(os.path.join(path, "HEAD"))
    if head is None:
        raise CheckpointError(f"no checkpoint HEAD under {path!r}")
    if head.get("schema") != CHECKPOINT_SCHEMA:
        raise CheckpointError(
            f"checkpoint schema {head.get('schema')!r} != supported "
            f"{CHECKPOINT_SCHEMA}"
        )
    manifest_name = head.get("manifest", "")
    day_manifest = _read_json(os.path.join(path, str(manifest_name)))
    if day_manifest is None:
        raise CheckpointError(
            f"checkpoint HEAD points at missing manifest {manifest_name!r}"
        )
    expected = config_digest(config)
    if day_manifest.get("config_digest") != expected:
        raise CheckpointError(
            f"checkpoint was written for config "
            f"{day_manifest.get('config_digest')}, not {expected} — refusing "
            f"to resume a different scenario"
        )
    chunk_dir = os.path.join(path, "chunks")
    pieces: List[bytes] = []
    for hexdigest in day_manifest.get("chunks", ()):
        chunk_path = os.path.join(chunk_dir, hexdigest + ".z")
        try:
            with open(chunk_path, "rb") as handle:
                chunk = zlib.decompress(handle.read())
        except (OSError, zlib.error) as exc:
            raise CheckpointError(
                f"checkpoint chunk {hexdigest} unreadable: {exc}"
            ) from exc
        if blake2b(chunk, digest_size=16).hexdigest() != hexdigest:
            raise CheckpointError(
                f"checkpoint chunk {hexdigest} failed its digest"
            )
        pieces.append(chunk)
    blob = b"".join(pieces)
    if blake2b(blob, digest_size=16).hexdigest() != day_manifest.get("payload_digest"):
        raise CheckpointError(
            "reassembled checkpoint payload failed its digest — "
            "the chunk store is incomplete or damaged"
        )
    payload = pickle.loads(blob)
    simulator = payload["simulator"]
    observers = payload["observers"]
    recomputed = state_digest(simulator, observers)
    if recomputed != payload["state_digest"]:
        raise CheckpointError(
            f"state digest mismatch after load: saved {payload['state_digest']}, "
            f"recomputed {recomputed} — checkpointed state did not round-trip"
        )
    for observer in observers:
        rebase = getattr(observer, "rebase", None)
        if callable(rebase):
            # e.g. MetricsRecorder: PERF deltas must restart from the new
            # process's registry, not the dead process's totals.
            rebase()
    PERF.count("faults.checkpoint.loaded")
    return simulator, observers, payload["day_index"] + 1, payload["manifest"]
