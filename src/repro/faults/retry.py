"""Retry policy: bounded backoff, per-day budget, per-host circuit breaker.

:class:`ResilientFetcher` wraps :meth:`repro.web.hosting.Web.fetch` for
the measurement side of the pipeline (Dagger, VanGogh, landing fetches).
When the web carries no :class:`~repro.faults.injector.FaultInjector` it
is a zero-cost pass-through — clean runs stay byte-identical to runs
without the fault layer.  Under injection it:

* asks the injector for pre-fetch faults (timeout / connection error /
  IP-block window) and synthesizes the failed :class:`Response` without
  touching the simulated web, so ground truth never observes the fault;
* retries transient faults up to ``max_attempts`` with capped, jittered
  exponential backoff — *simulated* seconds accumulated on
  :attr:`simulated_backoff_s`, never ``time.sleep`` (lint rule D009
  enforces both the bound and the sleep ban tree-wide);
* spends retries from a per-sim-day budget, and opens a per-host circuit
  breaker after repeated failures so a blocked host stops eating the
  budget until its cooldown (in sim days) expires.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional

from repro.util.perf import PERF
from repro.util.rng import derive_seed
from repro.util.simtime import SimDate
from repro.web.fetch import Response, STATUS_UNREACHABLE, VisitorProfile
from repro.web.urls import parse_url
from repro.faults.injector import FAULT_IP_BLOCK, TRANSIENT_FAULTS

#: Synthetic fault tag for fetches refused by an open circuit breaker.
FAULT_CIRCUIT_OPEN = "circuit-open"


@dataclass(frozen=True)
class RetryPolicy:
    """Knobs of the measurement crawler's retry discipline."""

    #: Total attempts per fetch (first try included); always bounded.
    max_attempts: int = 3
    #: First backoff, simulated seconds; doubles per attempt.
    base_backoff_s: float = 2.0
    #: Ceiling on a single backoff, simulated seconds.
    backoff_cap_s: float = 60.0
    #: Jitter fraction: backoff is scaled by uniform [1, 1 + jitter].
    jitter: float = 0.5
    #: Retries allowed per sim day across all hosts.
    per_day_retry_budget: int = 500
    #: Consecutive failed fetches before a host's breaker opens.
    breaker_threshold: int = 4
    #: Sim days a tripped breaker stays open.
    breaker_cooldown_days: int = 2


class ResilientFetcher:
    """Fault-aware fetch wrapper for the measurement crawlers."""

    def __init__(self, web, policy: Optional[RetryPolicy] = None,
                 rng: Optional[random.Random] = None):
        self.web = web
        self.policy = policy or RetryPolicy()
        # Jitter stream: seed-derived, consumed only when a fault actually
        # fires, so clean runs draw nothing and stay byte-identical.
        # repro: allow-D001 seed derives from the stream-registry hash of a fixed path; only jitter (never simulation state) reads it
        self._rng = rng or random.Random(derive_seed(0, "faults", "retry-jitter"))
        #: Simulated seconds spent backing off (reporting only).
        self.simulated_backoff_s = 0.0
        self._failures: Dict[str, int] = {}
        self._breaker_open_until: Dict[str, int] = {}
        self._day_ordinal: Optional[int] = None
        self._retries_today = 0

    # ------------------------------------------------------------------ #

    def fetch(self, url: str, profile: VisitorProfile, day) -> Response:
        """Fetch with injection, retries, and breaker — same signature as
        :meth:`Web.fetch`, so detectors take it as a drop-in fetcher."""
        injector = getattr(self.web, "fault_injector", None)
        if injector is None:
            return self.web.fetch(url, profile, day)
        day = SimDate(day)
        if day.ordinal != self._day_ordinal:
            self._day_ordinal = day.ordinal
            self._retries_today = 0
        host = parse_url(url).host
        if self._breaker_refuses(host, day):
            PERF.count("faults.breaker.short_circuit")  # repro: allow-D101 ablation workers reset+merge PERF wholesale; shard workers use _TaskFetcher, never this fetcher
            return Response(
                status=STATUS_UNREACHABLE, url=url, final_url=url,
                fault=FAULT_CIRCUIT_OPEN,
            )
        policy = self.policy
        response: Optional[Response] = None
        for attempt in range(max(1, policy.max_attempts)):
            response = self._attempt(url, profile, day, attempt, injector)
            fault = response.fault
            if fault not in TRANSIENT_FAULTS:
                # Success, degraded-but-delivered content, or an organic
                # failure (404/502) a retry cannot cure.
                self._failures.pop(host, None)
                return response
            if fault == FAULT_IP_BLOCK:
                # The whole window is blocked; retrying today is futile.
                break
            if attempt + 1 >= policy.max_attempts:
                break
            if self._retries_today >= policy.per_day_retry_budget:
                PERF.count("faults.retry.budget_exhausted")  # repro: allow-D101 ablation workers reset+merge PERF wholesale; shard workers use _TaskFetcher, never this fetcher
                break
            self._retries_today += 1
            PERF.count("faults.retried")  # repro: allow-D101 ablation workers reset+merge PERF wholesale; shard workers use _TaskFetcher, never this fetcher
            backoff = min(
                policy.backoff_cap_s, policy.base_backoff_s * (2.0 ** attempt)
            )
            self.simulated_backoff_s += backoff * (
                1.0 + policy.jitter * self._rng.random()
            )
        assert response is not None
        self._note_failure(host, day)
        PERF.count("faults.gave_up")  # repro: allow-D101 ablation workers reset+merge PERF wholesale; shard workers use _TaskFetcher, never this fetcher
        return response

    #: Bound-method alias so a fetcher can stand in where a ``web`` is
    #: only used for ``.fetch`` — kept for call-site symmetry.
    __call__ = fetch

    # ------------------------------------------------------------------ #

    def _attempt(self, url, profile, day, attempt, injector) -> Response:
        kind = injector.fetch_fault(url, profile, day, attempt)
        if kind is not None:
            return Response(status=STATUS_UNREACHABLE, url=url, final_url=url,
                            fault=kind)
        response = self.web.fetch(url, profile, day)
        if response.ok and response.html:
            html, kind = injector.corrupt_html(response.html, url, day)
            if kind is not None:
                response.html = html
                response.fault = kind
        return response

    def _breaker_refuses(self, host: str, day: SimDate) -> bool:
        open_until = self._breaker_open_until.get(host)
        if open_until is None:
            return False
        if day.ordinal < open_until:
            return True
        del self._breaker_open_until[host]
        self._failures.pop(host, None)
        return False

    def _note_failure(self, host: str, day: SimDate) -> None:
        failures = self._failures.get(host, 0) + 1
        self._failures[host] = failures
        if failures >= self.policy.breaker_threshold:
            self._breaker_open_until[host] = (
                day.ordinal + self.policy.breaker_cooldown_days
            )
            self._failures.pop(host, None)
            PERF.count("faults.breaker.opened")  # repro: allow-D101 ablation workers reset+merge PERF wholesale; shard workers use _TaskFetcher, never this fetcher
