"""Named fault profiles: per-kind rates for the deterministic injector.

A profile is just a bag of probabilities (plus the IP-block window
length); all the determinism machinery lives in
:class:`repro.faults.injector.FaultInjector`.  Rates are per *decision*:
``timeout_rate`` is per fetch attempt, ``serp_missing_rate`` per
(term, day) SERP request, ``ip_block_rate`` per (host, window),
``awstats_down_rate`` per (host, day) scrape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class FaultProfile:
    """Fault rates for one chaos scenario.

    All rates are probabilities in [0, 1].  A profile with every rate at
    zero injects nothing — the pipeline behaves byte-identically to a run
    with no injector attached.
    """

    name: str
    description: str = ""
    #: Per-attempt probability a fetch times out (transient; retried).
    timeout_rate: float = 0.0
    #: Per-attempt probability of a connection error (transient; retried).
    connection_rate: float = 0.0
    #: Per-(url, day) probability the response body is cut short.
    truncated_rate: float = 0.0
    #: Per-(url, day) probability the response body is garbled.
    garbled_rate: float = 0.0
    #: Per-(term, day) probability a SERP page goes missing.
    serp_missing_rate: float = 0.0
    #: Per-day probability the crawler loses the *whole* SERP day.
    serp_blackout_rate: float = 0.0
    #: Per-(host, window) probability the host blocks the crawler's IPs.
    ip_block_rate: float = 0.0
    #: Length of one IP-block window in days.
    ip_block_days: int = 3
    #: Per-(host, day) probability the AWStats endpoint is down.
    awstats_down_rate: float = 0.0

    def active(self) -> bool:
        """True when any fault kind can fire."""
        return any(
            rate > 0.0
            for rate in (
                self.timeout_rate,
                self.connection_rate,
                self.truncated_rate,
                self.garbled_rate,
                self.serp_missing_rate,
                self.serp_blackout_rate,
                self.ip_block_rate,
                self.awstats_down_rate,
            )
        )


PROFILES: Dict[str, FaultProfile] = {
    profile.name: profile
    for profile in (
        FaultProfile(
            name="clean",
            description="No faults; identical to running without an injector.",
        ),
        FaultProfile(
            name="flaky-network",
            description="Transient fetch failures the retry layer should absorb.",
            timeout_rate=0.08,
            connection_rate=0.04,
        ),
        FaultProfile(
            name="blocked-crawler",
            description="SEO kits block the crawler's IPs for multi-day windows.",
            ip_block_rate=0.15,
            ip_block_days=4,
            timeout_rate=0.02,
        ),
        FaultProfile(
            name="lossy-serps",
            description="SERP pages vanish; occasional whole-day crawl blackouts.",
            serp_missing_rate=0.10,
            serp_blackout_rate=0.04,
        ),
        FaultProfile(
            name="degraded-content",
            description="Pages arrive truncated or garbled mid-transfer.",
            truncated_rate=0.12,
            garbled_rate=0.08,
        ),
        FaultProfile(
            name="awstats-outage",
            description="Compromised hosts' AWStats endpoints flap.",
            awstats_down_rate=0.25,
        ),
        FaultProfile(
            name="monsoon",
            description="Everything at once: the eight-month-study experience.",
            timeout_rate=0.06,
            connection_rate=0.03,
            truncated_rate=0.05,
            garbled_rate=0.03,
            serp_missing_rate=0.05,
            serp_blackout_rate=0.02,
            ip_block_rate=0.10,
            ip_block_days=3,
            awstats_down_rate=0.15,
        ),
    )
}


def profile_named(name: str) -> FaultProfile:
    """Look up a preset profile; raises with the known names on a miss."""
    try:
        return PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(PROFILES))
        raise KeyError(f"unknown fault profile {name!r} (known: {known})") from None
