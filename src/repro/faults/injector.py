"""Seeded, order-independent fault injection.

Every decision the injector makes is a pure function of
``(fault seed, profile name, fault kind, subject key)`` — a SHA-256
digest mapped to a uniform in [0, 1) and compared against the profile's
rate.  No mutable RNG state is consumed, so decisions are independent of
call order and call count: a retry loop asking about attempt 3 gets the
same answer whether or not attempts 1 and 2 were ever asked about, and a
resumed run replays exactly the failures the killed run saw.

The same derivation discipline as :class:`repro.search.ranking.NoiseSource`:
pre-feed a digest prefix once, then each decision is one ``copy()`` plus
one ``update()`` over the subject key.
"""

from __future__ import annotations

import hashlib

from typing import Optional, Tuple

from repro.util.perf import PERF
from repro.web.urls import parse_url

FAULT_TIMEOUT = "timeout"
FAULT_CONNECTION = "connection"
FAULT_IP_BLOCK = "ip-block"
FAULT_TRUNCATED = "truncated"
FAULT_GARBLED = "garbled"
FAULT_SERP_MISSING = "serp-missing"
FAULT_AWSTATS_DOWN = "awstats-down"

#: Faults a retry can plausibly cure (the fetch itself failed).
TRANSIENT_FAULTS = frozenset({FAULT_TIMEOUT, FAULT_CONNECTION, FAULT_IP_BLOCK})


class FaultInjector:
    """Deterministic fault decisions for one (profile, seed) pair."""

    def __init__(self, profile, seed: int = 0):
        self.profile = profile
        self.seed = int(seed)
        #: Suppress ``faults.injected.*`` PERF counts.  Crawl-shard workers
        #: (and the parent's inline task path) consult the injector with
        #: ``quiet=True``; the parent's canonical replay re-derives every
        #: decision — they are pure functions of the key, so re-asking is
        #: free — and counts each exactly once, in sequential order.
        self.quiet = False
        self._init_prefix()

    def _init_prefix(self) -> None:
        prefix = hashlib.sha256()
        prefix.update(b"repro-faults")
        prefix.update(b"\x00")
        prefix.update(str(self.seed).encode("utf-8"))
        prefix.update(b"\x00")
        prefix.update(self.profile.name.encode("utf-8"))
        self._prefix = prefix

    def __getstate__(self) -> dict:
        # hashlib objects can't pickle; (profile, seed) rebuilds the prefix.
        return {"profile": self.profile, "seed": self.seed,
                "quiet": self.quiet}

    def __setstate__(self, state: dict) -> None:
        self.profile = state["profile"]
        self.seed = state["seed"]
        self.quiet = state.get("quiet", False)
        self._init_prefix()

    # ------------------------------------------------------------------ #

    def _uniform(self, *parts: str) -> float:
        digest = self._prefix.copy()
        for part in parts:
            digest.update(b"\x00")
            digest.update(part.encode("utf-8"))
        raw = digest.digest()
        return int.from_bytes(raw[:8], "big") / 2.0**64

    def _roll(self, rate: float, kind: str, *parts: str) -> bool:
        if rate <= 0.0:
            return False
        if self._uniform(kind, *parts) >= rate:
            return False
        if not self.quiet:
            PERF.count(f"faults.injected.{kind}")
        return True

    # ------------------------------------------------------------------ #
    # Fetch-path faults
    # ------------------------------------------------------------------ #

    def fetch_fault(self, url: str, visitor, day, attempt: int = 0) -> Optional[str]:
        """Pre-fetch fault for one attempt, or ``None``.

        IP blocks are checked first (they persist for whole windows and a
        retry cannot cure them within one); timeouts and connection errors
        are keyed per attempt so retries re-roll independently.  The
        visitor's user agent is part of the key so e.g. Dagger's crawler
        and user views fail independently.
        """
        profile = self.profile
        host = parse_url(url).host
        if profile.ip_block_rate > 0.0 and self.host_blocked(host, day):
            if not self.quiet:
                PERF.count(f"faults.injected.{FAULT_IP_BLOCK}")
            return FAULT_IP_BLOCK
        key = (url, visitor.user_agent, str(day.ordinal), str(attempt))
        if self._roll(profile.timeout_rate, FAULT_TIMEOUT, *key):
            return FAULT_TIMEOUT
        if self._roll(profile.connection_rate, FAULT_CONNECTION, *key):
            return FAULT_CONNECTION
        return None

    def host_blocked(self, host: str, day) -> bool:
        """Whether ``host`` blocks the crawler's IPs during ``day``'s window.

        Windows partition the calendar into ``ip_block_days``-long spans;
        the decision is keyed per (host, window index) so a block lasts the
        whole window — the multi-day outages SEO kits inflicted on the
        paper's crawlers (Section 3.1).
        """
        profile = self.profile
        if profile.ip_block_rate <= 0.0:
            return False
        window = day.ordinal // max(1, profile.ip_block_days)
        return self._uniform(FAULT_IP_BLOCK, host, str(window)) < profile.ip_block_rate

    def corrupt_kind(self, url: str, day) -> Optional[str]:
        """Which corruption (if any) hits a delivered non-empty body.

        Factored out of :meth:`corrupt_html` so the shard pool's canonical
        replay can re-derive (and count) the decision without holding the
        body itself — the decision is keyed on (url, day) only."""
        profile = self.profile
        key = (url, str(day.ordinal))
        if self._roll(profile.truncated_rate, FAULT_TRUNCATED, *key):
            return FAULT_TRUNCATED
        if self._roll(profile.garbled_rate, FAULT_GARBLED, *key):
            return FAULT_GARBLED
        return None

    def corrupt_html(self, html: str, url: str, day) -> Tuple[str, Optional[str]]:
        """Maybe damage a successfully fetched body.

        Keyed per (url, day) — *not* per attempt — so a damaged page stays
        damaged however many times it is refetched that day, keeping output
        independent of the retry policy in force.
        """
        if not html:
            return html, None
        kind = self.corrupt_kind(url, day)
        if kind == FAULT_TRUNCATED:
            # Keep a deterministic 20–80% prefix: enough to parse partially.
            frac = 0.2 + 0.6 * self._uniform(
                FAULT_TRUNCATED, "cut", url, str(day.ordinal)
            )
            return html[: max(1, int(len(html) * frac))], FAULT_TRUNCATED
        if kind == FAULT_GARBLED:
            # Smash the markup in the back half: tags become plain junk.
            pivot = len(html) // 2
            garbled = html[:pivot] + html[pivot:].replace("<", " ").replace(">", " ")
            return garbled, FAULT_GARBLED
        return html, None

    # ------------------------------------------------------------------ #
    # Crawl-schedule faults
    # ------------------------------------------------------------------ #

    def serp_missing(self, term: str, day) -> bool:
        """Whether the SERP for (term, day) is lost to the crawler."""
        profile = self.profile
        if self._roll(profile.serp_blackout_rate, FAULT_SERP_MISSING, "blackout", str(day.ordinal)):
            return True
        return self._roll(profile.serp_missing_rate, FAULT_SERP_MISSING, term, str(day.ordinal))

    def awstats_down(self, host: str, day) -> bool:
        """Whether ``host``'s AWStats endpoint is unreachable on ``day``."""
        return self._roll(
            self.profile.awstats_down_rate, FAULT_AWSTATS_DOWN, host, str(day.ordinal)
        )
