"""Fault injection, retry policy, and crash-safe checkpointing.

The paper's eight-month measurement lived through blocked crawls, missed
days, truncated pages, and host outages; its analyses had to tolerate
those gaps.  This package makes failure a first-class, *deterministic*,
testable input:

* :mod:`repro.faults.profiles` — named fault profiles (rates for fetch
  timeouts, connection errors, truncated/garbled HTML, missing SERPs,
  crawler IP-block windows, AWStats outages);
* :mod:`repro.faults.injector` — a seeded injector whose every decision
  is a pure hash of (fault seed, fault kind, subject, day, attempt), so
  the same fault seed replays the same failures regardless of call order;
* :mod:`repro.faults.retry` — capped, jittered exponential backoff drawn
  from the sim RNG, a per-day retry budget, and a per-host circuit
  breaker (lint rule D009 enforces this discipline tree-wide);
* :mod:`repro.faults.checkpoint` — per-sim-day crash-safe checkpoints of
  the whole study state with ``repro run --resume`` continuation that is
  byte-identical to an uninterrupted run.
"""

from repro.faults.checkpoint import (
    CheckpointError,
    Checkpointer,
    SimulatedCrash,
    load_checkpoint,
    state_digest,
)
from repro.faults.injector import (
    FAULT_AWSTATS_DOWN,
    FAULT_CONNECTION,
    FAULT_GARBLED,
    FAULT_IP_BLOCK,
    FAULT_SERP_MISSING,
    FAULT_TIMEOUT,
    FAULT_TRUNCATED,
    FaultInjector,
)
from repro.faults.profiles import FaultProfile, PROFILES, profile_named
from repro.faults.retry import FAULT_CIRCUIT_OPEN, ResilientFetcher, RetryPolicy

__all__ = [
    "CheckpointError",
    "Checkpointer",
    "FAULT_AWSTATS_DOWN",
    "FAULT_CIRCUIT_OPEN",
    "FAULT_CONNECTION",
    "FAULT_GARBLED",
    "FAULT_IP_BLOCK",
    "FAULT_SERP_MISSING",
    "FAULT_TIMEOUT",
    "FAULT_TRUNCATED",
    "FaultInjector",
    "FaultProfile",
    "PROFILES",
    "ResilientFetcher",
    "RetryPolicy",
    "SimulatedCrash",
    "load_checkpoint",
    "profile_named",
    "state_digest",
]
