"""Lightweight hot-path instrumentation.

A process-global :data:`PERF` registry accumulates wall-clock timers and
event counters for the paths that dominate a study run — SERP serving, the
simulator's day loop, crawler fetches, classifier fits.  Instrumentation is
always on: one ``perf_counter`` pair per timed block (~0.1 µs) against hot
paths that cost tens of microseconds and up.

Usage::

    from repro.util.perf import PERF

    with PERF.timer("engine.serp"):
        ...
    PERF.count("crawler.fetch")

    PERF.report()        # {name: {"calls": ..., "total_s": ..., ...}}
    print(PERF.format_table())

Benchmarks and the ``python -m repro perf`` subcommand read the registry
after a run; call :meth:`PerfRegistry.reset` between measurements.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple


class TimerStat:
    """Accumulated wall-clock for one named block."""

    __slots__ = ("calls", "total", "max")

    def __init__(self):
        self.calls = 0
        self.total = 0.0
        self.max = 0.0

    def add(self, elapsed: float) -> None:
        self.calls += 1
        self.total += elapsed
        if elapsed > self.max:
            self.max = elapsed

    @property
    def mean(self) -> float:
        return self.total / self.calls if self.calls else 0.0


class PerfRegistry:
    """Named timers + counters; cheap enough to leave enabled."""

    def __init__(self):
        self._timers: Dict[str, TimerStat] = {}
        self._counters: Dict[str, int] = {}

    # ------------------------------------------------------------------ #

    # repro: effects=worker-safe
    def handle(self, name: str) -> TimerStat:
        """A persistent TimerStat for zero-lookup hot-path timing: hold the
        handle and call ``stat.add(elapsed)`` around ``perf_counter()``
        directly, skipping the context-manager overhead.  Handles survive
        :meth:`reset` (stats are zeroed in place)."""
        stat = self._timers.get(name)
        if stat is None:
            stat = self._timers[name] = TimerStat()
        return stat

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        stat = self.handle(name)
        start = time.perf_counter()
        try:
            yield
        finally:
            stat.add(time.perf_counter() - start)

    def count(self, name: str, n: int = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + n

    # repro: effects=worker-safe
    def reset(self) -> None:
        # Zero in place so hot-path handles stay valid across resets.
        for stat in self._timers.values():
            stat.calls = 0
            stat.total = 0.0
            stat.max = 0.0
        self._counters.clear()

    # ------------------------------------------------------------------ #

    def timers(self) -> Dict[str, TimerStat]:
        return dict(self._timers)

    def counters(self) -> Dict[str, int]:
        return dict(self._counters)

    def report(self) -> Dict[str, Dict[str, float]]:
        """JSON-serializable snapshot of every timer and counter."""
        out: Dict[str, Dict[str, float]] = {}
        for name, stat in sorted(self._timers.items()):
            if not stat.calls:
                continue
            out[name] = {
                "calls": stat.calls,
                "total_s": stat.total,
                "mean_us": stat.mean * 1e6,
                "max_us": stat.max * 1e6,
            }
        for name, value in sorted(self._counters.items()):
            out.setdefault(name, {})["count"] = value
        return out

    def format_table(self, top: Optional[int] = None) -> str:
        """The hot-path breakdown, widest total first.

        The ``% of total`` column is relative to the widest timer — the
        outermost instrumented block (``simulator.day`` in a study run)
        reads 100% and everything nested inside reads as its share.
        ``top`` keeps only the N widest timers (counters still print).
        """
        rows: List[Tuple[str, str, str, str, str, str]] = [
            ("name", "calls", "total (s)", "% of total", "mean (µs)", "max (µs)")
        ]
        ordered = sorted(
            ((n, s) for n, s in self._timers.items() if s.calls),
            key=lambda kv: -kv[1].total,
        )
        dropped = 0
        if top is not None and top >= 0:
            dropped = max(0, len(ordered) - top)
            ordered = ordered[:top]
        widest = ordered[0][1].total if ordered else 0.0
        for name, stat in ordered:
            share = (stat.total / widest * 100.0) if widest else 0.0
            rows.append((
                name,
                f"{stat.calls:,}",
                f"{stat.total:.3f}",
                f"{share:.1f}%",
                f"{stat.mean * 1e6:.1f}",
                f"{stat.max * 1e6:.1f}",
            ))
        widths = [max(len(row[i]) for row in rows) for i in range(len(rows[0]))]
        lines = []
        for r, row in enumerate(rows):
            lines.append("  ".join(
                cell.ljust(widths[i]) if i == 0 else cell.rjust(widths[i])
                for i, cell in enumerate(row)
            ))
            if r == 0:
                lines.append("  ".join("-" * w for w in widths))
        if dropped:
            lines.append(f"... {dropped} more timer(s) below --top cutoff")
        for name, value in sorted(self._counters.items()):
            lines.append(f"{name}: {value:,}")
        return "\n".join(lines)

    def dump_json(self, path: str, extra: Optional[Dict] = None) -> None:
        payload = {"perf": self.report()}
        if extra:
            payload.update(extra)
        from repro.util.atomicio import atomic_write

        with atomic_write(path) as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)


#: The process-global registry every instrumented path reports into.
PERF = PerfRegistry()
