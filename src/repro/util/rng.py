"""Deterministic RNG discipline.

Every component of the simulator owns a named stream derived from the
scenario seed via a stable hash.  Streams are independent: drawing more from
one never shifts another, so scenarios stay reproducible as the codebase
grows new consumers of randomness.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Sequence, TypeVar

T = TypeVar("T")


def derive_seed(base_seed: int, *names: str) -> int:
    """Derive a child seed from a base seed and a path of stream names.

    Uses SHA-256 so the mapping is stable across Python versions and
    processes (unlike the builtin ``hash``).
    """
    digest = hashlib.sha256()
    digest.update(str(base_seed).encode("utf-8"))
    for name in names:
        digest.update(b"\x00")
        digest.update(name.encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big")


class RandomStreams:
    """A tree of named :class:`random.Random` instances.

    >>> streams = RandomStreams(42)
    >>> streams.get("search").random() == RandomStreams(42).get("search").random()
    True
    """

    def __init__(self, base_seed: int, path: Sequence[str] = ()):
        self.base_seed = base_seed
        self.path = tuple(path)
        self._streams: Dict[str, random.Random] = {}
        self._children: Dict[str, "RandomStreams"] = {}

    def get(self, name: str) -> random.Random:
        """Return (creating if needed) the stream with the given name."""
        if name not in self._streams:
            seed = derive_seed(self.base_seed, *self.path, name)
            self._streams[name] = random.Random(seed)
        return self._streams[name]

    def child(self, name: str) -> "RandomStreams":
        """Return a namespaced sub-tree, e.g. one per campaign."""
        if name not in self._children:
            self._children[name] = RandomStreams(self.base_seed, self.path + (name,))
        return self._children[name]

    def bounded_lognormal(
        self, name: str, mu: float, sigma: float, low: float, high: float
    ) -> float:
        """A lognormal draw clamped into [low, high]; handy for delays."""
        value = self.get(name).lognormvariate(mu, sigma)
        return max(low, min(high, value))

    def weighted_choice(self, name: str, items: Sequence[T], weights: Sequence[float]) -> T:
        return self.get(name).choices(list(items), weights=list(weights), k=1)[0]

    def __repr__(self) -> str:
        return f"RandomStreams(base_seed={self.base_seed}, path={self.path!r})"
