"""Identifier allocation and name normalization."""

from __future__ import annotations

import re
from typing import Dict

_SLUG_RE = re.compile(r"[^a-z0-9]+")


def slugify(text: str) -> str:
    """Normalize a human name into a lowercase slug.

    >>> slugify("Beats By Dre")
    'beats-by-dre'
    >>> slugify("PHP?P=")
    'php-p'
    """
    slug = _SLUG_RE.sub("-", text.lower()).strip("-")
    return slug or "x"


class IdAllocator:
    """Allocates monotonically increasing ids per namespace.

    Used for order numbers, court case numbers, page ids, etc.  Namespaces
    are independent so that e.g. each storefront has its own order counter
    (the property the purchase-pair technique exploits, paper Section 4.3.1).
    """

    def __init__(self):
        self._counters: Dict[str, int] = {}

    def seed(self, namespace: str, start: int) -> None:
        """Initialize a namespace at a given starting value (idempotent for
        an untouched namespace; refuses to rewind an active one)."""
        current = self._counters.get(namespace)
        if current is not None and start < current:
            raise ValueError(
                f"namespace {namespace!r} already at {current}, cannot seed to {start}"
            )
        self._counters[namespace] = start

    def next(self, namespace: str) -> int:
        """Allocate the next id in the namespace (first id is 1 unless seeded)."""
        value = self._counters.get(namespace, 0) + 1
        self._counters[namespace] = value
        return value

    def peek(self, namespace: str) -> int:
        """Return the most recently allocated id without allocating."""
        return self._counters.get(namespace, 0)

    def namespaces(self):
        return sorted(self._counters)
