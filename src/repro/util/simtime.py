"""Simulation calendar.

The paper's crawl spans 2013-11-13 through 2014-07-15 (245 days inclusive).
We model time as whole days.  :class:`SimDate` is a thin immutable wrapper
around a day ordinal so date arithmetic is cheap inside the simulator's hot
loops, while still printing as a human-readable ISO date.
"""

from __future__ import annotations

import datetime
import functools
from typing import Iterator


@functools.total_ordering
class SimDate:
    """A calendar day, represented as an ordinal; immutable and hashable."""

    __slots__ = ("_ordinal",)

    def __init__(self, value):
        """Accept an ISO string ('2013-11-13'), a datetime.date, an ordinal
        int, or another SimDate."""
        if isinstance(value, SimDate):
            self._ordinal = value._ordinal
        elif isinstance(value, int):
            self._ordinal = value
        elif isinstance(value, datetime.date):
            self._ordinal = value.toordinal()
        elif isinstance(value, str):
            self._ordinal = datetime.date.fromisoformat(value).toordinal()
        else:
            raise TypeError(f"cannot build SimDate from {type(value).__name__}")

    @property
    def ordinal(self) -> int:
        return self._ordinal

    def to_date(self) -> datetime.date:
        return datetime.date.fromordinal(self._ordinal)

    def isoformat(self) -> str:
        return self.to_date().isoformat()

    @property
    def year(self) -> int:
        return self.to_date().year

    @property
    def month(self) -> int:
        return self.to_date().month

    @property
    def day(self) -> int:
        return self.to_date().day

    def __add__(self, days: int) -> "SimDate":
        if not isinstance(days, int):
            return NotImplemented
        return SimDate(self._ordinal + days)

    def __radd__(self, days: int) -> "SimDate":
        return self.__add__(days)

    def __sub__(self, other):
        """SimDate - SimDate -> int days; SimDate - int -> SimDate."""
        if isinstance(other, SimDate):
            return self._ordinal - other._ordinal
        if isinstance(other, int):
            return SimDate(self._ordinal - other)
        return NotImplemented

    def __eq__(self, other) -> bool:
        if isinstance(other, SimDate):
            return self._ordinal == other._ordinal
        return NotImplemented

    def __lt__(self, other) -> bool:
        if isinstance(other, SimDate):
            return self._ordinal < other._ordinal
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("SimDate", self._ordinal))

    def __repr__(self) -> str:
        return f"SimDate({self.isoformat()!r})"

    def __str__(self) -> str:
        return self.isoformat()


class DateRange:
    """Inclusive range of days, iterable with an optional stride."""

    __slots__ = ("start", "end")

    def __init__(self, start, end):
        self.start = SimDate(start)
        self.end = SimDate(end)
        if self.end < self.start:
            raise ValueError(f"end {self.end} precedes start {self.start}")

    def __len__(self) -> int:
        return self.end - self.start + 1

    def __contains__(self, day) -> bool:
        day = SimDate(day)
        return self.start <= day <= self.end

    def __iter__(self) -> Iterator[SimDate]:
        return self.days()

    def days(self, stride: int = 1) -> Iterator[SimDate]:
        if stride < 1:
            raise ValueError("stride must be >= 1")
        current = self.start
        while current <= self.end:
            yield current
            current = current + stride

    def clip(self, day) -> SimDate:
        """Clamp a day into the range."""
        day = SimDate(day)
        if day < self.start:
            return self.start
        if day > self.end:
            return self.end
        return day

    def offset_of(self, day) -> int:
        """Zero-based index of a day within the range."""
        day = SimDate(day)
        if day not in self:
            raise ValueError(f"{day} outside {self}")
        return day - self.start

    def __eq__(self, other) -> bool:
        if isinstance(other, DateRange):
            return self.start == other.start and self.end == other.end
        return NotImplemented

    def __hash__(self):
        return hash((self.start, self.end))

    def __repr__(self) -> str:
        return f"DateRange({self.start.isoformat()!r}, {self.end.isoformat()!r})"


#: The paper's crawl window (Section 4.1): Nov 13, 2013 -- Jul 15, 2014.
STUDY_START = SimDate("2013-11-13")
STUDY_END = SimDate("2014-07-15")
