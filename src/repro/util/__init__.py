"""Shared utilities: simulation time, RNG discipline, ids, small statistics.

The whole reproduction is deterministic.  Every stochastic component draws
from a named :class:`RandomStreams` child so that adding a new consumer of
randomness never perturbs unrelated components.
"""

from repro.util.simtime import SimDate, DateRange, STUDY_START, STUDY_END
from repro.util.rng import RandomStreams, derive_seed
from repro.util.ids import IdAllocator, slugify
from repro.util.stats import (
    mean,
    median,
    percentile,
    clamp,
    peak_range,
    linear_interpolate,
    cumulative_to_rates,
)

__all__ = [
    "SimDate",
    "DateRange",
    "STUDY_START",
    "STUDY_END",
    "RandomStreams",
    "derive_seed",
    "IdAllocator",
    "slugify",
    "mean",
    "median",
    "percentile",
    "clamp",
    "peak_range",
    "linear_interpolate",
    "cumulative_to_rates",
]
