"""Small random-variate helpers built on ``random.Random``.

Kept dependency-free and exact enough for simulation use; both helpers are
deterministic given the stream.
"""

from __future__ import annotations

import math
import random


def binomial(rng: random.Random, n: int, p: float) -> int:
    """Binomial(n, p) draw.

    Exact Bernoulli summation for small n; Gaussian approximation (rounded,
    clamped) for large n where it is statistically indistinguishable for
    our purposes.
    """
    if n < 0:
        raise ValueError("n must be >= 0")
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be in [0, 1]")
    if n == 0 or p == 0.0:
        return 0
    if p == 1.0:
        return n
    if n <= 64:
        return sum(1 for _ in range(n) if rng.random() < p)
    mean = n * p
    sigma = math.sqrt(n * p * (1.0 - p))
    draw = int(round(rng.gauss(mean, sigma)))
    return max(0, min(n, draw))


def poisson(rng: random.Random, lam: float) -> int:
    """Poisson(lam) draw: Knuth's method for small lambda, Gaussian
    approximation for large."""
    if lam < 0:
        raise ValueError("lam must be >= 0")
    if lam == 0:
        return 0
    if lam < 30.0:
        threshold = math.exp(-lam)
        count = 0
        product = rng.random()
        while product > threshold:
            count += 1
            product *= rng.random()
        return count
    draw = int(round(rng.gauss(lam, math.sqrt(lam))))
    return max(0, draw)
