"""Crash-safe artifact writes: write-temp-then-atomic-rename.

Every artifact the pipeline emits (``psrs.jsonl``, ``metrics.jsonl``,
``trace.json``, ``BENCH_*.json``, checkpoints) goes through
:func:`atomic_write`: content lands in a temporary file in the *same
directory* (same filesystem, so the rename is atomic), is flushed and
fsynced, and only then replaces the destination via :func:`os.replace`.
A process killed mid-write leaves either the previous complete file or
no file — never a torn artifact.

    with atomic_write(path) as handle:
        handle.write(...)

On any exception inside the block the temporary file is removed and the
destination is left untouched.

Append-only files (the run ledger) use :func:`append_line` instead: one
``os.write`` of the whole newline-terminated record onto an ``O_APPEND``
descriptor.  A crash mid-write leaves at most one torn final line, which
the ledger loader tolerates; the next append self-heals by inserting a
newline before its record when the file does not end with one.
"""

from __future__ import annotations

import os
import tempfile
from contextlib import contextmanager
from typing import IO, Iterator


@contextmanager
def atomic_write(path: str, mode: str = "w", encoding: str = "utf-8") -> Iterator[IO]:
    """Open a temp file next to ``path``; atomically rename on success.

    ``mode`` must be a write mode (``"w"`` or ``"wb"``); text mode uses
    ``encoding`` (binary mode ignores it).
    """
    if "w" not in mode:
        raise ValueError(f"atomic_write needs a write mode, got {mode!r}")
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    binary = "b" in mode
    handle = os.fdopen(fd, mode, encoding=None if binary else encoding)
    try:
        yield handle
        handle.flush()
        os.fsync(handle.fileno())
        handle.close()
        os.replace(tmp_path, path)
    except BaseException:
        handle.close()
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def append_line(path: str, line: str, encoding: str = "utf-8") -> None:
    """Append one newline-terminated record to ``path`` crash-tolerantly.

    The whole record goes down in a single ``os.write`` on an ``O_APPEND``
    descriptor and is fsynced before the descriptor closes, so concurrent
    appenders never interleave bytes and a crash leaves at most one torn
    final line.  If an earlier crash left the file without a trailing
    newline, the write is prefixed with one so the torn tail stays a
    single recoverable line instead of corrupting this record too.
    """
    data = line if line.endswith("\n") else line + "\n"
    payload = data.encode(encoding)
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        if os.fstat(fd).st_size > 0:
            with open(path, "rb") as tail:
                tail.seek(-1, os.SEEK_END)
                if tail.read(1) != b"\n":
                    payload = b"\n" + payload
        os.write(fd, payload)
        os.fsync(fd)
    finally:
        os.close(fd)
