"""Small statistics helpers used across the analysis code.

These are deliberately dependency-light; numpy is reserved for the
classifier's linear algebra.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple


def mean(values: Sequence[float]) -> float:
    values = list(values)
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def median(values: Sequence[float]) -> float:
    return percentile(values, 50.0)


def percentile(values: Sequence[float], pct: float) -> float:
    """Linear-interpolated percentile, pct in [0, 100]."""
    ordered = sorted(values)
    if not ordered:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= pct <= 100.0:
        raise ValueError(f"pct must be in [0, 100], got {pct}")
    if len(ordered) == 1:
        return float(ordered[0])
    rank = pct / 100.0 * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    frac = rank - low
    value = ordered[low] * (1.0 - frac) + ordered[high] * frac
    # Interpolation can drift one ulp outside the sample range; clamp.
    return max(ordered[0], min(ordered[-1], value))


def clamp(value: float, low: float, high: float) -> float:
    if low > high:
        raise ValueError(f"empty clamp interval [{low}, {high}]")
    return max(low, min(high, value))


def peak_range(daily_counts: Sequence[float], fraction: float = 0.6) -> Tuple[int, int]:
    """Shortest contiguous index span containing >= ``fraction`` of the total.

    This is the paper's "peak range" metric (Section 5.1.2): the shortest
    contiguous time span that includes 60% or more of all PSRs from a
    campaign.  Returns (start_index, end_index) inclusive.  A two-pointer
    sweep over the prefix sums finds the optimum in O(n).
    """
    counts = list(daily_counts)
    total = sum(counts)
    if total <= 0:
        raise ValueError("peak_range needs a positive total")
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    target = total * fraction
    best = (0, len(counts) - 1)
    best_len = len(counts)
    window = 0.0
    left = 0
    for right, value in enumerate(counts):
        window += value
        while window - counts[left] >= target and left < right:
            window -= counts[left]
            left += 1
        if window >= target and (right - left + 1) < best_len:
            best = (left, right)
            best_len = right - left + 1
    return best


def linear_interpolate(
    samples: Sequence[Tuple[int, float]], positions: Sequence[int]
) -> List[float]:
    """Piecewise-linear interpolation of (x, y) samples at integer positions.

    Positions outside the sampled span are clamped to the boundary values
    (the paper interpolates order-number samples only between observations;
    we hold endpoints flat rather than extrapolate).
    """
    pts = sorted(samples)
    if not pts:
        raise ValueError("no samples to interpolate")
    xs = [p[0] for p in pts]
    if len(set(xs)) != len(xs):
        raise ValueError("duplicate x positions in samples")
    out: List[float] = []
    for pos in positions:
        if pos <= xs[0]:
            out.append(pts[0][1])
            continue
        if pos >= xs[-1]:
            out.append(pts[-1][1])
            continue
        # Find the bracketing segment by linear scan from the right edge of
        # the last hit; positions are typically sorted, so this is cheap.
        for i in range(1, len(pts)):
            if pos <= xs[i]:
                x0, y0 = pts[i - 1]
                x1, y1 = pts[i]
                frac = (pos - x0) / (x1 - x0)
                out.append(y0 + frac * (y1 - y0))
                break
    return out


def cumulative_to_rates(samples: Sequence[Tuple[int, float]]) -> Dict[int, float]:
    """Convert cumulative (day, counter) samples into a per-day rate map.

    This is the purchase-pair estimator's core: the difference between two
    order numbers divided by the days between the observations, attributed
    uniformly to each day in the gap.  Non-monotonic samples raise, because
    order numbers are monotonically increasing by construction.
    """
    pts = sorted(samples)
    if len(pts) < 2:
        return {}
    rates: Dict[int, float] = {}
    for (x0, y0), (x1, y1) in zip(pts, pts[1:]):
        if x1 == x0:
            raise ValueError("duplicate sample day")
        if y1 < y0:
            raise ValueError(f"counter decreased between day {x0} and {x1}")
        rate = (y1 - y0) / (x1 - x0)
        for day in range(x0, x1):
            rates[day] = rate
    return rates
