"""The search engine: SERP serving plus the search-side intervention levers.

Interventions (Section 3.2.1):

* **Demotion** — a per-host score penalty applied from a given day; strong
  penalties push every page on the host out of the top 100.
* **Deindexing** — full removal from the index.
* **"Hacked" label** — attached only to the *root* result of a labeled host
  by default (the policy limitation Section 5.2.2 quantifies); the
  ``label_root_only`` flag exists so ablations can lift the restriction.
* **Malware label** — interstitial, modeled as a near-zero click multiplier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.util.rng import RandomStreams
from repro.util.simtime import SimDate
from repro.search.index import SearchIndex, no_seo_signal
from repro.search.ranking import NoiseSource, RankingModel
from repro.search.serp import ResultLabel, SearchResult, Serp


@dataclass
class HostPenalty:
    since: SimDate
    amount: float


@dataclass
class HostLabel:
    since: SimDate
    label: ResultLabel


class SearchEngine:
    """Serves top-k organic results for (term, day) queries."""

    def __init__(
        self,
        index: SearchIndex,
        streams: RandomStreams,
        ranking: Optional[RankingModel] = None,
        serp_size: int = 100,
        label_root_only: bool = True,
        max_results_per_host: int = 2,
    ):
        self.index = index
        self.ranking = ranking if ranking is not None else RankingModel()
        self.serp_size = serp_size
        self.label_root_only = label_root_only
        #: Host-clustering cap, like Google's same-domain result limit.
        self.max_results_per_host = max_results_per_host
        self._noise = NoiseSource(streams, self.ranking.noise_sigma)
        self._static_scores: Dict[int, float] = {}
        self._penalties: Dict[str, HostPenalty] = {}
        self._labels: Dict[str, HostLabel] = {}

    # ------------------------------------------------------------------ #
    # Intervention levers
    # ------------------------------------------------------------------ #

    def demote_host(self, host: str, day: SimDate, amount: float) -> None:
        """Apply (or deepen) a ranking penalty on a host from ``day``."""
        existing = self._penalties.get(host)
        if existing is not None and existing.amount >= amount:
            return
        self._penalties[host] = HostPenalty(since=day, amount=amount)

    def deindex_host(self, host: str) -> int:
        self._penalties.pop(host, None)
        return self.index.remove_host(host)

    def label_host(self, host: str, day: SimDate, label: ResultLabel) -> None:
        self._labels[host] = HostLabel(since=day, label=label)

    def label_of(self, host: str, day: SimDate) -> ResultLabel:
        state = self._labels.get(host)
        if state is None or day < state.since:
            return ResultLabel.NONE
        return state.label

    def labeled_hosts(self) -> Dict[str, HostLabel]:
        return dict(self._labels)

    def penalty_of(self, host: str, day: SimDate) -> float:
        state = self._penalties.get(host)
        if state is None or day < state.since:
            return 0.0
        return state.amount

    # ------------------------------------------------------------------ #
    # Query serving
    # ------------------------------------------------------------------ #

    def serp(self, term: str, day) -> Serp:
        """Rank candidates and return the top ``serp_size`` results.

        Hot path: the simulator calls this once per (term, day).  The
        static score component (authority + relevance) is cached per entry;
        the sentinel no-op SEO signal is skipped without a call.
        """
        day = SimDate(day)
        rng = self._noise.fresh_rng(term, day)
        gauss = rng.gauss
        sigma = self.ranking.noise_sigma
        w_seo = self.ranking.w_seo
        static_cache = self._static_scores
        w_auth = self.ranking.w_authority
        w_rel = self.ranking.w_relevance
        penalties = self._penalties
        scored: List[Tuple[float, object]] = []
        for entry in self.index.candidates(term):
            indexed_on = entry.indexed_on
            if indexed_on is not None and day < indexed_on:
                continue
            key = id(entry)
            static = static_cache.get(key)
            if static is None:
                static = w_auth * entry.authority + w_rel * entry.relevance
                static_cache[key] = static
            score = static + gauss(0.0, sigma)
            signal = entry.seo_signal
            if signal is not no_seo_signal:
                score += w_seo * signal(day)
            penalty = penalties.get(entry.host)
            if penalty is not None and penalty.since <= day:
                score -= penalty.amount
            scored.append((score, entry))
        scored.sort(key=lambda pair: -pair[0])

        results: List[SearchResult] = []
        per_host: Dict[str, int] = {}
        for score, entry in scored:
            count = per_host.get(entry.host, 0)
            if count >= self.max_results_per_host:
                continue
            per_host[entry.host] = count + 1
            rank = len(results) + 1
            results.append(
                SearchResult(
                    rank=rank,
                    url=entry.url,
                    host=entry.host,
                    path=entry.path,
                    label=self._result_label(entry.host, entry.path, day),
                    score=score,
                    entry=entry,
                )
            )
            if rank >= self.serp_size:
                break
        return Serp(term=term, day=day, results=results)

    def site_query(self, host: str, day) -> List[str]:
        """'site:<host>' — every indexed URL on a host visible on ``day``.

        The paper used these queries to collect all search results
        originating from a doorway and extract its targeted keywords from
        the URL paths (Section 4.1.1)."""
        day = SimDate(day)
        urls = []
        seen = set()
        for entry in self.index.entries_for_host(host):
            if entry.indexed_on is not None and day < entry.indexed_on:
                continue
            if entry.url not in seen:
                seen.add(entry.url)
                urls.append(entry.url)
        return sorted(urls)

    def _result_label(self, host: str, path: str, day: SimDate) -> ResultLabel:
        label = self.label_of(host, day)
        if label is ResultLabel.NONE:
            return label
        if label is ResultLabel.HACKED and self.label_root_only and path not in ("", "/"):
            # The policy gap of Section 5.2.2: only root results get the
            # "hacked" subtitle, sub-page PSRs escape unlabeled.
            return ResultLabel.NONE
        return label
